"""Setup shim.

The primary build configuration lives in ``pyproject.toml``.  This file
exists so the package can be installed in environments whose tooling
predates PEP 660 editable installs (``python setup.py develop``).
"""

from setuptools import setup

setup()
