"""Unit tests for CSC conflict detection and lower bounds."""

import math

from repro.stg import parse_g
from repro.stategraph import (
    build_state_graph,
    code_classes,
    csc_conflicts,
    csc_lower_bound,
    max_csc,
    paper_lower_bound,
    quotient,
    usc_pairs,
)

from tests.example_stgs import CHOICE, CONCURRENT, CSC_CONFLICT, HANDSHAKE


class TestCleanGraphs:
    def test_handshake_has_no_conflicts(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        assert usc_pairs(graph) == []
        assert csc_conflicts(graph) == []
        assert max_csc(graph) == 1
        assert paper_lower_bound(graph) == 0
        assert csc_lower_bound(graph) == 0

    def test_concurrent_has_no_conflicts(self):
        graph = build_state_graph(parse_g(CONCURRENT))
        assert csc_conflicts(graph) == []


class TestUscVersusCsc:
    def test_choice_has_usc_pair_but_no_csc_conflict(self):
        graph = build_state_graph(parse_g(CHOICE))
        # The two post-input-fall states share code 001 but both excite
        # only c-: a USC violation that is not a CSC violation.
        assert len(usc_pairs(graph)) == 1
        assert csc_conflicts(graph) == []
        assert max_csc(graph) == 2
        assert paper_lower_bound(graph) == 1  # the paper's coarse bound
        assert csc_lower_bound(graph) == 0  # the refined bound


class TestConflictDetection:
    def test_conflict_found(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        conflicts = csc_conflicts(graph)
        assert len(conflicts) == 1
        (a, b) = conflicts[0]
        assert a != b
        assert graph.code_of(a) == graph.code_of(b)

    def test_conflict_is_about_c(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        assert csc_conflicts(graph, outputs=["c"])
        assert csc_conflicts(graph, outputs=["b"]) == []

    def test_lower_bounds(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        assert max_csc(graph) == 2
        assert paper_lower_bound(graph) == 1
        assert csc_lower_bound(graph) == 1

    def test_extra_codes_resolve_conflict(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        ((a, b),) = csc_conflicts(graph)
        extra = [(0,)] * graph.num_states
        extra[b] = (1,)
        assert csc_conflicts(graph, extra_codes=extra) == []
        assert csc_lower_bound(graph, extra_codes=extra) == 0

    def test_code_classes_partition_states(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        classes = code_classes(graph)
        total = sum(len(states) for states in classes.values())
        assert total == graph.num_states


class TestQuotientConflicts:
    def test_hiding_trigger_creates_intrinsic_ambiguity(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        # b- triggers c+: hiding b merges the state that excites c+ with
        # the state before b-, where c's implied value is still 0.
        q = quotient(graph, hidden_signals=["b"])
        assert any(q.is_ambiguous(s, "c") for s in q.states())
        conflicts = csc_conflicts(q, outputs=["c"])
        assert any(a == b for a, b in conflicts)  # intrinsic
        assert any(a != b for a, b in conflicts)  # and a cross-state pair
        assert csc_lower_bound(q, outputs=["c"]) == math.inf

    def test_hiding_everything_else_is_maximally_ambiguous(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        q = quotient(graph, hidden_signals=["a", "b"])
        assert q.graph.num_states == 2  # c=0 region and c=1 region
        merged = [s for s in q.states() if len(q.blocks[s]) > 1]
        assert merged
        assert any(q.is_ambiguous(s, "c") for s in merged)
        assert csc_lower_bound(q, outputs=["c"]) == math.inf
