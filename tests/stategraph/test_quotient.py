"""Unit tests for the ε-merging quotient."""

import pytest

from repro.stg import parse_g
from repro.stategraph import EPSILON, build_state_graph, quotient

from tests.example_stgs import CONCURRENT, CSC_CONFLICT, HANDSHAKE


class TestBasicQuotient:
    def test_empty_hide_is_identity(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        q = quotient(graph, hidden_signals=())
        assert q.graph.num_states == graph.num_states
        assert q.graph.num_edges == graph.num_edges
        assert q.cover == list(range(graph.num_states))

    def test_hide_one_signal_of_handshake(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        q = quotient(graph, hidden_signals=["b"])
        # Hiding b folds the 4-cycle into the 2-cycle of a alone.
        assert q.graph.signals == ("a",)
        assert q.graph.num_states == 2
        assert {q.graph.code_of(s) for s in q.states()} == {(0,), (1,)}
        labels = {label for _s, label, _t in q.graph.edges}
        assert labels == {("a", "+"), ("a", "-")}

    def test_cover_map_is_total_and_consistent(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        q = quotient(graph, hidden_signals=["b"])
        assert len(q.cover) == graph.num_states
        for state in graph.states():
            assert state in q.blocks[q.cover[state]]

    def test_blocks_partition_states(self):
        graph = build_state_graph(parse_g(CONCURRENT))
        q = quotient(graph, hidden_signals=["x", "y"])
        seen = sorted(s for block in q.blocks for s in block)
        assert seen == list(graph.states())

    def test_initial_state_covered(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        q = quotient(graph, hidden_signals=["b"])
        assert q.graph.initial == q.cover[graph.initial]

    def test_unknown_signal_rejected(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        with pytest.raises(ValueError):
            quotient(graph, hidden_signals=["zz"])


class TestQuotientSemantics:
    def test_no_epsilon_edges_remain(self):
        graph = build_state_graph(parse_g(CONCURRENT))
        q = quotient(graph, hidden_signals=["x"])
        assert all(label is not EPSILON for _s, label, _t in q.graph.edges)

    def test_hidden_bits_dropped_from_codes(self):
        graph = build_state_graph(parse_g(CONCURRENT))
        q = quotient(graph, hidden_signals=["x", "y"])
        assert q.graph.signals == ("a", "z")
        for state in q.states():
            assert len(q.code_of(state)) == 2

    def test_non_inputs_updated(self):
        graph = build_state_graph(parse_g(CONCURRENT))
        q = quotient(graph, hidden_signals=["x"])
        assert q.graph.non_inputs == frozenset({"y", "z"})

    def test_implied_values_singleton_when_unambiguous(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        q = quotient(graph, hidden_signals=())
        for state in q.states():
            assert len(q.implied_values(state, "b")) == 1

    def test_edges_deduplicated(self):
        # Hiding x and y in the concurrent example folds the two
        # interleavings onto single macro edges.
        graph = build_state_graph(parse_g(CONCURRENT))
        q = quotient(graph, hidden_signals=["x", "y"])
        # Macro cycle: a+ z+ a- z- over 4 macro states.
        assert q.graph.num_states == 4
        assert q.graph.num_edges == 4
