"""Unit tests for the StateGraph structure and its validation."""

import pytest

from repro.stategraph.graph import EPSILON, StateGraph


def two_state():
    return StateGraph(
        signals=("a",),
        codes=[(0,), (1,)],
        edges=[(0, ("a", "+"), 1), (1, ("a", "-"), 0)],
        non_inputs=[],
    )


class TestConstruction:
    def test_duplicate_signals_rejected(self):
        with pytest.raises(ValueError):
            StateGraph(("a", "a"), [(0, 0)], [], [])

    def test_code_width_checked(self):
        with pytest.raises(ValueError):
            StateGraph(("a",), [(0, 1)], [], [])

    def test_non_input_must_be_signal(self):
        with pytest.raises(ValueError):
            StateGraph(("a",), [(0,)], [], ["ghost"])

    def test_initial_in_range(self):
        with pytest.raises(ValueError):
            StateGraph(("a",), [(0,)], [], [], initial=3)

    def test_edge_out_of_range(self):
        with pytest.raises(ValueError):
            StateGraph(
                ("a",), [(0,)], [(0, ("a", "+"), 5)], []
            )

    def test_edge_unknown_signal(self):
        with pytest.raises(ValueError):
            StateGraph(
                ("a",), [(0,), (1,)], [(0, ("zz", "+"), 1)], []
            )

    def test_edge_bad_direction(self):
        with pytest.raises(ValueError):
            StateGraph(
                ("a",), [(0,), (1,)], [(0, ("a", "?"), 1)], []
            )

    def test_edge_consistency_enforced(self):
        # a+ from a state where a is already 1.
        with pytest.raises(ValueError):
            StateGraph(
                ("a",), [(1,), (1,)], [(0, ("a", "+"), 1)], []
            )

    def test_edge_must_not_touch_other_signals(self):
        with pytest.raises(ValueError):
            StateGraph(
                ("a", "b"),
                [(0, 0), (1, 1)],
                [(0, ("a", "+"), 1)],
                [],
            )

    def test_epsilon_edge_requires_equal_codes(self):
        with pytest.raises(ValueError):
            StateGraph(
                ("a",), [(0,), (1,)], [(0, EPSILON, 1)], []
            )

    def test_epsilon_edge_with_equal_codes_ok(self):
        graph = StateGraph(
            ("a",), [(0,), (0,)], [(0, EPSILON, 1)], []
        )
        assert graph.num_edges == 1


class TestViews:
    def test_in_and_out_edges(self):
        graph = two_state()
        assert graph.out_edges(0) == [(("a", "+"), 1)]
        assert graph.in_edges(0) == [(("a", "-"), 1)]

    def test_value_lookup(self):
        graph = two_state()
        assert graph.value(0, "a") == 0
        assert graph.value(1, "a") == 1

    def test_excitation_cached(self):
        graph = two_state()
        first = graph.excitation(0)
        assert graph.excitation(0) is first

    def test_conflicting_excitation_detected(self):
        graph = StateGraph(
            ("a", "b"),
            [(0, 0), (1, 0), (0, 1)],
            [
                (0, ("a", "+"), 1),
                (2, ("b", "-"), 0),
                (1, ("a", "-"), 0),
                (0, ("b", "+"), 2),
            ],
            [],
        )
        # Fine: different signals.
        assert set(graph.excitation(0)) == {"a", "b"}

    def test_deterministic_check(self):
        graph = StateGraph(
            ("a", "b"),
            [(0, 0), (1, 0), (1, 0)],
            [(0, ("a", "+"), 1), (0, ("a", "+"), 2)],
            [],
        )
        with pytest.raises(ValueError):
            graph.check_deterministic()

    def test_concurrent_transition_count(self):
        graph = two_state()
        assert graph.concurrent_transition_count() == 0

    def test_repr(self):
        assert "states=2" in repr(two_state())
