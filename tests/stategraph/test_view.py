"""Tests for the StateGraphView protocol."""

import pytest

from repro.stategraph import (
    StateGraph,
    StateGraphView,
    build_state_graph,
    csc_conflicts,
    csc_lower_bound,
    quotient,
)
from repro.stg import parse_g

from tests.example_stgs import CONCURRENT, CSC_CONFLICT


def test_state_graph_satisfies_the_view():
    graph = build_state_graph(parse_g(CSC_CONFLICT))
    assert isinstance(graph, StateGraphView)


def test_quotient_graph_satisfies_the_view():
    graph = build_state_graph(parse_g(CONCURRENT))
    assert isinstance(quotient(graph, ["x"]), StateGraphView)


def test_unrelated_object_does_not_satisfy_the_view():
    assert not isinstance(object(), StateGraphView)


def test_analyses_accept_a_structural_view():
    # The contract is structural: a hand-rolled double with exactly the
    # protocol members is analysable, no StateGraph inheritance needed.
    graph = build_state_graph(parse_g(CSC_CONFLICT))

    class Double:
        signals = graph.signals
        non_inputs = graph.non_inputs
        num_states = graph.num_states
        edges = graph.edges

        def states(self):
            return graph.states()

        def code_of(self, state):
            return graph.code_of(state)

        def excitation(self, state):
            return graph.excitation(state)

        def implied_values(self, state, signal):
            return graph.implied_values(state, signal)

    double = Double()
    assert isinstance(double, StateGraphView)
    assert csc_conflicts(double) == csc_conflicts(graph)
    assert csc_lower_bound(double) == csc_lower_bound(graph)


def test_implied_value_singular_is_not_part_of_the_view():
    # The deliberate asymmetry: plain graphs have a singular
    # implied_value helper, but the shared contract is the set form.
    assert hasattr(StateGraph, "implied_value")
    assert not hasattr(StateGraphView, "implied_value")
    assert hasattr(StateGraphView, "implied_values")
