"""Unit tests for state graph construction."""

import pytest

from repro.stg import parse_g
from repro.stategraph import (
    EPSILON,
    InconsistentStgError,
    build_state_graph,
)
from repro.petrinet.reachability import reachability_graph
from repro.stategraph.build import infer_signal_values

from tests.example_stgs import CHOICE, CONCURRENT, CSC_CONFLICT, HANDSHAKE


class TestHandshake:
    def test_shape(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        assert graph.num_states == 4
        assert graph.num_edges == 4
        assert graph.signals == ("a", "b")

    def test_codes_unique(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        assert len(set(graph.codes)) == 4
        assert set(graph.codes) == {(0, 0), (1, 0), (1, 1), (0, 1)}

    def test_initial_state_code(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        # Initially both signals are low (a+ fires first from 0).
        assert graph.code_of(graph.initial) == (0, 0)

    def test_excitation(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        assert graph.excitation(graph.initial) == {"a": "+"}

    def test_implied_values(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        # In the initial state b is stable low: implied value 0.
        assert graph.implied_value(graph.initial, "b") == 0
        # After a+, b is excited to rise: implied value 1.
        ((_, after_a),) = graph.out_edges(graph.initial)
        assert graph.implied_value(after_a, "b") == 1


class TestConcurrent:
    def test_diamond_states(self):
        graph = build_state_graph(parse_g(CONCURRENT))
        # a, x, y, z: cycle with one concurrency diamond in each phase.
        assert graph.num_states == 10
        assert graph.signals == ("a", "x", "y", "z")

    def test_concurrent_transition_count(self):
        graph = build_state_graph(parse_g(CONCURRENT))
        assert graph.concurrent_transition_count() == 2


class TestChoice:
    def test_states(self):
        graph = build_state_graph(parse_g(CHOICE))
        assert graph.num_states == 7
        assert graph.check_deterministic() is None

    def test_initial_enables_both_inputs(self):
        graph = build_state_graph(parse_g(CHOICE))
        assert graph.excitation(graph.initial) == {"a": "+", "b": "+"}


class TestInference:
    def test_values_total(self):
        stg = parse_g(CSC_CONFLICT)
        reach = reachability_graph(stg.net)
        values = infer_signal_values(stg, reach)
        for marking in reach.markings:
            assert set(values[marking]) == set(stg.signals)

    def test_inconsistent_stg_raises(self):
        text = """
.model bad
.inputs a
.outputs b
.graph
a+ b+/1
b+/1 b+/2
b+/2 a-
a- a+
.marking { <a-,a+> }
.end
"""
        with pytest.raises(InconsistentStgError):
            build_state_graph(parse_g(text))

    def test_dead_signal_raises(self):
        text = """
.model deadsig
.inputs a
.outputs b c
.graph
a+ b+
b+ a-
a- b-
b- a+
pdead c+
c+ c-
c- pdead
.marking { <b-,a+> }
.end
"""
        with pytest.raises(InconsistentStgError, match="never fires"):
            build_state_graph(parse_g(text))


class TestDummyContraction:
    TEXT = """
.model withdummy
.inputs a
.outputs b
.dummy eps
.graph
a+ eps
eps b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
"""

    def test_dummies_contracted_by_default(self):
        graph = build_state_graph(parse_g(self.TEXT))
        assert all(label is not EPSILON for _s, label, _t in graph.edges)
        assert graph.num_states == 4

    def test_dummies_kept_on_request(self):
        graph = build_state_graph(
            parse_g(self.TEXT), contract_dummies=False
        )
        assert any(label is EPSILON for _s, label, _t in graph.edges)
        assert graph.num_states == 5
