"""Tests for semi-modularity (persistence) analysis."""

from repro.bench import load_benchmark
from repro.csc import modular_synthesis
from repro.stategraph import build_state_graph
from repro.stategraph.csc import persistence_violations
from repro.stategraph.graph import StateGraph
from repro.stg import parse_g
from repro.runtime.options import SynthesisOptions

from tests.example_stgs import ALL


def test_specifications_are_persistent():
    # Well-formed STG specs never withdraw an output's excitation.
    for text in ALL.values():
        graph = build_state_graph(parse_g(text))
        assert persistence_violations(graph) == []


def test_benchmarks_are_persistent():
    for name in ("nak-pa", "mmu1", "pe-rcv-ifc-fc", "alex-nonfc"):
        graph = build_state_graph(load_benchmark(name))
        assert persistence_violations(graph) == []


def test_expanded_graphs_are_persistent():
    for name in ("vbe-ex1", "nousc-ser", "fifo"):
        graph = build_state_graph(load_benchmark(name))
        result = modular_synthesis(
            graph, options=SynthesisOptions(minimize=False)
        )
        assert persistence_violations(result.expanded) == []


def test_violation_detected():
    # Hand-built graph: b excited in state 0, withdrawn by input a+.
    graph = StateGraph(
        signals=("a", "b"),
        codes=[(0, 0), (1, 0), (1, 1), (0, 1)],
        edges=[
            (0, ("a", "+"), 1),
            (1, ("b", "+"), 2),
            (2, ("a", "-"), 3),
            (3, ("b", "-"), 0),
            # Extra edge making b's excitation non-persistent: from
            # state 1 (b excited) input a- withdraws it back to state 0.
            (1, ("a", "-"), 0),
        ],
        non_inputs=["b"],
    )
    violations = persistence_violations(graph)
    assert (1, 0, "b") in violations


def test_input_choice_is_allowed():
    # Free input choice (a+ vs b+) withdrawing each other is legal.
    graph = StateGraph(
        signals=("a", "b"),
        codes=[(0, 0), (1, 0), (0, 1)],
        edges=[
            (0, ("a", "+"), 1),
            (0, ("b", "+"), 2),
            (1, ("a", "-"), 0),
            (2, ("b", "-"), 0),
        ],
        non_inputs=[],
    )
    assert persistence_violations(graph) == []
