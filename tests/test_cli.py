"""Tests for the ``python -m repro`` command-line driver."""

import pytest

from repro.__main__ import main

from tests.example_stgs import CSC_CONFLICT, HANDSHAKE


@pytest.fixture
def spec(tmp_path):
    path = tmp_path / "spec.g"
    path.write_text(CSC_CONFLICT)
    return str(path)


def test_default_run(spec, capsys):
    assert main([spec]) == 0
    out = capsys.readouterr().out
    assert "csc-ex" in out
    assert "conformance verified" in out
    assert " = " in out  # equations printed


def test_quiet(spec, capsys):
    assert main([spec, "--quiet"]) == 0
    out = capsys.readouterr().out
    assert " = " not in out


def test_methods(spec, capsys):
    for method in ("modular", "direct", "lavagno"):
        assert main([spec, "--method", method, "--quiet"]) == 0
        assert method in capsys.readouterr().out


def test_engines(spec, capsys):
    for engine in ("dpll", "cdcl", "bdd"):
        assert main([spec, "--engine", engine, "--quiet"]) == 0
        assert engine in capsys.readouterr().out


def test_blif_output(spec, tmp_path, capsys):
    out_path = tmp_path / "out.blif"
    assert main([spec, "--blif", str(out_path), "--quiet"]) == 0
    text = out_path.read_text()
    assert text.startswith(".model csc-ex")
    assert ".names" in text


def test_no_verify(tmp_path, capsys):
    path = tmp_path / "hs.g"
    path.write_text(HANDSHAKE)
    assert main([str(path), "--no-verify", "--quiet"]) == 0
    assert "verified" not in capsys.readouterr().out


def test_bad_method_rejected(spec):
    with pytest.raises(SystemExit):
        main([spec, "--method", "quantum"])
