"""Tests for the ``python -m repro`` command-line driver."""

import pytest

from repro.__main__ import main
from repro.runtime import faults

from tests.example_stgs import CSC_CONFLICT, HANDSHAKE


@pytest.fixture
def spec(tmp_path):
    path = tmp_path / "spec.g"
    path.write_text(CSC_CONFLICT)
    return str(path)


def test_default_run(spec, capsys):
    assert main([spec]) == 0
    out = capsys.readouterr().out
    assert "csc-ex" in out
    assert "conformance verified" in out
    assert " = " in out  # equations printed


def test_quiet(spec, capsys):
    assert main([spec, "--quiet"]) == 0
    out = capsys.readouterr().out
    assert " = " not in out


def test_methods(spec, capsys):
    for method in ("modular", "direct", "lavagno"):
        assert main([spec, "--method", method, "--quiet"]) == 0
        assert method in capsys.readouterr().out


def test_engines(spec, capsys):
    for engine in ("dpll", "cdcl", "bdd"):
        assert main([spec, "--engine", engine, "--quiet"]) == 0
        assert engine in capsys.readouterr().out


def test_blif_output(spec, tmp_path, capsys):
    out_path = tmp_path / "out.blif"
    assert main([spec, "--blif", str(out_path), "--quiet"]) == 0
    text = out_path.read_text()
    assert text.startswith(".model csc-ex")
    assert ".names" in text


def test_no_verify(tmp_path, capsys):
    path = tmp_path / "hs.g"
    path.write_text(HANDSHAKE)
    assert main([str(path), "--no-verify", "--quiet"]) == 0
    assert "verified" not in capsys.readouterr().out


def test_bad_method_rejected(spec):
    with pytest.raises(SystemExit):
        main([spec, "--method", "quantum"])


# -- robustness: every failure class exits with a one-line diagnostic ----


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


def test_missing_file_is_exit_1_one_liner(capsys):
    assert main(["does/not/exist.g"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: cannot read")
    assert len(err.strip().splitlines()) == 1


def test_malformed_g_is_exit_1_one_liner(tmp_path, capsys):
    path = tmp_path / "bad.g"
    path.write_text(".model broken\n.inputs a\n.graph\n")
    assert main([str(path)]) == 1
    err = capsys.readouterr().err
    assert "g-format" in err
    assert len(err.strip().splitlines()) == 1


def test_invalid_stg_is_exit_1(tmp_path, capsys):
    # Parses fine but a only ever rises: a validation failure, not a crash.
    path = tmp_path / "inconsistent.g"
    path.write_text(
        ".model broken\n.inputs a\n.outputs b\n.graph\n"
        "a+ b+\nb+ a+\n.marking { <b+,a+> }\n.end\n"
    )
    assert main([str(path)]) == 1
    assert "error:" in capsys.readouterr().err


def test_synthesis_failure_is_exit_1(spec, capsys):
    with faults.injected("module-solve"):
        code = main([spec, "--no-fallback", "--quiet"])
    assert code == 1
    err = capsys.readouterr().err
    assert err.startswith("error: synthesis:")


def test_degraded_run_is_exit_2(spec, capsys):
    with faults.injected("module-solve"):
        code = main([spec, "--quiet"])
    assert code == 2
    captured = capsys.readouterr()
    assert "conformance verified" in captured.out
    assert "degraded" in captured.err


def test_timeout_is_exit_3_with_partial_report(spec, capsys):
    assert main([spec, "--timeout", "0", "--quiet"]) == 3
    err = capsys.readouterr().err
    assert err.startswith("timeout:")


def test_max_states_budget_is_exit_3(spec, capsys):
    assert main([spec, "--max-states", "2", "--quiet"]) == 3
    assert "states" in capsys.readouterr().err


def test_timeout_large_enough_still_succeeds(spec, capsys):
    assert main([spec, "--timeout", "60", "--quiet"]) == 0
    assert "conformance verified" in capsys.readouterr().out


# -- parallel workers and the result cache -------------------------------

def test_parallel_run_matches_serial_output(spec, capsys):
    import re

    def normalised(text):
        # Both runs report their own wall clock; everything else --
        # equations, signal counts, status -- must match exactly.
        return re.sub(r"\d+\.\d+s", "_s", text)

    assert main([spec]) == 0
    serial = capsys.readouterr().out
    assert main([spec, "--jobs", "2"]) == 0
    assert normalised(capsys.readouterr().out) == normalised(serial)


def test_parallel_timeout_is_exit_3_like_serial(spec, capsys):
    # N workers share the parent's absolute deadline (Budget.split), so
    # a parallel run under a blown budget exits 3 exactly like serial.
    assert main([spec, "--jobs", "2", "--timeout", "0", "--quiet"]) == 3
    err = capsys.readouterr().err
    assert err.startswith("timeout:")


def test_parallel_degraded_run_is_exit_2(spec, capsys):
    with faults.injected("module-solve"):
        code = main([spec, "--jobs", "2", "--quiet"])
    assert code == 2
    captured = capsys.readouterr()
    assert "conformance verified" in captured.out
    assert "degraded" in captured.err


def test_warm_cache_run_is_byte_identical(spec, tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main([spec, "--cache-dir", cache]) == 0
    cold = capsys.readouterr().out
    assert main([spec, "--cache-dir", cache]) == 0
    warm = capsys.readouterr().out
    assert warm == cold  # includes the recorded seconds


def test_no_cache_ignores_cache_dir(spec, tmp_path, capsys):
    cache = str(tmp_path / "cache")
    import os

    assert main(
        [spec, "--cache-dir", cache, "--no-cache", "--quiet"]
    ) == 0
    assert not os.path.exists(cache)


def test_worker_crash_run_matches_serial_output(spec, capsys):
    import re

    def normalised(text):
        return re.sub(r"\d+\.\d+s", "_s", text)

    assert main([spec]) == 0
    serial = capsys.readouterr().out
    with faults.injected("worker-crash"):
        code = main([spec, "--jobs", "2", "--retry-backoff", "0"])
    assert code == 0  # the retry rescued it: no degradation, exit 0
    assert normalised(capsys.readouterr().out) == normalised(serial)


def test_zero_retries_rescue_still_exit_0(spec, capsys):
    with faults.injected("worker-crash"):
        code = main([spec, "--jobs", "2", "--retries", "0", "--quiet"])
    assert code == 0
    assert "conformance verified" in capsys.readouterr().out


def test_cache_max_bytes_flag_bounds_the_store(spec, tmp_path, capsys):
    import os

    cache = str(tmp_path / "cache")
    assert main(
        [spec, "--cache-dir", cache, "--cache-max-bytes", "0", "--quiet"]
    ) == 0
    records = [
        name
        for _, _, files in os.walk(cache)
        for name in files
        if name.endswith(".rec")
    ]
    assert records == []  # everything stored was immediately evicted


# -- subcommands and the machine-readable output mode --------------------


def test_json_mode_prints_one_response_document(spec, capsys):
    from repro import api

    assert main([spec, "--json"]) == 0
    out = capsys.readouterr().out
    response = api.from_json(out)
    assert response.status == "ok"
    assert response.model == "csc-ex"
    assert response.verified is True
    assert response.equations  # the narration moved into the document


def test_json_mode_stdout_is_pure_json(spec, tmp_path, capsys):
    import json as json_mod

    out_path = tmp_path / "out.blif"
    assert main([spec, "--json", "--blif", str(out_path)]) == 0
    out = capsys.readouterr().out
    json_mod.loads(out)  # no "wrote ..." chatter mixed in
    assert out_path.exists()


def test_json_mode_timeout_still_emits_document(spec, capsys):
    from repro import api

    assert main([spec, "--json", "--timeout", "0"]) == 3
    captured = capsys.readouterr()
    response = api.from_json(captured.out)
    assert response.status == "timeout"
    assert captured.err.startswith("timeout:")


def test_generate_writes_g_text_to_stdout(capsys):
    from repro.stg import parse_g

    assert main(["generate", "--count", "1", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    stg = parse_g(out)
    assert stg.name == "gen-s6-w2-7"


def test_generate_out_dir_and_stats(tmp_path, capsys):
    import json as json_mod
    import os

    out_dir = str(tmp_path / "corpus")
    code = main([
        "generate", "--count", "3", "--seed", "10",
        "--out-dir", out_dir, "--stats",
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert sorted(os.listdir(out_dir)) == [
        "gen-s6-w2-10.g", "gen-s6-w2-11.g", "gen-s6-w2-12.g",
    ]
    stats = [json_mod.loads(line) for line in captured.err.splitlines()]
    assert [row["seed"] for row in stats] == [10, 11, 12]


def test_generate_rejects_bad_knobs(capsys):
    assert main(["generate", "--signals", "1"]) == 1
    assert "error:" in capsys.readouterr().err


def test_generated_spec_round_trips_through_cli(tmp_path, capsys):
    # generate -> file -> synthesise: the two subsystems compose.
    from repro.stg.generate import generate_stg

    generated = generate_stg(signals=4, width=2, csc_density=1.0, seed=3)
    path = tmp_path / "gen.g"
    path.write_text(generated.g_text)
    assert main([str(path), "--quiet"]) == 0
    assert "conformance verified" in capsys.readouterr().out
