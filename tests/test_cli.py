"""Tests for the ``python -m repro`` command-line driver."""

import pytest

from repro.__main__ import main
from repro.runtime import faults

from tests.example_stgs import CSC_CONFLICT, HANDSHAKE


@pytest.fixture
def spec(tmp_path):
    path = tmp_path / "spec.g"
    path.write_text(CSC_CONFLICT)
    return str(path)


def test_default_run(spec, capsys):
    assert main([spec]) == 0
    out = capsys.readouterr().out
    assert "csc-ex" in out
    assert "conformance verified" in out
    assert " = " in out  # equations printed


def test_quiet(spec, capsys):
    assert main([spec, "--quiet"]) == 0
    out = capsys.readouterr().out
    assert " = " not in out


def test_methods(spec, capsys):
    for method in ("modular", "direct", "lavagno"):
        assert main([spec, "--method", method, "--quiet"]) == 0
        assert method in capsys.readouterr().out


def test_engines(spec, capsys):
    for engine in ("dpll", "cdcl", "bdd"):
        assert main([spec, "--engine", engine, "--quiet"]) == 0
        assert engine in capsys.readouterr().out


def test_blif_output(spec, tmp_path, capsys):
    out_path = tmp_path / "out.blif"
    assert main([spec, "--blif", str(out_path), "--quiet"]) == 0
    text = out_path.read_text()
    assert text.startswith(".model csc-ex")
    assert ".names" in text


def test_no_verify(tmp_path, capsys):
    path = tmp_path / "hs.g"
    path.write_text(HANDSHAKE)
    assert main([str(path), "--no-verify", "--quiet"]) == 0
    assert "verified" not in capsys.readouterr().out


def test_bad_method_rejected(spec):
    with pytest.raises(SystemExit):
        main([spec, "--method", "quantum"])


# -- robustness: every failure class exits with a one-line diagnostic ----


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


def test_missing_file_is_exit_1_one_liner(capsys):
    assert main(["does/not/exist.g"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: cannot read")
    assert len(err.strip().splitlines()) == 1


def test_malformed_g_is_exit_1_one_liner(tmp_path, capsys):
    path = tmp_path / "bad.g"
    path.write_text(".model broken\n.inputs a\n.graph\n")
    assert main([str(path)]) == 1
    err = capsys.readouterr().err
    assert "g-format" in err
    assert len(err.strip().splitlines()) == 1


def test_invalid_stg_is_exit_1(tmp_path, capsys):
    # Parses fine but a only ever rises: a validation failure, not a crash.
    path = tmp_path / "inconsistent.g"
    path.write_text(
        ".model broken\n.inputs a\n.outputs b\n.graph\n"
        "a+ b+\nb+ a+\n.marking { <b+,a+> }\n.end\n"
    )
    assert main([str(path)]) == 1
    assert "error:" in capsys.readouterr().err


def test_synthesis_failure_is_exit_1(spec, capsys):
    with faults.injected("module-solve"):
        code = main([spec, "--no-fallback", "--quiet"])
    assert code == 1
    err = capsys.readouterr().err
    assert err.startswith("error: synthesis:")


def test_degraded_run_is_exit_2(spec, capsys):
    with faults.injected("module-solve"):
        code = main([spec, "--quiet"])
    assert code == 2
    captured = capsys.readouterr()
    assert "conformance verified" in captured.out
    assert "degraded" in captured.err


def test_timeout_is_exit_3_with_partial_report(spec, capsys):
    assert main([spec, "--timeout", "0", "--quiet"]) == 3
    err = capsys.readouterr().err
    assert err.startswith("timeout:")


def test_max_states_budget_is_exit_3(spec, capsys):
    assert main([spec, "--max-states", "2", "--quiet"]) == 3
    assert "states" in capsys.readouterr().err


def test_timeout_large_enough_still_succeeds(spec, capsys):
    assert main([spec, "--timeout", "60", "--quiet"]) == 0
    assert "conformance verified" in capsys.readouterr().out


# -- parallel workers and the result cache -------------------------------

def test_parallel_run_matches_serial_output(spec, capsys):
    import re

    def normalised(text):
        # Both runs report their own wall clock; everything else --
        # equations, signal counts, status -- must match exactly.
        return re.sub(r"\d+\.\d+s", "_s", text)

    assert main([spec]) == 0
    serial = capsys.readouterr().out
    assert main([spec, "--jobs", "2"]) == 0
    assert normalised(capsys.readouterr().out) == normalised(serial)


def test_parallel_timeout_is_exit_3_like_serial(spec, capsys):
    # N workers share the parent's absolute deadline (Budget.split), so
    # a parallel run under a blown budget exits 3 exactly like serial.
    assert main([spec, "--jobs", "2", "--timeout", "0", "--quiet"]) == 3
    err = capsys.readouterr().err
    assert err.startswith("timeout:")


def test_parallel_degraded_run_is_exit_2(spec, capsys):
    with faults.injected("module-solve"):
        code = main([spec, "--jobs", "2", "--quiet"])
    assert code == 2
    captured = capsys.readouterr()
    assert "conformance verified" in captured.out
    assert "degraded" in captured.err


def test_warm_cache_run_is_byte_identical(spec, tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main([spec, "--cache-dir", cache]) == 0
    cold = capsys.readouterr().out
    assert main([spec, "--cache-dir", cache]) == 0
    warm = capsys.readouterr().out
    assert warm == cold  # includes the recorded seconds


def test_no_cache_ignores_cache_dir(spec, tmp_path, capsys):
    cache = str(tmp_path / "cache")
    import os

    assert main(
        [spec, "--cache-dir", cache, "--no-cache", "--quiet"]
    ) == 0
    assert not os.path.exists(cache)


def test_worker_crash_run_matches_serial_output(spec, capsys):
    import re

    def normalised(text):
        return re.sub(r"\d+\.\d+s", "_s", text)

    assert main([spec]) == 0
    serial = capsys.readouterr().out
    with faults.injected("worker-crash"):
        code = main([spec, "--jobs", "2", "--retry-backoff", "0"])
    assert code == 0  # the retry rescued it: no degradation, exit 0
    assert normalised(capsys.readouterr().out) == normalised(serial)


def test_zero_retries_rescue_still_exit_0(spec, capsys):
    with faults.injected("worker-crash"):
        code = main([spec, "--jobs", "2", "--retries", "0", "--quiet"])
    assert code == 0
    assert "conformance verified" in capsys.readouterr().out


def test_cache_max_bytes_flag_bounds_the_store(spec, tmp_path, capsys):
    import os

    cache = str(tmp_path / "cache")
    assert main(
        [spec, "--cache-dir", cache, "--cache-max-bytes", "0", "--quiet"]
    ) == 0
    records = [
        name
        for _, _, files in os.walk(cache)
        for name in files
        if name.endswith(".rec")
    ]
    assert records == []  # everything stored was immediately evicted
