"""Multi-process contention stress for the shared ResultCache.

Four worker processes hammer one cache directory with a mixed
read / write / evict / corrupt workload (``docs/robustness.md``'s
concurrency contract).  The assertions:

* **no crash** -- every worker runs its full schedule and returns;
* **no wrong hit** -- a ``get`` returns ``None`` or exactly the payload
  stored under that key, never another key's record or a torn read;
* **stale accounting** -- deliberately corrupted records surface as
  counted stale heals somewhere, and every worker's ``stale`` tally is
  within its ``misses`` tally (a stale lookup is always also a miss).

The schedule is deterministic per worker (index arithmetic, no RNG), so
a failure reproduces.
"""

import os
from concurrent.futures import ProcessPoolExecutor

from repro.perf import ResultCache

WORKERS = 4
ITERATIONS = 150
KEYS = [ResultCache.key("contention", n) for n in range(6)]


def _hammer(root, worker_id):
    """One worker's deterministic schedule; returns its counter snapshot."""
    cache = ResultCache(root, max_bytes=None)
    wrong_hits = 0
    for i in range(ITERATIONS):
        key = KEYS[(i + worker_id) % len(KEYS)]
        op = (i * 7 + worker_id) % 10
        if op < 3:
            cache.put("module", key, ("payload", key))
        elif op < 7:
            value = cache.get("module", key)
            if value is not None and value != ("payload", key):
                wrong_hits += 1
        elif op < 8:
            # Corrupt the record in place: truncate-then-write races
            # with concurrent readers, exactly the torn/garbage shapes
            # the stale self-heal must absorb.
            path = cache._path("module", key)
            try:
                with open(path, "wb") as handle:
                    handle.write(b"garbage" * (worker_id + 1))
            except OSError:
                pass
        else:
            cache.evict(max_bytes=256)
    stats = cache.stats()
    stats["wrong_hits"] = wrong_hits
    return stats


def test_concurrent_processes_share_one_cache(tmp_path):
    root = str(tmp_path)
    with ProcessPoolExecutor(max_workers=WORKERS) as pool:
        futures = [
            pool.submit(_hammer, root, worker_id)
            for worker_id in range(WORKERS)
        ]
        results = [future.result(timeout=120) for future in futures]

    assert len(results) == WORKERS  # no worker crashed
    assert sum(r["wrong_hits"] for r in results) == 0
    # Corruption definitely happened; someone must have healed and
    # counted it, and nobody can count a stale without a miss.
    assert sum(r["stale"] for r in results) > 0
    for stats in results:
        assert stats["stale"] <= stats["misses"]
    # The store is still consistent after the storm: a fresh reader
    # sees only valid records.
    fresh = ResultCache(root)
    for key in KEYS:
        value = fresh.get("module", key)
        assert value is None or value == ("payload", key)
    # No temp-file litter survived the crashes and races.
    leftovers = [
        name
        for _, _, files in os.walk(root)
        for name in files
        if name.endswith(".tmp")
    ]
    assert leftovers == []
