"""Tests for the incremental projection engine (repro.perf).

The load-bearing property: whatever mix of cache hits, incremental
refinements and from-scratch merges serves a request, the resulting
:class:`~repro.stategraph.quotient.QuotientGraph` must be *observably
identical* to ``quotient(base, hidden)`` computed directly -- same
macro numbering, codes, cover map, blocks and edges.  Everything
downstream (SAT encoding, state-signal propagation, CSC analysis) reads
projections through exactly those observables.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.perf import DEFAULT_CACHE_SIZE, ProjectionCache
from repro.stategraph import build_state_graph, quotient, refine
from repro.stg import parse_g

from tests.example_stgs import CHOICE, CONCURRENT, CSC_CONFLICT


def _graph(text=CONCURRENT):
    return build_state_graph(parse_g(text))


def assert_same_projection(actual, expected):
    """Observable equality of two projections of the same base."""
    assert actual.base is expected.base
    assert actual.hidden == expected.hidden
    assert actual.cover == expected.cover
    assert actual.blocks == expected.blocks
    got, want = actual.graph, expected.graph
    assert got.signals == want.signals
    assert got.non_inputs == want.non_inputs
    assert got.num_states == want.num_states
    assert got.initial == want.initial
    assert list(got.edges) == list(want.edges)
    for state in want.states():
        assert got.code_of(state) == want.code_of(state)
        assert got.excitation(state) == want.excitation(state)
        for signal in want.signals:
            assert actual.implied_values(state, signal) == \
                expected.implied_values(state, signal)


class TestRefine:
    def test_refine_matches_from_scratch(self):
        graph = _graph()
        prior = quotient(graph, ["x"])
        assert_same_projection(
            refine(prior, ["y"]), quotient(graph, ["x", "y"])
        )

    def test_refine_with_no_new_signals_returns_prior(self):
        graph = _graph()
        prior = quotient(graph, ["x"])
        assert refine(prior, []) is prior
        assert refine(prior, ["x"]) is prior

    def test_refine_rejects_unknown_signals(self):
        prior = quotient(_graph(), ["x"])
        with pytest.raises(ValueError):
            refine(prior, ["nope"])

    def test_refine_chain_matches_from_scratch(self):
        graph = _graph()
        step = quotient(graph, [])
        hidden = []
        for signal in ("x", "z", "y"):
            hidden.append(signal)
            step = refine(step, [signal])
            assert_same_projection(step, quotient(graph, hidden))

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_random_hidden_chains_match_from_scratch(self, data):
        text = data.draw(
            st.sampled_from([CONCURRENT, CHOICE, CSC_CONFLICT])
        )
        graph = _graph(text)
        order = data.draw(st.permutations(sorted(graph.signals)))
        cut = data.draw(st.integers(min_value=0, max_value=len(order) - 1))
        cache = ProjectionCache(graph)
        hidden = []
        for signal in order[:cut]:
            hidden.append(signal)
            served = cache.project(hidden)
            assert_same_projection(served, quotient(graph, hidden))
        # Replays of any prefix must hit and return the identical object.
        for k in range(cut + 1):
            again = cache.project(hidden[:k] if k else [])
            assert_same_projection(again, quotient(graph, hidden[:k]))


class TestProjectionCache:
    def test_exact_hit_returns_same_object(self):
        cache = ProjectionCache(_graph())
        first = cache.project(["x"])
        assert cache.project({"x"}) is first
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_superset_requests_are_refines_not_scratch(self):
        cache = ProjectionCache(_graph())
        cache.project([])
        cache.project(["x"])
        cache.project(["x", "y"])
        stats = cache.stats()
        assert stats["misses"] == 3
        # Only the first (empty) projection merged the base graph.
        assert stats["refines"] == 2

    def test_lru_eviction_is_bounded_and_counted(self):
        graph = _graph()
        cache = ProjectionCache(graph, max_entries=2)
        cache.project([])
        cache.project(["x"])
        cache.project(["x", "y"])  # evicts the ε-only root
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        assert frozenset() not in cache
        assert frozenset({"x"}) in cache

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            ProjectionCache(_graph(), max_entries=0)

    def test_seed_adopts_external_projection(self):
        graph = _graph()
        cache = ProjectionCache(graph)
        cache.seed(quotient(graph, ["x"]))
        assert frozenset({"x"}) in cache
        assert cache.project(["x"]).hidden == frozenset({"x"})
        assert cache.stats()["hits"] == 1

    def test_seed_rejects_foreign_base(self):
        cache = ProjectionCache(_graph(CONCURRENT))
        other = quotient(_graph(CHOICE), [])
        with pytest.raises(ValueError):
            cache.seed(other)

    def test_default_bound_applies(self):
        cache = ProjectionCache(_graph())
        assert cache.max_entries == DEFAULT_CACHE_SIZE

    def test_counters_reach_the_tracer(self):
        graph = _graph()
        with obs.tracing() as tracer:
            with obs.span("test"):
                cache = ProjectionCache(graph)
                cache.project([])          # miss, from scratch
                cache.project(["x"])       # miss, refined from the root
                cache.project(["x"])       # hit
        totals = tracer.counter_totals()
        assert totals["proj_cache_misses"] == 2
        assert totals["proj_cache_hits"] == 1
        assert totals["quotients"] == 1
        assert totals["quotient_refines"] == 1
