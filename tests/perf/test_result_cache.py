"""The persistent result cache: store semantics and synthesis wiring.

Two layers under test.  The store itself (:class:`repro.perf.ResultCache`)
must be atomic, self-healing on stale or corrupt records, and honest in
its counters.  The synthesis wiring must make a warm run reproduce the
cold run exactly -- including the recorded wall-clock seconds, which is
what makes warm CLI output byte-identical -- and must refuse to serve or
store results across a change of result-relevant options or code salt.
"""

import os
import pickle

import pytest

from repro.bench import load_benchmark
from repro.csc import modular_synthesis
from repro.perf import (
    CACHE_SALT,
    ResultCache,
    graph_fingerprint,
    options_fingerprint,
)
from repro.runtime.budget import Budget
from repro.runtime.options import SynthesisOptions
from repro.stategraph import build_state_graph
from repro.stg import parse_g

from tests.example_stgs import ALL, CSC_CONFLICT


@pytest.fixture(autouse=True)
def _isolate_from_env_faults():
    # This suite asserts exact hit/miss/stale sequences; a CI-armed
    # cache fault (REPRO_FAULTS, the fault-matrix job) firing inside an
    # assertion would falsify them.  The env-armed points keep their
    # coverage in test_faults.py and the matrix's integration suites.
    from repro.runtime import faults

    faults.clear(env=True)
    yield
    faults.clear()


# -- the store itself -------------------------------------------------------

def test_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    key = ResultCache.key("a", "b")
    assert cache.get("module", key) is None
    assert cache.put("module", key, {"answer": 42})
    assert cache.get("module", key) == {"answer": 42}
    assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)


def test_kinds_are_separate_namespaces(tmp_path):
    cache = ResultCache(tmp_path)
    key = ResultCache.key("shared")
    cache.put("module", key, "m")
    assert cache.get("artifact", key) is None
    assert cache.get("module", key) == "m"


def test_key_is_order_sensitive():
    assert ResultCache.key("a", "b") != ResultCache.key("b", "a")
    assert ResultCache.key("ab") != ResultCache.key("a", "b")


def test_corrupt_record_is_stale_then_healed(tmp_path):
    cache = ResultCache(tmp_path)
    key = ResultCache.key("x")
    cache.put("module", key, "payload")
    path = cache._path("module", key)
    with open(path, "wb") as handle:
        handle.write(b"not a pickle")
    assert cache.get("module", key) is None
    assert cache.stale == 1
    assert not os.path.exists(path)  # self-healed
    # ... and the next lookup is a clean miss, not another stale.
    assert cache.get("module", key) is None
    assert cache.stale == 1
    assert cache.misses == 2


def test_salt_mismatch_is_stale(tmp_path):
    old = ResultCache(tmp_path, salt="repro-result-cache/0")
    key = ResultCache.key("x")
    old.put("module", key, "obsolete")
    fresh = ResultCache(tmp_path)
    assert fresh.get("module", key) is None
    assert fresh.stale == 1
    assert CACHE_SALT != "repro-result-cache/0"


def test_envelope_without_payload_is_stale(tmp_path):
    cache = ResultCache(tmp_path)
    key = ResultCache.key("x")
    path = cache._path("module", key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "wb") as handle:
        pickle.dump({"salt": CACHE_SALT}, handle)
    assert cache.get("module", key) is None
    assert cache.stale == 1


def test_unpicklable_payload_is_swallowed(tmp_path):
    cache = ResultCache(tmp_path)
    key = ResultCache.key("x")
    assert not cache.put("module", key, lambda: None)
    assert cache.stores == 0
    # No half-written record (the temp file was cleaned up too).
    assert cache.get("module", key) is None
    leftovers = [
        name
        for _, _, files in os.walk(tmp_path)
        for name in files
        if name.endswith(".tmp")
    ]
    assert leftovers == []


def test_sharded_record_layout(tmp_path):
    cache = ResultCache(tmp_path)
    key = ResultCache.key("x")
    cache.put("module", key, "payload")
    path = cache._path("module", key)
    # Two-level layout: <root>/<kind>/<first-two-hex>/<key>.rec
    assert path == os.path.join(
        str(tmp_path), "module", key[:2], key + ".rec"
    )
    assert os.path.exists(path)


def test_stale_removal_tolerates_concurrent_deleter(tmp_path, monkeypatch):
    # Another process healing the same stale record first must count as
    # stale here too -- the record is gone either way.
    cache = ResultCache(tmp_path)
    key = ResultCache.key("x")
    cache.put("module", key, "payload")
    path = cache._path("module", key)
    with open(path, "wb") as handle:
        handle.write(b"not a pickle")

    real_remove = os.remove

    def racing_remove(target, *args, **kwargs):
        real_remove(target)  # the concurrent deleter wins ...
        return real_remove(target)  # ... and ours sees FileNotFoundError

    monkeypatch.setattr(os, "remove", racing_remove)
    assert cache.get("module", key) is None
    assert cache.stale == 1
    assert not os.path.exists(path)


def test_stale_removal_spares_concurrently_rewritten_record(tmp_path):
    # The self-heal compares inodes before deleting: if a writer already
    # replaced the corrupt record with a good one, the good record stays.
    cache = ResultCache(tmp_path)
    key = ResultCache.key("x")
    cache.put("module", key, "good")
    path = cache._path("module", key)
    good_inode = os.stat(path).st_ino
    corrupt = path + ".corrupt"
    with open(corrupt, "wb") as handle:
        handle.write(b"not a pickle")
    corrupt_inode = os.stat(corrupt).st_ino
    assert corrupt_inode != good_inode
    # Simulate "read the corrupt record, then a writer replaced it":
    cache._discard_stale(path, corrupt_inode)
    assert os.path.exists(path)
    assert cache.get("module", key) == "good"


def test_eviction_drops_lru_records(tmp_path):
    cache = ResultCache(tmp_path, max_bytes=0)
    keys = [ResultCache.key(str(n)) for n in range(3)]
    # max_bytes=0: every put immediately evicts everything, oldest first.
    for key in keys:
        cache.put("module", key, "x" * 64)
    assert cache.evictions == 3
    assert all(cache.get("module", key) is None for key in keys)


def test_eviction_keeps_recently_used_records(tmp_path):
    cache = ResultCache(tmp_path)
    old_key, new_key = ResultCache.key("old"), ResultCache.key("new")
    cache.put("module", old_key, "x" * 256)
    path = cache._path("module", old_key)
    os.utime(path, (1, 1))  # age the first record far into the past
    cache.put("module", new_key, "x" * 256)
    size = os.path.getsize(cache._path("module", new_key))
    assert cache.evict(max_bytes=size) == 1
    assert cache.get("module", old_key) is None
    assert cache.get("module", new_key) is not None


def test_hit_touches_record_for_lru(tmp_path):
    cache = ResultCache(tmp_path)
    key = ResultCache.key("x")
    cache.put("module", key, "payload")
    path = cache._path("module", key)
    os.utime(path, (1, 1))
    cache.get("module", key)
    info = os.stat(path)
    assert max(info.st_atime, info.st_mtime) > 1


def test_unbounded_evict_is_noop(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("module", ResultCache.key("x"), "payload")
    assert cache.evict() == 0
    assert cache.evictions == 0


def test_max_bytes_validation(tmp_path):
    with pytest.raises(ValueError):
        ResultCache(tmp_path, max_bytes=-1)


def test_io_error_fault_on_get_is_counted_miss(tmp_path):
    from repro.runtime import faults

    cache = ResultCache(tmp_path)
    key = ResultCache.key("x")
    cache.put("module", key, "payload")
    with faults.injected("cache-io-error", match=lambda d: d == "get"):
        assert cache.get("module", key) is None
    assert cache.io_errors == 1
    assert cache.misses == 1
    assert cache.stale == 0  # an I/O failure is not a stale record
    assert cache.get("module", key) == "payload"  # transient, not healed


def test_io_error_fault_on_put_skips_store(tmp_path):
    from repro.runtime import faults

    cache = ResultCache(tmp_path)
    key = ResultCache.key("x")
    with faults.injected("cache-io-error", match=lambda d: d == "put"):
        assert not cache.put("module", key, "payload")
    assert cache.io_errors == 1
    assert cache.stores == 0
    assert cache.get("module", key) is None


def test_corrupt_record_fault_drives_self_heal(tmp_path):
    from repro.runtime import faults

    cache = ResultCache(tmp_path)
    key = ResultCache.key("x")
    cache.put("module", key, "payload")
    path = cache._path("module", key)
    with faults.injected("cache-corrupt-record"):
        assert cache.get("module", key) is None
    assert cache.stale == 1
    assert not os.path.exists(path)  # healed a byte-good record


def test_stats_snapshot(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.stats()["hit_rate"] is None
    key = ResultCache.key("x")
    cache.get("module", key)
    cache.put("module", key, "payload")
    cache.get("module", key)
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["stores"] == 1
    assert stats["hit_rate"] == 0.5


# -- fingerprints -----------------------------------------------------------

def test_options_fingerprint_ignores_scheduling_fields(tmp_path):
    base = options_fingerprint(SynthesisOptions(minimize=True))
    assert base == options_fingerprint(SynthesisOptions(
        minimize=True, jobs=4, cache_dir=str(tmp_path),
        budget=Budget(max_seconds=100),
    ))


def test_options_fingerprint_tracks_result_fields():
    base = options_fingerprint(SynthesisOptions(minimize=True))
    assert base != options_fingerprint(SynthesisOptions(minimize=False))
    assert base != options_fingerprint(SynthesisOptions(
        minimize=True, engine="bdd"
    ))
    assert base != options_fingerprint(
        SynthesisOptions(minimize=True), method="direct"
    )
    assert base != options_fingerprint(SynthesisOptions(
        minimize=True, sat_mode="oneshot"
    ))


def test_salt_bumped_for_incremental_sat():
    # Entries written before the incremental SAT core may decode
    # differently (different but equally valid models), so the salt had
    # to move past every pre-incremental version.
    old = int("repro-result-cache/1".rsplit("/", 1)[1])
    assert int(CACHE_SALT.rsplit("/", 1)[1]) > old


def test_graph_fingerprint_is_structural():
    stg = parse_g(CSC_CONFLICT)
    one = graph_fingerprint(build_state_graph(stg))
    two = graph_fingerprint(build_state_graph(parse_g(CSC_CONFLICT)))
    assert one == two
    other = graph_fingerprint(build_state_graph(parse_g(ALL["handshake"])))
    assert one != other


# -- synthesis wiring -------------------------------------------------------

def _observable(result):
    return {
        "names": result.assignment.names,
        "values": result.assignment.values,
        "covers": {s: str(c) for s, c in sorted(result.covers.items())},
        "final_states": result.final_states,
        "final_signals": result.final_signals,
        "literals": result.literals,
        "modules": [
            (m.output, m.status, m.detail) for m in result.report.modules
        ],
        "seconds": result.seconds,
    }


@pytest.mark.parametrize("sat_mode", ["incremental", "oneshot"])
def test_warm_run_reproduces_cold_run(tmp_path, sat_mode):
    graph = build_state_graph(load_benchmark("alloc-outbound"))
    options = SynthesisOptions(
        minimize=True, cache_dir=str(tmp_path), sat_mode=sat_mode
    )
    cold = modular_synthesis(graph, options=options)
    warm = modular_synthesis(graph, options=options)
    # Identical to the ``seconds`` field: the artifact stores the cold
    # run's timing, which is what keeps warm CLI stdout byte-identical.
    assert _observable(cold) == _observable(warm)


def test_warm_run_from_stg_input(tmp_path):
    stg = parse_g(CSC_CONFLICT)
    options = SynthesisOptions(minimize=True, cache_dir=str(tmp_path))
    cold = modular_synthesis(stg, options=options)
    warm = modular_synthesis(stg, options=options)
    assert _observable(cold) == _observable(warm)


def test_cache_matches_uncached_run(tmp_path):
    graph = build_state_graph(load_benchmark("sbuf-read-ctl"))
    plain = modular_synthesis(graph, options=SynthesisOptions(minimize=True))
    options = SynthesisOptions(minimize=True, cache_dir=str(tmp_path))
    modular_synthesis(graph, options=options)
    warm = modular_synthesis(graph, options=options)
    observed = _observable(warm)
    observed.pop("seconds")
    expected = _observable(plain)
    expected.pop("seconds")
    assert observed == expected


def test_different_options_do_not_share_entries(tmp_path):
    stg = parse_g(CSC_CONFLICT)
    hybrid = SynthesisOptions(
        minimize=True, cache_dir=str(tmp_path), engine="hybrid"
    )
    bdd = SynthesisOptions(
        minimize=True, cache_dir=str(tmp_path), engine="bdd"
    )
    modular_synthesis(stg, options=hybrid)
    result = modular_synthesis(stg, options=bdd)
    # A fresh engine=bdd run against the hybrid-primed cache must not
    # have adopted the hybrid artifact: its seconds are its own.
    rerun = modular_synthesis(stg, options=bdd)
    assert _observable(result) == _observable(rerun)


def test_timed_budget_runs_are_not_stored(tmp_path):
    stg = parse_g(CSC_CONFLICT)

    def run(budget):
        return modular_synthesis(stg, options=SynthesisOptions(
            minimize=True, cache_dir=str(tmp_path), budget=budget,
        ))

    run(Budget(max_seconds=3600))
    stored = sum(len(files) for _, _, files in os.walk(tmp_path))
    assert stored == 0  # a timed run may have clipped sub-limits
    # A state-cap-only budget is safe to cache (the CLI default).
    run(Budget(max_states=10_000))
    stored = sum(len(files) for _, _, files in os.walk(tmp_path))
    assert stored > 0
