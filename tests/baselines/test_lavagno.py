"""Tests for the Lavagno/Moon-style sequential baseline."""

from repro.baselines import lavagno_synthesis
from repro.stategraph import build_state_graph, csc_conflicts
from repro.stg import parse_g
from repro.runtime.options import SynthesisOptions

from tests.example_stgs import ALL, CSC_CONFLICT, HANDSHAKE


class TestLavagno:
    def test_all_examples_synthesise(self):
        for text in ALL.values():
            result = lavagno_synthesis(parse_g(text))
            assert csc_conflicts(result.expanded) == []

    def test_clean_graph_untouched(self):
        result = lavagno_synthesis(parse_g(HANDSHAKE))
        assert result.state_signals == 0
        assert result.rounds == []

    def test_conflict_resolved_sequentially(self):
        result = lavagno_synthesis(parse_g(CSC_CONFLICT))
        assert result.state_signals >= 1
        assert result.assignment.names[0].startswith("lm")
        assert result.rounds  # at least one insertion round

    def test_counts_and_area(self):
        result = lavagno_synthesis(parse_g(CSC_CONFLICT))
        assert result.final_signals == result.initial_signals + result.state_signals
        assert result.final_states >= result.initial_states
        assert result.literals == sum(
            c.literals for c in result.covers.values()
        )

    def test_accepts_prebuilt_graph(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        result = lavagno_synthesis(
            graph, options=SynthesisOptions(minimize=False)
        )
        assert result.graph is graph
        assert result.covers is None

    def test_repr(self):
        result = lavagno_synthesis(
            parse_g(CSC_CONFLICT), options=SynthesisOptions(minimize=False)
        )
        assert "LavagnoResult" in repr(result)
