"""repro.api: the one serialization for service, CLI --json, and replay."""

import json

import pytest

import repro
from repro.api import (
    API_SCHEMA,
    ApiError,
    SynthesisRequest,
    SynthesisResponse,
    from_json,
    response_from_report,
    to_json,
    to_json_bytes,
)

from tests.example_stgs import CSC_CONFLICT, HANDSHAKE


class TestSynthesisRequest:
    def test_defaults(self):
        request = SynthesisRequest(g_text=HANDSHAKE)
        assert request.method == "modular"
        assert request.engine == "hybrid"
        assert request.timeout_seconds is None

    def test_validation(self):
        with pytest.raises(ApiError, match="g_text"):
            SynthesisRequest(g_text="")
        with pytest.raises(ApiError, match="method"):
            SynthesisRequest(g_text=HANDSHAKE, method="quantum")
        with pytest.raises(ApiError, match="engine"):
            SynthesisRequest(g_text=HANDSHAKE, engine="warp")
        with pytest.raises(ApiError, match="sat_mode"):
            SynthesisRequest(g_text=HANDSHAKE, sat_mode="warm")
        with pytest.raises(ApiError, match="timeout_seconds"):
            SynthesisRequest(g_text=HANDSHAKE, timeout_seconds=-1)

    def test_round_trip(self):
        request = SynthesisRequest(
            g_text=CSC_CONFLICT, method="direct", minimize=False,
            timeout_seconds=5.0,
        )
        again = from_json(to_json(request))
        assert again == request

    def test_round_trip_through_text(self):
        request = SynthesisRequest(g_text=HANDSHAKE)
        text = json.dumps(to_json(request))
        assert from_json(text) == request

    def test_to_options_maps_knobs(self):
        request = SynthesisRequest(
            g_text=HANDSHAKE, engine="dpll", minimize=False,
            timeout_seconds=9.0,
        )
        options = request.to_options(jobs=2)
        assert options.engine == "dpll"
        assert options.minimize is False
        assert options.jobs == 2
        assert options.budget.max_seconds == 9.0
        assert SynthesisRequest(g_text=HANDSHAKE).to_options().budget is None

    def test_fingerprint_ignores_formatting(self):
        spaced = HANDSHAKE.replace("\n", "\n\n") + "# trailing comment\n"
        a = SynthesisRequest(g_text=HANDSHAKE).fingerprint()
        b = SynthesisRequest(g_text=spaced).fingerprint()
        assert a == b

    def test_fingerprint_tracks_knobs_and_content(self):
        base = SynthesisRequest(g_text=HANDSHAKE).fingerprint()
        assert base != SynthesisRequest(g_text=CSC_CONFLICT).fingerprint()
        assert base != SynthesisRequest(
            g_text=HANDSHAKE, engine="dpll"
        ).fingerprint()
        assert base != SynthesisRequest(
            g_text=HANDSHAKE, timeout_seconds=1.0
        ).fingerprint()


class TestSynthesisResponse:
    def _response(self, **overrides):
        fields = dict(
            model="csc-ex", method="modular", engine="hybrid",
            status="ok", exit_code=0, initial_states=8, final_states=16,
            initial_signals=3, final_signals=4,
            state_signals=("csc0",), literals=12, seconds=0.25,
            equations=("b = a",), modules=(("b", "ok"), ("c", "ok")),
            counters={"modules_ok": 2}, verified=True, cache="miss",
        )
        fields.update(overrides)
        return SynthesisResponse(**fields)

    def test_round_trip(self):
        response = self._response()
        again = from_json(to_json(response))
        assert again == response

    def test_cache_tier_validated(self):
        with pytest.raises(ApiError, match="cache"):
            self._response(cache="warm")

    def test_counters_normalised_sorted(self):
        response = self._response(counters={"b": 2, "a": 1})
        assert response.counters == (("a", 1), ("b", 2))
        assert to_json(response)["counters"] == {"a": 1, "b": 2}

    def test_canonical_bytes_stable(self):
        response = self._response()
        assert to_json_bytes(response) == to_json_bytes(self._response())
        evolved = response.evolve(cache="hit")
        assert to_json_bytes(evolved) != to_json_bytes(response)

    def test_ok_property(self):
        assert self._response(status="ok").ok
        assert self._response(status="degraded", exit_code=2).ok
        assert not self._response(status="error", exit_code=1).ok


class TestFromJsonValidation:
    def test_wrong_schema_rejected(self):
        document = to_json(SynthesisRequest(g_text=HANDSHAKE))
        document["schema"] = "repro-api/0"
        with pytest.raises(ApiError, match="schema"):
            from_json(document)

    def test_unknown_kind_rejected(self):
        document = to_json(SynthesisRequest(g_text=HANDSHAKE))
        document["kind"] = "query"
        with pytest.raises(ApiError, match="kind"):
            from_json(document)

    def test_non_json_text_rejected(self):
        with pytest.raises(ApiError, match="JSON"):
            from_json("{nope")

    def test_unknown_field_rejected(self):
        document = to_json(SynthesisRequest(g_text=HANDSHAKE))
        document["bogus"] = 1
        with pytest.raises(ApiError, match="malformed"):
            from_json(document)


class TestResponseFromReport:
    def test_ok_run(self):
        report = repro.synthesize(CSC_CONFLICT)
        response = response_from_report(
            report, model="csc-ex", verified=True, cache="off"
        )
        assert response.status == "ok"
        assert response.exit_code == 0
        assert response.model == "csc-ex"
        assert response.final_signals == response.initial_signals + 1
        assert response.state_signals
        assert response.equations
        assert dict(response.counters)["modules_ok"] == 2
        assert ("b", "ok") in response.modules
        # The document round-trips through the canonical encoding.
        assert from_json(to_json_bytes(response)) == response

    def test_error_run(self):
        report = repro.synthesize(
            CSC_CONFLICT,
            options=repro.SynthesisOptions(budget=_expired_budget()),
        )
        response = response_from_report(report, model="csc-ex")
        assert response.status == "timeout"
        assert response.exit_code == 3
        assert response.error
        assert response.initial_states is None

    def test_schema_tag_present(self):
        report = repro.synthesize(HANDSHAKE)
        document = to_json(response_from_report(report, model="handshake"))
        assert document["schema"] == API_SCHEMA
        assert document["kind"] == "response"


def _expired_budget():
    from repro.runtime.budget import Budget

    return Budget(max_seconds=0.0)
