"""Shared example STGs used across the test suite."""

# A clean two-signal handshake: no USC pair, no CSC conflict.
HANDSHAKE = """
.model handshake
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
"""

# Classic minimal CSC conflict: the state before a+ and the state before
# c+ both have code (a,b,c) = 000, but only the latter excites output c.
CSC_CONFLICT = """
.model csc-ex
.inputs a
.outputs b c
.graph
a+ b+
b+ a-
a- b-
b- c+
c+ c-
c- a+
.marking { <c-,a+> }
.end
"""

# Marked-graph concurrency: a+ forks x and y, which join at z.
CONCURRENT = """
.model concurrent
.inputs a
.outputs x y z
.graph
a+ x+ y+
x+ z+
y+ z+
z+ a-
a- x- y-
x- z-
y- z-
z- a+
.marking { <z-,a+> }
.end
"""

# Free choice between inputs a and b; the two branches share code 001
# after the input falls (a USC pair that is NOT a CSC conflict).
CHOICE = """
.model choice
.inputs a b
.outputs c
.graph
p0 a+ b+
a+ c+/1
b+ c+/2
c+/1 a-
c+/2 b-
a- c-/1
b- c-/2
c-/1 p0
c-/2 p0
.marking { p0 }
.end
"""

ALL = {
    "handshake": HANDSHAKE,
    "csc-ex": CSC_CONFLICT,
    "concurrent": CONCURRENT,
    "choice": CHOICE,
}
