"""Shared example STGs and generated corpora used across the test suite.

Three tiers of shared specimens:

* the four hand-written examples (``HANDSHAKE`` .. ``CHOICE``, in
  ``ALL``) -- minimal circuits with known properties;
* :func:`generated_corpus` -- a fixed-seed slice of
  :func:`repro.stg.generate.generate_stg` output (deterministic,
  memoised, small enough for tier-1 budgets) reused by the
  differential, verification and mutation suites;
* the Hypothesis strategies :func:`controller` /
  :func:`choice_controller` (moved here from ``test_fuzz_synthesis``)
  plus the :func:`well_formed` filter they pair with.
"""

import functools

from hypothesis import strategies as st

# A clean two-signal handshake: no USC pair, no CSC conflict.
HANDSHAKE = """
.model handshake
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
"""

# Classic minimal CSC conflict: the state before a+ and the state before
# c+ both have code (a,b,c) = 000, but only the latter excites output c.
CSC_CONFLICT = """
.model csc-ex
.inputs a
.outputs b c
.graph
a+ b+
b+ a-
a- b-
b- c+
c+ c-
c- a+
.marking { <c-,a+> }
.end
"""

# Marked-graph concurrency: a+ forks x and y, which join at z.
CONCURRENT = """
.model concurrent
.inputs a
.outputs x y z
.graph
a+ x+ y+
x+ z+
y+ z+
z+ a-
a- x- y-
x- z-
y- z-
z- a+
.marking { <z-,a+> }
.end
"""

# Free choice between inputs a and b; the two branches share code 001
# after the input falls (a USC pair that is NOT a CSC conflict).
CHOICE = """
.model choice
.inputs a b
.outputs c
.graph
p0 a+ b+
a+ c+/1
b+ c+/2
c+/1 a-
c+/2 b-
a- c-/1
b- c-/2
c-/1 p0
c-/2 p0
.marking { p0 }
.end
"""

ALL = {
    "handshake": HANDSHAKE,
    "csc-ex": CSC_CONFLICT,
    "concurrent": CONCURRENT,
    "choice": CHOICE,
}


# -- seeded generated corpus -------------------------------------------------

#: Fixed generator knobs for the shared corpus: a spread over signal
#: count, concurrency width and CSC-conflict density, small enough that
#: every method synthesises each circuit inside the tier-1 budget.
GENERATED_SPECS = (
    {"signals": 4, "width": 1, "csc_density": 0.0, "seed": 11},
    {"signals": 5, "width": 2, "csc_density": 0.5, "seed": 23},
    {"signals": 6, "width": 2, "csc_density": 1.0, "seed": 37},
    {"signals": 6, "width": 3, "csc_density": 0.25, "seed": 49},
)


@functools.lru_cache(maxsize=1)
def generated_corpus():
    """The shared :class:`~repro.stg.generate.GeneratedStg` tuple.

    Deterministic (fixed seeds) and memoised, so every suite sees the
    same circuits without regenerating them per test.
    """
    from repro.stg.generate import generate_stg

    return tuple(generate_stg(**spec) for spec in GENERATED_SPECS)


# -- Hypothesis strategies ---------------------------------------------------


def well_formed(text):
    """Parse and validate generated ``.g`` text; ``None`` when the
    random combination came out inconsistent (the caller skips it)."""
    from repro.stg import parse_g, validate_stg

    try:
        stg = parse_g(text)
        validate_stg(stg, require_live=True)
        return stg
    except Exception:
        return None


@st.composite
def controller(draw):
    """A random phase-cycle controller specification."""
    from repro.bench.generators import Par, build_g

    num_branches = draw(st.integers(min_value=1, max_value=2))
    rising_branches = []
    falling_branches = []
    inputs = {"r"}
    outputs = {"a", "e"}
    for index in range(1, num_branches + 1):
        kind = draw(st.sampled_from(["half", "open", "pulse"]))
        d, q = f"d{index}", f"q{index}"
        outputs.add(q)
        if kind == "half":
            inputs.add(d)
            rising_branches.append([f"{d}+", f"{q}+"])
            falling_branches.append([f"{d}-", f"{q}-"])
        elif kind == "open":
            inputs.add(d)
            rising_branches.append(
                [f"{d}+", f"{q}+", f"{d}-", f"{q}-", f"{d}+", f"{q}+"]
            )
            falling_branches.append([f"{d}-", f"{q}-"])
        else:
            rising_branches.append([f"{q}+"])
            falling_branches.append([f"{q}-"])

    def phase(branches):
        if len(branches) == 1:
            return list(branches[0])
        return [Par(*branches)]

    echo_first = draw(st.booleans())
    tail = ["a-", "e+", "e-"] if echo_first else ["e+", "a-", "e-"]
    cycle = (
        ["r+"] + phase(rising_branches) + ["a+", "r-"]
        + phase(falling_branches) + tail
    )
    return build_g(
        "fuzz",
        inputs=sorted(inputs),
        outputs=sorted(outputs),
        cycle=cycle,
    )


@st.composite
def choice_controller(draw):
    """A random controller with an environment-resolved free choice."""
    from repro.bench.generators import Choice, build_g

    # Both alternatives are input-led and leave every signal back at its
    # entry value except d1/q1, which both alternatives complete.
    alt1 = ["d1+", "q1+"]
    alt2_prefix = draw(
        st.sampled_from([["x+", "x-"], ["x+", "q2+", "x-", "q2-"]])
    )
    alt2 = alt2_prefix + ["d1+", "q1+"]
    echo = draw(st.booleans())
    tail = ["e+", "e-"] if echo else ["e+", "a-", "e-"]
    cycle = (
        ["r+", Choice(alt1, alt2), "a+", "r-", "d1-", "q1-"]
        + (["a-"] if echo else [])
        + tail
    )
    outputs = {"a", "e", "q1"}
    if "q2+" in alt2:
        outputs.add("q2")
    return build_g(
        "fuzz-choice",
        inputs=["d1", "r", "x"],
        outputs=sorted(outputs),
        cycle=cycle,
    )
