"""Unit tests for cubes and covers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic.cover import DASH, Cover, Cube


class TestCubeBasics:
    def test_parse_and_str(self):
        assert str(Cube.parse("1-0")) == "1-0"

    def test_bad_character(self):
        with pytest.raises(ValueError):
            Cube.parse("1x0")

    def test_bad_entry(self):
        with pytest.raises(ValueError):
            Cube([0, 3])

    def test_immutable(self):
        cube = Cube.parse("1-")
        with pytest.raises(AttributeError):
            cube.positions = (0, 0)

    def test_literals(self):
        assert Cube.parse("1-0").literals == 2
        assert Cube.full(4).literals == 0

    def test_size(self):
        assert Cube.parse("1-0").size() == 2
        assert Cube.full(3).size() == 8

    def test_minterms(self):
        assert sorted(Cube.parse("1-").minterms()) == [(1, 0), (1, 1)]

    def test_equality_and_hash(self):
        assert Cube.parse("1-") == Cube.parse("1-")
        assert hash(Cube.parse("1-")) == hash(Cube.parse("1-"))


class TestCubeAlgebra:
    def test_contains_minterm(self):
        cube = Cube.parse("1-0")
        assert cube.contains_minterm((1, 0, 0))
        assert cube.contains_minterm((1, 1, 0))
        assert not cube.contains_minterm((0, 0, 0))

    def test_covers(self):
        assert Cube.parse("1-").covers(Cube.parse("11"))
        assert not Cube.parse("11").covers(Cube.parse("1-"))

    def test_intersects(self):
        assert Cube.parse("1-").intersects(Cube.parse("-0"))
        assert not Cube.parse("1-").intersects(Cube.parse("0-"))

    def test_intersection(self):
        assert Cube.parse("1-").intersection(Cube.parse("-0")) == Cube.parse(
            "10"
        )
        assert Cube.parse("1-").intersection(Cube.parse("0-")) is None

    def test_raised_and_bound(self):
        assert Cube.parse("10").raised(1) == Cube.parse("1-")
        assert Cube.parse("1-").bound(1, 0) == Cube.parse("10")

    def test_distance(self):
        assert Cube.parse("10").distance(Cube.parse("01")) == 2
        assert Cube.parse("1-").distance(Cube.parse("-0")) == 0


class TestCover:
    def test_append_checks_width(self):
        cover = Cover(2)
        with pytest.raises(ValueError):
            cover.append(Cube.parse("1-0"))

    def test_from_strings(self):
        cover = Cover.from_strings(2, ["1-", "-1"])
        assert len(cover) == 2
        assert cover.literals == 2

    def test_evaluate(self):
        cover = Cover.from_strings(2, ["1-"])
        assert cover.evaluate((1, 0)) == 1
        assert cover.evaluate((0, 0)) == 0

    def test_without(self):
        cover = Cover.from_strings(2, ["1-", "-1"])
        assert len(cover.without(0)) == 1

    def test_equality_is_set_based(self):
        assert Cover.from_strings(2, ["1-", "-1"]) == Cover.from_strings(
            2, ["-1", "1-"]
        )


bits3 = st.tuples(*(st.integers(0, 1) for _ in range(3)))


@given(bits3, st.lists(st.integers(0, 2), min_size=3, max_size=3))
def test_cover_relation_respects_minterms(minterm, positions):
    cube = Cube(positions)
    full = Cube.from_minterm(minterm)
    if cube.covers(full):
        assert cube.contains_minterm(minterm)


@given(
    st.lists(st.integers(0, 2), min_size=3, max_size=3),
    st.lists(st.integers(0, 2), min_size=3, max_size=3),
)
def test_intersection_consistent_with_intersects(pa, pb):
    a, b = Cube(pa), Cube(pb)
    result = a.intersection(b)
    assert (result is not None) == a.intersects(b)
    if result is not None:
        for m in result.minterms():
            assert a.contains_minterm(m) and b.contains_minterm(m)
