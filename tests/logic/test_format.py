"""Unit tests for cover/equation rendering."""

import pytest

from repro.logic import cover_to_expression, cube_to_expression, equations
from repro.logic.cover import Cover, Cube


def test_cube_expression():
    assert cube_to_expression(Cube.parse("1-0"), ["a", "b", "c"]) == "a & !c"


def test_universal_cube_is_one():
    assert cube_to_expression(Cube.full(3), ["a", "b", "c"]) == "1"


def test_name_count_checked():
    with pytest.raises(ValueError):
        cube_to_expression(Cube.parse("1-"), ["a"])


def test_cover_expression():
    cover = Cover.from_strings(2, ["1-", "01"])
    assert cover_to_expression(cover, ["a", "b"]) == "a | !a & b"


def test_empty_cover_is_zero():
    assert cover_to_expression(Cover(2), ["a", "b"]) == "0"


def test_equations_sorted_by_signal():
    covers = {
        "z": Cover.from_strings(2, ["1-"]),
        "a": Cover.from_strings(2, ["-1"]),
    }
    lines = equations(covers, ("x", "y"))
    assert lines == ["a = y", "z = x"]
