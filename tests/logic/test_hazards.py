"""Unit tests for static hazard detection."""

from repro.logic.cover import Cover, Cube
from repro.logic.hazards import hazard_free_patch, static_hazards


def test_no_hazard_single_cube():
    cover = Cover.from_strings(2, ["1-"])
    onset = [(1, 0), (1, 1)]
    assert static_hazards(cover, onset) == []


def test_classic_two_cube_hazard():
    # f = ab + a'c: transition abc 111 -> 011 crosses the cube boundary.
    cover = Cover.from_strings(3, ["11-", "0-1"])
    onset = [(1, 1, 0), (1, 1, 1), (0, 1, 1), (0, 0, 1)]
    hazards = static_hazards(cover, onset)
    assert ((0, 1, 1), (1, 1, 1)) in hazards or (
        (1, 1, 1), (0, 1, 1)
    ) in hazards


def test_patch_covers_hazard_pair():
    cover = Cover.from_strings(3, ["11-", "0-1"])
    onset = [(1, 1, 0), (1, 1, 1), (0, 1, 1), (0, 0, 1)]
    hazards = static_hazards(cover, onset)
    patches = hazard_free_patch(cover, hazards)
    for a, b in hazards:
        assert any(
            p.contains_minterm(a) and p.contains_minterm(b) for p in patches
        )
    # Adding the patches removes the hazards.
    for patch in patches:
        cover.append(patch)
    assert static_hazards(cover, onset) == []


def test_non_adjacent_pairs_ignored():
    cover = Cover.from_strings(2, ["11", "00"])
    onset = [(1, 1), (0, 0)]  # Hamming distance 2: not a SIC pair
    assert static_hazards(cover, onset) == []
