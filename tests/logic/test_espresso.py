"""Unit and property tests for the espresso-like minimizer."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.espresso import espresso, verify_cover


def all_minterms(n):
    return list(itertools.product([0, 1], repeat=n))


class TestKnownFunctions:
    def test_empty_onset(self):
        cover = espresso([], [(0, 0), (1, 1)], 2)
        assert len(cover) == 0

    def test_constant_one(self):
        cover = espresso(all_minterms(2), [], 2)
        assert len(cover) == 1
        assert cover.literals == 0  # the universal cube

    def test_single_minterm_with_dc_everywhere(self):
        cover = espresso([(1, 1)], [], 2)
        assert cover.literals == 0

    def test_and_function(self):
        onset = [(1, 1)]
        offset = [(0, 0), (0, 1), (1, 0)]
        cover = espresso(onset, offset, 2)
        assert cover.literals == 2
        assert verify_cover(cover, onset, offset) == []

    def test_or_function(self):
        onset = [(0, 1), (1, 0), (1, 1)]
        offset = [(0, 0)]
        cover = espresso(onset, offset, 2)
        assert cover.literals == 2  # x + y
        assert len(cover) == 2

    def test_xor_cannot_be_merged(self):
        onset = [(0, 1), (1, 0)]
        offset = [(0, 0), (1, 1)]
        cover = espresso(onset, offset, 2)
        assert cover.literals == 4
        assert verify_cover(cover, onset, offset) == []

    def test_dont_cares_exploited(self):
        # f = 1 on 11, 0 on 00, DC on the rest: one literal suffices.
        cover = espresso([(1, 1)], [(0, 0)], 2)
        assert cover.literals == 1

    def test_classic_three_variable(self):
        # f = a'b + ab' with c as don't care input everywhere.
        onset = [(0, 1, c) for c in (0, 1)] + [(1, 0, c) for c in (0, 1)]
        offset = [(0, 0, c) for c in (0, 1)] + [(1, 1, c) for c in (0, 1)]
        cover = espresso(onset, offset, 3)
        assert cover.literals == 4
        assert all(cube.literals == 2 for cube in cover)

    def test_overlapping_sets_rejected(self):
        with pytest.raises(ValueError):
            espresso([(1, 1)], [(1, 1)], 2)

    def test_bad_minterm_rejected(self):
        with pytest.raises(ValueError):
            espresso([(1, 2)], [], 2)
        with pytest.raises(ValueError):
            espresso([(1,)], [], 2)


class TestPrimality:
    def test_cubes_are_prime(self):
        # No cube can be expanded without hitting the OFF-set.
        onset = [(0, 1), (1, 0), (1, 1)]
        offset = [(0, 0)]
        cover = espresso(onset, offset, 2)
        for cube in cover:
            for i in range(2):
                if cube[i] == 2:
                    continue
                raised = cube.raised(i)
                assert any(
                    raised.contains_minterm(m) for m in offset
                ), f"cube {cube} is not prime"

    def test_cover_is_irredundant(self):
        onset = [(0, 1), (1, 0), (1, 1)]
        offset = [(0, 0)]
        cover = espresso(onset, offset, 2)
        for index in range(len(cover)):
            rest = cover.without(index)
            assert not all(rest.contains_minterm(m) for m in onset)


@st.composite
def random_function(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    assignment = draw(
        st.lists(
            st.sampled_from(["on", "off", "dc"]),
            min_size=2 ** n,
            max_size=2 ** n,
        )
    )
    onset, offset = [], []
    for bits, kind in zip(itertools.product([0, 1], repeat=n), assignment):
        if kind == "on":
            onset.append(bits)
        elif kind == "off":
            offset.append(bits)
    return n, onset, offset


@settings(max_examples=150, deadline=None)
@given(random_function())
def test_minimized_cover_is_correct(function):
    n, onset, offset = function
    cover = espresso(onset, offset, n)
    assert verify_cover(cover, onset, offset) == []


@settings(max_examples=150, deadline=None)
@given(random_function())
def test_minimization_never_increases_literals(function):
    n, onset, offset = function
    cover = espresso(onset, offset, n)
    assert cover.literals <= n * len(onset)
