"""Tests for the BLIF netlist exporter."""

import pytest

from repro.csc import modular_synthesis
from repro.logic.blif import write_blif, write_synthesis_blif
from repro.logic.cover import Cover
from repro.stg import parse_g
from repro.runtime.options import SynthesisOptions

from tests.example_stgs import CSC_CONFLICT, HANDSHAKE


def test_basic_structure():
    covers = {"b": Cover.from_strings(2, ["1-"])}
    text = write_blif(covers, ("a", "b"), ["a"], model="wire")
    assert text.startswith(".model wire")
    assert ".inputs a" in text
    assert ".outputs b" in text
    assert ".names a b b_next" in text
    assert "1- 1" in text
    assert text.rstrip().endswith(".end")


def test_feedback_buffer_present():
    covers = {"b": Cover.from_strings(2, ["1-"])}
    text = write_blif(covers, ("a", "b"), ["a"])
    assert ".names b_next b" in text


def test_constant_zero_cover():
    covers = {"b": Cover(2)}
    text = write_blif(covers, ("a", "b"), ["a"])
    assert "# constant 0" in text


def test_missing_cover_rejected():
    with pytest.raises(ValueError):
        write_blif({}, ("a", "b"), ["a"])


def test_cover_width_checked():
    covers = {"b": Cover.from_strings(3, ["1--"])}
    with pytest.raises(ValueError):
        write_blif(covers, ("a", "b"), ["a"])


def test_synthesis_export():
    stg = parse_g(CSC_CONFLICT)
    result = modular_synthesis(stg)
    text = write_synthesis_blif(result, stg.inputs, model="csc_ex")
    assert ".model csc_ex" in text
    assert ".inputs a" in text
    # The inserted state signal appears as an output table too.
    assert "csc0" in text
    # One .names table per non-input signal (plus its buffer).
    assert text.count(".names") == 2 * len(result.expanded.non_inputs)


def test_synthesis_export_needs_covers():
    stg = parse_g(HANDSHAKE)
    result = modular_synthesis(
        stg, options=SynthesisOptions(minimize=False)
    )
    with pytest.raises(ValueError):
        write_synthesis_blif(result, stg.inputs)
