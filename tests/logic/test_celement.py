"""Tests for the generalised C-element realisation."""

import pytest

from repro.csc import modular_synthesis
from repro.logic.celement import (
    excitation_regions,
    synthesize_celements,
)
from repro.logic.espresso import verify_cover
from repro.stategraph import build_state_graph
from repro.stg import parse_g
from repro.runtime.options import SynthesisOptions

from tests.example_stgs import CSC_CONFLICT, HANDSHAKE


class TestExcitationRegions:
    def test_handshake_regions(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        set_on, set_off, reset_on, reset_off = excitation_regions(
            graph, "b"
        )
        # b rises in exactly one state (post-a+), falls in one (post-a-).
        assert set_on == [(1, 0)]
        assert reset_on == [(0, 1)]
        # The rising region must be off where b is stable low or falling.
        assert (0, 0) in set_off
        assert (0, 1) in set_off

    def test_unsolved_graph_rejected(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        with pytest.raises(ValueError, match="CSC"):
            excitation_regions(graph, "c")


class TestSynthesizeCelements:
    def test_covers_are_correct(self):
        result = modular_synthesis(
            parse_g(CSC_CONFLICT), options=SynthesisOptions(minimize=False)
        )
        graph = result.expanded
        implementations, total = synthesize_celements(graph)
        assert set(implementations) == set(graph.non_inputs)
        assert total == sum(
            impl.literals for impl in implementations.values()
        )
        for signal, impl in implementations.items():
            set_on, set_off, reset_on, reset_off = excitation_regions(
                graph, signal
            )
            assert verify_cover(impl.set_cover, set_on, set_off) == []
            assert verify_cover(impl.reset_cover, reset_on, reset_off) == []

    def test_subset(self):
        result = modular_synthesis(
            parse_g(CSC_CONFLICT), options=SynthesisOptions(minimize=False)
        )
        implementations, _ = synthesize_celements(
            result.expanded, signals=["b"]
        )
        assert list(implementations) == ["b"]

    def test_repr(self):
        result = modular_synthesis(
            parse_g(HANDSHAKE), options=SynthesisOptions(minimize=False)
        )
        implementations, _ = synthesize_celements(result.expanded)
        assert "set=" in repr(implementations["b"])
