"""Unit tests for logic extraction from state graphs."""

import pytest

from repro.csc import modular_synthesis
from repro.logic.espresso import verify_cover
from repro.logic.extract import next_state_tables, synthesize_logic
from repro.logic.literals import total_literals
from repro.stg import parse_g
from repro.stategraph import build_state_graph
from repro.runtime.options import SynthesisOptions

from tests.example_stgs import CONCURRENT, CSC_CONFLICT, HANDSHAKE


class TestNextStateTables:
    def test_handshake_output(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        tables = next_state_tables(graph)
        onset, offset = tables["b"]
        # b's next value is exactly a's current value.
        a_index = graph.signal_index("a")
        assert all(code[a_index] == 1 for code in onset)
        assert all(code[a_index] == 0 for code in offset)

    def test_csc_violating_graph_rejected(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        with pytest.raises(ValueError, match="CSC"):
            next_state_tables(graph)

    def test_subset_of_signals(self):
        graph = build_state_graph(parse_g(CONCURRENT))
        tables = next_state_tables(graph, signals=["x"])
        assert set(tables) == {"x"}


class TestSynthesizeLogic:
    def test_handshake_is_a_wire(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        covers, literals = synthesize_logic(graph)
        assert literals == 1  # F_b = a
        assert str(covers["b"][0]) == "1-"

    def test_covers_are_functionally_correct(self):
        result = modular_synthesis(
            parse_g(CSC_CONFLICT), options=SynthesisOptions(minimize=False)
        )
        graph = result.expanded
        covers, _literals = synthesize_logic(graph)
        tables = next_state_tables(graph)
        for signal, cover in covers.items():
            onset, offset = tables[signal]
            assert verify_cover(cover, onset, offset) == []

    def test_total_literals_helper(self):
        graph = build_state_graph(parse_g(CONCURRENT))
        covers, literals = synthesize_logic(graph)
        assert total_literals(covers) == literals
