"""Unit and property tests for the ROBDD manager."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BddManager, BddOverflowError
from repro.bdd.manager import FALSE, TRUE


def evaluate(manager, node, assignment):
    """Follow the decision path under ``assignment`` (dict var -> bool)."""
    while node > TRUE:
        var = manager.var_of(node)
        low, high = manager.children(node)
        node = high if assignment[var] else low
    return node == TRUE


class TestBasics:
    def test_terminals(self):
        m = BddManager(2)
        assert m.num_nodes == 2

    def test_literal(self):
        m = BddManager(2)
        x = m.literal(1)
        assert evaluate(m, x, {1: True, 2: False})
        assert not evaluate(m, x, {1: False, 2: False})
        nx = m.literal(-1)
        assert evaluate(m, nx, {1: False, 2: True})

    def test_literal_range_checked(self):
        with pytest.raises(ValueError):
            BddManager(2).literal(3)

    def test_reduction_shares_nodes(self):
        m = BddManager(2)
        a = m.literal(1)
        b = m.literal(1)
        assert a == b  # unique table hit

    def test_make_collapses_equal_children(self):
        m = BddManager(2)
        assert m.make(1, TRUE, TRUE) == TRUE

    def test_overflow(self):
        m = BddManager(10, max_nodes=4)
        with pytest.raises(BddOverflowError):
            for v in range(1, 11):
                m.literal(v)


class TestOperations:
    def test_and_or_negate(self):
        m = BddManager(2)
        x, y = m.literal(1), m.literal(2)
        conj = m.apply_and(x, y)
        disj = m.apply_or(x, y)
        neg = m.negate(x)
        for bits in itertools.product([False, True], repeat=2):
            env = {1: bits[0], 2: bits[1]}
            assert evaluate(m, conj, env) == (bits[0] and bits[1])
            assert evaluate(m, disj, env) == (bits[0] or bits[1])
            assert evaluate(m, neg, env) == (not bits[0])

    def test_restrict(self):
        m = BddManager(2)
        conj = m.apply_and(m.literal(1), m.literal(2))
        assert m.restrict(conj, 1, 1) == m.literal(2)
        assert m.restrict(conj, 1, 0) == FALSE

    def test_exists(self):
        m = BddManager(2)
        conj = m.apply_and(m.literal(1), m.literal(2))
        assert m.exists(conj, 1) == m.literal(2)

    def test_sat_count(self):
        m = BddManager(3)
        x = m.literal(1)
        assert m.sat_count(x) == 4  # x free over vars 2,3
        conj = m.apply_and(x, m.literal(2))
        assert m.sat_count(conj) == 2

    def test_any_model(self):
        m = BddManager(2)
        conj = m.apply_and(m.literal(1), m.literal(-2))
        model = m.any_model(conj)
        assert model == {1: True, 2: False}
        assert m.any_model(FALSE) is None


class TestMinCost:
    def test_prefers_cheap_assignment(self):
        m = BddManager(2)
        disj = m.apply_or(m.literal(1), m.literal(2))
        model = m.min_cost_model(disj, {1: 5, 2: 1})
        assert model == {1: False, 2: True}

    def test_zero_cost_vars_free(self):
        m = BddManager(2)
        disj = m.apply_or(m.literal(1), m.literal(2))
        model = m.min_cost_model(disj, {2: 3})
        assert model[1] is True and model[2] is False

    def test_unsat_returns_none(self):
        m = BddManager(1)
        assert m.min_cost_model(FALSE, {}) is None


@st.composite
def boolean_formula(draw):
    """Random clause lists over up to 5 variables."""
    num_vars = draw(st.integers(min_value=1, max_value=5))
    clauses = draw(
        st.lists(
            st.lists(
                st.integers(min_value=1, max_value=num_vars).map(
                    lambda v: v
                ).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=10,
        )
    )
    return num_vars, clauses


@settings(max_examples=120, deadline=None)
@given(boolean_formula())
def test_bdd_agrees_with_truth_table(formula):
    num_vars, clauses = formula
    manager = BddManager(num_vars)
    node = TRUE
    for clause in clauses:
        node = manager.apply_and(node, manager.clause(clause))
    for bits in itertools.product([False, True], repeat=num_vars):
        env = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        expected = all(
            any(env[abs(l)] == (l > 0) for l in clause)
            for clause in clauses
        )
        assert evaluate(manager, node, env) == expected


@settings(max_examples=100, deadline=None)
@given(boolean_formula())
def test_min_cost_model_is_optimal(formula):
    num_vars, clauses = formula
    manager = BddManager(num_vars)
    node = TRUE
    for clause in clauses:
        node = manager.apply_and(node, manager.clause(clause))
    costs = {v: v for v in range(1, num_vars + 1)}
    model = manager.min_cost_model(node, costs)
    if model is None:
        assert node == FALSE
        return
    best = None
    for bits in itertools.product([False, True], repeat=num_vars):
        env = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        if evaluate(manager, node, env):
            cost = sum(costs[v] for v in env if env[v])
            best = cost if best is None else min(best, cost)
    achieved = sum(costs[v] for v in model if model[v])
    assert achieved == best
