"""Counters, histograms and gauges, and the results that carry them."""

import pytest

from repro.obs import (
    COUNTER_GLOSSARY,
    DERIVED_GLOSSARY,
    GAUGE_GLOSSARY,
    HISTOGRAM_BUCKETS,
    HISTOGRAM_GLOSSARY,
    Counters,
    Gauge,
    Histogram,
    with_derived,
)
from repro.sat import SAT, Cnf, solve_with
from repro.sat.solver import SolveResult


def test_add_accumulates_and_returns_total():
    counters = Counters()
    assert counters.add("backtracks") == 1
    assert counters.add("backtracks", 4) == 5
    assert counters["backtracks"] == 5


def test_missing_counters_read_as_zero():
    counters = Counters()
    assert counters["decisions"] == 0
    assert counters.get("decisions") == 0
    assert "decisions" not in counters


def test_zero_delta_on_absent_key_creates_no_entry():
    counters = Counters()
    assert counters.add("signals_added", 0) == 0
    assert "signals_added" not in counters
    assert not counters
    # ... but adding 0 to an existing counter keeps it.
    counters.add("signals_added", 2)
    counters.add("signals_added", 0)
    assert counters["signals_added"] == 2


def test_constructor_drops_zero_values():
    counters = Counters(decisions=3, backtracks=0)
    assert counters.as_dict() == {"decisions": 3}


def test_merge_counters_and_plain_dict():
    left = Counters(decisions=1, seconds=0.5)
    left.merge(Counters(decisions=2, backtracks=7))
    left.merge({"seconds": 0.25})
    assert left == {"decisions": 3, "backtracks": 7, "seconds": 0.75}


def test_merge_returns_self_for_chaining():
    bag = Counters(a=1).merge({"b": 2}).merge({"a": 1})
    assert bag == {"a": 2, "b": 2}


def test_as_dict_is_sorted_snapshot():
    counters = Counters(zeta=1, alpha=2)
    snapshot = counters.as_dict()
    assert list(snapshot) == ["alpha", "zeta"]
    snapshot["alpha"] = 99  # the snapshot is a copy
    assert counters["alpha"] == 2


def test_equality_against_counters_and_dict():
    assert Counters(a=1) == Counters(a=1)
    assert Counters(a=1) == {"a": 1}
    assert Counters(a=1) != {"a": 2}


def test_iteration_is_sorted_and_len_counts_entries():
    counters = Counters(b=1, a=2)
    assert list(counters) == ["a", "b"]
    assert len(counters) == 2


def test_glossary_names_are_snake_case_strings():
    for glossary in (COUNTER_GLOSSARY, DERIVED_GLOSSARY,
                     HISTOGRAM_GLOSSARY, GAUGE_GLOSSARY):
        for name, description in glossary.items():
            assert name == name.lower()
            assert " " not in name
            assert description


def test_every_declared_histogram_has_glossary_and_sorted_bounds():
    for name, bounds in HISTOGRAM_BUCKETS.items():
        assert name in HISTOGRAM_GLOSSARY
        assert list(bounds) == sorted(bounds)
        assert len(set(bounds)) == len(bounds)


# -- histograms -------------------------------------------------------------


def test_histogram_buckets_observations_and_tracks_sum():
    hist = Histogram("module_solve_seconds")
    hist.observe(0.0001)   # below the first bound
    hist.observe(0.02)     # mid-range
    hist.observe(100.0)    # above the last bound -> +Inf bucket
    assert hist.count == 3
    assert hist.total == pytest.approx(100.0201)
    assert hist.mean == pytest.approx(100.0201 / 3)
    assert hist.counts[0] == 1
    assert hist.counts[-1] == 1


def test_histogram_cumulative_ends_at_infinity_with_full_count():
    hist = Histogram("x", bounds=(1.0, 2.0))
    for value in (0.5, 1.5, 5.0, 5.0):
        hist.observe(value)
    assert hist.cumulative() == [
        (1.0, 1), (2.0, 2), (float("inf"), 4),
    ]


def test_histogram_merge_is_bucketwise_and_requires_equal_bounds():
    left = Histogram("formula_clauses")
    right = Histogram("formula_clauses")
    left.observe(60)
    right.observe(60)
    right.observe(9999)
    left.merge(right)
    assert left.count == 3
    assert left.total == pytest.approx(60 + 60 + 9999)
    with pytest.raises(ValueError):
        left.merge(Histogram("other", bounds=(1.0,)))


def test_histogram_dict_round_trip():
    hist = Histogram("sat_attempt_seconds")
    hist.observe(0.003)
    hist.observe(42.0)
    clone = Histogram.from_dict("sat_attempt_seconds", hist.as_dict())
    assert clone.bounds == hist.bounds
    assert clone.counts == hist.counts
    assert clone.count == 2
    assert clone.total == pytest.approx(hist.total)


def test_histogram_from_dict_rejects_mismatched_buckets():
    data = {"bounds": [1.0, 2.0], "counts": [1], "sum": 1.0, "count": 1}
    with pytest.raises(ValueError):
        Histogram.from_dict("x", data)


# -- gauges -----------------------------------------------------------------


def test_gauge_max_mode_keeps_high_water_mark():
    gauge = Gauge("peak_memory_bytes")
    gauge.set(100)
    gauge.set(50)
    assert gauge.value == 100.0
    gauge.set(200)
    assert gauge.value == 200.0


def test_gauge_last_mode_is_last_write_wins():
    gauge = Gauge("x", mode="last")
    gauge.set(100)
    gauge.set(50)
    assert gauge.value == 50.0
    with pytest.raises(ValueError):
        Gauge("x", mode="median")


def test_gauge_merge_follows_declared_mode():
    parent = Gauge("peak_memory_bytes", labels={"span": "run"})
    parent.set(100)
    worker = Gauge("peak_memory_bytes", labels={"span": "run"})
    worker.set(300)
    parent.merge(worker)
    assert parent.value == 300.0
    parent.merge(Gauge("peak_memory_bytes"))  # unset merges are no-ops
    assert parent.value == 300.0


def test_gauge_keys_include_sorted_labels():
    bare = Gauge("x")
    labelled = Gauge("x", labels={"b": 2, "a": 1})
    assert bare.key() == "x"
    assert labelled.key() == "x{a=1,b=2}"
    clone = Gauge.from_dict("x", labelled.as_dict())
    assert clone.key() == labelled.key()
    assert clone.value is None


# -- derived metrics --------------------------------------------------------


def test_with_derived_adds_hit_rates_without_mutating_input():
    totals = Counters(result_cache_hits=3, result_cache_misses=1,
                      proj_cache_hits=1, proj_cache_misses=3)
    derived = with_derived(totals)
    assert derived["result_cache_hit_rate"] == pytest.approx(0.75)
    assert derived["proj_cache_hit_rate"] == pytest.approx(0.25)
    assert "result_cache_hit_rate" not in totals


def test_with_derived_skips_ratios_with_no_lookups():
    derived = with_derived(Counters(sat_attempts=2))
    assert "result_cache_hit_rate" not in derived
    assert derived["sat_attempts"] == 2


def test_solve_result_builds_metrics_from_legacy_args():
    result = SolveResult(SAT, {1: True}, 3, 17, 2, 0.5)
    assert result.metrics == {
        "decisions": 3, "propagations": 17, "backtracks": 2, "seconds": 0.5,
    }
    # The classic statistic names read from the shared bag.
    assert result.decisions == 3
    assert result.propagations == 17
    assert result.backtracks == 2
    assert result.seconds == 0.5


def test_solver_results_carry_counters_bag():
    cnf = Cnf()
    a, b = cnf.new_var("a"), cnf.new_var("b")
    cnf.add_clause([a, b])
    cnf.add_clause([-a])
    result = solve_with(cnf, engine="dpll")
    assert result.status == SAT
    assert isinstance(result.metrics, Counters)
    assert result.metrics["propagations"] == result.propagations
    assert result.metrics["seconds"] >= 0


def test_attempt_stats_fold_formula_size_and_solver_metrics():
    from repro.csc.solve import AttemptStats

    cnf = Cnf()
    a = cnf.new_var("a")
    cnf.add_clause([a])
    result = solve_with(cnf, engine="dpll")
    attempt = AttemptStats(2, num_vars=5, num_clauses=9, result=result)
    assert attempt.num_vars == 5
    assert attempt.num_clauses == 9
    assert attempt.metrics["num_clauses"] == 9
    # The solver's own counters are merged into the same bag.
    assert attempt.metrics["propagations"] == result.propagations
    assert attempt.backtracks == result.backtracks
