"""Counters semantics and the results that carry them."""

from repro.obs import COUNTER_GLOSSARY, Counters
from repro.sat import SAT, Cnf, solve_with
from repro.sat.solver import SolveResult


def test_add_accumulates_and_returns_total():
    counters = Counters()
    assert counters.add("backtracks") == 1
    assert counters.add("backtracks", 4) == 5
    assert counters["backtracks"] == 5


def test_missing_counters_read_as_zero():
    counters = Counters()
    assert counters["decisions"] == 0
    assert counters.get("decisions") == 0
    assert "decisions" not in counters


def test_zero_delta_on_absent_key_creates_no_entry():
    counters = Counters()
    assert counters.add("signals_added", 0) == 0
    assert "signals_added" not in counters
    assert not counters
    # ... but adding 0 to an existing counter keeps it.
    counters.add("signals_added", 2)
    counters.add("signals_added", 0)
    assert counters["signals_added"] == 2


def test_constructor_drops_zero_values():
    counters = Counters(decisions=3, backtracks=0)
    assert counters.as_dict() == {"decisions": 3}


def test_merge_counters_and_plain_dict():
    left = Counters(decisions=1, seconds=0.5)
    left.merge(Counters(decisions=2, backtracks=7))
    left.merge({"seconds": 0.25})
    assert left == {"decisions": 3, "backtracks": 7, "seconds": 0.75}


def test_merge_returns_self_for_chaining():
    bag = Counters(a=1).merge({"b": 2}).merge({"a": 1})
    assert bag == {"a": 2, "b": 2}


def test_as_dict_is_sorted_snapshot():
    counters = Counters(zeta=1, alpha=2)
    snapshot = counters.as_dict()
    assert list(snapshot) == ["alpha", "zeta"]
    snapshot["alpha"] = 99  # the snapshot is a copy
    assert counters["alpha"] == 2


def test_equality_against_counters_and_dict():
    assert Counters(a=1) == Counters(a=1)
    assert Counters(a=1) == {"a": 1}
    assert Counters(a=1) != {"a": 2}


def test_iteration_is_sorted_and_len_counts_entries():
    counters = Counters(b=1, a=2)
    assert list(counters) == ["a", "b"]
    assert len(counters) == 2


def test_glossary_names_are_snake_case_strings():
    for name, description in COUNTER_GLOSSARY.items():
        assert name == name.lower()
        assert " " not in name
        assert description


def test_solve_result_builds_metrics_from_legacy_args():
    result = SolveResult(SAT, {1: True}, 3, 17, 2, 0.5)
    assert result.metrics == {
        "decisions": 3, "propagations": 17, "backtracks": 2, "seconds": 0.5,
    }
    # The classic statistic names read from the shared bag.
    assert result.decisions == 3
    assert result.propagations == 17
    assert result.backtracks == 2
    assert result.seconds == 0.5


def test_solver_results_carry_counters_bag():
    cnf = Cnf()
    a, b = cnf.new_var("a"), cnf.new_var("b")
    cnf.add_clause([a, b])
    cnf.add_clause([-a])
    result = solve_with(cnf, engine="dpll")
    assert result.status == SAT
    assert isinstance(result.metrics, Counters)
    assert result.metrics["propagations"] == result.propagations
    assert result.metrics["seconds"] >= 0


def test_attempt_stats_fold_formula_size_and_solver_metrics():
    from repro.csc.solve import AttemptStats

    cnf = Cnf()
    a = cnf.new_var("a")
    cnf.add_clause([a])
    result = solve_with(cnf, engine="dpll")
    attempt = AttemptStats(2, num_vars=5, num_clauses=9, result=result)
    assert attempt.num_vars == 5
    assert attempt.num_clauses == 9
    assert attempt.metrics["num_clauses"] == 9
    # The solver's own counters are merged into the same bag.
    assert attempt.metrics["propagations"] == result.propagations
    assert attempt.backtracks == result.backtracks
