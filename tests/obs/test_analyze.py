"""Span forests, self time, attribution, critical path, dispatch sizing."""

import pytest

from repro.obs import (
    build_forest,
    critical_path,
    dispatch_summary,
    format_attribution,
    format_critical_path,
    format_tree,
    module_attribution,
    name_attribution,
    verify_forest,
    walk_forest,
)

HEADER = {"ev": "trace", "version": 1, "clock": "perf_counter"}


def _span(sid, name, start, dur, parent=None, attrs=None, counters=None):
    """A well-formed start/end record pair."""
    start_record = {"ev": "start", "id": sid, "name": name, "t": start}
    if parent is not None:
        start_record["parent"] = parent
    end_record = {
        "ev": "end", "id": sid, "name": name,
        "t": start + dur, "dur": dur,
    }
    if attrs:
        start_record["attrs"] = dict(attrs)
        end_record["attrs"] = dict(attrs)
    if counters:
        end_record["counters"] = dict(counters)
    return start_record, end_record


def _serial_run():
    """run(10s) > module x(3s: encode 2s) + module y(4s: sat 1s)."""
    run_s, run_e = _span(1, "run", 0.0, 10.0)
    mx_s, mx_e = _span(2, "module", 1.0, 3.0, parent=1,
                       attrs={"output": "x"})
    enc_s, enc_e = _span(3, "encode", 1.5, 2.0, parent=2,
                         counters={"num_clauses": 40})
    my_s, my_e = _span(4, "module", 5.0, 4.0, parent=1,
                       attrs={"output": "y"})
    sat_s, sat_e = _span(5, "sat_attempt", 5.5, 1.0, parent=4,
                         counters={"backtracks": 7})
    return [HEADER, run_s, mx_s, enc_s, enc_e, mx_e,
            my_s, sat_s, sat_e, my_e, run_e]


# -- forest construction ----------------------------------------------------


def test_build_forest_resolves_parents_and_self_time():
    roots = build_forest(_serial_run())
    assert len(roots) == 1
    run = roots[0]
    assert run.name == "run"
    assert [c.name for c in run.children] == ["module", "module"]
    assert run.child_seconds == pytest.approx(7.0)
    assert run.self_seconds == pytest.approx(3.0)
    module_x = run.children[0]
    assert module_x.attrs == {"output": "x"}
    assert module_x.self_seconds == pytest.approx(1.0)
    assert module_x.children[0].counters["num_clauses"] == 40


def test_build_forest_skips_unended_spans():
    run_s, _run_e = _span(1, "run", 0.0, 5.0)
    mod_s, mod_e = _span(2, "module", 1.0, 2.0, parent=1)
    roots = build_forest([HEADER, run_s, mod_s, mod_e])
    # The unended run has no duration to attribute; the module becomes
    # a root because its parent never closed.
    assert [r.name for r in roots] == ["module"]


def test_multi_segment_forest_keeps_segment_indices():
    worker = [HEADER, *_span(1, "module", 0.0, 2.0)]
    events = _serial_run() + worker
    roots = build_forest(events)
    assert [(r.name, r.segment) for r in roots] == [
        ("run", 0), ("module", 1),
    ]
    # Ids are per segment: the worker's id 1 must not link into the
    # parent segment's id space.
    assert roots[1].children == []


def test_self_seconds_clamped_at_zero_on_float_jitter():
    run_s, run_e = _span(1, "run", 0.0, 1.0)
    child_s, child_e = _span(2, "step", 0.0, 1.0000004, parent=1)
    roots = build_forest([HEADER, run_s, child_s, child_e, run_e])
    assert roots[0].self_seconds == 0.0


# -- verification -----------------------------------------------------------


def test_verify_forest_accepts_consistent_arithmetic():
    assert verify_forest(build_forest(_serial_run())) == []


def test_verify_forest_flags_children_exceeding_parent():
    run_s, run_e = _span(1, "run", 0.0, 1.0)
    child_s, child_e = _span(2, "module", 0.0, 5.0, parent=1)
    problems = verify_forest(
        build_forest([HEADER, run_s, child_s, child_e, run_e])
    )
    assert len(problems) == 1
    assert "children sum" in problems[0]


# -- attribution ------------------------------------------------------------


def test_module_attribution_folds_whole_subtrees_per_output():
    attribution = module_attribution(build_forest(_serial_run()))
    assert list(attribution) == ["x", "y"]
    x = attribution["x"]
    assert x.seconds == pytest.approx(3.0)
    # Subtree fold: the encode child's counters attribute to x.
    assert x.counters["num_clauses"] == 40
    assert attribution["y"].counters["backtracks"] == 7


def test_module_seconds_sum_to_parent_child_time():
    # The acceptance invariant: per-module attribution accounts for the
    # run span's entire child time spent in module processing.
    roots = build_forest(_serial_run())
    attribution = module_attribution(roots)
    total = sum(entry.seconds for entry in attribution.values())
    run = roots[0]
    module_time = sum(
        c.duration for c in run.children if c.name == "module"
    )
    assert total == pytest.approx(module_time)
    assert total == pytest.approx(run.child_seconds)


def test_name_attribution_subtracts_child_time():
    flat = name_attribution(build_forest(_serial_run()))
    assert flat["run"].self_seconds == pytest.approx(3.0)
    assert flat["module"].count == 2
    assert flat["module"].self_seconds == pytest.approx(1.0 + 3.0)


# -- critical path and dispatch ---------------------------------------------


def test_critical_path_descends_heaviest_child():
    path = critical_path(build_forest(_serial_run()))
    assert [node.name for node in path] == ["run", "module", "sat_attempt"]
    assert path[1].attrs["output"] == "y"


def test_critical_path_empty_forest():
    assert critical_path([]) == []


def test_dispatch_summary_serial_trace():
    summary = dispatch_summary(build_forest(_serial_run()))
    assert summary["parallel_seconds"] is None
    assert summary["worker_segments"] == 0
    assert summary["merge_seconds"] is None


def test_dispatch_summary_sizes_parallel_run():
    run_s, run_e = _span(1, "run", 0.0, 10.0)
    par_s, par_e = _span(2, "module_parallel", 1.0, 6.0, parent=1)
    worker_a = [HEADER, *_span(1, "module", 0.0, 4.0)]
    worker_b = [HEADER, *_span(1, "module", 0.0, 2.0),
                *_span(2, "module", 2.5, 1.0)]
    events = [HEADER, run_s, par_s, par_e, run_e] + worker_a + worker_b
    summary = dispatch_summary(build_forest(events))
    assert summary["parallel_seconds"] == pytest.approx(6.0)
    assert summary["worker_segments"] == 2
    assert summary["worker_busy_seconds"] == [
        pytest.approx(4.0), pytest.approx(3.0),
    ]
    assert summary["longest_worker_seconds"] == pytest.approx(4.0)
    assert summary["merge_seconds"] == pytest.approx(2.0)


# -- rendering --------------------------------------------------------------


def test_format_tree_collapses_siblings_by_name():
    text = format_tree(build_forest(_serial_run()))
    lines = text.splitlines()
    assert lines[0].startswith("span")
    module_rows = [line for line in lines if "module" in line]
    assert len(module_rows) == 1  # both module spans in one row
    assert " 2 " in module_rows[0].replace("module", " ")
    assert any(line.startswith("  module") for line in lines)  # indented


def test_format_tree_min_seconds_hides_light_rows():
    text = format_tree(build_forest(_serial_run()), min_seconds=5.0)
    assert "run" in text
    assert "encode" not in text


def test_format_attribution_and_critical_path_render():
    roots = build_forest(_serial_run())
    table = format_attribution(module_attribution(roots))
    assert "x" in table and "y" in table
    path_text = format_critical_path(critical_path(roots))
    assert "run" in path_text
    assert format_critical_path([]) == "no spans recorded"


def test_walk_forest_yields_every_node():
    names = [n.name for n in walk_forest(build_forest(_serial_run()))]
    assert names == ["run", "module", "encode", "module", "sat_attempt"]
