"""Folded stacks, Chrome trace events, Prometheus text exposition."""

import json

import pytest

from repro.obs import (
    Counters,
    Gauge,
    Histogram,
    build_forest,
    chrome_trace,
    folded_stacks,
    prometheus_text,
    validate_chrome_trace,
    validate_folded,
    validate_prometheus_text,
    with_derived,
    write_chrome_trace,
)

HEADER = {"ev": "trace", "version": 1, "clock": "perf_counter"}


def _span(sid, name, start, dur, parent=None, attrs=None, counters=None):
    start_record = {"ev": "start", "id": sid, "name": name, "t": start}
    if parent is not None:
        start_record["parent"] = parent
    end_record = {
        "ev": "end", "id": sid, "name": name,
        "t": start + dur, "dur": dur,
    }
    if attrs:
        end_record["attrs"] = dict(attrs)
    if counters:
        end_record["counters"] = dict(counters)
    return start_record, end_record


def _forest():
    run_s, run_e = _span(1, "run", 0.0, 3.0)
    mod_s, mod_e = _span(2, "module", 0.5, 2.0, parent=1,
                         attrs={"output": "x"},
                         counters={"backtracks": 3})
    return build_forest([HEADER, run_s, mod_s, mod_e, run_e])


# -- folded stacks ----------------------------------------------------------


def test_folded_stacks_emit_self_time_microseconds():
    lines = folded_stacks(_forest())
    assert lines == ["run 1000000", "run;module 2000000"]
    assert validate_folded(lines) == []


def test_folded_stacks_aggregate_identical_paths():
    run_s, run_e = _span(1, "run", 0.0, 4.0)
    a_s, a_e = _span(2, "module", 0.0, 1.0, parent=1)
    b_s, b_e = _span(3, "module", 1.0, 2.0, parent=1)
    roots = build_forest([HEADER, run_s, a_s, a_e, b_s, b_e, run_e])
    lines = folded_stacks(roots)
    assert "run;module 3000000" in lines  # both spans fold into one line


def test_folded_stacks_sanitise_frame_characters():
    run_s, run_e = _span(1, "bad name;here", 0.0, 1.0)
    lines = folded_stacks(build_forest([HEADER, run_s, run_e]))
    assert lines == ["bad_name_here 1000000"]
    assert validate_folded(lines) == []


def test_folded_stacks_per_segment_prefix():
    worker = [HEADER, *_span(1, "module", 0.0, 1.0)]
    events = [HEADER, *_span(1, "run", 0.0, 1.0)] + worker
    lines = folded_stacks(build_forest(events), per_segment=True)
    assert "segment0;run 1000000" in lines
    assert "segment1;module 1000000" in lines


def test_validate_folded_rejects_malformed_lines():
    assert validate_folded(["no-value-here"])
    assert validate_folded(["frame -3"])
    assert validate_folded(["frame;;frame 10"])
    assert validate_folded([]) == []


# -- Chrome trace events ----------------------------------------------------


def test_chrome_trace_document_shape_and_validation(tmp_path):
    point = {"ev": "point", "name": "escalate", "t": 1.0,
             "attrs": {"engine": "cdcl"}}
    events = [HEADER, *_span(1, "run", 0.0, 3.0), point]
    document = chrome_trace(_forest(), events)
    assert validate_chrome_trace(document) == []
    complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert {e["name"] for e in complete} == {"run", "module"}
    run = next(e for e in complete if e["name"] == "run")
    assert run["ts"] == 0.0
    assert run["dur"] == 3_000_000.0
    module = next(e for e in complete if e["name"] == "module")
    assert module["args"]["attrs"] == {"output": "x"}
    assert module["args"]["counters"] == {"backtracks": 3}
    instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
    assert instants[0]["name"] == "escalate"
    lanes = [e for e in document["traceEvents"] if e["ph"] == "M"]
    assert lanes[0]["args"]["name"] == "main"

    path = write_chrome_trace(document, str(tmp_path / "trace.json"))
    assert json.loads(open(path, encoding="utf-8").read()) == document


def test_chrome_trace_worker_segments_get_their_own_lanes():
    worker = [HEADER, *_span(1, "module", 0.0, 1.0)]
    events = [HEADER, *_span(1, "run", 0.0, 2.0)] + worker
    document = chrome_trace(build_forest(events), events)
    lanes = {
        e["args"]["name"]: e["tid"]
        for e in document["traceEvents"] if e["ph"] == "M"
    }
    assert lanes == {"main": 1, "worker segment 1": 2}
    worker_spans = [
        e for e in document["traceEvents"]
        if e["ph"] == "X" and e["tid"] == 2
    ]
    assert [e["name"] for e in worker_spans] == ["module"]


def test_validate_chrome_trace_rejects_bad_documents():
    assert validate_chrome_trace([]) == ["top level is not an object"]
    assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
    assert validate_chrome_trace(
        {"traceEvents": [{"ph": "Z", "name": "x"}]}
    )
    assert validate_chrome_trace(
        {"traceEvents": [{"ph": "X", "name": "x", "ts": 0,
                          "pid": 1, "tid": 1, "dur": -1}]}
    )


# -- Prometheus text --------------------------------------------------------


def test_prometheus_counters_get_total_suffix_and_help():
    page = prometheus_text(counters=Counters(backtracks=7, decisions=12))
    assert "# TYPE repro_backtracks_total counter" in page
    assert "repro_backtracks_total 7" in page
    assert "# HELP repro_backtracks_total" in page
    assert page.endswith("\n")
    assert validate_prometheus_text(page) == []


def test_prometheus_derived_ratios_render_as_gauges():
    totals = with_derived(
        Counters(result_cache_hits=3, result_cache_misses=1)
    )
    page = prometheus_text(counters=totals)
    assert "# TYPE repro_result_cache_hit_rate gauge" in page
    assert "repro_result_cache_hit_rate 0.75" in page
    assert "repro_result_cache_hits_total 3" in page
    assert validate_prometheus_text(page) == []


def test_prometheus_histogram_is_cumulative_and_ends_at_inf():
    hist = Histogram("module_solve_seconds")
    for value in (0.0005, 0.02, 0.02, 99.0):
        hist.observe(value)
    page = prometheus_text(histograms={"module_solve_seconds": hist})
    assert "# TYPE repro_module_solve_seconds histogram" in page
    assert 'repro_module_solve_seconds_bucket{le="0.001"} 1' in page
    assert 'repro_module_solve_seconds_bucket{le="0.05"} 3' in page
    assert 'repro_module_solve_seconds_bucket{le="+Inf"} 4' in page
    assert "repro_module_solve_seconds_count 4" in page
    assert validate_prometheus_text(page) == []


def test_prometheus_gauges_render_labels():
    gauge = Gauge("peak_memory_bytes", labels={"span": "run"})
    gauge.set(4096)
    page = prometheus_text(gauges={gauge.key(): gauge})
    assert 'repro_peak_memory_bytes{span="run"} 4096' in page
    assert "# TYPE repro_peak_memory_bytes gauge" in page
    assert validate_prometheus_text(page) == []


def test_prometheus_unset_gauges_are_omitted():
    gauge = Gauge("peak_memory_bytes")
    page = prometheus_text(gauges={gauge.key(): gauge})
    assert page == ""


def test_validate_prometheus_text_flags_format_violations():
    assert validate_prometheus_text("repro_x_total 1") == [
        "page does not end with a newline"
    ]
    assert validate_prometheus_text("not a sample line at all!\n")
    assert validate_prometheus_text("repro_x_total notanumber\n")
    assert validate_prometheus_text(
        "# TYPE repro_x counter\n# TYPE repro_x counter\nrepro_x 1\n"
    ) == ["line 2: duplicate TYPE for repro_x"]
    assert validate_prometheus_text('repro_x{bad label} 1\n')


def test_full_registry_round_trip_validates():
    hist = Histogram("cache_lookup_seconds")
    hist.observe(0.002)
    gauge = Gauge("peak_memory_bytes", labels={"span": "bench"})
    gauge.set(1.5e6)
    page = prometheus_text(
        counters=with_derived(Counters(
            proj_cache_hits=9, proj_cache_misses=3, sat_attempts=4,
        )),
        histograms={"cache_lookup_seconds": hist},
        gauges={gauge.key(): gauge},
    )
    assert validate_prometheus_text(page) == []
    assert "repro_proj_cache_hit_rate 0.75" in page
    assert "repro_cache_lookup_seconds_sum 0.002" in page
    assert pytest.approx(1.5e6) == float(
        page.split('repro_peak_memory_bytes{span="bench"} ')[1]
        .splitlines()[0]
    )
