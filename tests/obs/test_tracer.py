"""Tracer behaviour: disabled path, nesting, stats, journal emission."""

import io

import pytest

from repro import obs
from repro.obs import NULL_SPAN, Stopwatch, Tracer
from repro.obs.tracer import _NullSpan


@pytest.fixture(autouse=True)
def _no_leftover_tracer():
    assert obs.active() is None, "a test left a tracer installed"
    yield
    obs.uninstall()


class FakeClock:
    """Deterministic clock: every read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        current = self.now
        self.now += self.step
        return current


# -- disabled path ----------------------------------------------------------


def test_disabled_span_is_the_shared_null_singleton():
    first = obs.span("anything", attr=1)
    second = obs.span("other")
    assert first is NULL_SPAN
    assert second is NULL_SPAN


def test_null_span_swallows_every_operation():
    with obs.span("phase") as span:
        span.add("backtracks", 3)
        span.merge({"decisions": 5})
        span.set("status", "ok")
    assert span.closed
    assert repr(span) == "NullSpan()"
    assert isinstance(span, _NullSpan)


def test_disabled_module_helpers_are_noops():
    obs.add("backtracks", 10)
    obs.event("escalate", engine="cdcl")
    assert obs.active() is None
    assert not obs.enabled()


# -- enabled path -----------------------------------------------------------


def test_spans_nest_and_record_parents():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("run") as run:
        with tracer.span("module") as module:
            assert module.parent_id == run.id
            assert tracer.current() is module
        assert tracer.current() is run
    assert tracer.current() is None
    assert run.closed and module.closed


def test_module_level_span_routes_to_installed_tracer():
    with obs.tracing(clock=FakeClock()) as tracer:
        assert obs.enabled()
        with obs.span("run"):
            obs.add("checkpoints")
            with obs.span("module", output="x") as inner:
                assert inner.name == "module"
                assert inner.attrs == {"output": "x"}
    assert tracer.stats["run"].counters["checkpoints"] == 1


def test_counters_attach_to_innermost_open_span():
    with obs.tracing(clock=FakeClock()) as tracer:
        with obs.span("outer"):
            with obs.span("inner"):
                obs.add("decisions", 2)
            obs.add("decisions", 5)
    assert tracer.stats["inner"].counters == {"decisions": 2}
    assert tracer.stats["outer"].counters == {"decisions": 5}


def test_stats_fold_count_total_and_max():
    clock = FakeClock(step=1.0)
    tracer = Tracer(clock=clock)
    for _ in range(3):
        with tracer.span("phase"):
            pass
    stats = tracer.stats["phase"]
    assert stats.count == 3
    assert stats.total_seconds > 0
    assert stats.max_seconds <= stats.total_seconds
    assert stats.mean_seconds == pytest.approx(stats.total_seconds / 3)


def test_exception_records_error_attr_and_closes_span():
    sink = io.StringIO()
    tracer = Tracer(journal=sink, clock=FakeClock())
    with pytest.raises(ValueError):
        with tracer.span("module") as span:
            raise ValueError("boom")
    assert span.closed
    assert span.attrs["error"] == "ValueError"
    assert '"error":"ValueError"' in sink.getvalue()


def test_tracing_restores_previous_tracer():
    outer = obs.install(Tracer(clock=FakeClock()))
    with obs.tracing(clock=FakeClock()) as inner:
        assert obs.active() is inner
    assert obs.active() is outer
    obs.uninstall()
    assert obs.active() is None


def test_close_ends_dangling_spans():
    tracer = Tracer(clock=FakeClock())
    tracer.span("run")
    tracer.span("module")
    tracer.close()
    assert tracer.current() is None
    assert tracer.stats["run"].count == 1
    assert tracer.stats["module"].count == 1


def test_counter_totals_and_profile_top():
    tracer = Tracer(clock=FakeClock(step=1.0))
    with tracer.span("slow"):
        tracer.add("decisions", 1)
        with tracer.span("fast"):
            tracer.add("decisions", 2)
    totals = tracer.counter_totals()
    assert totals["decisions"] == 3
    top = tracer.profile_top(1)
    assert [entry.name for entry in top] == ["slow"]
    assert set(tracer.stats_dict()) == {"slow", "fast"}


def test_journal_path_is_opened_and_closed(tmp_path):
    path = tmp_path / "trace.jsonl"
    with obs.tracing(journal=str(path), clock=FakeClock()):
        with obs.span("run"):
            pass
    text = path.read_text()
    assert text.splitlines()[0].startswith('{"ev":"trace"')
    assert '"name":"run"' in text


# -- Stopwatch --------------------------------------------------------------


def test_stopwatch_elapsed_and_restart():
    clock = FakeClock(step=1.0)
    watch = Stopwatch(clock=clock)
    assert watch.elapsed() == pytest.approx(1.0)
    watch.restart()
    assert watch.elapsed() == pytest.approx(1.0)


def test_stopwatch_exceeded_none_means_unlimited():
    watch = Stopwatch(clock=FakeClock(step=100.0))
    assert not watch.exceeded(None)
    assert watch.exceeded(50.0)


# -- absorbing worker traces (Tracer.absorb) --------------------------------


def test_absorb_merges_worker_stats():
    worker = Tracer(clock=FakeClock())
    with worker.span("module"):
        worker.add("decisions", 5)
    parent = Tracer(clock=FakeClock())
    with parent.span("module"):
        parent.add("decisions", 2)
    parent.absorb(worker.stats_dict())
    assert parent.stats["module"].count == 2
    assert parent.counter_totals()["decisions"] == 7


def test_absorb_into_empty_profile():
    worker = Tracer(clock=FakeClock())
    with worker.span("solve"):
        pass
    parent = Tracer(clock=FakeClock())
    parent.absorb(worker.stats_dict())
    assert parent.stats["solve"].count == 1


def test_absorbed_journal_appends_as_valid_segment():
    from repro.obs.journal import read_events, split_segments, validate_events

    worker_sink = io.StringIO()
    worker = Tracer(journal=worker_sink, clock=FakeClock())
    with worker.span("module"):
        pass
    worker.close()

    parent_sink = io.StringIO()
    parent = Tracer(journal=parent_sink, clock=FakeClock())
    with parent.span("run"):
        # Absorbed mid-run: the segment must not interleave with the
        # parent's own (still open) spans.
        parent.absorb(worker.stats_dict(), worker_sink.getvalue())
    parent.close()

    events = read_events(io.StringIO(parent_sink.getvalue()))
    assert validate_events(events) == []
    segments = split_segments(events)
    assert len(segments) == 2
    assert any(e.get("name") == "run" for e in segments[0][1])
    assert any(e.get("name") == "module" for e in segments[1][1])


def test_absorb_without_sink_discards_journal_text():
    worker_sink = io.StringIO()
    worker = Tracer(journal=worker_sink, clock=FakeClock())
    with worker.span("module"):
        pass
    worker.close()
    parent = Tracer(clock=FakeClock())  # no journal
    parent.absorb(worker.stats_dict(), worker_sink.getvalue())
    parent.close()  # must not raise
    assert parent.stats["module"].count == 1


def _traced_worker(counter_value):
    """A closed worker tracer with one ``module`` span and a metric set."""
    sink = io.StringIO()
    worker = Tracer(journal=sink, clock=FakeClock())
    with worker.span("module", output=f"o{counter_value}"):
        worker.add("decisions", counter_value)
    worker.observe("cache_lookup_seconds", 0.001 * counter_value)
    worker.gauge("peak_memory_bytes", 1000 * counter_value, span="module")
    worker.close()
    return worker, sink.getvalue()


def test_absorb_merges_worker_histograms_and_gauges():
    parent = Tracer(clock=FakeClock())
    parent.observe("cache_lookup_seconds", 0.5)
    parent.gauge("peak_memory_bytes", 1500, span="module")
    for value in (1, 2):
        worker, _text = _traced_worker(value)
        parent.absorb(worker.stats_dict(), metrics=worker.metrics_dict())
    hist = parent.histograms["cache_lookup_seconds"]
    assert hist.count == 3
    assert hist.total == pytest.approx(0.5 + 0.001 + 0.002)
    gauge = parent.gauges["peak_memory_bytes{span='module'}"]
    assert gauge.value == 2000.0  # the workers' peak beats the parent's


def test_metrics_dict_round_trips_through_absorb():
    worker, _text = _traced_worker(3)
    snapshot = worker.metrics_dict()
    # The snapshot must be JSON-serialisable (it crosses the process
    # boundary in the worker result payload).
    import json as _json

    snapshot = _json.loads(_json.dumps(snapshot))
    parent = Tracer(clock=FakeClock())
    parent.absorb(metrics=snapshot)
    assert parent.histograms["cache_lookup_seconds"].count == 1
    assert parent.gauges["peak_memory_bytes{span='module'}"].value == 3000.0
    assert Tracer(clock=FakeClock()).metrics_dict() == {}


# -- retained events (keep_events) and multi-segment folding ----------------


def test_keep_events_retains_header_and_records():
    tracer = Tracer(clock=FakeClock(), keep_events=True)
    with tracer.span("run"):
        tracer.event("ping")
    tracer.close()
    kinds = [e["ev"] for e in tracer.events]
    assert kinds == ["trace", "start", "point", "end"]
    assert Tracer(clock=FakeClock()).events is None


def test_three_worker_segments_fold_in_order_live_and_on_disk():
    from repro.obs import build_forest
    from repro.obs.journal import read_events, validate_events

    parent_sink = io.StringIO()
    parent = Tracer(journal=parent_sink, clock=FakeClock(),
                    keep_events=True)
    workers = [_traced_worker(value) for value in (1, 2, 3)]
    with parent.span("run"):
        for worker, text in workers:
            # Absorbed mid-run, like _absorb_payload does at jobs=3.
            parent.absorb(worker.stats_dict(), text,
                          worker.metrics_dict())
    parent.close()

    # The live event view and the journal file must agree exactly:
    # parent segment first, then the worker segments in absorb order.
    file_events = read_events(io.StringIO(parent_sink.getvalue()))
    assert parent.events == file_events
    assert validate_events(parent.events) == []

    roots = build_forest(parent.events)
    assert [(r.name, r.segment) for r in roots] == [
        ("run", 0), ("module", 1), ("module", 2), ("module", 3),
    ]
    outputs = [r.attrs.get("output") for r in roots[1:]]
    assert outputs == ["o1", "o2", "o3"]


def test_live_stats_match_stats_rebuilt_from_the_merged_journal():
    from repro.obs import aggregate_events, stats_as_dict

    parent_sink = io.StringIO()
    parent = Tracer(journal=parent_sink, clock=FakeClock(),
                    keep_events=True)
    with parent.span("run"):
        with parent.span("module", output="p"):
            parent.add("decisions", 9)
        for value in (1, 2, 3):
            worker, text = _traced_worker(value)
            parent.absorb(worker.stats_dict(), text)
    parent.close()

    rebuilt = aggregate_events(parent.events)
    assert stats_as_dict(parent.stats) == stats_as_dict(rebuilt)
    assert parent.stats["module"].count == 4
    assert parent.counter_totals()["decisions"] == 9 + 1 + 2 + 3


def test_absorb_tolerates_torn_journal_lines():
    worker, text = _traced_worker(1)
    torn = text[: text.rindex("\n") // 2]  # cut mid-record
    parent = Tracer(clock=FakeClock(), keep_events=True)
    parent.absorb(worker.stats_dict(), torn)
    assert all(isinstance(e, dict) for e in parent.events)


# -- automatic histograms and memory gauges ---------------------------------


def test_span_close_fills_auto_histograms():
    tracer = Tracer(clock=FakeClock(step=0.01))
    with tracer.span("run"):
        with tracer.span("module", output="x"):
            with tracer.span("encode") as encode:
                encode.add("num_clauses", 120)
            with tracer.span("sat_attempt"):
                pass
    assert tracer.histograms["module_solve_seconds"].count == 1
    assert tracer.histograms["sat_attempt_seconds"].count == 1
    clauses = tracer.histograms["formula_clauses"]
    assert clauses.count == 1
    assert clauses.total == pytest.approx(120.0)


def test_module_level_observe_and_gauge_route_to_installed_tracer():
    obs.observe("cache_lookup_seconds", 0.5)  # disabled: no-op
    obs.gauge("peak_memory_bytes", 1)
    with obs.tracing(clock=FakeClock()) as tracer:
        obs.observe("cache_lookup_seconds", 0.002)
        obs.gauge("peak_memory_bytes", 2048, span="run")
    assert tracer.histograms["cache_lookup_seconds"].count == 1
    assert tracer.gauges["peak_memory_bytes{span='run'}"].value == 2048.0


def test_memory_mode_records_peak_gauge_per_top_level_span():
    tracer = Tracer(clock=FakeClock(), memory=True)
    with tracer.span("run"):
        _ballast = [bytearray(64 * 1024) for _ in range(4)]
        with tracer.span("module"):
            pass
        del _ballast
    tracer.close()
    keys = [k for k in tracer.gauges if k.startswith("peak_memory_bytes")]
    assert keys == ["peak_memory_bytes{span='run'}"]
    assert tracer.gauges[keys[0]].value >= 4 * 64 * 1024


def test_memory_mode_stops_tracemalloc_it_started():
    import tracemalloc

    assert not tracemalloc.is_tracing()
    tracer = Tracer(clock=FakeClock(), memory=True)
    assert tracemalloc.is_tracing()
    tracer.close()
    assert not tracemalloc.is_tracing()
