"""Tracer behaviour: disabled path, nesting, stats, journal emission."""

import io

import pytest

from repro import obs
from repro.obs import NULL_SPAN, Stopwatch, Tracer
from repro.obs.tracer import _NullSpan


@pytest.fixture(autouse=True)
def _no_leftover_tracer():
    assert obs.active() is None, "a test left a tracer installed"
    yield
    obs.uninstall()


class FakeClock:
    """Deterministic clock: every read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        current = self.now
        self.now += self.step
        return current


# -- disabled path ----------------------------------------------------------


def test_disabled_span_is_the_shared_null_singleton():
    first = obs.span("anything", attr=1)
    second = obs.span("other")
    assert first is NULL_SPAN
    assert second is NULL_SPAN


def test_null_span_swallows_every_operation():
    with obs.span("phase") as span:
        span.add("backtracks", 3)
        span.merge({"decisions": 5})
        span.set("status", "ok")
    assert span.closed
    assert repr(span) == "NullSpan()"
    assert isinstance(span, _NullSpan)


def test_disabled_module_helpers_are_noops():
    obs.add("backtracks", 10)
    obs.event("escalate", engine="cdcl")
    assert obs.active() is None
    assert not obs.enabled()


# -- enabled path -----------------------------------------------------------


def test_spans_nest_and_record_parents():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("run") as run:
        with tracer.span("module") as module:
            assert module.parent_id == run.id
            assert tracer.current() is module
        assert tracer.current() is run
    assert tracer.current() is None
    assert run.closed and module.closed


def test_module_level_span_routes_to_installed_tracer():
    with obs.tracing(clock=FakeClock()) as tracer:
        assert obs.enabled()
        with obs.span("run"):
            obs.add("checkpoints")
            with obs.span("module", output="x") as inner:
                assert inner.name == "module"
                assert inner.attrs == {"output": "x"}
    assert tracer.stats["run"].counters["checkpoints"] == 1


def test_counters_attach_to_innermost_open_span():
    with obs.tracing(clock=FakeClock()) as tracer:
        with obs.span("outer"):
            with obs.span("inner"):
                obs.add("decisions", 2)
            obs.add("decisions", 5)
    assert tracer.stats["inner"].counters == {"decisions": 2}
    assert tracer.stats["outer"].counters == {"decisions": 5}


def test_stats_fold_count_total_and_max():
    clock = FakeClock(step=1.0)
    tracer = Tracer(clock=clock)
    for _ in range(3):
        with tracer.span("phase"):
            pass
    stats = tracer.stats["phase"]
    assert stats.count == 3
    assert stats.total_seconds > 0
    assert stats.max_seconds <= stats.total_seconds
    assert stats.mean_seconds == pytest.approx(stats.total_seconds / 3)


def test_exception_records_error_attr_and_closes_span():
    sink = io.StringIO()
    tracer = Tracer(journal=sink, clock=FakeClock())
    with pytest.raises(ValueError):
        with tracer.span("module") as span:
            raise ValueError("boom")
    assert span.closed
    assert span.attrs["error"] == "ValueError"
    assert '"error":"ValueError"' in sink.getvalue()


def test_tracing_restores_previous_tracer():
    outer = obs.install(Tracer(clock=FakeClock()))
    with obs.tracing(clock=FakeClock()) as inner:
        assert obs.active() is inner
    assert obs.active() is outer
    obs.uninstall()
    assert obs.active() is None


def test_close_ends_dangling_spans():
    tracer = Tracer(clock=FakeClock())
    tracer.span("run")
    tracer.span("module")
    tracer.close()
    assert tracer.current() is None
    assert tracer.stats["run"].count == 1
    assert tracer.stats["module"].count == 1


def test_counter_totals_and_profile_top():
    tracer = Tracer(clock=FakeClock(step=1.0))
    with tracer.span("slow"):
        tracer.add("decisions", 1)
        with tracer.span("fast"):
            tracer.add("decisions", 2)
    totals = tracer.counter_totals()
    assert totals["decisions"] == 3
    top = tracer.profile_top(1)
    assert [entry.name for entry in top] == ["slow"]
    assert set(tracer.stats_dict()) == {"slow", "fast"}


def test_journal_path_is_opened_and_closed(tmp_path):
    path = tmp_path / "trace.jsonl"
    with obs.tracing(journal=str(path), clock=FakeClock()):
        with obs.span("run"):
            pass
    text = path.read_text()
    assert text.splitlines()[0].startswith('{"ev":"trace"')
    assert '"name":"run"' in text


# -- Stopwatch --------------------------------------------------------------


def test_stopwatch_elapsed_and_restart():
    clock = FakeClock(step=1.0)
    watch = Stopwatch(clock=clock)
    assert watch.elapsed() == pytest.approx(1.0)
    watch.restart()
    assert watch.elapsed() == pytest.approx(1.0)


def test_stopwatch_exceeded_none_means_unlimited():
    watch = Stopwatch(clock=FakeClock(step=100.0))
    assert not watch.exceeded(None)
    assert watch.exceeded(50.0)


# -- absorbing worker traces (Tracer.absorb) --------------------------------


def test_absorb_merges_worker_stats():
    worker = Tracer(clock=FakeClock())
    with worker.span("module"):
        worker.add("decisions", 5)
    parent = Tracer(clock=FakeClock())
    with parent.span("module"):
        parent.add("decisions", 2)
    parent.absorb(worker.stats_dict())
    assert parent.stats["module"].count == 2
    assert parent.counter_totals()["decisions"] == 7


def test_absorb_into_empty_profile():
    worker = Tracer(clock=FakeClock())
    with worker.span("solve"):
        pass
    parent = Tracer(clock=FakeClock())
    parent.absorb(worker.stats_dict())
    assert parent.stats["solve"].count == 1


def test_absorbed_journal_appends_as_valid_segment():
    from repro.obs.journal import read_events, split_segments, validate_events

    worker_sink = io.StringIO()
    worker = Tracer(journal=worker_sink, clock=FakeClock())
    with worker.span("module"):
        pass
    worker.close()

    parent_sink = io.StringIO()
    parent = Tracer(journal=parent_sink, clock=FakeClock())
    with parent.span("run"):
        # Absorbed mid-run: the segment must not interleave with the
        # parent's own (still open) spans.
        parent.absorb(worker.stats_dict(), worker_sink.getvalue())
    parent.close()

    events = read_events(io.StringIO(parent_sink.getvalue()))
    assert validate_events(events) == []
    segments = split_segments(events)
    assert len(segments) == 2
    assert any(e.get("name") == "run" for e in segments[0][1])
    assert any(e.get("name") == "module" for e in segments[1][1])


def test_absorb_without_sink_discards_journal_text():
    worker_sink = io.StringIO()
    worker = Tracer(journal=worker_sink, clock=FakeClock())
    with worker.span("module"):
        pass
    worker.close()
    parent = Tracer(clock=FakeClock())  # no journal
    parent.absorb(worker.stats_dict(), worker_sink.getvalue())
    parent.close()  # must not raise
    assert parent.stats["module"].count == 1
