"""Journal well-formedness, including under injected pipeline faults."""

import io
import json

import pytest

from repro import obs
from repro.obs import (
    JournalError,
    aggregate_events,
    load_journal,
    read_events,
    span_tree,
    validate_events,
)
from repro.runtime import faults
from repro.runtime.run import run_synthesis
from repro.stg import parse_g

from tests.example_stgs import CSC_CONFLICT


@pytest.fixture(autouse=True)
def _clean_slate():
    faults.clear()
    yield
    faults.clear()
    obs.uninstall()


def _traced_run(**kwargs):
    """Run one synthesis with tracing; returns the parsed events."""
    sink = io.StringIO()
    stg = parse_g(CSC_CONFLICT)
    with obs.tracing(journal=sink):
        report = run_synthesis(stg, **kwargs)
    sink.seek(0)
    return read_events(sink), report


def test_successful_run_writes_wellformed_journal():
    events, report = _traced_run()
    assert report.status == "ok"
    assert validate_events(events) == []
    names = [e["name"] for e in events if e.get("ev") == "start"]
    assert "run" in names
    assert "build_state_graph" in names
    assert "module" in names
    assert "sat_attempt" in names


def test_spans_nest_run_module_sat_attempt():
    events, _ = _traced_run()
    roots = span_tree(events)
    assert [record["name"] for record, _ in roots] == ["run"]
    _, children = roots[0]
    child_names = {record["name"] for record, _ in children}
    assert "build_state_graph" in child_names
    assert "module" in child_names
    modules = [node for node in children if node[0]["name"] == "module"]
    grandchildren = {
        record["name"] for module in modules for record, _ in module[1]
    }
    # Not every output needs a SAT solve, but at least one does here.
    assert "sat_attempt" in grandchildren
    assert "input_set" in grandchildren
    assert "propagate" in grandchildren


def test_solve_spans_carry_formula_sizes():
    events, _ = _traced_run()
    attempts = [
        e for e in events
        if e.get("ev") == "end" and e.get("name") == "sat_attempt"
    ]
    assert attempts
    for attempt in attempts:
        counters = attempt.get("counters", {})
        assert counters.get("num_clauses", 0) > 0
        assert counters.get("num_vars", 0) > 0


def test_journal_wellformed_under_injected_module_fault():
    # The module-solve fault makes one output's modular pass raise; the
    # run degrades, and the journal must still nest and close cleanly.
    with faults.injected("module-solve"):
        events, report = _traced_run()
    assert report.status == "degraded"
    assert validate_events(events) == []
    module_ends = [
        e for e in events
        if e.get("ev") == "end" and e.get("name") == "module"
    ]
    statuses = {e.get("attrs", {}).get("status") for e in module_ends}
    assert "degraded" in statuses


def test_journal_wellformed_when_reachability_raises():
    # A fault *inside* build_state_graph propagates as an error run; the
    # exception class is recorded on the span and nothing is left open.
    with faults.injected("reachability-overflow"):
        events, report = _traced_run()
    assert report.status == "error"
    assert validate_events(events) == []
    build_end = next(
        e for e in events
        if e.get("ev") == "end" and e.get("name") == "build_state_graph"
    )
    assert build_end["attrs"]["error"] == "UnboundedNetError"


def test_aggregate_events_matches_live_tracer_fold():
    sink = io.StringIO()
    stg = parse_g(CSC_CONFLICT)
    with obs.tracing(journal=sink) as tracer:
        run_synthesis(stg)
        live = tracer.stats_dict()
    sink.seek(0)
    replayed = aggregate_events(read_events(sink))
    assert set(replayed) == set(live)
    for name, entry in replayed.items():
        assert entry.count == live[name]["count"]
        assert entry.counters.as_dict() == live[name]["counters"]


# -- validator rejection cases ---------------------------------------------


def _header():
    return {"ev": "trace", "version": 1}


def test_validator_requires_header_first():
    problems = validate_events([
        {"ev": "start", "id": 1, "name": "run", "t": 0.0},
        {"ev": "end", "id": 1, "name": "run", "t": 1.0, "dur": 1.0},
    ])
    assert any("header" in p for p in problems)


def test_validator_rejects_unclosed_span():
    problems = validate_events([
        _header(),
        {"ev": "start", "id": 1, "name": "run", "t": 0.0},
    ])
    assert any("never ended" in p for p in problems)


def test_validator_rejects_non_lifo_ends():
    problems = validate_events([
        _header(),
        {"ev": "start", "id": 1, "name": "run", "t": 0.0},
        {"ev": "start", "id": 2, "name": "module", "t": 0.1, "parent": 1},
        {"ev": "end", "id": 1, "name": "run", "t": 0.2, "dur": 0.2},
        {"ev": "end", "id": 2, "name": "module", "t": 0.3, "dur": 0.2},
    ])
    assert any("innermost" in p for p in problems)


def test_validator_rejects_backwards_timestamps():
    problems = validate_events([
        _header(),
        {"ev": "point", "name": "a", "t": 5.0},
        {"ev": "point", "name": "b", "t": 1.0},
    ])
    assert any("backwards" in p for p in problems)


def test_validator_rejects_unknown_parent():
    problems = validate_events([
        _header(),
        {"ev": "start", "id": 1, "name": "run", "t": 0.0, "parent": 99},
        {"ev": "end", "id": 1, "name": "run", "t": 1.0, "dur": 1.0},
    ])
    assert any("not an open span" in p for p in problems)


def test_validator_accepts_concatenated_segments():
    # A merged parallel journal is several complete journals in a row;
    # each header starts a fresh segment with its own id space and clock.
    segment = [
        _header(),
        {"ev": "start", "id": 1, "name": "bench", "t": 0.0},
        {"ev": "end", "id": 1, "name": "bench", "t": 1.0, "dur": 1.0},
    ]
    assert validate_events(segment + segment) == []


def test_validator_rejects_header_splitting_an_open_span():
    events = [
        _header(),
        {"ev": "start", "id": 1, "name": "bench", "t": 0.0},
        _header(),
    ]
    assert any("never ended" in p for p in validate_events(events))


def test_validator_rejects_bad_version():
    assert any(
        "version" in p
        for p in validate_events([{"ev": "trace", "version": 99}])
    )


def test_read_events_rejects_invalid_json():
    with pytest.raises(JournalError):
        read_events(["{not json"])


def test_load_journal_raises_with_problem_list():
    lines = [json.dumps({"ev": "start", "id": 1, "name": "x", "t": 0.0})]
    with pytest.raises(JournalError) as excinfo:
        load_journal(lines)
    assert excinfo.value.problems


# -- gzip transparency and tolerant reads -----------------------------------


def test_journal_open_round_trips_gzip(tmp_path):
    import gzip

    from repro.obs import journal_open

    path = str(tmp_path / "trace.jsonl.gz")
    with journal_open(path, "w") as handle:
        handle.write('{"ev":"trace","version":1}\n')
    with gzip.open(path, "rt", encoding="utf-8") as raw:
        assert raw.read().startswith('{"ev":"trace"')
    with journal_open(path, "r") as handle:
        assert json.loads(handle.readline())["ev"] == "trace"


def test_tracer_writes_and_read_events_reads_gz_paths(tmp_path):
    path = str(tmp_path / "run.jsonl.gz")
    with obs.tracing(journal=path):
        with obs.span("run"):
            pass
    events = read_events(path)
    assert validate_events(events) == []
    assert [e["ev"] for e in events] == ["trace", "start", "end"]


def test_read_events_tolerant_skips_torn_and_corrupt_lines():
    from repro.obs import read_events_tolerant

    lines = [
        '{"ev":"trace","version":1}',
        '{"ev":"start","id":1,"name":"run","t":0.0}',
        '{"ev":"end","id":1,"na',  # torn mid-write
        "[1,2,3]",                 # parses but is not an object
    ]
    events, skipped = read_events_tolerant(lines)
    assert [e["ev"] for e in events] == ["trace", "start"]
    assert len(skipped) == 2
    assert skipped[0].startswith("line 3:")
    assert "not a JSON object" in skipped[1]


def test_read_events_tolerant_clean_journal_has_no_skips():
    from repro.obs import read_events_tolerant

    sink = io.StringIO()
    with obs.tracing(journal=sink):
        with obs.span("run"):
            pass
    events, skipped = read_events_tolerant(io.StringIO(sink.getvalue()))
    assert skipped == []
    assert validate_events(events) == []


def test_read_events_still_raises_on_corrupt_line():
    with pytest.raises(JournalError):
        read_events(['{"ev":"trace"', "}{"])
