"""Unit tests for the gate-level circuit model."""

import pytest

from repro.csc import modular_synthesis
from repro.logic.cover import Cover
from repro.stg import parse_g
from repro.verify import Circuit
from repro.runtime.options import SynthesisOptions

from tests.example_stgs import HANDSHAKE


def simple_circuit():
    """b = a over the vector (a, b)."""
    return Circuit(
        signals=("a", "b"),
        inputs=["a"],
        covers={"b": Cover.from_strings(2, ["1-"])},
    )


class TestConstruction:
    def test_unknown_input_rejected(self):
        with pytest.raises(ValueError):
            Circuit(("a",), ["zz"], {"a": Cover(1)})

    def test_missing_cover_rejected(self):
        with pytest.raises(ValueError):
            Circuit(("a", "b"), ["a"], {})

    def test_cover_width_checked(self):
        with pytest.raises(ValueError):
            Circuit(
                ("a", "b"), ["a"], {"b": Cover.from_strings(3, ["1--"])}
            )

    def test_from_synthesis(self):
        stg = parse_g(HANDSHAKE)
        result = modular_synthesis(stg)
        circuit = Circuit.from_synthesis(result, stg.inputs)
        assert circuit.signals == result.expanded.signals
        assert set(circuit.inputs) == {"a"}

    def test_from_synthesis_needs_covers(self):
        stg = parse_g(HANDSHAKE)
        result = modular_synthesis(
            stg, options=SynthesisOptions(minimize=False)
        )
        with pytest.raises(ValueError):
            Circuit.from_synthesis(result, stg.inputs)


class TestEvaluation:
    def test_next_value(self):
        circuit = simple_circuit()
        assert circuit.next_value("b", (1, 0)) == 1
        assert circuit.next_value("b", (0, 1)) == 0

    def test_excited(self):
        circuit = simple_circuit()
        assert circuit.excited((1, 0)) == ["b"]
        assert circuit.excited((1, 1)) == []
        assert circuit.excited((0, 1)) == ["b"]

    def test_fire_toggles(self):
        circuit = simple_circuit()
        assert circuit.fire((1, 0), "b") == (1, 1)
        assert circuit.fire((1, 1), "a") == (0, 1)
