"""Hypothesis properties tying synthesis, verification, and replay.

Two invariants over generated controllers (derandomized, so CI failures
replay locally without a seed hunt):

* **soundness on correct circuits** -- whatever the generator produces,
  a successful synthesis passes the strongest level (``hazards``) with
  the persistency check actually run;
* **trace validity** -- every counterexample the checker emits for a
  mutated circuit replays move by legal move on the closed loop and
  re-manifests its violation at the end of the trace.
"""

from hypothesis import HealthCheck, given, settings

from repro.csc import modular_synthesis
from repro.runtime.options import SynthesisOptions
from repro.stategraph import build_state_graph
from repro.verify import (
    check_circuit,
    mutant_circuit,
    mutate_result,
    observable_check,
    replay_counterexample,
    verify_result,
)

from tests.example_stgs import controller, well_formed

_SETTINGS = dict(
    max_examples=6,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def _synthesise(text):
    stg = well_formed(text)
    if stg is None:
        return None, None
    graph = build_state_graph(stg)
    return stg, modular_synthesis(
        graph, options=SynthesisOptions(minimize=True)
    )


@settings(**_SETTINGS)
@given(controller())
def test_synthesised_controllers_are_hazard_free(text):
    stg, result = _synthesise(text)
    if stg is None:
        return
    report = verify_result(result, stg, level="hazards")
    assert report.verdict is True, report.violations
    assert "persistency" in report.checks
    assert not report.truncated


@settings(**_SETTINGS)
@given(controller())
def test_mutant_counterexamples_replay(text):
    stg, result = _synthesise(text)
    if stg is None:
        return
    for mutant in mutate_result(result, seed=17, per_kind=1):
        classification = observable_check(result, mutant)
        circuit, initial = mutant_circuit(result, stg.inputs, mutant)
        report = check_circuit(
            circuit, result.graph, level="hazards",
            initial_vector=initial, max_states=50_000,
        )
        if classification == "equivalent":
            assert report.verdict is True, (mutant.detail, report.violations)
        for cex in report.violations:
            # Trace validity: the recorded firing sequence is legal
            # step by step and ends in the recorded violation.
            assert replay_counterexample(
                circuit, result.graph, cex, initial_vector=initial
            ) is True, (mutant.detail, cex)
