"""Mutation-based negative tests: seeded almost-correct circuits.

Every mutant must either fail verification with a counterexample that
replays step by step, or be statically proven observably equivalent to
the original circuit (in which case the checker *must not* flag it --
the suite's false-positive guard).  Aggregate assertions pin that the
fixed seeds actually exercise every operator: at least one caught
mutant per mutation kind across the corpus.
"""

import pytest

from repro.csc import modular_synthesis
from repro.runtime.options import SynthesisOptions
from repro.stategraph import build_state_graph
from repro.stg import parse_g
from repro.verify import (
    MUTATION_KINDS,
    check_circuit,
    mutant_circuit,
    mutate_result,
    observable_check,
    replay_counterexample,
)

from tests.example_stgs import ALL, generated_corpus

SEED = 5


def _corpus():
    entries = [(name, parse_g(text)) for name, text in sorted(ALL.items())]
    entries += [
        (g.name, g.stg) for g in sorted(
            generated_corpus(), key=lambda g: g.name
        )[:2]
    ]
    return entries


def _synthesise(stg):
    graph = build_state_graph(stg)
    return modular_synthesis(
        graph, options=SynthesisOptions(minimize=True)
    )


@pytest.fixture(scope="module")
def campaign():
    """``name -> (stg, result, [(mutant, classification, report)])``."""
    outcome = {}
    for name, stg in _corpus():
        result = _synthesise(stg)
        rows = []
        for mutant in mutate_result(result, seed=SEED, per_kind=2):
            classification = observable_check(result, mutant)
            circuit, initial = mutant_circuit(result, stg.inputs, mutant)
            report = check_circuit(
                circuit, result.graph, level="hazards",
                initial_vector=initial, max_states=50_000,
            )
            rows.append((mutant, classification, report))
        outcome[name] = (stg, result, rows)
    return outcome


def test_mutants_are_deterministic():
    stg = parse_g(ALL["handshake"])
    result = _synthesise(stg)
    first = mutate_result(result, seed=SEED)
    second = mutate_result(result, seed=SEED)
    assert [(m.kind, m.signal, m.detail) for m in first] == [
        (m.kind, m.signal, m.detail) for m in second
    ]
    assert first, "the handshake circuit must admit mutants"


def test_every_mutant_fails_or_is_proven_equivalent(campaign):
    for name, (stg, result, rows) in campaign.items():
        for mutant, classification, report in rows:
            if classification == "equivalent":
                # The mutated cover implements the exact same function
                # on every reachable code: the checker must stay quiet.
                assert report.verdict is True, (
                    name, mutant.detail, report.violations
                )
            else:
                # Not statically equivalent: either the model check
                # catches it, or the mutant is a legitimate alternative
                # implementation -- but a clean verdict must be a real
                # full exploration, never a truncated one.
                assert report.verdict is not None, (name, mutant.detail)


def test_every_violation_replays(campaign):
    replayed = 0
    for name, (stg, result, rows) in campaign.items():
        for mutant, _classification, report in rows:
            circuit, initial = mutant_circuit(result, stg.inputs, mutant)
            for cex in report.violations:
                assert replay_counterexample(
                    circuit, result.graph, cex, initial_vector=initial
                ) is True, (name, mutant.detail, cex)
                replayed += 1
    assert replayed >= 1, "the seeded campaign produced no counterexamples"


def test_each_mutation_kind_is_caught(campaign):
    caught = {kind: 0 for kind in MUTATION_KINDS}
    for _name, (_stg, _result, rows) in campaign.items():
        for mutant, _classification, report in rows:
            if report.verdict is False:
                caught[mutant.kind] += 1
    missed = [kind for kind, count in caught.items() if count == 0]
    assert not missed, f"no seeded mutant caught for: {missed} ({caught})"


def test_handshake_swapped_reset_is_caught():
    # Flipping b's reset powers the circuit up in a state the
    # specification never visits: the falling b gate is an unexpected
    # output at reset, with the empty trace as counterexample.
    stg = parse_g(ALL["handshake"])
    result = _synthesise(stg)
    mutants = [
        m for m in mutate_result(
            result, seed=SEED, kinds=("swap-reset",), per_kind=5
        )
        if m.signal == "b"
    ]
    assert mutants, "expected a swap-reset mutant for b"
    mutant = mutants[0]
    circuit, initial = mutant_circuit(result, stg.inputs, mutant)
    report = check_circuit(
        circuit, result.graph, level="hazards", initial_vector=initial
    )
    kinds = {(cex.kind, cex.signal) for cex in report.violations}
    assert ("unexpected-output", "b") in kinds
    for cex in report.violations:
        assert replay_counterexample(
            circuit, result.graph, cex, initial_vector=initial
        ) is True


def test_drop_term_needs_multi_cube_covers():
    stg = parse_g(ALL["handshake"])
    result = _synthesise(stg)
    for mutant in mutate_result(
        result, seed=SEED, kinds=("drop-term",), per_kind=10
    ):
        # Single-cube covers are never drop-term sites (dropping the
        # only cube is a constant-0 gate, already covered by
        # flip-literal-style breakage and uninteresting here).
        assert len(result.covers[mutant.signal]) > 1
