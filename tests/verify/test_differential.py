"""Differential cross-checks: every synthesis method, one contract.

The three methods (modular, direct, lavagno) and the modular method's
execution variants (parallel workers, warm result cache) differ only in
*how* they reach a result.  One harness pins what they must all agree
on, for benchmark STGs and Hypothesis-generated controllers alike:

* the expanded graph satisfies CSC;
* collapsing the inserted state signals recovers the original state
  graph (behaviour preservation);
* the gate-level closed loop conforms to the specification
  (:func:`repro.verify.verify_synthesis`).
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.baselines import lavagno_synthesis
from repro.bench import load_benchmark
from repro.csc import direct_synthesis, modular_synthesis
from repro.runtime.options import SynthesisOptions
from repro.stategraph import build_state_graph, csc_conflicts, quotient
from repro.stg import parse_g
from repro.verify import verify_synthesis

from tests.example_stgs import ALL, controller, generated_corpus, well_formed
from tests.verify.test_conformance import SMALL_BENCHMARKS


def _synthesise_modular(graph):
    return modular_synthesis(graph, options=SynthesisOptions(minimize=True))


def _synthesise_modular_jobs(graph):
    return modular_synthesis(
        graph, options=SynthesisOptions(minimize=True, jobs=2)
    )


def _synthesise_modular_cached(graph, tmp_path):
    options = SynthesisOptions(minimize=True, cache_dir=str(tmp_path))
    modular_synthesis(graph, options=options)  # prime
    return modular_synthesis(graph, options=options)  # warm


def _synthesise_modular_oneshot(graph):
    return modular_synthesis(
        graph, options=SynthesisOptions(minimize=True, sat_mode="oneshot")
    )


def _synthesise_direct(graph):
    return direct_synthesis(graph, options=SynthesisOptions(minimize=True))


def _synthesise_lavagno(graph):
    return lavagno_synthesis(graph, options=SynthesisOptions(minimize=True))


METHODS = {
    "modular": _synthesise_modular,
    "modular-jobs2": _synthesise_modular_jobs,
    "modular-oneshot": _synthesise_modular_oneshot,
    "direct": _synthesise_direct,
    "lavagno": _synthesise_lavagno,
}


def check_synthesis(stg, graph, result):
    """The behavioural contract every method must satisfy."""
    assert csc_conflicts(result.expanded) == [], (
        "expanded graph still has CSC conflicts"
    )
    if result.assignment.names:
        collapsed = quotient(
            result.expanded, hidden_signals=result.assignment.names
        ).graph
        assert sorted(collapsed.codes) == sorted(graph.codes), (
            "collapsing the inserted signals does not recover the "
            "original state graph"
        )
    report = verify_synthesis(result, stg)
    assert report.conforms, (report.violations, report.deadlocks)


DIFFERENTIAL_BENCHMARKS = SMALL_BENCHMARKS[:6]


@pytest.mark.parametrize("method", sorted(METHODS))
@pytest.mark.parametrize("name", DIFFERENTIAL_BENCHMARKS)
def test_benchmarks_differential(name, method):
    stg = load_benchmark(name)
    graph = build_state_graph(stg)
    check_synthesis(stg, graph, METHODS[method](graph))


@pytest.mark.parametrize("method", sorted(METHODS))
@pytest.mark.parametrize("name", sorted(ALL))
def test_examples_differential(name, method):
    stg = parse_g(ALL[name])
    graph = build_state_graph(stg)
    check_synthesis(stg, graph, METHODS[method](graph))


@pytest.mark.parametrize("method", sorted(METHODS))
@pytest.mark.parametrize(
    "name", sorted(g.name for g in generated_corpus())
)
def test_generated_differential(name, method):
    # The seeded generated corpus (fixed seeds, capped signal count)
    # runs the same cross-method contract beyond the hand-written
    # examples: CSC, behaviour preservation, and closed-loop
    # conformance for every method variant.
    generated = {g.name: g for g in generated_corpus()}[name]
    graph = build_state_graph(generated.stg)
    check_synthesis(generated.stg, graph, METHODS[method](graph))


def test_warm_cache_differential(tmp_path):
    # The cached variant hits the filesystem, so it gets its own (non-
    # parametrized) pass over a benchmark and an example.
    for source in (load_benchmark("vbe-ex1"), parse_g(ALL["handshake"])):
        graph = build_state_graph(source)
        result = _synthesise_modular_cached(graph, tmp_path)
        check_synthesis(source, graph, result)


@pytest.mark.parametrize("name", DIFFERENTIAL_BENCHMARKS)
def test_sat_modes_agree(name):
    # The incremental solver must be a pure accelerant: the same final
    # state-signal count as the cold one-shot loop, and rows that pass
    # the full behavioural contract.
    stg = load_benchmark(name)
    graph = build_state_graph(stg)
    per_mode = {}
    for mode in ("incremental", "oneshot"):
        result = modular_synthesis(
            graph, options=SynthesisOptions(minimize=True, sat_mode=mode)
        )
        check_synthesis(stg, graph, result)
        per_mode[mode] = result
    assert (
        len(per_mode["incremental"].assignment.names)
        == len(per_mode["oneshot"].assignment.names)
    ), "sat modes disagree on the number of inserted state signals"


@settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(controller())
def test_fuzzed_controllers_differential(text):
    stg = well_formed(text)
    if stg is None:
        return
    graph = build_state_graph(stg)
    signals = {}
    for method in ("modular", "modular-jobs2", "modular-oneshot", "direct"):
        result = METHODS[method](graph)
        check_synthesis(stg, graph, result)
        signals[method] = len(result.assignment.names)
    assert signals["modular"] == signals["modular-oneshot"], (
        "sat modes disagree on the number of inserted state signals"
    )
