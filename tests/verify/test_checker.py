"""The leveled checker: levels, verdicts, budgets, counterexample replay."""

from types import SimpleNamespace

import pytest

from repro import api
from repro.csc import modular_synthesis
from repro.logic.cover import DASH, Cover, Cube
from repro.runtime.budget import Budget, BudgetExhaustedError
from repro.runtime.options import SynthesisOptions
from repro.runtime.run import run_synthesis
from repro.stategraph import build_state_graph
from repro.stg import parse_g
from repro.verify import (
    Circuit,
    TraceReplayError,
    VerifyReport,
    check_circuit,
    replay_counterexample,
    replay_trace,
    verify_result,
)

from tests.example_stgs import ALL, CONCURRENT, CSC_CONFLICT, HANDSHAKE


def _synthesise(text):
    stg = parse_g(text)
    graph = build_state_graph(stg)
    return stg, graph, modular_synthesis(graph)


# -- levels ------------------------------------------------------------------


def test_csc_level_is_static():
    stg, _graph, result = _synthesise(CSC_CONFLICT)
    report = verify_result(result, stg, level="csc")
    assert report.level == "csc"
    assert report.checks == ("csc",)
    assert report.verdict is True
    assert report.ok
    assert report.states_explored == 0  # no closed-loop traversal


@pytest.mark.parametrize("name", sorted(ALL))
@pytest.mark.parametrize("level", ["conformance", "hazards"])
def test_closed_loop_levels_pass_on_correct_synthesis(name, level):
    stg, _graph, result = _synthesise(ALL[name])
    report = verify_result(result, stg, level=level)
    assert report.verdict is True, report.violations
    assert report.states_explored > 0
    expected = ("csc", "conformance")
    if level == "hazards":
        expected += ("persistency",)
    assert report.checks == expected


def test_unknown_level_rejected():
    stg, _graph, result = _synthesise(HANDSHAKE)
    with pytest.raises(ValueError):
        verify_result(result, stg, level="everything")
    circuit = Circuit.from_synthesis(result, stg.inputs)
    with pytest.raises(ValueError):
        check_circuit(circuit, result.graph, level="csc")


def test_csc_conflict_counterexample():
    graph = build_state_graph(parse_g(CSC_CONFLICT))
    fake = SimpleNamespace(expanded=graph, graph=graph, covers=None)
    report = verify_result(fake, level="csc")
    assert report.verdict is False
    assert [cex.kind for cex in report.violations] == ["csc-conflict"]
    # The closed-loop levels short-circuit on a coding failure.
    report = verify_result(fake, level="hazards")
    assert report.verdict is False
    assert report.checks == ("csc",)


def test_result_without_covers_skips_closed_loop():
    stg = parse_g(HANDSHAKE)
    graph = build_state_graph(stg)
    result = modular_synthesis(
        graph, options=SynthesisOptions(minimize=False)
    )
    report = verify_result(result, stg, level="hazards")
    assert report.skipped == "no-covers"
    assert report.verdict is None


# -- violation kinds and replay ----------------------------------------------


def _handshake_loop(b_cover_cubes, extra_signal_cubes=None):
    """A hand-built circuit over the handshake environment.

    Signals are ``(a, b, s)`` with ``a`` the input; ``s`` is an
    inserted state signal the specification does not know about.
    """
    graph = build_state_graph(parse_g(HANDSHAKE))
    covers = {"b": Cover(3, b_cover_cubes)}
    signals = tuple(graph.signals) + ("s",)
    if extra_signal_cubes is not None:
        covers["s"] = Cover(3, extra_signal_cubes)
    else:
        covers["s"] = Cover(3, [])  # constant 0: s never moves
    circuit = Circuit(signals, {"a"}, covers)
    return circuit, graph


def test_missing_output_caught_and_replays():
    # b's gate is constant 0: after a+ the spec requires b+ forever.
    circuit, graph = _handshake_loop([])
    report = check_circuit(circuit, graph, level="conformance")
    kinds = {(cex.kind, cex.signal) for cex in report.violations}
    assert ("missing-output", "b") in kinds
    for cex in report.violations:
        assert replay_counterexample(circuit, graph, cex) is True


def test_unexpected_output_caught_and_replays():
    # b's gate is constant 1: excited at reset, where the spec only
    # enables a+.
    circuit, graph = _handshake_loop([Cube([DASH, DASH, DASH])])
    report = check_circuit(circuit, graph, level="conformance")
    kinds = {(cex.kind, cex.signal) for cex in report.violations}
    assert ("unexpected-output", "b") in kinds
    for cex in report.violations:
        assert replay_counterexample(circuit, graph, cex) is True


def test_semi_modularity_caught_only_at_hazards_level():
    # b = a (correct); s = a AND NOT b -- excited after a+, disabled by
    # b+ firing without ever firing itself.  Observable behaviour stays
    # conforming, so only the persistency check can see the glitch.
    circuit, graph = _handshake_loop(
        [Cube([1, DASH, DASH])], [Cube([1, 0, DASH])]
    )
    clean = check_circuit(circuit, graph, level="conformance")
    assert clean.violations == []
    report = check_circuit(circuit, graph, level="hazards")
    kinds = {(cex.kind, cex.signal) for cex in report.violations}
    assert ("semi-modularity", "s") in kinds
    for cex in report.violations:
        assert cex.trace, "persistency counterexamples carry the killer firing"
        assert replay_counterexample(circuit, graph, cex) is True


def test_output_hazard_kind_on_specification_outputs():
    # In the concurrent example x and y rise together after a+; a gate
    # x = a AND NOT y loses its excitation when y+ fires first.
    stg, graph, result = _synthesise(CONCURRENT)
    signals = result.expanded.signals
    index = {s: i for i, s in enumerate(signals)}
    positions = [DASH] * len(signals)
    positions[index["a"]] = 1
    positions[index["y"]] = 0
    covers = dict(result.covers)
    covers["x"] = Cover(len(signals), [Cube(positions)])
    circuit = Circuit(signals, stg.inputs, covers)
    initial = tuple(result.expanded.code_of(result.expanded.initial))
    report = check_circuit(
        circuit, result.graph, level="hazards", initial_vector=initial
    )
    kinds = {(cex.kind, cex.signal) for cex in report.violations}
    assert ("output-hazard", "x") in kinds
    for cex in report.violations:
        if cex.kind == "output-hazard":
            assert cex.trace[-1] != cex.signal
        assert replay_counterexample(
            circuit, result.graph, cex, initial_vector=initial
        ) is True


def test_replay_rejects_illegal_traces():
    stg, _graph, result = _synthesise(HANDSHAKE)
    circuit = Circuit.from_synthesis(result, stg.inputs)
    with pytest.raises(TraceReplayError):
        replay_trace(circuit, result.graph, ["b"])  # b is not excited yet
    states = replay_trace(circuit, result.graph, ["a", "b"])
    assert len(states) == 3


# -- budgets and truncation --------------------------------------------------


def test_truncated_pass_has_no_verdict():
    stg, _graph, result = _synthesise(CONCURRENT)
    circuit = Circuit.from_synthesis(result, stg.inputs)
    report = check_circuit(circuit, result.graph, max_states=2)
    assert report.truncated
    assert report.verdict is None
    assert not report.ok


def test_budget_state_cap_raises():
    stg, _graph, result = _synthesise(CONCURRENT)
    circuit = Circuit.from_synthesis(result, stg.inputs)
    with pytest.raises(BudgetExhaustedError):
        check_circuit(
            circuit, result.graph, budget=Budget(max_states=3)
        )


# -- run_synthesis / API wiring ----------------------------------------------


def test_run_synthesis_defaults_to_static_csc_check():
    report = run_synthesis(HANDSHAKE)
    assert report.verify is not None
    assert report.verify.level == "csc"
    assert report.verify.verdict is True
    assert report.metrics.as_dict().get("verify_checks") == 1


def test_run_synthesis_hazards_level_attaches_full_report():
    report = run_synthesis(
        HANDSHAKE, options=SynthesisOptions(verify_level="hazards")
    )
    verify = report.verify
    assert verify.level == "hazards"
    assert verify.verdict is True
    assert verify.states_explored > 0
    counters = report.metrics.as_dict()
    assert counters["verify_checks"] == 3
    assert counters["verify_states"] == verify.states_explored
    assert "verify: ok (hazards)" in report.summary()


def test_run_synthesis_skips_verify_when_budget_expired():
    report = run_synthesis(
        HANDSHAKE,
        options=SynthesisOptions(
            verify_level="hazards",
            budget=Budget(max_seconds=1e9),
        ),
    )
    # Force the post-synthesis deadline check to see an expired budget.
    assert report.verify.verdict is True  # sanity: it ran this time

    expired = Budget(max_seconds=1e-9)
    while not expired.expired():
        pass
    report = run_synthesis(
        HANDSHAKE,
        method="direct",
        options=SynthesisOptions(
            verify_level="hazards", budget=expired, fallback=True,
        ),
    )
    if report.status in ("ok", "degraded"):
        assert report.verify.skipped == "deadline"
        assert report.verify.verdict is None


def test_response_carries_verify_document():
    report = run_synthesis(
        HANDSHAKE, options=SynthesisOptions(verify_level="hazards")
    )
    response = api.response_from_report(report, model="handshake")
    assert response.verified is True
    assert response.verify["level"] == "hazards"
    assert response.verify["verdict"] is True
    assert response.verify["violations"] == []
    # The canonical encoding round-trips the document.
    assert api.from_json(api.to_json_bytes(response)) == response


def test_response_csc_level_yields_no_closed_loop_verdict():
    report = run_synthesis(HANDSHAKE)  # default: csc
    response = api.response_from_report(report, model="handshake")
    assert response.verified is None
    assert response.verify["level"] == "csc"
    assert response.verify["verdict"] is True


def test_response_skipped_verify_has_no_verdict():
    report = run_synthesis(
        HANDSHAKE, options=SynthesisOptions(verify_level="hazards")
    )
    report.verify = VerifyReport("hazards", skipped="deadline")
    response = api.response_from_report(report, model="handshake")
    assert response.verified is None
    assert response.verify["skipped"] == "deadline"


def test_request_verify_level_round_trip_and_fingerprint():
    base = api.SynthesisRequest(g_text=HANDSHAKE)
    assert base.verify_level == "hazards"
    conf = api.SynthesisRequest(g_text=HANDSHAKE, verify_level="conformance")
    assert base.fingerprint() != conf.fingerprint()
    assert conf.to_options().verify_level == "conformance"
    with pytest.raises(api.ApiError):
        api.SynthesisRequest(g_text=HANDSHAKE, verify_level="everything")
