"""Closed-loop conformance tests: synthesised circuits against their STGs."""

import pytest

from repro.baselines import lavagno_synthesis
from repro.bench import load_benchmark
from repro.csc import direct_synthesis, modular_synthesis
from repro.logic.cover import Cover
from repro.stategraph import build_state_graph
from repro.stg import parse_g
from repro.verify import Circuit, check_conformance, verify_synthesis

from tests.example_stgs import ALL, HANDSHAKE

SMALL_BENCHMARKS = [
    "vbe-ex1", "sendr-done", "nousc-ser", "nouse", "fifo", "wrdata",
    "sbuf-read-ctl", "atod", "alloc-outbound", "alex-nonfc",
]


@pytest.mark.parametrize("name", sorted(ALL))
def test_modular_circuits_conform(name):
    stg = parse_g(ALL[name])
    report = verify_synthesis(modular_synthesis(stg), stg)
    assert report.conforms, report.violations


@pytest.mark.parametrize("name", sorted(ALL))
def test_direct_circuits_conform(name):
    stg = parse_g(ALL[name])
    report = verify_synthesis(direct_synthesis(stg), stg)
    assert report.conforms, report.violations


@pytest.mark.parametrize("name", SMALL_BENCHMARKS)
def test_benchmark_circuits_conform(name):
    stg = load_benchmark(name)
    graph = build_state_graph(stg)
    report = verify_synthesis(modular_synthesis(graph), stg)
    assert report.conforms, report.violations


@pytest.mark.parametrize("name", SMALL_BENCHMARKS[:4])
def test_lavagno_circuits_conform(name):
    stg = load_benchmark(name)
    graph = build_state_graph(stg)
    report = verify_synthesis(lavagno_synthesis(graph), stg)
    assert report.conforms, report.violations


class TestViolationDetection:
    def test_broken_cover_is_caught(self):
        # Invert grant's function: the circuit immediately misbehaves.
        stg = parse_g(HANDSHAKE)
        result = modular_synthesis(stg)
        graph = result.expanded
        bad_covers = dict(result.covers)
        bad_covers["b"] = Cover.from_strings(len(graph.signals), ["0-"])
        circuit = Circuit(graph.signals, stg.inputs, bad_covers)
        report = check_conformance(circuit, result.graph)
        assert not report.conforms
        kinds = {v.kind for v in report.violations}
        assert "unexpected-output" in kinds or "missing-output" in kinds

    def test_constant_cover_misses_outputs(self):
        stg = parse_g(HANDSHAKE)
        result = modular_synthesis(stg)
        graph = result.expanded
        dead_covers = dict(result.covers)
        dead_covers["b"] = Cover(len(graph.signals))  # constant 0
        circuit = Circuit(graph.signals, stg.inputs, dead_covers)
        report = check_conformance(circuit, result.graph)
        assert any(
            v.kind == "missing-output" and v.signal == "b"
            for v in report.violations
        )

    def test_violation_has_trace(self):
        stg = parse_g(HANDSHAKE)
        result = modular_synthesis(stg)
        graph = result.expanded
        bad_covers = dict(result.covers)
        bad_covers["b"] = Cover.from_strings(len(graph.signals), ["--"])
        circuit = Circuit(graph.signals, stg.inputs, bad_covers)
        report = check_conformance(circuit, result.graph)
        assert not report.conforms
        violation = report.violations[0]
        assert isinstance(violation.trace, list)
        assert "Violation" in repr(violation)

    def test_spec_signals_must_be_subset(self):
        stg = parse_g(HANDSHAKE)
        result = modular_synthesis(stg)
        circuit = Circuit(("a",), ["a"], {})
        with pytest.raises(ValueError):
            check_conformance(circuit, result.graph)
