"""Tests for the networkx interop exports."""

import networkx as nx

from repro.stategraph import build_state_graph
from repro.stg import parse_g

from tests.example_stgs import CHOICE, HANDSHAKE


def test_petri_net_export():
    stg = parse_g(CHOICE)
    graph = stg.net.to_networkx()
    kinds = nx.get_node_attributes(graph, "kind")
    assert kinds["p0"] == "place"
    assert kinds["a+"] == "transition"
    assert graph.nodes["p0"]["tokens"] == 1
    # Bipartite: every arc connects a place and a transition.
    for source, target in graph.edges:
        assert {kinds[source], kinds[target]} == {"place", "transition"}


def test_state_graph_export():
    graph = build_state_graph(parse_g(HANDSHAKE))
    exported = graph.to_networkx()
    assert exported.number_of_nodes() == graph.num_states
    assert exported.number_of_edges() == graph.num_edges
    assert exported.nodes[graph.initial]["code"] == (0, 0)
    signals = {
        data["signal"] for _u, _v, data in exported.edges(data=True)
    }
    assert signals == {"a", "b"}


def test_live_specification_is_strongly_connected():
    # A live, 1-safe handshake's state graph is one strongly connected
    # component -- checked via the networkx view.
    graph = build_state_graph(parse_g(HANDSHAKE))
    assert nx.is_strongly_connected(graph.to_networkx())
