"""Unit tests for repro.petrinet.properties."""

from repro.petrinet import (
    NetBuilder,
    PetriNet,
    is_free_choice,
    is_live,
    is_marked_graph,
    is_safe,
    is_state_machine,
)


def cycle_net():
    return PetriNet(
        ["p0", "p1"],
        ["t1", "t2"],
        [("p0", "t1"), ("t1", "p1"), ("p1", "t2"), ("t2", "p0")],
        ["p0"],
    )


def choice_net():
    """One place feeding two transitions (a free choice)."""
    return PetriNet(
        ["p0", "p1", "p2"],
        ["a", "b", "ra", "rb"],
        [
            ("p0", "a"), ("p0", "b"),
            ("a", "p1"), ("b", "p2"),
            ("p1", "ra"), ("p2", "rb"),
            ("ra", "p0"), ("rb", "p0"),
        ],
        ["p0"],
    )


def non_free_choice_net():
    """p0 feeds {a, b} but b also needs p1: the choice is not free."""
    return PetriNet(
        ["p0", "p1", "p2"],
        ["a", "b", "r"],
        [
            ("p0", "a"), ("p0", "b"), ("p1", "b"),
            ("a", "p2"), ("b", "p2"),
            ("p2", "r"), ("r", "p0"), ("r", "p1"),
        ],
        ["p0", "p1"],
    )


class TestStructuralClasses:
    def test_cycle_is_marked_graph_and_state_machine(self):
        net = cycle_net()
        assert is_marked_graph(net)
        assert is_state_machine(net)
        assert is_free_choice(net)

    def test_choice_is_not_marked_graph(self):
        net = choice_net()
        assert not is_marked_graph(net)
        assert is_state_machine(net)
        assert is_free_choice(net)

    def test_fork_join_is_marked_graph_not_state_machine(self):
        net = (
            NetBuilder()
            .transition("f").transition("a").transition("b").transition("j")
            .arc("f", "a").arc("f", "b").arc("a", "j").arc("b", "j")
            .arc("j", "f").mark("j", "f")
            .build()
        )
        assert is_marked_graph(net)
        assert not is_state_machine(net)

    def test_non_free_choice_detected(self):
        assert not is_free_choice(non_free_choice_net())


class TestBehaviouralProperties:
    def test_safe_cycle(self):
        assert is_safe(cycle_net())

    def test_unsafe_net(self):
        # Two conserved tokens can both land in place c: bounded, unsafe.
        net = PetriNet(
            ["a", "b", "c"],
            ["t", "u", "v1", "v2"],
            [
                ("a", "t"), ("t", "c"),
                ("b", "u"), ("u", "c"),
                ("c", "v1"), ("v1", "a"),
                ("c", "v2"), ("v2", "b"),
            ],
            ["a", "b"],
        )
        assert not is_safe(net, token_bound=4, marking_limit=50)

    def test_live_cycle(self):
        assert is_live(cycle_net())

    def test_choice_net_is_live(self):
        assert is_live(choice_net())

    def test_deadlocking_net_is_not_live(self):
        net = PetriNet(
            ["p0", "p1"], ["t"], [("p0", "t"), ("t", "p1")], ["p0"]
        )
        assert not is_live(net)

    def test_dead_transition_is_not_live(self):
        net = PetriNet(
            ["p0", "p1"],
            ["t", "never"],
            [("p0", "t"), ("t", "p0"), ("p1", "never"), ("never", "p1")],
            ["p0"],
        )
        assert not is_live(net)
