"""Unit tests for repro.petrinet.net."""

import pytest

from repro.petrinet import Marking, NetStructureError, PetriNet


def simple_cycle():
    """p0 -> t1 -> p1 -> t2 -> p0, token on p0."""
    return PetriNet(
        places=["p0", "p1"],
        transitions=["t1", "t2"],
        arcs=[("p0", "t1"), ("t1", "p1"), ("p1", "t2"), ("t2", "p0")],
        initial_marking=["p0"],
    )


def fork_join():
    """t0 forks into p1,p2; t1/t2 consume them; t3 joins p3,p4."""
    return PetriNet(
        places=["p0", "p1", "p2", "p3", "p4", "p5"],
        transitions=["t0", "t1", "t2", "t3"],
        arcs=[
            ("p0", "t0"), ("t0", "p1"), ("t0", "p2"),
            ("p1", "t1"), ("t1", "p3"),
            ("p2", "t2"), ("t2", "p4"),
            ("p3", "t3"), ("p4", "t3"), ("t3", "p5"),
        ],
        initial_marking=["p0"],
    )


class TestStructure:
    def test_place_transition_name_collision(self):
        with pytest.raises(NetStructureError):
            PetriNet(["x"], ["x"], [])

    def test_arc_to_unknown_node(self):
        with pytest.raises(NetStructureError):
            PetriNet(["p"], ["t"], [("p", "unknown")])

    def test_place_to_place_arc_rejected(self):
        with pytest.raises(NetStructureError):
            PetriNet(["p", "q"], ["t"], [("p", "q")])

    def test_transition_to_transition_arc_rejected(self):
        with pytest.raises(NetStructureError):
            PetriNet(["p"], ["t", "u"], [("t", "u")])

    def test_duplicate_arc_rejected(self):
        with pytest.raises(NetStructureError):
            PetriNet(["p"], ["t"], [("p", "t"), ("p", "t")])

    def test_marking_of_unknown_place_rejected(self):
        with pytest.raises(NetStructureError):
            PetriNet(["p"], ["t"], [("p", "t")], ["nope"])

    def test_presets_and_postsets(self):
        net = fork_join()
        assert net.preset("t3") == frozenset({"p3", "p4"})
        assert net.postset("t0") == frozenset({"p1", "p2"})
        assert net.place_preset("p3") == frozenset({"t1"})
        assert net.place_postset("p0") == frozenset({"t0"})

    def test_arcs_roundtrip(self):
        net = simple_cycle()
        assert ("p0", "t1") in net.arcs()
        assert ("t2", "p0") in net.arcs()
        assert len(net.arcs()) == 4

    def test_unknown_transition_query(self):
        with pytest.raises(NetStructureError):
            simple_cycle().preset("nope")

    def test_unknown_place_query(self):
        with pytest.raises(NetStructureError):
            simple_cycle().place_preset("nope")


class TestTokenGame:
    def test_enabled_list(self):
        net = simple_cycle()
        assert net.enabled(net.initial_marking) == ["t1"]

    def test_enabled_single(self):
        net = simple_cycle()
        assert net.enabled(net.initial_marking, "t1")
        assert not net.enabled(net.initial_marking, "t2")

    def test_fire_moves_token(self):
        net = simple_cycle()
        after = net.fire(net.initial_marking, "t1")
        assert after == Marking(["p1"])

    def test_fire_disabled_raises(self):
        net = simple_cycle()
        with pytest.raises(ValueError):
            net.fire(net.initial_marking, "t2")

    def test_fire_sequence_cycles_back(self):
        net = simple_cycle()
        assert net.fire_sequence(["t1", "t2"]) == net.initial_marking

    def test_fork_enables_both_branches(self):
        net = fork_join()
        m = net.fire(net.initial_marking, "t0")
        assert net.enabled(m) == ["t1", "t2"]

    def test_join_requires_both_tokens(self):
        net = fork_join()
        m = net.fire_sequence(["t0", "t1"])
        assert not net.enabled(m, "t3")
        m = net.fire(m, "t2")
        assert net.enabled(m, "t3")


class TestDerivedNets:
    def test_with_marking(self):
        net = simple_cycle()
        moved = net.with_marking(Marking(["p1"]))
        assert moved.enabled(moved.initial_marking) == ["t2"]

    def test_renamed_transitions(self):
        net = simple_cycle()
        renamed = net.renamed_transitions({"t1": "go"})
        assert "go" in renamed.transitions
        assert renamed.enabled(renamed.initial_marking) == ["go"]

    def test_renaming_must_be_injective(self):
        with pytest.raises(NetStructureError):
            simple_cycle().renamed_transitions({"t1": "t2"})

    def test_repr_counts(self):
        assert "|P|=2" in repr(simple_cycle())
