"""Unit tests for repro.petrinet.marking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.petrinet import Marking


class TestConstruction:
    def test_empty(self):
        m = Marking()
        assert len(m) == 0
        assert m.total_tokens() == 0
        assert m["p"] == 0

    def test_from_iterable_counts_occurrences(self):
        m = Marking(["p", "q", "p"])
        assert m["p"] == 2
        assert m["q"] == 1

    def test_from_mapping(self):
        m = Marking({"p": 3, "q": 0})
        assert m["p"] == 3
        assert "q" not in m
        assert len(m) == 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Marking({"p": -1})

    def test_zero_counts_dropped(self):
        assert Marking({"p": 0}) == Marking()


class TestAccess:
    def test_contains(self):
        m = Marking(["p"])
        assert "p" in m
        assert "q" not in m

    def test_iter_yields_marked_places(self):
        m = Marking({"b": 2, "a": 1})
        assert list(m) == ["a", "b"]

    def test_places(self):
        assert Marking(["p", "q"]).places() == frozenset({"p", "q"})

    def test_items_sorted(self):
        assert Marking({"z": 1, "a": 2}).items() == (("a", 2), ("z", 1))


class TestTokenGame:
    def test_add(self):
        m = Marking(["p"]).add(["p", "q"])
        assert m["p"] == 2 and m["q"] == 1

    def test_add_returns_new(self):
        m = Marking(["p"])
        m.add(["q"])
        assert "q" not in m

    def test_remove(self):
        m = Marking({"p": 2}).remove(["p"])
        assert m["p"] == 1

    def test_remove_last_token(self):
        assert Marking(["p"]).remove(["p"]) == Marking()

    def test_remove_missing_raises(self):
        with pytest.raises(ValueError):
            Marking(["p"]).remove(["q"])

    def test_covers(self):
        m = Marking({"p": 2, "q": 1})
        assert m.covers(["p", "q"])
        assert m.covers(["p", "p"])
        assert not m.covers(["p", "p", "p"])
        assert not m.covers(["r"])

    def test_covers_empty(self):
        assert Marking().covers([])

    def test_is_safe(self):
        assert Marking(["p", "q"]).is_safe()
        assert not Marking({"p": 2}).is_safe()


class TestValueSemantics:
    def test_eq_and_hash(self):
        assert Marking(["p", "q"]) == Marking(["q", "p"])
        assert hash(Marking(["p"])) == hash(Marking(["p"]))

    def test_neq_other_type(self):
        assert Marking(["p"]) != {"p": 1}

    def test_ordering(self):
        assert Marking(["a"]) < Marking(["b"])

    def test_usable_as_dict_key(self):
        d = {Marking(["p"]): 1}
        assert d[Marking(["p"])] == 1

    def test_repr_mentions_counts(self):
        assert "p*2" in repr(Marking({"p": 2}))


places = st.sampled_from(["p", "q", "r", "s"])


@given(st.lists(places, max_size=8), st.lists(places, max_size=4))
def test_add_then_remove_roundtrip(base, extra):
    m = Marking(base)
    assert m.add(extra).remove(extra) == m


@given(st.lists(places, max_size=8))
def test_total_tokens_matches_length(tokens):
    assert Marking(tokens).total_tokens() == len(tokens)


@given(st.lists(places, max_size=8))
def test_hash_consistent_with_eq(tokens):
    a, b = Marking(tokens), Marking(list(reversed(tokens)))
    assert a == b
    assert hash(a) == hash(b)
