"""Unit tests for repro.petrinet.builder."""

import pytest

from repro.petrinet import NetBuilder, NetStructureError
from repro.petrinet.builder import implicit_place_name


def test_transition_arc_creates_implicit_place():
    net = (
        NetBuilder()
        .transition("a+").transition("b+")
        .arc("a+", "b+")
        .build()
    )
    middle = implicit_place_name("a+", "b+")
    assert middle in net.places
    assert net.preset("b+") == frozenset({middle})
    assert net.postset("a+") == frozenset({middle})


def test_explicit_place_arcs():
    net = (
        NetBuilder()
        .place("p")
        .transition("t")
        .arc("p", "t").arc("t", "p")
        .mark("p")
        .build()
    )
    assert net.enabled(net.initial_marking) == ["t"]


def test_mark_implicit_place_by_transition_pair():
    net = (
        NetBuilder()
        .arc("a+", "b+").arc("b+", "a+")
        .mark("b+", "a+")
        .build()
    )
    assert net.enabled(net.initial_marking) == ["a+"]


def test_undeclared_nodes_become_transitions():
    net = NetBuilder().arc("x", "y").build()
    assert {"x", "y"} <= net.transitions


def test_mark_unknown_place_raises():
    with pytest.raises(NetStructureError):
        NetBuilder().mark("nope")


def test_mark_wrong_arity():
    with pytest.raises(TypeError):
        NetBuilder().mark("a", "b", "c")


def test_duplicate_implicit_place_rejected():
    builder = NetBuilder().arc("a", "b")
    with pytest.raises(NetStructureError):
        builder.arc("a", "b")


def test_mark_with_token_count():
    net = (
        NetBuilder()
        .place("p").transition("t").arc("p", "t").arc("t", "p")
        .mark("p", tokens=2)
        .build()
    )
    assert net.initial_marking["p"] == 2
