"""Unit tests for repro.petrinet.reachability."""

import pytest

from repro.petrinet import (
    Marking,
    NetBuilder,
    PetriNet,
    UnboundedNetError,
    reachability_graph,
)


def test_cycle_graph():
    net = PetriNet(
        ["p0", "p1"],
        ["t1", "t2"],
        [("p0", "t1"), ("t1", "p1"), ("p1", "t2"), ("t2", "p0")],
        ["p0"],
    )
    graph = reachability_graph(net)
    assert len(graph) == 2
    assert graph.initial == Marking(["p0"])
    assert len(graph.edges) == 2
    assert graph.fired_transitions() == {"t1", "t2"}


def test_fork_join_interleavings():
    net = (
        NetBuilder()
        .transition("fork").transition("a").transition("b").transition("join")
        .arc("fork", "a").arc("fork", "b")
        .arc("a", "join").arc("b", "join")
        .arc("join", "fork")
        .mark("join", "fork")
        .build()
    )
    graph = reachability_graph(net)
    # fork, {a|b pending}, a done, b done, both done -> 5 markings
    assert len(graph) == 5
    # Diamond: two interleavings a;b and b;a.
    assert len(graph.edges) == 6


def test_deadlock_detection():
    net = PetriNet(["p0", "p1"], ["t"], [("p0", "t"), ("t", "p1")], ["p0"])
    graph = reachability_graph(net)
    assert graph.deadlocks() == [Marking(["p1"])]


def test_no_deadlock_in_cycle():
    net = PetriNet(
        ["p"], ["t"], [("p", "t"), ("t", "p")], ["p"]
    )
    assert reachability_graph(net).deadlocks() == []


def test_unbounded_place_detected():
    # t consumes nothing it does not put back and keeps producing into q.
    net = PetriNet(
        ["p", "q"],
        ["t"],
        [("p", "t"), ("t", "p"), ("t", "q")],
        ["p"],
    )
    with pytest.raises(UnboundedNetError):
        reachability_graph(net)


def test_marking_limit_enforced():
    # A bounded but wide net: 8 independent toggles -> 256 markings.
    builder = NetBuilder()
    for i in range(8):
        builder.transition(f"up{i}").transition(f"dn{i}")
        builder.arc(f"up{i}", f"dn{i}").arc(f"dn{i}", f"up{i}")
        builder.mark(f"dn{i}", f"up{i}")
    net = builder.build()
    with pytest.raises(UnboundedNetError) as info:
        reachability_graph(net, marking_limit=10)
    assert info.value.markings_seen == 10
    # With enough room it completes.
    assert len(reachability_graph(net)) == 256


def test_successors_and_predecessors():
    net = PetriNet(
        ["p0", "p1"],
        ["t1", "t2"],
        [("p0", "t1"), ("t1", "p1"), ("p1", "t2"), ("t2", "p0")],
        ["p0"],
    )
    graph = reachability_graph(net)
    m0 = Marking(["p0"])
    m1 = Marking(["p1"])
    assert graph.successors(m0) == [("t1", m1)]
    assert graph.predecessors(m0) == [("t2", m1)]
    assert m0 in graph and m1 in graph
