"""Unit tests for the .g parser."""

import pytest

from repro.petrinet.builder import implicit_place_name
from repro.stg import GFormatError, parse_g, parse_g_file

from tests.example_stgs import ALL, CHOICE, HANDSHAKE


def test_parse_handshake():
    stg = parse_g(HANDSHAKE)
    assert stg.name == "handshake"
    assert stg.inputs == ["a"]
    assert stg.outputs == ["b"]
    net = stg.net
    assert net.transitions == frozenset({"a+", "a-", "b+", "b-"})
    assert len(net.places) == 4  # all implicit
    assert net.initial_marking[implicit_place_name("b-", "a+")] == 1


def test_parse_instances_and_explicit_places():
    stg = parse_g(CHOICE)
    assert "c+/1" in stg.net.transitions
    assert "c+/2" in stg.net.transitions
    assert "p0" in stg.net.places
    assert stg.label("c+/1").signal == "c"
    assert stg.label("c+/1").instance == 1
    assert stg.label("c+/2").instance == 2
    assert stg.net.initial_marking["p0"] == 1


def test_all_examples_parse():
    for name, text in ALL.items():
        stg = parse_g(text)
        assert stg.name == name


def test_comments_and_blank_lines_ignored():
    text = HANDSHAKE.replace(".graph", "# a comment\n\n.graph")
    assert parse_g(text).name == "handshake"


def test_parse_g_file(tmp_path):
    path = tmp_path / "hs.g"
    path.write_text(HANDSHAKE)
    assert parse_g_file(path).name == "handshake"


def test_dummy_transitions():
    text = """
.model withdummy
.inputs a
.outputs b
.dummy eps
.graph
a+ eps
eps b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
"""
    stg = parse_g(text)
    assert stg.dummy_transitions() == ["eps"]
    assert stg.label("eps").is_dummy


def test_marking_with_token_count():
    text = """
.model counted
.inputs a
.outputs b
.graph
pp a+
a+ b+
b+ a-
a- b-
b- pp
.marking { pp=1 }
.end
"""
    stg = parse_g(text)
    assert stg.net.initial_marking["pp"] == 1


class TestErrors:
    def test_unknown_directive(self):
        with pytest.raises(GFormatError, match="unknown directive"):
            parse_g(".bogus x\n.graph\na+ b+\n.end")

    def test_duplicate_signal(self):
        text = HANDSHAKE.replace(".outputs b", ".outputs b\n.internal b")
        with pytest.raises(GFormatError, match="declared twice"):
            parse_g(text)

    def test_missing_graph(self):
        with pytest.raises(GFormatError, match="missing .graph"):
            parse_g(".model x\n.end")

    def test_missing_end(self):
        with pytest.raises(GFormatError, match="missing .end"):
            parse_g(".model x\n.graph\na b\n")

    def test_content_after_end(self):
        with pytest.raises(GFormatError, match="after .end"):
            parse_g(HANDSHAKE + "\n.graph")

    def test_graph_line_needs_target(self):
        text = HANDSHAKE.replace("a+ b+", "a+")
        with pytest.raises(GFormatError, match="at least one target"):
            parse_g(text)

    def test_marking_unknown_place(self):
        text = HANDSHAKE.replace("<b-,a+>", "<a+,a->")
        with pytest.raises(GFormatError, match="unknown place"):
            parse_g(text)

    def test_unbalanced_marking_brackets(self):
        text = HANDSHAKE.replace("{ <b-,a+> }", "{ <b-,a+ }")
        with pytest.raises(GFormatError):
            parse_g(text)

    def test_marking_needs_braces(self):
        text = HANDSHAKE.replace("{ <b-,a+> }", "<b-,a+>")
        with pytest.raises(GFormatError, match="must be"):
            parse_g(text)

    def test_duplicate_arc(self):
        text = HANDSHAKE.replace("a+ b+", "a+ b+\na+ b+")
        with pytest.raises(GFormatError):
            parse_g(text)

    def test_model_name_arity(self):
        with pytest.raises(GFormatError):
            parse_g(".model a b\n.graph\nx y\n.end")

    def test_line_numbers_reported(self):
        with pytest.raises(GFormatError, match="line 1"):
            parse_g(".bogus")
