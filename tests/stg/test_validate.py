"""Unit tests for repro.stg.validate."""

import pytest

from repro.stg import StgValidationError, parse_g, validate_stg

from tests.example_stgs import ALL


def test_examples_validate():
    for text in ALL.values():
        validate_stg(parse_g(text), require_live=True)


def test_returns_reachability_graph():
    graph = validate_stg(parse_g(ALL["handshake"]))
    assert len(graph) == 4


def test_signal_without_transitions():
    text = ALL["handshake"].replace(".inputs a", ".inputs a ghost")
    with pytest.raises(StgValidationError, match="ghost"):
        validate_stg(parse_g(text))


def test_non_alternating_signal():
    # Two consecutive rises of b between a+ and a-: inconsistent.
    text = """
.model bad
.inputs a
.outputs b
.graph
a+ b+/1
b+/1 b+/2
b+/2 a-
a- a+
.marking { <a-,a+> }
.end
"""
    with pytest.raises(StgValidationError):
        validate_stg(parse_g(text))


def test_unsafe_stg_rejected():
    # a+ and b+ both deposit into pc: two tokens meet in one place.
    text = """
.model unsafe
.inputs a b
.outputs c
.graph
pa a+
pb b+
a+ pc
b+ pc
pc c+
c+ pd
pd c-
c- pe
.marking { pa pb }
.end
"""
    stg = parse_g(text)
    with pytest.raises(StgValidationError, match="1-safe"):
        validate_stg(stg)


def test_not_live_detected():
    # Output c sits behind an unmarked place: its transitions are dead.
    text = """
.model dead
.inputs a
.outputs b c
.graph
a+ b+
b+ a-
a- b-
b- a+
pdead c+
c+ c-
c- pdead
.marking { <b-,a+> }
.end
"""
    stg = parse_g(text)
    with pytest.raises(StgValidationError, match="live"):
        validate_stg(stg, require_live=True)
    # Without the liveness requirement the same STG passes validation.
    validate_stg(stg, require_live=False)
