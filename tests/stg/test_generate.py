"""Generator property tests: by-construction guarantees at every corner,
plus the differential synthesis contract over a seeded sample."""

import pytest

from repro.petrinet.properties import is_free_choice, is_live, is_safe
from repro.stategraph import build_state_graph, csc_conflicts
from repro.stg import generate_corpus, generate_stg, parse_g
from repro.stg.validate import validate_stg

from tests.verify.test_differential import METHODS, check_synthesis

#: Every combination a load test might reasonably request, including
#: the degenerate corners (minimum signals, no concurrency, both CSC
#: density extremes).
CORNERS = [
    (2, 1, 0.0),
    (2, 4, 1.0),
    (4, 1, 0.5),
    (6, 2, 0.0),
    (6, 2, 1.0),
    (10, 3, 0.5),
    (12, 4, 1.0),
]


@pytest.mark.parametrize("signals,width,density", CORNERS)
def test_corners_are_live_safe_free_choice(signals, width, density):
    generated = generate_stg(
        signals=signals, width=width, csc_density=density, seed=11,
        validate=False,  # re-checked explicitly below
    )
    net = generated.stg.net
    graph = validate_stg(
        generated.stg, require_live=True, require_safe=True
    )
    assert is_free_choice(net)
    assert is_safe(net, graph=graph)
    assert is_live(net, graph=graph)


def test_determinism_per_seed():
    knobs = dict(signals=8, width=3, csc_density=0.5)
    a = generate_stg(seed=42, **knobs)
    b = generate_stg(seed=42, **knobs)
    assert a.g_text == b.g_text
    assert a.stats() == b.stats()
    assert a.g_text != generate_stg(seed=43, **knobs).g_text


def test_generated_text_reparses_to_same_structure():
    generated = generate_stg(signals=8, width=2, csc_density=1.0, seed=3)
    again = parse_g(generated.g_text)
    assert set(again.signals) == set(generated.stg.signals)
    assert again.inputs == generated.stg.inputs


def test_zero_density_generates_no_echoes():
    generated = generate_stg(signals=10, width=2, csc_density=0.0, seed=5)
    assert generated.echoes == 0
    assert not any(s.startswith("e") for s in generated.stg.signals)


def test_full_density_plants_csc_conflicts():
    # Echo tails recreate the classic conflict; over a sample of seeds
    # every dense circuit must actually exhibit one.
    for seed in range(5):
        generated = generate_stg(
            signals=8, width=2, csc_density=1.0, seed=seed
        )
        assert generated.echoes >= 1
        graph = build_state_graph(generated.stg)
        assert csc_conflicts(graph), (
            f"seed {seed}: csc_density=1.0 produced a CSC-clean circuit"
        )


def test_knob_validation():
    with pytest.raises(ValueError, match="signals"):
        generate_stg(signals=1)
    with pytest.raises(ValueError, match="width"):
        generate_stg(width=0)
    with pytest.raises(ValueError, match="csc_density"):
        generate_stg(csc_density=1.5)
    with pytest.raises(ValueError, match="count"):
        generate_corpus(0)


def test_corpus_is_seed_indexed():
    corpus = generate_corpus(3, signals=6, width=2, seed=100)
    assert [g.seed for g in corpus] == [100, 101, 102]
    assert len({g.g_text for g in corpus}) == 3
    again = generate_corpus(3, signals=6, width=2, seed=100)
    assert [g.g_text for g in again] == [g.g_text for g in corpus]


#: Seeded differential sample: generated circuits through the same
#: contract the benchmarks and fuzzed controllers go through.
SAMPLE = [
    (6, 2, 1.0, 21),
    (8, 2, 1.0, 22),
    (8, 3, 0.5, 23),
]


@pytest.mark.parametrize(
    "method", ["modular", "modular-jobs2", "direct"]
)
@pytest.mark.parametrize("signals,width,density,seed", SAMPLE)
def test_generated_differential(signals, width, density, seed, method):
    generated = generate_stg(
        signals=signals, width=width, csc_density=density, seed=seed
    )
    graph = build_state_graph(generated.stg)
    result = METHODS[method](graph)
    check_synthesis(generated.stg, graph, result)


@pytest.mark.parametrize("signals,width,density,seed", SAMPLE[:1])
def test_generated_sat_modes_agree(signals, width, density, seed):
    generated = generate_stg(
        signals=signals, width=width, csc_density=density, seed=seed
    )
    graph = build_state_graph(generated.stg)
    per_mode = {}
    for name in ("modular", "modular-oneshot"):
        result = METHODS[name](graph)
        check_synthesis(generated.stg, graph, result)
        per_mode[name] = len(result.assignment.names)
    assert per_mode["modular"] == per_mode["modular-oneshot"]
