"""Round-trip tests for the .g writer."""

from repro.stg import parse_g, write_g
from repro.stategraph import build_state_graph

from tests.example_stgs import ALL


def _graph_fingerprint(stg):
    """A behavioural fingerprint: state codes and labelled edge multiset."""
    graph = build_state_graph(stg)
    return (
        sorted(graph.codes),
        sorted(
            (graph.codes[s], label, graph.codes[t])
            for s, label, t in graph.edges
        ),
    )


def test_roundtrip_preserves_behaviour():
    for name, text in ALL.items():
        original = parse_g(text)
        reparsed = parse_g(write_g(original))
        assert reparsed.name == original.name
        assert reparsed.inputs == original.inputs
        assert reparsed.outputs == original.outputs
        assert _graph_fingerprint(reparsed) == _graph_fingerprint(original)


def test_written_text_shape():
    text = write_g(parse_g(ALL["handshake"]))
    assert text.startswith(".model handshake")
    assert ".inputs a" in text
    assert ".outputs b" in text
    assert text.rstrip().endswith(".end")


def test_explicit_places_survive():
    text = write_g(parse_g(ALL["choice"]))
    assert "p0" in text
    reparsed = parse_g(text)
    assert "p0" in reparsed.net.places


def test_double_roundtrip_stable():
    for text in ALL.values():
        once = write_g(parse_g(text))
        twice = write_g(parse_g(once))
        assert once == twice
