"""Unit tests for repro.stg.transform."""

import pytest

from repro.stg import (
    SignalType,
    StgError,
    hide_signals,
    mirror_signals,
    parse_g,
    rename_signals,
)

from tests.example_stgs import CSC_CONFLICT, HANDSHAKE


class TestHideSignals:
    def test_hidden_transitions_become_dummies(self):
        stg = parse_g(CSC_CONFLICT)
        hidden = hide_signals(stg, ["b"])
        assert hidden.label("b+").is_dummy
        assert hidden.label("b-").is_dummy
        assert not hidden.label("a+").is_dummy

    def test_declaration_dropped_by_default(self):
        stg = parse_g(CSC_CONFLICT)
        hidden = hide_signals(stg, ["b"])
        assert hidden.signals == ["a", "c"]

    def test_declaration_kept_on_request(self):
        stg = parse_g(CSC_CONFLICT)
        hidden = hide_signals(stg, ["b"], drop_declarations=False)
        assert hidden.signals == ["a", "b", "c"]

    def test_unknown_signal_rejected(self):
        with pytest.raises(StgError):
            hide_signals(parse_g(HANDSHAKE), ["zz"])

    def test_original_unchanged(self):
        stg = parse_g(CSC_CONFLICT)
        hide_signals(stg, ["b"])
        assert not stg.label("b+").is_dummy


class TestRenameSignals:
    def test_rename(self):
        stg = rename_signals(parse_g(HANDSHAKE), {"a": "req", "b": "ack"})
        assert stg.inputs == ["req"]
        assert stg.outputs == ["ack"]
        assert stg.label("a+").signal == "req"

    def test_partial_rename(self):
        stg = rename_signals(parse_g(HANDSHAKE), {"a": "req"})
        assert stg.signals == ["b", "req"]

    def test_non_injective_rejected(self):
        with pytest.raises(StgError):
            rename_signals(parse_g(HANDSHAKE), {"a": "b"})


class TestMirrorSignals:
    def test_full_mirror(self):
        stg = mirror_signals(parse_g(HANDSHAKE))
        assert stg.signal_type("a") is SignalType.OUTPUT
        assert stg.signal_type("b") is SignalType.INPUT

    def test_partial_mirror(self):
        stg = mirror_signals(parse_g(CSC_CONFLICT), ["c"])
        assert stg.signal_type("c") is SignalType.INPUT
        assert stg.signal_type("b") is SignalType.OUTPUT

    def test_internal_untouched(self):
        text = CSC_CONFLICT.replace(".outputs b c", ".outputs b\n.internal c")
        stg = mirror_signals(parse_g(text))
        assert stg.signal_type("c") is SignalType.INTERNAL
