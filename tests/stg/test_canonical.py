"""Property tests for the canonical ``.g`` form used by the result cache.

The cache keys on :func:`repro.stg.canonical.g_fingerprint`, so the
invariants here are load-bearing: two spellings of the same net must
hash equal, and behaviourally different nets must (in practice) hash
differently.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.petrinet.net import PetriNet
from repro.stategraph import build_state_graph
from repro.stg import parse_g, write_g
from repro.stg.canonical import canonical_g, g_fingerprint
from repro.stg.model import SignalTransitionGraph

from tests.example_stgs import ALL


def _rename_places(stg, mapper):
    """A copy of ``stg`` with every place renamed through ``mapper``."""
    net = stg.net
    rename = {p: mapper(p) for p in net.places}
    assert len(set(rename.values())) == len(rename)
    places = set(rename.values())
    arcs = [
        (rename.get(src, src), rename.get(dst, dst))
        for src, dst in net.arcs()
    ]
    marking = {
        rename[place]: count
        for place, count in net.initial_marking.items()
    }
    return SignalTransitionGraph(
        PetriNet(places, set(net.transitions), arcs, marking),
        {s: stg.signal_type(s) for s in stg.signals},
        stg.labels(),
        name=stg.name,
    )


def test_canonical_fixed_point():
    for text in ALL.values():
        stg = parse_g(text)
        once = canonical_g(stg)
        twice = canonical_g(parse_g(once))
        assert once == twice


def test_fingerprint_ignores_place_names():
    for text in ALL.values():
        stg = parse_g(text)
        renamed = _rename_places(stg, lambda p: f"weird_{p}_name")
        assert g_fingerprint(renamed) == g_fingerprint(stg)


def test_fingerprint_ignores_implicit_vs_explicit_spelling():
    # An explicit single-fanin/fanout place and a direct arc describe
    # the same net; both spellings must hash equal.
    explicit = """
.model spell
.inputs a
.outputs b
.graph
a+ mid
mid b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
"""
    implicit = """
.model spell
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
"""
    assert g_fingerprint(explicit) == g_fingerprint(implicit)


def test_fingerprint_ignores_marking_and_line_order():
    base = """
.model order
.inputs a
.outputs x y
.graph
a+ x+ y+
x+ a-
y+ a-
a- x-
x- y-
y- a+
.marking { <y-,a+> }
.end
"""
    shuffled = """
.model order
.inputs a
.outputs x y
.graph
y- a+
a- x-
x+ a-
a+ y+ x+
y+ a-
x- y-
.marking {  <y-,a+>  }
.end
"""
    assert g_fingerprint(base) == g_fingerprint(shuffled)


def test_fingerprint_distinguishes_different_nets():
    prints = {g_fingerprint(text) for text in ALL.values()}
    assert len(prints) == len(ALL)


def test_marking_count_roundtrip_on_implicit_place():
    text = """
.model counted
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+>=2 }
.end
"""
    stg = parse_g(text)
    written = write_g(stg)
    assert "<b-,a+>=2" in written
    reparsed = parse_g(written)
    assert dict(reparsed.net.initial_marking.items()) == dict(
        stg.net.initial_marking.items()
    )
    assert g_fingerprint(reparsed) == g_fingerprint(stg)


def test_marking_count_roundtrip_on_explicit_place():
    text = """
.model counted2
.inputs a
.outputs b
.graph
a+ pool
pool b+
b+ pool2
pool2 a-
a- b-
b- a+
pool a-
.marking { pool=2 <b-,a+> }
.end
"""
    stg = parse_g(text)
    reparsed = parse_g(write_g(stg))
    marking = dict(reparsed.net.initial_marking.items())
    assert 2 in marking.values()
    assert g_fingerprint(reparsed) == g_fingerprint(stg)


@settings(max_examples=30, deadline=None)
@given(st.randoms(use_true_random=False))
def test_random_renames_hash_equal(rng):
    for text in ALL.values():
        stg = parse_g(text)
        tags = list(range(len(stg.net.places)))
        rng.shuffle(tags)
        tag_of = dict(zip(sorted(stg.net.places), tags))
        renamed = _rename_places(stg, lambda p: f"q{tag_of[p]}")
        assert g_fingerprint(renamed) == g_fingerprint(stg)
        assert canonical_g(renamed) == canonical_g(stg)


def test_canonical_preserves_behaviour():
    for text in ALL.values():
        stg = parse_g(text)
        canon = parse_g(canonical_g(stg))
        original = build_state_graph(stg)
        rebuilt = build_state_graph(canon)
        assert sorted(rebuilt.codes) == sorted(original.codes)
        assert sorted(
            (rebuilt.codes[s], label, rebuilt.codes[t])
            for s, label, t in rebuilt.edges
        ) == sorted(
            (original.codes[s], label, original.codes[t])
            for s, label, t in original.edges
        )
