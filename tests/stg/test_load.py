"""load_stg: the one loader behind every front end."""

import pathlib

import pytest

from repro.stg import SignalTransitionGraph, load_stg, parse_g

from tests.example_stgs import HANDSHAKE


class TestLoadStg:
    def test_graph_passes_through_unchanged(self):
        stg = parse_g(HANDSHAKE)
        assert load_stg(stg) is stg

    def test_text_is_parsed(self):
        stg = load_stg(HANDSHAKE)
        assert isinstance(stg, SignalTransitionGraph)
        assert set(stg.signals) == set(parse_g(HANDSHAKE).signals)

    def test_text_name_hint(self):
        text = HANDSHAKE.replace(".model handshake\n", "")
        assert load_stg(text, name_hint="renamed").name == "renamed"

    def test_path_string_is_read(self, tmp_path):
        path = tmp_path / "spec.g"
        path.write_text(HANDSHAKE)
        stg = load_stg(str(path))
        assert isinstance(stg, SignalTransitionGraph)

    def test_pathlike_is_read(self, tmp_path):
        path = tmp_path / "spec.g"
        path.write_text(HANDSHAKE)
        assert isinstance(load_stg(path), SignalTransitionGraph)
        assert isinstance(path, pathlib.Path)

    def test_leading_directive_counts_as_text(self):
        # A single-line fragment starting with "." is treated as source,
        # not a path -- it fails as a .g document, not with ENOENT.
        from repro.stg import GFormatError

        with pytest.raises(GFormatError):
            load_stg(".model only-a-header")

    def test_missing_path_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_stg(str(tmp_path / "nope.g"))

    def test_unsupported_type_raises_typeerror(self):
        with pytest.raises(TypeError, match="load_stg"):
            load_stg(42)

    def test_bundled_benchmark_path(self):
        data = pathlib.Path("src/repro/data/nak-pa.g")
        stg = load_stg(data)
        assert stg.name == "nak-pa"
