"""Unit tests for repro.stg.model."""

import pytest

from repro.stg import (
    SignalTransitionGraph,
    SignalType,
    StgError,
    StgValidationError,
    TransitionLabel,
    parse_g,
)
from repro.stg.model import DUMMY, FALL, RISE
from repro.petrinet import PetriNet

from tests.example_stgs import CSC_CONFLICT, HANDSHAKE


class TestTransitionLabel:
    def test_parse_rise(self):
        label = TransitionLabel.parse("req+")
        assert label.signal == "req"
        assert label.is_rise and not label.is_fall
        assert label.instance == 1

    def test_parse_fall_with_instance(self):
        label = TransitionLabel.parse("ack-/3")
        assert label.signal == "ack"
        assert label.is_fall
        assert label.instance == 3

    def test_parse_bare_name_is_dummy(self):
        assert TransitionLabel.parse("eps").is_dummy

    def test_str_roundtrip(self):
        assert str(TransitionLabel.parse("a+/2")) == "a+/2"
        assert str(TransitionLabel.parse("a+")) == "a+"
        assert str(TransitionLabel(None, DUMMY)) == "~"

    def test_bad_instance(self):
        with pytest.raises(StgError):
            TransitionLabel.parse("a+/x")

    def test_instance_must_be_positive(self):
        with pytest.raises(StgError):
            TransitionLabel("a", RISE, 0)

    def test_dummy_needs_no_signal(self):
        with pytest.raises(StgError):
            TransitionLabel("a", DUMMY)
        with pytest.raises(StgError):
            TransitionLabel(None, RISE)

    def test_equality_and_hash(self):
        assert TransitionLabel("a", RISE) == TransitionLabel.parse("a+")
        assert TransitionLabel("a", RISE) != TransitionLabel("a", FALL)
        assert hash(TransitionLabel("a", RISE)) == hash(
            TransitionLabel.parse("a+")
        )


class TestSignalViews:
    def test_partition(self):
        stg = parse_g(CSC_CONFLICT)
        assert stg.inputs == ["a"]
        assert stg.outputs == ["b", "c"]
        assert stg.internals == []
        assert stg.non_inputs == ["b", "c"]
        assert stg.signals == ["a", "b", "c"]

    def test_signal_type(self):
        stg = parse_g(CSC_CONFLICT)
        assert stg.signal_type("a") is SignalType.INPUT
        assert stg.signal_type("b") is SignalType.OUTPUT
        with pytest.raises(StgError):
            stg.signal_type("zz")

    def test_transitions_of(self):
        stg = parse_g(HANDSHAKE)
        assert stg.transitions_of("a") == ["a+", "a-"]
        assert stg.transitions_of("a", RISE) == ["a+"]

    def test_label_lookup(self):
        stg = parse_g(HANDSHAKE)
        assert stg.label("a+").signal == "a"
        with pytest.raises(StgError):
            stg.label("nope")


class TestCausalStructure:
    def test_triggers(self):
        stg = parse_g(HANDSHAKE)
        assert stg.triggers("b") == ["a"]
        assert stg.triggers("a") == ["b"]

    def test_immediate_input_set(self):
        stg = parse_g(CSC_CONFLICT)
        # b+ is caused by a+, b- by a-.
        assert stg.immediate_input_set("b") == ["a"]
        # c+ is caused by b-, c- by c+ (self excluded).
        assert stg.immediate_input_set("c") == ["b"]

    def test_immediate_input_set_rejects_inputs(self):
        stg = parse_g(CSC_CONFLICT)
        with pytest.raises(StgError):
            stg.immediate_input_set("a")


class TestValidationAtConstruction:
    def _net(self):
        return PetriNet(
            ["p"], ["a+"], [("p", "a+"), ("a+", "p")], ["p"]
        )

    def test_unlabelled_transition_rejected(self):
        with pytest.raises(StgValidationError):
            SignalTransitionGraph(
                self._net(), {"a": SignalType.INPUT}, {}
            )

    def test_label_for_unknown_transition_rejected(self):
        labels = {
            "a+": TransitionLabel("a", RISE),
            "ghost": TransitionLabel("a", FALL),
        }
        with pytest.raises(StgValidationError):
            SignalTransitionGraph(
                self._net(), {"a": SignalType.INPUT}, labels
            )

    def test_undeclared_signal_rejected(self):
        labels = {"a+": TransitionLabel("b", RISE)}
        with pytest.raises(StgValidationError):
            SignalTransitionGraph(
                self._net(), {"a": SignalType.INPUT}, labels
            )
