"""Unit and property tests for the CDCL solver."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import LIMIT, SAT, UNSAT, Cnf, Limits, solve_cdcl, solve_with


def make_cnf(num_vars, clauses):
    cnf = Cnf()
    for _ in range(num_vars):
        cnf.new_var()
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


def pigeonhole(holes):
    pigeons = holes + 1
    cnf = Cnf()
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[p, h] = cnf.new_var()
    for p in range(pigeons):
        cnf.add_clause([var[p, h] for h in range(holes)])
    for h in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            cnf.add_clause([-var[p1, h], -var[p2, h]])
    return cnf


class TestBasics:
    def test_empty_formula(self):
        assert solve_cdcl(Cnf()).status == SAT

    def test_unit_conflict(self):
        assert solve_cdcl(make_cnf(1, [[1], [-1]])).status == UNSAT

    def test_empty_clause(self):
        assert solve_cdcl(make_cnf(1, [[]])).status == UNSAT

    def test_model_is_valid(self):
        cnf = make_cnf(4, [[1, 2], [-1, 3], [-3, -2], [2, 4], [-4, 1]])
        result = solve_cdcl(cnf)
        assert result.status == SAT
        assert cnf.evaluate(result.assignment)

    def test_implication_chain_no_decisions(self):
        clauses = [[1]] + [[-i, i + 1] for i in range(1, 12)]
        result = solve_cdcl(make_cnf(12, clauses))
        assert result.status == SAT
        assert result.decisions == 0


class TestLearning:
    def test_pigeonhole_unsat_fast(self):
        # PHP(7, 6) chokes plain DPLL but is easy with learning.
        result = solve_cdcl(pigeonhole(6))
        assert result.status == UNSAT

    def test_limits_respected(self):
        result = solve_cdcl(pigeonhole(10), Limits(max_backtracks=20))
        assert result.status == LIMIT

    def test_time_limit(self):
        result = solve_cdcl(pigeonhole(12), Limits(max_seconds=0.05))
        assert result.status == LIMIT


class TestSolveWith:
    def test_engines_agree(self):
        cnf = make_cnf(3, [[1, 2], [-1, 3], [-2, -3]])
        assert solve_with(cnf, engine="dpll").status == SAT
        assert solve_with(cnf, engine="cdcl").status == SAT
        assert solve_with(cnf, engine="hybrid").status == SAT

    def test_hybrid_falls_back_to_cdcl(self):
        # PHP(6): DPLL exceeds the hybrid budget, CDCL refutes it.
        result = solve_with(pigeonhole(6), engine="hybrid")
        assert result.status == UNSAT

    def test_unknown_engine(self):
        import pytest

        with pytest.raises(ValueError):
            solve_with(Cnf(), engine="quantum")


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        if all(
            any(assignment[abs(l)] == (l > 0) for l in clause)
            for clause in clauses
        ):
            return True
    return False


@st.composite
def random_formula(draw):
    num_vars = draw(st.integers(min_value=1, max_value=7))
    num_clauses = draw(st.integers(min_value=1, max_value=24))
    clauses = []
    for _ in range(num_clauses):
        size = draw(st.integers(min_value=1, max_value=3))
        clauses.append(
            [
                draw(st.integers(min_value=1, max_value=num_vars))
                * (1 if draw(st.booleans()) else -1)
                for _ in range(size)
            ]
        )
    return num_vars, clauses


@settings(max_examples=250, deadline=None)
@given(random_formula())
def test_cdcl_matches_brute_force(formula):
    num_vars, clauses = formula
    cnf = make_cnf(num_vars, clauses)
    result = solve_cdcl(cnf)
    expected = brute_force_sat(num_vars, cnf.clauses)
    assert result.status == (SAT if expected else UNSAT)
    if result.status == SAT:
        assert cnf.evaluate(result.assignment)


@settings(max_examples=120, deadline=None)
@given(random_formula())
def test_engines_agree_on_random_formulas(formula):
    num_vars, clauses = formula
    cnf = make_cnf(num_vars, clauses)
    a = solve_cdcl(cnf).status
    cnf2 = make_cnf(num_vars, clauses)
    b = solve_with(cnf2, engine="dpll").status
    assert a == b
