"""Unit tests for repro.sat.cnf."""

import pytest

from repro.sat import Cnf


def test_new_var_sequence():
    cnf = Cnf()
    assert cnf.new_var() == 1
    assert cnf.new_var() == 2
    assert cnf.num_vars == 2


def test_named_vars():
    cnf = Cnf()
    a = cnf.var("a")
    assert cnf.var("a") == a
    assert cnf.name_of(a) == "a"
    assert cnf.name_of(cnf.new_var()) is None


def test_duplicate_name_rejected():
    cnf = Cnf()
    cnf.new_var("a")
    with pytest.raises(ValueError):
        cnf.new_var("a")


def test_add_clause_dedupes_literals():
    cnf = Cnf()
    a = cnf.new_var()
    cnf.add_clause([a, a])
    assert cnf.clauses == [(a,)]


def test_tautology_dropped():
    cnf = Cnf()
    a = cnf.new_var()
    cnf.add_clause([a, -a])
    assert cnf.num_clauses == 0


def test_zero_literal_rejected():
    cnf = Cnf()
    with pytest.raises(ValueError):
        cnf.add_clause([0])


def test_unallocated_variable_rejected():
    cnf = Cnf()
    with pytest.raises(ValueError):
        cnf.add_clause([5])


def test_empty_clause_allowed():
    cnf = Cnf()
    cnf.add_clause([])
    assert cnf.clauses == [()]


def test_evaluate():
    cnf = Cnf()
    a, b = cnf.new_var(), cnf.new_var()
    cnf.add_clause([a, b])
    cnf.add_clause([-a, b])
    assert cnf.evaluate({a: True, b: True})
    assert not cnf.evaluate({a: True, b: False})
    assert cnf.evaluate({a: False, b: True})


def test_to_dimacs():
    cnf = Cnf()
    a, b = cnf.new_var(), cnf.new_var()
    cnf.add_clause([a, -b])
    text = cnf.to_dimacs()
    assert text.startswith("p cnf 2 1")
    assert "1 -2 0" in text


def test_name_of_unknown_var():
    with pytest.raises(ValueError):
        Cnf().name_of(1)
