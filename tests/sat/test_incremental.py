"""Unit tests for the assumption-based incremental solver."""

import itertools
import random

import pytest

from repro.sat import Cnf, solve
from repro.sat.incremental import IncrementalSolver, luby
from repro.sat.solver import LIMIT, SAT, UNSAT, Limits


def brute_force(num_vars, clauses, assumptions=()):
    """Reference decision procedure by exhaustive enumeration."""
    for bits in itertools.product([False, True], repeat=num_vars):
        model = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        if any(model[abs(a)] != (a > 0) for a in assumptions):
            continue
        if all(
            any(model[abs(q)] == (q > 0) for q in clause)
            for clause in clauses
        ):
            return True
    return False


def pigeonhole(solver, pigeons, holes, guard=None):
    """PHP(pigeons, holes) clauses, optionally guarded by ``guard``."""
    grid = [
        [solver.new_var() for _ in range(holes)] for _ in range(pigeons)
    ]
    prefix = [] if guard is None else [-guard]
    for row in grid:
        solver.add_clause(prefix + row)
    for hole in range(holes):
        for i in range(pigeons):
            for j in range(i + 1, pigeons):
                solver.add_clause(
                    prefix + [-grid[i][hole], -grid[j][hole]]
                )
    return grid


def test_luby_sequence():
    assert [luby(i) for i in range(1, 16)] == [
        1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
    ]


def test_basic_sat_and_model():
    solver = IncrementalSolver()
    x, y = solver.new_var(), solver.new_var()
    solver.add_clauses([[x, y], [-x, y]])
    result = solver.solve()
    assert result.status == SAT
    assert result.assignment[y] is True
    assert result.failed_assumptions is None


def test_clauses_persist_between_solves():
    solver = IncrementalSolver()
    x, y = solver.new_var(), solver.new_var()
    solver.add_clauses([[x, y], [-x, y]])
    assert solver.solve(assumptions=[-y]).status == UNSAT
    assert solver.solve().status == SAT
    solver.add_clause([-y, x])
    result = solver.solve(assumptions=[x])
    assert result.status == SAT
    assert result.assignment[x] is True


def test_failed_assumption_core_is_relevant_subset():
    solver = IncrementalSolver()
    a, b, c, d = (solver.new_var() for _ in range(4))
    solver.add_clause([-a, -b])  # a and b clash; c, d are bystanders
    result = solver.solve(assumptions=[c, a, d, b])
    assert result.status == UNSAT
    core = result.failed_assumptions
    assert set(core) <= {c, a, d, b}
    assert a in core and b in core
    assert c not in core and d not in core
    # Core order follows the assumption list.
    assert list(core) == sorted(core, key=[c, a, d, b].index)
    assert result.metrics["assumption_cores"] == 1


def test_empty_core_means_unconditionally_unsat():
    solver = IncrementalSolver()
    x = solver.new_var()
    solver.add_clauses([[x], [-x]])
    result = solver.solve(assumptions=[x])
    assert result.status == UNSAT
    assert result.failed_assumptions == ()
    # The root conflict is latched: later calls stay UNSAT.
    assert solver.solve().status == UNSAT
    assert solver.solve().failed_assumptions == ()


def test_core_through_propagation_chain():
    solver = IncrementalSolver()
    a, b, c, g = (solver.new_var() for _ in range(4))
    solver.add_clauses([[-a, b], [-b, c], [-g, -c]])
    result = solver.solve(assumptions=[g, a])
    assert result.status == UNSAT
    assert set(result.failed_assumptions) == {g, a}


def test_unknown_variable_rejected():
    solver = IncrementalSolver()
    x = solver.new_var()
    with pytest.raises(ValueError):
        solver.add_clause([x, 5])
    with pytest.raises(ValueError):
        solver.solve(assumptions=[9])


def test_root_level_simplification():
    solver = IncrementalSolver()
    x, y, z = (solver.new_var() for _ in range(3))
    solver.add_clause([x])  # root unit, stored as an assignment
    solver.add_clause([x, y])  # satisfied forever: discarded
    solver.add_clause([-x, y, z])  # -x dropped: stored as [y, z]
    assert solver.num_clauses == 1
    assert solver.solve(assumptions=[-y]).status == SAT


def test_learned_clauses_short_circuit_repeat_unsat():
    solver = IncrementalSolver()
    guard = solver.new_var()
    pigeonhole(solver, 5, 4, guard=guard)
    first = solver.solve(assumptions=[guard])
    assert first.status == UNSAT
    assert first.failed_assumptions == (guard,)
    assert first.metrics["backtracks"] > 0
    # The refutation was learned: repeating the question is free.
    second = solver.solve(assumptions=[guard])
    assert second.status == UNSAT
    assert second.metrics["backtracks"] == 0
    assert second.metrics["learned_kept"] > 0
    # The guard off, the pigeonhole clauses are inert.
    assert solver.solve(assumptions=[-guard]).status == SAT


def test_db_reduction_keeps_solver_sound():
    rng = random.Random(7)
    num_vars, num_clauses = 14, 60
    clauses = [
        [
            v if rng.random() < 0.5 else -v
            for v in rng.sample(range(1, num_vars + 1), 3)
        ]
        for _ in range(num_clauses)
    ]
    solver = IncrementalSolver(reduce_base=5, reduce_inc=0)
    solver.add_vars(num_vars)
    solver.add_clauses(clauses)
    reductions = 0
    for trial in range(20):
        assumptions = [
            v if rng.random() < 0.5 else -v
            for v in rng.sample(range(1, num_vars + 1), 3)
        ]
        result = solver.solve(assumptions=assumptions)
        expected = brute_force(num_vars, clauses, assumptions)
        assert (result.status == SAT) == expected
        if result.status == SAT:
            model = result.assignment
            assert all(
                any(model[abs(q)] == (q > 0) for q in clause)
                for clause in clauses
            )
            assert all(model[abs(a)] == (a > 0) for a in assumptions)
        else:
            core = result.failed_assumptions
            assert set(core) <= set(assumptions)
            assert not brute_force(num_vars, clauses, core)
        reductions += result.metrics["db_reductions"]
    assert reductions > 0, "reduction schedule never fired"


def test_deterministic_across_runs():
    def run():
        rng = random.Random(11)
        solver = IncrementalSolver()
        solver.add_vars(25)
        for _ in range(90):
            solver.add_clause([
                v if rng.random() < 0.5 else -v
                for v in rng.sample(range(1, 26), 3)
            ])
        trace = []
        for _ in range(6):
            assumptions = [
                v if rng.random() < 0.5 else -v
                for v in rng.sample(range(1, 26), 3)
            ]
            result = solver.solve(assumptions=assumptions)
            stats = result.metrics.as_dict()
            stats.pop("seconds", None)  # the only wall-clock counter
            trace.append((result.status, result.assignment, stats))
        return trace

    assert run() == run()


def test_backtrack_limit_then_unlimited_resolve():
    solver = IncrementalSolver()
    pigeonhole(solver, 6, 5)
    limited = solver.solve(limits=Limits(max_backtracks=2))
    assert limited.status == LIMIT
    finished = solver.solve()
    assert finished.status == UNSAT
    assert finished.failed_assumptions == ()


def test_from_cnf():
    cnf = Cnf()
    x, y = cnf.new_var(), cnf.new_var()
    cnf.add_clause([x, y])
    cnf.add_clause([-x, -y])
    solver = IncrementalSolver.from_cnf(cnf)
    assert solver.num_vars == cnf.num_vars
    result = solver.solve()
    assert result.status == SAT
    assert result.assignment[x] != result.assignment[y]
    assert result.metrics["incremental_solves"] == 1


def test_wall_clock_checked_on_decisions(monkeypatch):
    # A conflict-free instance: without the decision-stride check the
    # solver would only consult the clock on conflicts and run to SAT.
    class ExpiredStopwatch:
        def __init__(self, clock=None):
            pass

        def elapsed(self):
            return 1e9

        def exceeded(self, max_seconds):
            return max_seconds is not None

    monkeypatch.setattr(
        "repro.sat.incremental.Stopwatch", ExpiredStopwatch
    )
    solver = IncrementalSolver()
    solver.add_vars(300)
    for v in range(1, 300, 2):
        solver.add_clause([v, v + 1])
    result = solver.solve(limits=Limits(max_seconds=0.001))
    assert result.status == LIMIT
