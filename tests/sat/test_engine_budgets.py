"""Every engine honours a tiny budget with a prompt LIMIT -- no hangs.

The adversarial instance is the pigeonhole principle PHP(n+1, n): provably
exponential for resolution-based search, and its conjunction BDD blows
through a small node table.  Under a near-zero budget all four engines
must *return* ``LIMIT`` -- not raise, not run away.
"""

import time

import pytest

from repro.sat import LIMIT, Cnf, Limits, solve_bdd, solve_with
from repro.sat.bdd_engine import nodes_for_limits, DEFAULT_MAX_NODES


def pigeonhole(holes):
    """CNF of PHP(holes+1, holes): unsatisfiable, resolution-hard."""
    cnf = Cnf()
    var = {}
    for pigeon in range(holes + 1):
        for hole in range(holes):
            var[pigeon, hole] = cnf.new_var(f"p{pigeon}h{hole}")
    for pigeon in range(holes + 1):
        cnf.add_clause([var[pigeon, hole] for hole in range(holes)])
    for hole in range(holes):
        for first in range(holes + 1):
            for second in range(first + 1, holes + 1):
                cnf.add_clause(
                    [-var[first, hole], -var[second, hole]]
                )
    return cnf


TINY = Limits(max_backtracks=2, max_seconds=0.5)


@pytest.mark.parametrize("engine", ["dpll", "cdcl", "bdd", "hybrid"])
def test_every_engine_limits_under_tiny_budget(engine):
    cnf = pigeonhole(8)
    started = time.perf_counter()
    result = solve_with(cnf, TINY, engine=engine)
    elapsed = time.perf_counter() - started
    assert result.status == LIMIT, engine
    assert elapsed < 5.0, f"{engine} did not stop promptly"


def test_bdd_engine_maps_backtracks_onto_nodes():
    # The mapping keeps generous budgets at the full table ...
    assert nodes_for_limits(None) == DEFAULT_MAX_NODES
    assert nodes_for_limits(Limits()) == DEFAULT_MAX_NODES
    assert (
        nodes_for_limits(Limits(max_backtracks=100_000))
        == DEFAULT_MAX_NODES
    )
    # ... and shrinks it for tiny ones (clamped to a workable floor).
    assert nodes_for_limits(Limits(max_backtracks=2)) == 64
    assert nodes_for_limits(Limits(max_backtracks=100)) == 800


def test_solve_bdd_limits_on_node_budget_alone():
    # No deadline: only the mapped node budget can stop it.
    result = solve_bdd(pigeonhole(8), Limits(max_backtracks=2))
    assert result.status == LIMIT


def test_solve_bdd_still_decides_small_instances_under_floor_budget():
    cnf = Cnf()
    a, b = cnf.new_var("a"), cnf.new_var("b")
    cnf.add_clause([a, b])
    cnf.add_clause([-a, b])
    result = solve_bdd(cnf, Limits(max_backtracks=1))
    assert result.status == "sat"
