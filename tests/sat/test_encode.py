"""Unit tests for repro.sat.encode helpers."""

import itertools

from repro.sat import (
    Cnf,
    add_at_most_one,
    add_equal,
    add_implies,
    add_xor_var,
    solve,
)


def models(cnf, over):
    """Enumerate assignments to ``over`` extendable to full models."""
    found = set()
    for bits in itertools.product([False, True], repeat=cnf.num_vars):
        assignment = {v: bits[v - 1] for v in range(1, cnf.num_vars + 1)}
        if cnf.evaluate(assignment):
            found.add(tuple(assignment[v] for v in over))
    return found


def test_add_implies():
    cnf = Cnf()
    a, b, c = (cnf.new_var() for _ in range(3))
    add_implies(cnf, [a, b], c)
    assert (True, True, False) not in models(cnf, [a, b, c])
    assert (True, True, True) in models(cnf, [a, b, c])


def test_add_equal():
    cnf = Cnf()
    a, b = cnf.new_var(), cnf.new_var()
    add_equal(cnf, a, b)
    assert models(cnf, [a, b]) == {(False, False), (True, True)}


def test_add_equal_guarded():
    cnf = Cnf()
    g, a, b = (cnf.new_var() for _ in range(3))
    add_equal(cnf, a, b, condition=[g])
    result = models(cnf, [g, a, b])
    assert (True, True, False) not in result
    assert (False, True, False) in result  # guard off: unconstrained


def test_add_xor_var():
    cnf = Cnf()
    a, b = cnf.new_var(), cnf.new_var()
    d = add_xor_var(cnf, a, b, name="d")
    for va, vb, vd in models(cnf, [a, b, d]):
        assert vd == (va != vb)
    assert cnf.name_of(d) == "d"


def test_add_at_most_one():
    cnf = Cnf()
    vs = [cnf.new_var() for _ in range(4)]
    add_at_most_one(cnf, vs)
    for model in models(cnf, vs):
        assert sum(model) <= 1
    assert solve(cnf).status == "sat"
    # Small sets stay pairwise: no auxiliary variables.
    assert cnf.num_vars == 4


def test_add_at_most_one_sequential():
    # Above the threshold the sequential-counter encoding takes over;
    # its projection onto the input literals must be exactly the
    # pairwise one's: every assignment with <= 1 literal true, no other.
    n = 8
    cnf = Cnf()
    vs = [cnf.new_var() for _ in range(n)]
    add_at_most_one(cnf, vs)
    assert cnf.num_vars == 2 * n - 1  # n inputs + n-1 counter bits
    expected = {tuple(False for _ in range(n))} | {
        tuple(i == j for j in range(n)) for i in range(n)
    }
    assert models(cnf, vs) == expected


def test_add_at_most_one_clause_counts():
    for n in (7, 9, 12):
        cnf = Cnf()
        vs = [cnf.new_var() for _ in range(n)]
        add_at_most_one(cnf, vs)
        pairwise = n * (n - 1) // 2
        assert len(cnf.clauses) == 3 * n - 4 < pairwise


def test_add_at_most_one_negated_literals():
    # The helper accepts arbitrary literals, not just positive ones.
    cnf = Cnf()
    vs = [cnf.new_var() for _ in range(7)]
    add_at_most_one(cnf, [-v for v in vs])
    for model in models(cnf, vs):
        assert sum(1 for value in model if not value) <= 1
