"""Regression: wall-clock deadlines fire on conflict-free stretches.

Both search engines used to consult ``Limits.max_seconds`` only when a
conflict occurred, so a long decide/propagate run with no conflicts
sailed past the deadline.  These tests pin the fix -- a stride-based
check on decisions -- with an injected always-expired clock and a
conflict-free formula: without the stride the runs would return SAT,
never having looked at the clock.
"""

import pytest

from repro.sat import Cnf, Limits
from repro.sat.cdcl import solve_cdcl
from repro.sat.solver import LIMIT, solve


class ExpiredStopwatch:
    """A clock already past any finite deadline."""

    def __init__(self, clock=None):
        pass

    def elapsed(self):
        return 1e9

    def exceeded(self, max_seconds):
        return max_seconds is not None


def conflict_free_cnf():
    # 150 disjoint binary clauses: satisfiable with zero conflicts but
    # well over the check stride's worth of decisions.
    cnf = Cnf()
    variables = [cnf.new_var() for _ in range(300)]
    for i in range(0, 300, 2):
        cnf.add_clause([variables[i], variables[i + 1]])
    return cnf


@pytest.mark.parametrize(
    "module, engine",
    [("repro.sat.solver", solve), ("repro.sat.cdcl", solve_cdcl)],
    ids=["dpll", "cdcl"],
)
def test_deadline_fires_without_conflicts(monkeypatch, module, engine):
    monkeypatch.setattr(f"{module}.Stopwatch", ExpiredStopwatch)
    result = engine(conflict_free_cnf(), Limits(max_seconds=0.001))
    assert result.status == LIMIT


@pytest.mark.parametrize(
    "engine", [solve, solve_cdcl], ids=["dpll", "cdcl"]
)
def test_no_deadline_still_completes(engine):
    # The stride check must be inert when max_seconds is None.
    result = engine(conflict_free_cnf(), Limits())
    assert result.status == "sat"
