"""Unit and property tests for the DPLL solver."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import LIMIT, SAT, UNSAT, Cnf, Limits, solve


def make_cnf(num_vars, clauses):
    cnf = Cnf()
    for _ in range(num_vars):
        cnf.new_var()
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert solve(Cnf()).status == SAT

    def test_single_unit(self):
        cnf = make_cnf(1, [[1]])
        result = solve(cnf)
        assert result.status == SAT
        assert result.assignment[1] is True

    def test_conflicting_units(self):
        assert solve(make_cnf(1, [[1], [-1]])).status == UNSAT

    def test_empty_clause(self):
        assert solve(make_cnf(1, [[]])).status == UNSAT

    def test_model_satisfies_formula(self):
        cnf = make_cnf(3, [[1, 2], [-1, 3], [-2, -3], [2, 3]])
        result = solve(cnf)
        assert result.status == SAT
        assert cnf.evaluate(result.assignment)

    def test_chain_of_implications(self):
        # 1 -> 2 -> ... -> 10, with 1 forced true.
        clauses = [[1]] + [[-i, i + 1] for i in range(1, 10)]
        cnf = make_cnf(10, clauses)
        result = solve(cnf)
        assert result.status == SAT
        assert all(result.assignment[v] for v in range(1, 11))
        # All forced by propagation: no search needed.
        assert result.decisions == 0

    def test_xor_chain_unsat(self):
        # x1 xor x2 = 1, x2 xor x3 = 1, x3 xor x1 = 1 is unsatisfiable.
        clauses = []
        for a, b in [(1, 2), (2, 3), (3, 1)]:
            clauses.append([a, b])
            clauses.append([-a, -b])
        assert solve(make_cnf(3, clauses)).status == UNSAT


def pigeonhole(holes):
    """PHP(holes+1, holes): unsatisfiable, exponential for plain DPLL."""
    pigeons = holes + 1
    cnf = Cnf()
    var = {}
    for p in range(pigeons):
        for h in range(holes):
            var[p, h] = cnf.new_var()
    for p in range(pigeons):
        cnf.add_clause([var[p, h] for h in range(holes)])
    for h in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            cnf.add_clause([-var[p1, h], -var[p2, h]])
    return cnf


class TestHardFormulas:
    def test_pigeonhole_unsat(self):
        assert solve(pigeonhole(4)).status == UNSAT

    def test_backtrack_limit_triggers(self):
        result = solve(pigeonhole(8), Limits(max_backtracks=50))
        assert result.status == LIMIT
        assert result.backtracks >= 50

    def test_time_limit_triggers(self):
        result = solve(pigeonhole(10), Limits(max_seconds=0.05))
        assert result.status == LIMIT

    def test_stats_populated(self):
        result = solve(pigeonhole(4))
        assert result.backtracks > 0
        assert result.decisions > 0
        assert result.seconds >= 0


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        if all(
            any(assignment[abs(l)] == (l > 0) for l in clause)
            for clause in clauses
        ):
            return True
    return False


@st.composite
def random_formula(draw):
    num_vars = draw(st.integers(min_value=1, max_value=6))
    num_clauses = draw(st.integers(min_value=1, max_value=18))
    clauses = []
    for _ in range(num_clauses):
        size = draw(st.integers(min_value=1, max_value=3))
        clause = [
            draw(st.integers(min_value=1, max_value=num_vars))
            * (1 if draw(st.booleans()) else -1)
            for _ in range(size)
        ]
        clauses.append(clause)
    return num_vars, clauses


@settings(max_examples=200, deadline=None)
@given(random_formula())
def test_solver_matches_brute_force(formula):
    num_vars, clauses = formula
    cnf = make_cnf(num_vars, clauses)
    result = solve(cnf)
    expected = brute_force_sat(num_vars, cnf.clauses)
    assert result.status == (SAT if expected else UNSAT)
    if result.status == SAT:
        assert cnf.evaluate(result.assignment)
