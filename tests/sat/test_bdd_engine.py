"""Tests for the BDD solve engine."""

from repro.sat import Cnf, Limits, solve_bdd, solve_with
from repro.sat.solver import LIMIT, SAT, UNSAT


def make_cnf(num_vars, clauses, weights=()):
    cnf = Cnf()
    for _ in range(num_vars):
        cnf.new_var()
    for clause in clauses:
        cnf.add_clause(clause)
    for var, weight in weights:
        cnf.set_weight(var, weight)
    return cnf


def test_sat_and_model_valid():
    cnf = make_cnf(3, [[1, 2], [-1, 3], [-2, -3]])
    result = solve_bdd(cnf)
    assert result.status == SAT
    assert cnf.evaluate(result.assignment)


def test_unsat():
    assert solve_bdd(make_cnf(1, [[1], [-1]])).status == UNSAT


def test_empty_formula():
    assert solve_bdd(Cnf()).status == SAT


def test_minimises_weights():
    # x | y with y cheap: the chosen model sets y, not x.
    cnf = make_cnf(2, [[1, 2]], weights=[(1, 10), (2, 1)])
    result = solve_bdd(cnf)
    assert result.assignment[2] is True
    assert result.assignment[1] is False


def test_node_cap_reports_limit():
    # A parity chain blows up under a poor static order... a generous
    # formula with a tiny cap suffices to trigger the guard.
    clauses = []
    for a in range(1, 9):
        for b in range(a + 1, 9):
            clauses.append([a, b])
    cnf = make_cnf(8, clauses)
    result = solve_bdd(cnf, max_nodes=8)
    assert result.status == LIMIT


def test_engine_dispatch_falls_back():
    # Through solve_with, a BDD limit silently falls back to CDCL.
    clauses = []
    for a in range(1, 9):
        for b in range(a + 1, 9):
            clauses.append([a, b])
    cnf = make_cnf(8, clauses)
    result = solve_with(cnf, engine="bdd")
    assert result.status == SAT


def test_time_limit():
    clauses = [[a, -b, (a % 7) + 1] for a in range(1, 60) for b in range(1, 8)]
    cnf = make_cnf(60, clauses)
    result = solve_bdd(cnf, limits=Limits(max_seconds=0.0))
    assert result.status == LIMIT
