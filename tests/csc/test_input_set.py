"""Unit tests for input signal set derivation (Figure 2)."""

import pytest

from repro.csc import Assignment, Value, determine_input_set, sg_triggers
from repro.stg import parse_g
from repro.stategraph import build_state_graph

from tests.example_stgs import CONCURRENT, CSC_CONFLICT, HANDSHAKE


class TestTriggers:
    def test_handshake(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        assert sg_triggers(graph, "b") == {"a"}

    def test_concurrent_join(self):
        graph = build_state_graph(parse_g(CONCURRENT))
        # z becomes excited only when the second of x, y arrives.
        assert sg_triggers(graph, "z") == {"x", "y"}
        assert sg_triggers(graph, "x") == {"a"}

    def test_self_not_trigger(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        assert "c" not in sg_triggers(graph, "c")


class TestDetermineInputSet:
    def test_rejects_input_signal(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        with pytest.raises(ValueError):
            determine_input_set(
                graph, "a", Assignment.empty(graph.num_states)
            )

    def test_handshake_b_needs_only_a(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        result = determine_input_set(
            graph, "b", Assignment.empty(graph.num_states)
        )
        assert result.kept_signals == ["a"]
        assert result.hidden_signals == []
        assert result.conflicts == 0

    def test_concurrent_outputs_drop_unrelated_signals(self):
        graph = build_state_graph(parse_g(CONCURRENT))
        result = determine_input_set(
            graph, "x", Assignment.empty(graph.num_states)
        )
        # x is triggered by a; hiding y and z must not create conflicts.
        assert "a" in result.kept_signals
        assert result.conflicts == 0
        assert set(result.hidden_signals) <= {"y", "z"}

    def test_trigger_never_hidden(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        result = determine_input_set(
            graph, "c", Assignment.empty(graph.num_states)
        )
        # b- triggers c+: b must stay.
        assert "b" in result.kept_signals

    def test_conflicts_counted(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        result = determine_input_set(
            graph, "c", Assignment.empty(graph.num_states)
        )
        assert result.conflicts >= 1
        assert result.lower_bound >= 1

    def test_greedy_never_increases_conflicts(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        for output in graph.non_inputs:
            result = determine_input_set(
                graph, output, Assignment.empty(graph.num_states)
            )
            baseline = determine_input_set(
                graph, output, Assignment.empty(graph.num_states)
            )
            assert result.conflicts <= baseline.conflicts

    def test_state_signal_kept_when_needed(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        # A state signal that stably separates the conflict pair: removing
        # it would re-create the conflict for output c.
        values = [
            (Value.ZERO,), (Value.UP,), (Value.UP,),
            (Value.UP,), (Value.ONE,), (Value.DOWN,),
        ]
        existing = Assignment(("n0",), values)
        result = determine_input_set(graph, "c", existing)
        assert result.kept_state_signals == ["n0"]
        assert result.dropped_state_signals == []
        assert result.conflicts == 0

    def test_useless_state_signal_dropped(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        existing = Assignment(
            ("n0",), [(Value.ZERO,)] * graph.num_states
        )
        result = determine_input_set(graph, "b", existing)
        assert result.kept_state_signals == []
        assert result.dropped_state_signals == ["n0"]
