"""Integration tests for the direct (no-decomposition) method."""

from repro.csc import Assignment, direct_synthesis, verify_csc
from repro.stg import parse_g
from repro.stategraph import build_state_graph, csc_conflicts
from repro.runtime.options import SynthesisOptions

from tests.example_stgs import ALL, CSC_CONFLICT, HANDSHAKE


class TestDirectSynthesis:
    def test_all_examples_synthesise(self):
        for text in ALL.values():
            result = direct_synthesis(parse_g(text))
            assert verify_csc(result.expanded) == []
            assert csc_conflicts(result.expanded) == []

    def test_clean_graph_untouched(self):
        result = direct_synthesis(parse_g(HANDSHAKE))
        assert result.state_signals == 0
        assert result.final_states == 4
        assert result.attempts == []

    def test_conflict_resolved_with_one_signal(self):
        result = direct_synthesis(parse_g(CSC_CONFLICT))
        assert result.state_signals == 1
        assert result.assignment.names == ("csc0",)
        assert result.attempts  # at least one formula solved

    def test_assignment_edge_compatible(self):
        result = direct_synthesis(parse_g(CSC_CONFLICT))
        assert result.assignment.check_edge_compatibility(result.graph) == []

    def test_literals_counted(self):
        result = direct_synthesis(parse_g(CSC_CONFLICT))
        assert result.literals == sum(
            cover.literals for cover in result.covers.values()
        )
        assert set(result.covers) == set(result.expanded.non_inputs)

    def test_attempt_stats(self):
        result = direct_synthesis(parse_g(CSC_CONFLICT))
        attempt = result.attempts[-1]
        assert attempt.status == "sat"
        assert attempt.num_clauses > 0
        assert attempt.num_vars > 0

    def test_accepts_prebuilt_graph(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        result = direct_synthesis(
            graph, options=SynthesisOptions(minimize=False)
        )
        assert result.graph is graph
        assert result.covers is None

    def test_repr_mentions_counts(self):
        result = direct_synthesis(parse_g(CSC_CONFLICT))
        text = repr(result)
        assert "states" in text and "literals" in text


class TestVerify:
    def test_verify_reports_conflicts_without_assignment(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        assert len(verify_csc(graph)) == 1

    def test_verify_accepts_empty_assignment(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        empty = Assignment.empty(graph.num_states)
        assert verify_csc(graph, empty) == []
