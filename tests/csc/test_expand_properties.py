"""Property-based tests for state-graph expansion."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.csc import Assignment, Value, expand
from repro.csc.values import CYCLE, edge_compatible
from repro.stategraph import build_state_graph
from repro.stg import parse_g

from tests.example_stgs import CSC_CONFLICT

GRAPH = build_state_graph(parse_g(CSC_CONFLICT))

# The six-state cycle M0 -> M1 -> ... -> M5 -> M0: a valid single-signal
# assignment is any walk on the value cycle that steps at most one
# position per edge and returns to its start.


@st.composite
def cycle_assignment(draw):
    """A random edge-compatible assignment over the six-cycle."""
    values = [draw(st.sampled_from(CYCLE))]
    for _ in range(5):
        current = values[-1]
        successors = [v for v in CYCLE if edge_compatible(current, v)]
        values.append(draw(st.sampled_from(successors)))
    # Close the cycle.
    assume(edge_compatible(values[5], values[0]))
    return values


@settings(max_examples=200, deadline=None)
@given(cycle_assignment())
def test_expansion_state_count(values):
    assignment = Assignment(("n0",), [(v,) for v in values])
    expanded = expand(GRAPH, assignment)
    excited = sum(1 for v in values if v.excited)
    assert expanded.num_states == GRAPH.num_states + excited


@settings(max_examples=200, deadline=None)
@given(cycle_assignment())
def test_expansion_codes_consistent(values):
    # The StateGraph constructor re-validates consistent assignment on
    # every edge; successful construction is the property.
    assignment = Assignment(("n0",), [(v,) for v in values])
    expanded = expand(GRAPH, assignment)
    assert len(expanded.signals) == len(GRAPH.signals) + 1


@settings(max_examples=200, deadline=None)
@given(cycle_assignment())
def test_origins_cover_every_state(values):
    assignment = Assignment(("n0",), [(v,) for v in values])
    expanded, origins = expand(GRAPH, assignment, return_origins=True)
    assert len(origins) == expanded.num_states
    assert set(origins) == set(GRAPH.states())
    # Each original state maps to one or two expanded states.
    for state in GRAPH.states():
        count = origins.count(state)
        expected = 2 if values[state].excited else 1
        assert count == expected


@settings(max_examples=150, deadline=None)
@given(cycle_assignment())
def test_signal_fires_once_per_excited_state(values):
    assignment = Assignment(("n0",), [(v,) for v in values])
    expanded = expand(GRAPH, assignment)
    fired = [
        label for _s, label, _t in expanded.edges
        if label is not None and label[0] == "n0"
    ]
    excited = sum(1 for v in values if v.excited)
    assert len(fired) == excited
