"""Unit tests for state-graph expansion with state signals."""

import pytest

from repro.csc import Assignment, Value, expand
from repro.csc.errors import SynthesisError
from repro.stg import parse_g
from repro.stategraph import build_state_graph, csc_conflicts

from tests.example_stgs import CSC_CONFLICT, HANDSHAKE


def cycle_assignment(graph):
    """The canonical single-signal fix for the csc-ex benchmark."""
    # States in BFS order: pre-a+, post-a+, post-b+, post-a-, post-b-
    # (excites c+), post-c+.
    values = [
        (Value.ZERO,), (Value.UP,), (Value.UP,),
        (Value.UP,), (Value.ONE,), (Value.DOWN,),
    ]
    return Assignment(("n0",), values)


class TestExpansion:
    def test_state_count(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        expanded = expand(graph, cycle_assignment(graph))
        # Four excited states split: 6 + 4 = 10.
        assert expanded.num_states == 10

    def test_new_signal_in_code(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        expanded = expand(graph, cycle_assignment(graph))
        assert expanded.signals == ("a", "b", "c", "n0")
        assert "n0" in expanded.non_inputs

    def test_new_signal_fires(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        expanded = expand(graph, cycle_assignment(graph))
        labels = {label for _s, label, _t in expanded.edges}
        assert ("n0", "+") in labels
        assert ("n0", "-") in labels

    def test_expansion_satisfies_csc(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        expanded = expand(graph, cycle_assignment(graph))
        assert csc_conflicts(expanded) == []

    def test_origins_returned(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        expanded, origins = expand(
            graph, cycle_assignment(graph), return_origins=True
        )
        assert len(origins) == expanded.num_states
        assert set(origins) == set(graph.states())

    def test_empty_assignment_is_identity(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        expanded = expand(graph, Assignment.empty(graph.num_states))
        assert expanded.num_states == graph.num_states
        assert expanded.signals == graph.signals

    def test_incompatible_assignment_rejected(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        bad = Assignment(
            ("n0",),
            [(Value.ZERO,)] * 5 + [(Value.ONE,)],
        )
        with pytest.raises(SynthesisError):
            expand(graph, bad)

    def test_consistency_of_expanded_codes(self):
        # The StateGraph constructor itself checks consistent assignment;
        # reaching it without exceptions is the real assertion here.
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        expanded = expand(graph, cycle_assignment(graph))
        assert expanded.check_deterministic() is None

    def test_two_signal_expansion(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        values = [
            (Value.ZERO, Value.ZERO), (Value.UP, Value.ZERO),
            (Value.UP, Value.UP), (Value.UP, Value.UP),
            (Value.ONE, Value.ONE), (Value.DOWN, Value.DOWN),
        ]
        assignment = Assignment(("n0", "n1"), values)
        expanded = expand(graph, assignment)
        assert len(expanded.signals) == 5
        # Concurrent excitations produce the interleaving diamond.
        assert expanded.num_states > graph.num_states
