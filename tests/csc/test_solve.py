"""Unit tests for the shared m-growing solve loop."""

import pytest

from repro.csc import Assignment, BacktrackLimitError, Value
from repro.csc.errors import SynthesisError
from repro.csc.solve import solve_state_signals
from repro.sat.solver import Limits
from repro.stategraph import build_state_graph, csc_conflicts
from repro.stg import parse_g

from tests.example_stgs import CSC_CONFLICT, HANDSHAKE


def conflict_graph():
    return build_state_graph(parse_g(CSC_CONFLICT))


class TestBasics:
    def test_no_conflicts_no_signals(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        outcome = solve_state_signals(graph)
        assert outcome.m == 0
        assert outcome.attempts == []
        assert all(row == () for row in outcome.rows)

    def test_single_conflict_one_signal(self):
        outcome = solve_state_signals(conflict_graph())
        assert outcome.m == 1
        assert outcome.attempts[-1].status == "sat"

    def test_rows_resolve_conflicts(self):
        graph = conflict_graph()
        outcome = solve_state_signals(graph)
        assignment = Assignment(("n0",), outcome.rows)
        assert csc_conflicts(
            graph,
            extra_codes=assignment.cur_bits(),
            extra_implied=assignment.implied_bits(),
        ) == []

    def test_engines_available(self):
        for engine in ("dpll", "cdcl", "hybrid"):
            outcome = solve_state_signals(conflict_graph(), engine=engine)
            assert outcome.m == 1


class TestPolicies:
    def test_on_limit_raise(self):
        # A whole-benchmark instance is guaranteed to backtrack at least
        # once under the chronological engine; a zero budget then aborts.
        from repro.bench import load_benchmark

        graph = build_state_graph(load_benchmark("mmu1"))
        with pytest.raises(BacktrackLimitError):
            solve_state_signals(
                graph,
                limits=Limits(max_backtracks=0),
                engine="dpll",
            )

    def test_on_limit_skip_never_aborts(self):
        # Under the skip policy a budget exhaustion becomes "try the next
        # m" and can only end in success or SynthesisError -- never in a
        # BacktrackLimitError abort.
        try:
            outcome = solve_state_signals(
                conflict_graph(),
                limits=Limits(max_backtracks=0),
                engine="dpll",
                on_limit="skip",
                max_signals=2,
            )
        except SynthesisError:
            pass
        except BacktrackLimitError:  # pragma: no cover - the regression
            pytest.fail("skip policy must not abort on limits")
        else:
            assert outcome.m >= 1

    def test_explicit_conflict_pairs(self):
        graph = conflict_graph()
        ((a, b),) = csc_conflicts(graph)
        outcome = solve_state_signals(graph, conflict_pairs=[(a, b)])
        assert outcome.m == 1

    def test_empty_conflict_pairs_is_noop(self):
        outcome = solve_state_signals(
            conflict_graph(), conflict_pairs=[]
        )
        assert outcome.m == 0


class TestIncrementalLoop:
    @pytest.fixture(autouse=True)
    def _clean_faults(self):
        from repro.runtime import faults

        faults.clear()
        yield
        faults.clear()

    def test_incremental_matches_oneshot_m(self):
        graph = conflict_graph()
        incremental = solve_state_signals(graph, sat_mode="incremental")
        oneshot = solve_state_signals(graph, sat_mode="oneshot")
        assert incremental.m == oneshot.m == 1
        assignment = Assignment(("n0",), incremental.rows)
        assert csc_conflicts(
            graph,
            extra_codes=assignment.cur_bits(),
            extra_implied=assignment.implied_bits(),
        ) == []

    def test_incremental_attempt_metrics(self):
        outcome = solve_state_signals(conflict_graph())
        final = outcome.attempts[-1]
        assert final.metrics["incremental_solves"] == 1

    def test_dpll_engine_stays_oneshot(self):
        outcome = solve_state_signals(
            conflict_graph(), engine="dpll", sat_mode="incremental"
        )
        assert outcome.m == 1
        assert outcome.attempts[-1].metrics["incremental_solves"] == 0

    def test_limit_falls_back_to_oneshot(self):
        # One injected budget exhaustion on the incremental attempt:
        # the loop must retry that attempt one-shot and still succeed.
        from repro.runtime import faults

        with faults.injected("solver-limit", times=1):
            outcome = solve_state_signals(
                conflict_graph(), on_limit="skip"
            )
        assert outcome.m == 1
        graph = conflict_graph()
        assignment = Assignment(("n0",), outcome.rows)
        assert csc_conflicts(
            graph,
            extra_codes=assignment.cur_bits(),
            extra_implied=assignment.implied_bits(),
        ) == []

    def test_persistent_limit_raises_under_raise_policy(self):
        from repro.runtime import faults

        with faults.injected("solver-limit", times=None):
            with pytest.raises(BacktrackLimitError):
                solve_state_signals(conflict_graph())


class TestExtraPairFiltering:
    def test_unseparated_pair_kept(self):
        graph = conflict_graph()
        ((a, b),) = csc_conflicts(graph)
        outcome = solve_state_signals(
            graph, extra_conflict_pairs=((a, b),)
        )
        assert outcome.m == 1

    def test_stably_separated_pair_dropped(self):
        graph = conflict_graph()
        ((a, b),) = csc_conflicts(graph)
        cur = [(0,)] * graph.num_states
        cur[b] = (1,)
        excited = [(0,)] * graph.num_states
        implied = cur
        outcome = solve_state_signals(
            graph,
            extra_codes=cur,
            extra_implied=implied,
            extra_excited=excited,
            extra_conflict_pairs=((a, b),),
        )
        assert outcome.m == 0

    def test_excitedly_separated_pair_kept(self):
        graph = conflict_graph()
        ((a, b),) = csc_conflicts(graph)
        # b's bit differs but is excited there: splits would collide, so
        # the pair must stay in force.
        cur = [(0,)] * graph.num_states
        cur[b] = (1,)
        excited = [(0,)] * graph.num_states
        excited[b] = (1,)
        implied = [(0,)] * graph.num_states
        outcome = solve_state_signals(
            graph,
            extra_codes=cur,
            extra_implied=implied,
            extra_excited=excited,
            extra_conflict_pairs=((a, b),),
        )
        assert outcome.m >= 1
