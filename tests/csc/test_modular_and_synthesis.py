"""Integration tests: partition_sat, propagate, and modular_synthesis."""

import pytest

from repro.csc import (
    Assignment,
    determine_input_set,
    modular_synthesis,
    partition_sat,
    propagate,
    verify_csc,
)
from repro.stg import parse_g
from repro.stategraph import build_state_graph, csc_conflicts
from repro.runtime.options import SynthesisOptions

from tests.example_stgs import ALL, CHOICE, CONCURRENT, CSC_CONFLICT, HANDSHAKE


class TestPartitionSat:
    def test_conflict_output_gets_signal(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        empty = Assignment.empty(graph.num_states)
        input_set = determine_input_set(graph, "c", empty)
        result = partition_sat(graph, "c", input_set, empty)
        assert result.signals_added >= 1
        assert result.num_macro_states <= graph.num_states

    def test_clean_output_needs_nothing(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        empty = Assignment.empty(graph.num_states)
        input_set = determine_input_set(graph, "b", empty)
        result = partition_sat(graph, "b", input_set, empty)
        assert result.signals_added == 0
        assert result.outcome.attempts == []

    def test_propagate_extends_assignment(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        empty = Assignment.empty(graph.num_states)
        input_set = determine_input_set(graph, "c", empty)
        result = partition_sat(graph, "c", input_set, empty)
        extended = propagate(empty, result)
        assert extended.num_signals == result.signals_added
        assert extended.num_states == graph.num_states

    def test_propagated_assignment_resolves_conflict(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        empty = Assignment.empty(graph.num_states)
        input_set = determine_input_set(graph, "c", empty)
        result = partition_sat(graph, "c", input_set, empty)
        extended = propagate(empty, result)
        remaining = csc_conflicts(
            graph, outputs=["c"], extra_codes=extended.cur_bits()
        )
        assert remaining == []

    def test_signal_naming_uses_name_start(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        empty = Assignment.empty(graph.num_states)
        input_set = determine_input_set(graph, "c", empty)
        result = partition_sat(
            graph, "c", input_set, empty, name_start=7
        )
        assert result.macro_assignment.names[0] == "csc7"


class TestModularSynthesis:
    def test_all_examples_synthesise(self):
        for text in ALL.values():
            result = modular_synthesis(parse_g(text))
            assert verify_csc(result.expanded) == []
            assert result.literals is not None and result.literals > 0

    def test_clean_stg_needs_no_signals(self):
        result = modular_synthesis(parse_g(HANDSHAKE))
        assert result.state_signals == 0
        assert result.final_states == result.initial_states

    def test_conflict_stg_gets_one_signal(self):
        result = modular_synthesis(parse_g(CSC_CONFLICT))
        assert result.state_signals == 1
        assert result.final_states > result.initial_states
        assert result.final_signals == result.initial_signals + 1

    def test_module_reports(self):
        result = modular_synthesis(parse_g(CSC_CONFLICT))
        assert [m.output for m in result.modules] == ["b", "c"]
        by_output = {m.output: m for m in result.modules}
        assert by_output["c"].signals_added == 1
        assert by_output["b"].signals_added == 0

    def test_formula_sizes_recorded(self):
        result = modular_synthesis(parse_g(CSC_CONFLICT))
        sizes = result.formula_sizes()
        assert sizes
        assert all(clauses > 0 and variables > 0 for clauses, variables in sizes)

    def test_modular_formulas_smaller_than_whole_graph(self):
        # The modular graph for c hides unrelated signals, so its SAT
        # formula involves fewer states than the complete graph would.
        result = modular_synthesis(parse_g(CSC_CONFLICT))
        module = next(m for m in result.modules if m.output == "c")
        assert module.num_macro_states < result.graph.num_states

    def test_output_order_respected(self):
        result = modular_synthesis(
            parse_g(CSC_CONFLICT),
            options=SynthesisOptions(output_order=["c", "b"]),
        )
        assert [m.output for m in result.modules] == ["c", "b"]

    def test_unknown_output_rejected(self):
        with pytest.raises(ValueError):
            modular_synthesis(
                parse_g(CSC_CONFLICT),
                options=SynthesisOptions(output_order=["zz"]),
            )

    def test_accepts_prebuilt_state_graph(self):
        graph = build_state_graph(parse_g(CHOICE))
        result = modular_synthesis(graph)
        assert result.graph is graph

    def test_minimize_false_skips_logic(self):
        result = modular_synthesis(
            parse_g(CONCURRENT), options=SynthesisOptions(minimize=False)
        )
        assert result.covers is None
        assert result.literals is None

    def test_expanded_graph_codes_unique_per_function(self):
        result = modular_synthesis(parse_g(CSC_CONFLICT))
        expanded = result.expanded
        seen = {}
        for state in expanded.states():
            key = expanded.code_of(state)
            implied = tuple(
                expanded.implied_value(state, s)
                for s in sorted(expanded.non_inputs)
            )
            assert seen.setdefault(key, implied) == implied
