"""Unit tests for the SAT-CSC encoding."""

import pytest

from repro.csc import (
    Assignment,
    IntrinsicConflictError,
    build_csc_formula,
    formula_stats,
)
from repro.csc.values import edge_compatible
from repro.sat import solve
from repro.stg import parse_g
from repro.stategraph import build_state_graph, csc_conflicts, quotient
from repro.stategraph.graph import EPSILON

from tests.example_stgs import CSC_CONFLICT


def conflict_graph():
    return build_state_graph(parse_g(CSC_CONFLICT))


class TestBuild:
    def test_m_must_be_positive(self):
        with pytest.raises(ValueError):
            build_csc_formula(conflict_graph(), 0)

    def test_variables_allocated(self):
        graph = conflict_graph()
        formula = build_csc_formula(graph, 2)
        # 2 boolean vars per (state, signal) pair plus auxiliaries.
        assert formula.num_vars >= 2 * 2 * graph.num_states
        assert formula.num_clauses > 0

    def test_formula_stats(self):
        formula = build_csc_formula(conflict_graph(), 1)
        num_vars, num_clauses = formula_stats(formula)
        assert num_vars == formula.num_vars
        assert num_clauses == formula.num_clauses

    def test_conflicts_found_automatically(self):
        formula = build_csc_formula(conflict_graph(), 1)
        assert len(formula.conflict_pairs) == 1

    def test_intrinsic_conflict_rejected(self):
        graph = conflict_graph()
        q = quotient(graph, hidden_signals=["b"])
        with pytest.raises(IntrinsicConflictError):
            build_csc_formula(q, 1, outputs=["c"])

    def test_clause_count_scales_with_m(self):
        graph = conflict_graph()
        one = build_csc_formula(graph, 1)
        two = build_csc_formula(graph, 2)
        assert two.num_clauses > one.num_clauses
        assert two.num_vars > one.num_vars


class TestSolveAndDecode:
    def _solve(self, graph, m, outputs=None):
        formula = build_csc_formula(graph, m, outputs=outputs)
        result = solve(formula.cnf)
        assert result.status == "sat"
        return formula.decode(result.assignment)

    def test_solution_is_edge_compatible(self):
        graph = conflict_graph()
        rows = self._solve(graph, 1)
        for source, label, target in graph.edges:
            if label is EPSILON:
                continue
            assert edge_compatible(rows[source][0], rows[target][0])

    def test_solution_resolves_conflicts(self):
        graph = conflict_graph()
        rows = self._solve(graph, 1)
        assignment = Assignment(("n0",), rows)
        remaining = csc_conflicts(
            graph,
            extra_codes=assignment.cur_bits(),
            extra_implied=assignment.implied_bits(),
        )
        assert remaining == []

    def test_conflict_pair_stably_separated(self):
        graph = conflict_graph()
        rows = self._solve(graph, 1)
        ((i, j),) = csc_conflicts(graph)
        vi, vj = rows[i][0], rows[j][0]
        assert not vi.excited and not vj.excited
        assert vi.cur != vj.cur

    def test_decode_shape(self):
        graph = conflict_graph()
        rows = self._solve(graph, 2)
        assert len(rows) == graph.num_states
        assert all(len(row) == 2 for row in rows)


class TestIncrementalFormula:
    def _formula(self):
        from repro.csc.sat_csc import IncrementalCscFormula

        return IncrementalCscFormula(conflict_graph())

    def test_columns_grow_monotonically(self):
        formula = self._formula()
        formula.ensure_m(1)
        vars_one, clauses_one = formula.num_vars, formula.num_clauses
        formula.ensure_m(2)
        assert formula.num_vars > vars_one
        assert formula.num_clauses > clauses_one
        # Growing is idempotent: re-asking for a covered m adds nothing.
        vars_two, clauses_two = formula.num_vars, formula.num_clauses
        formula.ensure_m(1)
        assert (formula.num_vars, formula.num_clauses) \
            == (vars_two, clauses_two)

    def test_assumptions_select_attempt(self):
        formula = self._formula()
        formula.ensure_m(1)
        formula.ensure_m(2)
        banned = formula.assumptions(1, allow_serialisation=False)
        permissive = formula.assumptions(1, allow_serialisation=True)
        assert banned[-1] == formula.noserial
        assert permissive[-1] == -formula.noserial
        assert banned[:-1] == permissive[:-1]
        # The m=2 attempt assumes one more enable column.
        assert len(formula.assumptions(2, True)) \
            == len(permissive) + 1

    def test_solve_and_decode_resolve_conflicts(self):
        graph = conflict_graph()
        from repro.csc.sat_csc import IncrementalCscFormula

        formula = IncrementalCscFormula(graph)
        formula.ensure_m(1)
        # The banned variant is UNSAT at m=1 on this graph (the one-shot
        # build agrees; see test_matches_oneshot_satisfiability) and must
        # report which assumptions the refutation used.
        banned = formula.solve(1, allow_serialisation=False)
        assert banned.status == "unsat"
        assert banned.failed_assumptions is not None
        result = formula.solve(1, allow_serialisation=True)
        assert result.status == "sat"
        rows = formula.decode(result.assignment, 1)
        assert all(len(row) == 1 for row in rows)
        assignment = Assignment(("n0",), rows)
        assert csc_conflicts(
            graph,
            extra_codes=assignment.cur_bits(),
            extra_implied=assignment.implied_bits(),
        ) == []

    def test_matches_oneshot_satisfiability(self):
        # Same graph, same m, same variant: the monotone formula under
        # assumptions and the one-shot build must agree on status.
        graph = conflict_graph()
        from repro.csc.sat_csc import IncrementalCscFormula

        formula = IncrementalCscFormula(graph)
        for m in (1, 2):
            formula.ensure_m(m)
            for allow_serialisation in (False, True):
                oneshot = build_csc_formula(
                    graph, m, allow_serialisation=allow_serialisation
                )
                assert (
                    formula.solve(m, allow_serialisation).status
                    == solve(oneshot.cnf).status
                )
