"""Unit tests for the SAT-CSC encoding."""

import pytest

from repro.csc import (
    Assignment,
    IntrinsicConflictError,
    build_csc_formula,
    formula_stats,
)
from repro.csc.values import edge_compatible
from repro.sat import solve
from repro.stg import parse_g
from repro.stategraph import build_state_graph, csc_conflicts, quotient
from repro.stategraph.graph import EPSILON

from tests.example_stgs import CSC_CONFLICT


def conflict_graph():
    return build_state_graph(parse_g(CSC_CONFLICT))


class TestBuild:
    def test_m_must_be_positive(self):
        with pytest.raises(ValueError):
            build_csc_formula(conflict_graph(), 0)

    def test_variables_allocated(self):
        graph = conflict_graph()
        formula = build_csc_formula(graph, 2)
        # 2 boolean vars per (state, signal) pair plus auxiliaries.
        assert formula.num_vars >= 2 * 2 * graph.num_states
        assert formula.num_clauses > 0

    def test_formula_stats(self):
        formula = build_csc_formula(conflict_graph(), 1)
        num_vars, num_clauses = formula_stats(formula)
        assert num_vars == formula.num_vars
        assert num_clauses == formula.num_clauses

    def test_conflicts_found_automatically(self):
        formula = build_csc_formula(conflict_graph(), 1)
        assert len(formula.conflict_pairs) == 1

    def test_intrinsic_conflict_rejected(self):
        graph = conflict_graph()
        q = quotient(graph, hidden_signals=["b"])
        with pytest.raises(IntrinsicConflictError):
            build_csc_formula(q, 1, outputs=["c"])

    def test_clause_count_scales_with_m(self):
        graph = conflict_graph()
        one = build_csc_formula(graph, 1)
        two = build_csc_formula(graph, 2)
        assert two.num_clauses > one.num_clauses
        assert two.num_vars > one.num_vars


class TestSolveAndDecode:
    def _solve(self, graph, m, outputs=None):
        formula = build_csc_formula(graph, m, outputs=outputs)
        result = solve(formula.cnf)
        assert result.status == "sat"
        return formula.decode(result.assignment)

    def test_solution_is_edge_compatible(self):
        graph = conflict_graph()
        rows = self._solve(graph, 1)
        for source, label, target in graph.edges:
            if label is EPSILON:
                continue
            assert edge_compatible(rows[source][0], rows[target][0])

    def test_solution_resolves_conflicts(self):
        graph = conflict_graph()
        rows = self._solve(graph, 1)
        assignment = Assignment(("n0",), rows)
        remaining = csc_conflicts(
            graph,
            extra_codes=assignment.cur_bits(),
            extra_implied=assignment.implied_bits(),
        )
        assert remaining == []

    def test_conflict_pair_stably_separated(self):
        graph = conflict_graph()
        rows = self._solve(graph, 1)
        ((i, j),) = csc_conflicts(graph)
        vi, vj = rows[i][0], rows[j][0]
        assert not vi.excited and not vj.excited
        assert vi.cur != vj.cur

    def test_decode_shape(self):
        graph = conflict_graph()
        rows = self._solve(graph, 2)
        assert len(rows) == graph.num_states
        assert all(len(row) == 2 for row in rows)
