"""Unit tests for state-signal assignments."""

import pytest

from repro.csc import Assignment, Value
from repro.stg import parse_g
from repro.stategraph import build_state_graph, quotient

from tests.example_stgs import CSC_CONFLICT


def sample():
    """Two signals over three states."""
    return Assignment(
        ("n0", "n1"),
        [
            (Value.ZERO, Value.UP),
            (Value.UP, Value.ONE),
            (Value.ONE, Value.DOWN),
        ],
    )


class TestConstruction:
    def test_empty(self):
        a = Assignment.empty(5)
        assert a.num_signals == 0
        assert a.num_states == 5
        assert a.cur_bits() == [()] * 5

    def test_row_length_checked(self):
        with pytest.raises(ValueError):
            Assignment(("n0",), [(Value.ZERO, Value.ONE)])

    def test_value_lookup(self):
        a = sample()
        assert a.value(1, "n0") is Value.UP
        assert a.column("n1") == [Value.UP, Value.ONE, Value.DOWN]


class TestBitViews:
    def test_cur_bits(self):
        assert sample().cur_bits() == [(0, 0), (0, 1), (1, 1)]

    def test_implied_bits(self):
        assert sample().implied_bits() == [(0, 1), (1, 1), (1, 0)]

    def test_excitation_bits(self):
        assert sample().excitation_bits() == [(0, 1), (1, 0), (0, 1)]


class TestComposition:
    def test_extended(self):
        a = Assignment.empty(2).extended(
            ("n0",), [(Value.ZERO,), (Value.ONE,)]
        )
        assert a.names == ("n0",)
        assert a.value(1, "n0") is Value.ONE

    def test_extended_wrong_length(self):
        with pytest.raises(ValueError):
            Assignment.empty(2).extended(("n0",), [(Value.ZERO,)])

    def test_restricted(self):
        a = sample().restricted(["n1"])
        assert a.names == ("n1",)
        assert a.column("n1") == [Value.UP, Value.ONE, Value.DOWN]

    def test_restricted_preserves_order(self):
        a = sample().restricted(["n1", "n0"])
        assert a.names == ("n0", "n1")


class TestEdgeCompatibility:
    def test_valid_assignment(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        # 0 -> Up -> Up -> Up -> 1 -> Down around the six-state cycle.
        values = [
            (Value.ZERO,), (Value.UP,), (Value.UP,),
            (Value.UP,), (Value.ONE,), (Value.DOWN,),
        ]
        a = Assignment(("n0",), values)
        assert a.check_edge_compatibility(graph) == []

    def test_invalid_assignment_reported(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        values = [(Value.ZERO,)] * 5 + [(Value.ONE,)]
        a = Assignment(("n0",), values)
        problems = a.check_edge_compatibility(graph)
        assert problems
        assert all(name == "n0" for _s, _t, name in problems)


class TestQuotientInteraction:
    def test_merged_over_valid(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        values = [
            (Value.ZERO,), (Value.UP,), (Value.UP,),
            (Value.UP,), (Value.ONE,), (Value.DOWN,),
        ]
        a = Assignment(("n0",), values)
        q = quotient(graph, hidden_signals=["b"])
        merged = a.merged_over(q.blocks)
        assert merged is not None
        assert merged.num_states == q.graph.num_states

    def test_merged_over_invalid_returns_none(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        # Hiding a and b merges states 0..4 into one block; a 0 -> ... -> 1
        # chain without the excited phases inside is inconsistent.
        values = [
            (Value.ZERO,), (Value.ZERO,), (Value.ONE,),
            (Value.ONE,), (Value.ONE,), (Value.ONE,),
        ]
        a = Assignment(("n0",), values)
        q = quotient(graph, hidden_signals=["a", "b"])
        assert a.merged_over(q.blocks) is None

    def test_lifted_from_roundtrip(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        q = quotient(graph, hidden_signals=["b"])
        macro = Assignment(
            ("n0",),
            [(Value.ZERO,)] * q.graph.num_states,
        )
        lifted = Assignment.empty(graph.num_states).lifted_from(
            q.cover, macro
        )
        assert lifted.num_signals == 1
        assert all(
            lifted.value(s, "n0") is Value.ZERO for s in graph.states()
        )
