"""Parallel per-module synthesis: determinism, faults, and budgets.

The determinism contract (``docs/parallelism.md``): ``jobs`` changes how
fast a result is produced, never what is produced.  A ``jobs=N`` run
must be indistinguishable from the serial run -- same inserted-signal
names and values, same covers, same per-module report -- and an injected
worker failure must degrade exactly the faulted module, like serial.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.bench import load_benchmark
from repro.csc import modular_synthesis
from repro.csc.errors import SynthesisError
from repro.runtime import faults
from repro.runtime.options import SynthesisOptions
from repro.stategraph import build_state_graph, csc_conflicts
from repro.stg import parse_g

from tests.example_stgs import CSC_CONFLICT
from tests.test_fuzz_synthesis import _well_formed, controller


@pytest.fixture(autouse=True)
def _clean_registry():
    faults.clear()
    yield
    faults.clear()


def observable(result):
    """Everything the determinism contract promises to fix."""
    return {
        "names": result.assignment.names,
        "values": result.assignment.values,
        "covers": {s: str(c) for s, c in sorted(result.covers.items())},
        "final_states": result.final_states,
        "final_signals": result.final_signals,
        "literals": result.literals,
        "modules": [
            (m.output, m.status, m.detail) for m in result.report.modules
        ],
        "status": result.report.status,
    }


@pytest.mark.parametrize("name", ["alloc-outbound", "sbuf-read-ctl"])
def test_jobs_identical_to_serial(name):
    graph = build_state_graph(load_benchmark(name))
    serial = modular_synthesis(graph, options=SynthesisOptions(minimize=True))
    parallel = modular_synthesis(
        graph, options=SynthesisOptions(minimize=True, jobs=4)
    )
    assert observable(serial) == observable(parallel)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(controller())
def test_fuzzed_jobs_identical_to_serial(text):
    stg = _well_formed(text)
    if stg is None:
        return
    graph = build_state_graph(stg)
    serial = modular_synthesis(graph, options=SynthesisOptions(minimize=True))
    parallel = modular_synthesis(
        graph, options=SynthesisOptions(minimize=True, jobs=2)
    )
    assert observable(serial) == observable(parallel)
    assert csc_conflicts(parallel.expanded) == []


def test_worker_fault_degrades_only_that_module():
    # The fault registry is consulted in the parent at dispatch time, so
    # an injected module-solve failure hits the parallel path exactly
    # like the serial one: the faulted output degrades, the rest are ok.
    graph = build_state_graph(parse_g(CSC_CONFLICT))
    with faults.injected("module-solve", match=lambda output: output == "c"):
        result = modular_synthesis(
            graph, options=SynthesisOptions(jobs=2, degrade=True)
        )
    assert result.report.module("c").status == "degraded"
    for module in result.report.modules:
        if module.output != "c":
            assert module.status == "ok"
    assert csc_conflicts(result.expanded) == []


def test_worker_fault_matches_serial_degradation():
    graph = build_state_graph(parse_g(CSC_CONFLICT))
    with faults.injected(
        "module-solve", times=None, match=lambda output: output == "c"
    ):
        serial = modular_synthesis(
            graph, options=SynthesisOptions(degrade=True)
        )
        parallel = modular_synthesis(
            graph, options=SynthesisOptions(jobs=2, degrade=True)
        )
    assert observable(serial) == observable(parallel)


def test_worker_fault_without_degrade_raises():
    graph = build_state_graph(parse_g(CSC_CONFLICT))
    with faults.injected("module-solve"):
        with pytest.raises(SynthesisError):
            modular_synthesis(graph, options=SynthesisOptions(jobs=2))


def test_worker_crash_is_retried_and_identical():
    # A real worker death (os._exit in the child) mid-batch: the
    # supervised dispatch respawns the pool, retries the module, and the
    # run completes bit-identical to serial -- with the recovery on the
    # record.
    graph = build_state_graph(parse_g(CSC_CONFLICT))
    serial = modular_synthesis(graph, options=SynthesisOptions(minimize=True))
    with faults.injected("worker-crash", match=lambda output: output == "c"):
        recovered = modular_synthesis(
            graph, options=SynthesisOptions(minimize=True, jobs=2)
        )
    assert observable(serial) == observable(recovered)
    report = recovered.report
    assert report.worker_deaths >= 1
    # "c" was resubmitted -- as its own retry or as collateral of the
    # breakage, depending on which broken future surfaced first (all of
    # a dead pool's futures break together, so attribution is a race;
    # the bucket split itself is pinned down in test_supervise.py).
    entry = report.module("c")
    assert entry.status == "ok"
    assert entry.retries + entry.respawns >= 1
    assert report.retried_modules
    assert report.metrics["module_retries"] >= 1
    assert report.metrics["worker_deaths"] >= 1
    assert "retried" in report.summary()


def test_worker_crash_with_zero_retries_is_rescued_serially():
    # With no retry budget the module escalates straight to the serial
    # rescue: re-solved in the parent, still ok, never degraded -- an
    # infrastructure failure must not change the circuit.
    graph = build_state_graph(parse_g(CSC_CONFLICT))
    serial = modular_synthesis(graph, options=SynthesisOptions(minimize=True))
    with faults.injected("worker-crash", match=lambda output: output == "c"):
        rescued = modular_synthesis(
            graph, options=SynthesisOptions(minimize=True, jobs=2, retries=0)
        )
    assert observable(serial) == observable(rescued)
    report = rescued.report
    assert report.module("c").status == "ok"
    assert report.module("c").rescued
    assert report.rescued_modules
    assert report.metrics["serial_rescues"] >= 1
    assert "rescued" in report.summary()


def test_crash_of_every_worker_module_still_completes():
    # Unlimited-shot worker-crash: every dispatched module dies once,
    # the pool respawns, every retry succeeds.
    graph = build_state_graph(parse_g(CSC_CONFLICT))
    serial = modular_synthesis(graph, options=SynthesisOptions(minimize=True))
    with faults.injected("worker-crash", times=None):
        recovered = modular_synthesis(
            graph, options=SynthesisOptions(minimize=True, jobs=2)
        )
    assert observable(serial) == observable(recovered)
    assert recovered.report.worker_deaths >= 1


def test_jobs_with_stg_input_identical():
    # The STG (rather than prebuilt graph) entry point takes the same
    # parallel path.
    stg = parse_g(CSC_CONFLICT)
    serial = modular_synthesis(stg, options=SynthesisOptions(minimize=True))
    parallel = modular_synthesis(
        stg, options=SynthesisOptions(minimize=True, jobs=3)
    )
    assert observable(serial) == observable(parallel)
