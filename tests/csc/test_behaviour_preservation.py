"""Behaviour preservation: inserting state signals must not change the
visible protocol.

Merging the inserted signals back out of the expanded state graph (the
same ε-quotient the modular method uses for projection) must recover a
graph isomorphic to the original Σ: same state count, same codes, same
labelled transitions.  This holds for every synthesis method and every
example/benchmark tried.
"""

import pytest

from repro.baselines import lavagno_synthesis
from repro.bench import load_benchmark
from repro.csc import direct_synthesis, modular_synthesis
from repro.stategraph import build_state_graph, quotient
from repro.stg import parse_g
from repro.runtime.options import SynthesisOptions

from tests.example_stgs import ALL

SMALL_BENCHMARKS = ["vbe-ex1", "sendr-done", "nousc-ser", "sbuf-read-ctl"]


def fingerprint(graph):
    """Isomorphism-invariant summary: code multiset + coded edge multiset."""
    codes = sorted(graph.codes)
    edges = sorted(
        (graph.code_of(s), label, graph.code_of(t))
        for s, label, t in graph.edges
    )
    return codes, edges


def assert_collapses_to_original(result):
    original = result.graph
    names = result.assignment.names
    if not names:
        assert fingerprint(result.expanded) == fingerprint(original)
        return
    collapsed = quotient(result.expanded, hidden_signals=names).graph
    assert fingerprint(collapsed) == fingerprint(original)


@pytest.mark.parametrize("name", sorted(ALL))
def test_modular_preserves_behaviour_examples(name):
    result = modular_synthesis(
        parse_g(ALL[name]), options=SynthesisOptions(minimize=False)
    )
    assert_collapses_to_original(result)


@pytest.mark.parametrize("name", sorted(ALL))
def test_direct_preserves_behaviour_examples(name):
    result = direct_synthesis(
        parse_g(ALL[name]), options=SynthesisOptions(minimize=False)
    )
    assert_collapses_to_original(result)


@pytest.mark.parametrize("name", SMALL_BENCHMARKS)
def test_modular_preserves_behaviour_benchmarks(name):
    graph = build_state_graph(load_benchmark(name))
    result = modular_synthesis(
        graph, options=SynthesisOptions(minimize=False)
    )
    assert_collapses_to_original(result)


@pytest.mark.parametrize("name", SMALL_BENCHMARKS)
def test_lavagno_preserves_behaviour_benchmarks(name):
    graph = build_state_graph(load_benchmark(name))
    result = lavagno_synthesis(
        graph, options=SynthesisOptions(minimize=False)
    )
    assert_collapses_to_original(result)
