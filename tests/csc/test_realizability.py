"""Tests for input-realizability analysis of assignments.

A state signal may not fire strictly *before* an input transition: the
circuit cannot make its environment wait.  The SAT encoding forbids the
value patterns, the polish pass refuses to introduce them, and this
checker is the ground truth all of that rests on.
"""

from repro.csc import Assignment, Value, modular_synthesis
from repro.stategraph import build_state_graph
from repro.stg import parse_g
from repro.runtime.options import SynthesisOptions

from tests.example_stgs import ALL, CSC_CONFLICT


def graph():
    return build_state_graph(parse_g(CSC_CONFLICT))


def test_firing_across_input_edge_detected():
    g = graph()
    # M2 --a- (input)--> M3 with (Up, 1): the signal claims to fire
    # before the environment's a-.
    values = [
        (Value.ZERO,), (Value.ZERO,), (Value.UP,),
        (Value.ONE,), (Value.ONE,), (Value.DOWN,),
    ]
    assignment = Assignment(("n0",), values)
    problems = assignment.check_input_realizability(g)
    assert (2, 3, "n0") in problems


def test_firing_across_output_edge_allowed():
    g = graph()
    # Rise happens across b- (an output edge): realisable, the circuit
    # delays its own output.
    values = [
        (Value.ZERO,), (Value.ZERO,), (Value.ZERO,),
        (Value.UP,), (Value.ONE,), (Value.DOWN,),
    ]
    assignment = Assignment(("n0",), values)
    assert assignment.check_input_realizability(g) == []


def test_staying_excited_across_input_edge_allowed():
    g = graph()
    # Up persists across the input edge (fires later): fine.
    values = [
        (Value.ZERO,), (Value.UP,), (Value.UP,),
        (Value.UP,), (Value.ONE,), (Value.DOWN,),
    ]
    assignment = Assignment(("n0",), values)
    assert assignment.check_input_realizability(g) == []


def test_synthesis_results_are_realizable():
    for text in ALL.values():
        stg = parse_g(text)
        result = modular_synthesis(
            stg, options=SynthesisOptions(minimize=False)
        )
        assert result.assignment.check_input_realizability(
            result.graph
        ) == []
