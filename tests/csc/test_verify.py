"""Tests for CSC verification helpers."""

import pytest

from repro.csc import Assignment, Value, verify_csc
from repro.csc.verify import assert_csc
from repro.stategraph import build_state_graph
from repro.stg import parse_g

from tests.example_stgs import CSC_CONFLICT, HANDSHAKE


def test_clean_graph_verifies():
    graph = build_state_graph(parse_g(HANDSHAKE))
    assert verify_csc(graph) == []
    assert_csc(graph)  # must not raise


def test_conflict_reported():
    graph = build_state_graph(parse_g(CSC_CONFLICT))
    assert len(verify_csc(graph)) == 1
    with pytest.raises(AssertionError, match="CSC violated"):
        assert_csc(graph, context="unit test")


def test_assignment_resolves():
    graph = build_state_graph(parse_g(CSC_CONFLICT))
    values = [
        (Value.ZERO,), (Value.UP,), (Value.UP,),
        (Value.UP,), (Value.ONE,), (Value.DOWN,),
    ]
    assignment = Assignment(("n0",), values)
    assert verify_csc(graph, assignment) == []
    assert_csc(graph, assignment)


def test_state_signal_own_consistency_checked():
    graph = build_state_graph(parse_g(HANDSHAKE))
    # Give two same-code states... handshake has unique codes, so craft
    # an assignment whose implied values are fine everywhere.
    assignment = Assignment(
        ("n0",), [(Value.ZERO,)] * graph.num_states
    )
    assert verify_csc(graph, assignment) == []


def test_context_in_message():
    graph = build_state_graph(parse_g(CSC_CONFLICT))
    with pytest.raises(AssertionError, match="somewhere"):
        assert_csc(graph, context="somewhere")
