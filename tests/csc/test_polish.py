"""Unit tests for post-SAT assignment polishing."""

from repro.csc import Assignment, Value, expand, modular_synthesis
from repro.csc.polish import polish_assignment
from repro.stategraph import build_state_graph, csc_conflicts
from repro.stg import parse_g
from repro.runtime.options import SynthesisOptions

from tests.example_stgs import CSC_CONFLICT, HANDSHAKE


def _excited_count(assignment):
    return sum(
        1
        for row in assignment.values
        for value in row
        if value.excited
    )


class TestPolish:
    def test_empty_assignment_unchanged(self):
        graph = build_state_graph(parse_g(HANDSHAKE))
        empty = Assignment.empty(graph.num_states)
        assert polish_assignment(graph, empty) is empty

    def test_sprawling_region_shrinks(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        # Valid but wasteful: three excited states where one suffices.
        sprawling = Assignment(
            ("n0",),
            [
                (Value.ZERO,), (Value.UP,), (Value.UP,),
                (Value.UP,), (Value.ONE,), (Value.DOWN,),
            ],
        )
        polished = polish_assignment(graph, sprawling)
        assert _excited_count(polished) < _excited_count(sprawling)
        # Still a correct solution.
        assert csc_conflicts(expand(graph, polished)) == []

    def test_minimal_region_stable(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        minimal = Assignment(
            ("n0",),
            [
                (Value.ZERO,), (Value.ZERO,), (Value.ZERO,),
                (Value.UP,), (Value.ONE,), (Value.DOWN,),
            ],
        )
        polished = polish_assignment(graph, minimal)
        # Exactly one rise and one fall must remain excited.
        assert _excited_count(polished) == 2

    def test_invalid_input_returned_unchanged(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        # All-zero does not resolve the conflict: not accepted, unchanged.
        broken = Assignment(
            ("n0",), [(Value.ZERO,)] * graph.num_states
        )
        polished = polish_assignment(graph, broken)
        assert polished.values == broken.values

    def test_synthesis_results_are_polished(self):
        graph = build_state_graph(parse_g(CSC_CONFLICT))
        result = modular_synthesis(
            graph, options=SynthesisOptions(minimize=False)
        )
        # The rise and fall of the single state signal each occupy one
        # state after polishing.
        assert _excited_count(result.assignment) == 2
