"""Unit tests for the four-valued domain {0, 1, Up, Down}."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.csc.values import (
    ALLOWED_EDGE_PAIRS,
    CYCLE,
    Value,
    edge_compatible,
    merge_values,
)


class TestValueProperties:
    def test_cur(self):
        assert Value.ZERO.cur == 0
        assert Value.UP.cur == 0
        assert Value.ONE.cur == 1
        assert Value.DOWN.cur == 1

    def test_excited(self):
        assert not Value.ZERO.excited
        assert not Value.ONE.excited
        assert Value.UP.excited
        assert Value.DOWN.excited

    def test_implied(self):
        assert Value.ZERO.implied == 0
        assert Value.UP.implied == 1
        assert Value.ONE.implied == 1
        assert Value.DOWN.implied == 0

    def test_bits_roundtrip(self):
        for value in Value:
            assert Value.from_bits(*value.bits) is value

    def test_bit_encoding_matches_paper_layout(self):
        # (current_value, excited): the code bit is the first component.
        assert Value.ZERO.bits == (0, 0)
        assert Value.ONE.bits == (1, 0)
        assert Value.UP.bits == (0, 1)
        assert Value.DOWN.bits == (1, 1)


class TestEdgeCompatibility:
    def test_allowed_count(self):
        assert len(ALLOWED_EDGE_PAIRS) == 8

    def test_stutter_always_allowed(self):
        for value in Value:
            assert edge_compatible(value, value)

    def test_cycle_steps_allowed(self):
        for i, value in enumerate(CYCLE):
            assert edge_compatible(value, CYCLE[(i + 1) % 4])

    def test_jumps_forbidden(self):
        assert not edge_compatible(Value.ZERO, Value.ONE)
        assert not edge_compatible(Value.ONE, Value.ZERO)
        assert not edge_compatible(Value.UP, Value.DOWN)
        assert not edge_compatible(Value.DOWN, Value.UP)

    def test_semi_modularity_forbidden_pairs(self):
        # An excited signal must not lose its excitation without firing.
        assert not edge_compatible(Value.UP, Value.ZERO)
        assert not edge_compatible(Value.DOWN, Value.ONE)

    def test_backward_steps_forbidden(self):
        assert not edge_compatible(Value.ONE, Value.UP)
        assert not edge_compatible(Value.ZERO, Value.DOWN)


class TestMergeValues:
    def test_singleton(self):
        for value in Value:
            assert merge_values([value]) is value

    def test_figure3_adjacent_merges(self):
        assert merge_values([Value.ZERO, Value.UP]) is Value.UP
        assert merge_values([Value.UP, Value.ONE]) is Value.UP
        assert merge_values([Value.ONE, Value.DOWN]) is Value.DOWN
        assert merge_values([Value.DOWN, Value.ZERO]) is Value.DOWN

    def test_figure3_inconsistent_merges(self):
        assert merge_values([Value.ZERO, Value.ONE]) is None
        assert merge_values([Value.UP, Value.DOWN]) is None
        assert merge_values([Value.ZERO, Value.DOWN, Value.UP]) is None

    def test_three_value_arcs(self):
        assert merge_values([Value.ZERO, Value.UP, Value.ONE]) is Value.UP
        assert merge_values([Value.ONE, Value.DOWN, Value.ZERO]) is Value.DOWN

    def test_full_cycle_invalid(self):
        assert merge_values(list(Value)) is None

    def test_duplicates_ignored(self):
        assert merge_values([Value.UP, Value.UP, Value.ZERO]) is Value.UP

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_values([])


@given(st.lists(st.sampled_from(list(Value)), min_size=1, max_size=6))
def test_merge_is_order_independent(values):
    results = {
        merge_values(p) for p in itertools.permutations(set(values))
    }
    assert len(results) == 1


@given(st.lists(st.sampled_from(list(Value)), min_size=1, max_size=6))
def test_merge_preserves_excitation(values):
    merged = merge_values(values)
    if merged is not None and len(set(values)) > 1:
        # A genuine merge always hides a transition inside: excited result.
        assert merged.excited


@given(st.sampled_from(list(Value)), st.sampled_from(list(Value)))
def test_compatible_pairs_merge(before, after):
    # Any value pair legal along an edge is also a legal ε merge.
    if edge_compatible(before, after):
        assert merge_values([before, after]) is not None
