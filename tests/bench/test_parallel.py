"""Parallel bench runs: worker merge, journals, trace_counters."""

import importlib.util
import json
import os

import pytest

from repro import obs
from repro.bench.runner import (
    table_rows,
    table_rows_parallel,
    write_bench_json,
)
from repro.bench.table1 import main as table1_main
from repro.obs import counter_totals, load_journal, stats_as_dict

_NAMES = ["vbe-ex1", "nousc-ser"]

_QUOTIENT_DROP_TOOL = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    "tools", "check_quotient_drop.py",
)


def _load_tool(path, name):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def parallel_run(tmp_path_factory):
    prefix = str(tmp_path_factory.mktemp("journals") / "trace")
    rows, stats, journals = table_rows_parallel(
        names=_NAMES, methods=("modular",), minimize=False, jobs=2,
        journal_prefix=prefix,
    )
    return rows, stats, journals


def test_parallel_rows_match_serial(parallel_run):
    rows, _stats, _journals = parallel_run
    serial = table_rows(names=_NAMES, methods=("modular",), minimize=False)
    assert list(rows) == list(serial)
    for name in _NAMES:
        got = rows[name]["modular"]
        want = serial[name]["modular"]
        assert got.final_states == want.final_states
        assert got.final_signals == want.final_signals
        assert got.note == want.note


def test_parallel_stats_carry_cache_counters(parallel_run):
    _rows, stats, _journals = parallel_run
    totals = counter_totals(stats)
    assert totals["proj_cache_misses"] > 0
    assert totals["quotients"] >= 1
    # One bench span per benchmark, merged across the worker processes.
    assert stats["bench"].count == len(_NAMES)


def test_parallel_journals_are_wellformed(parallel_run):
    _rows, _stats, journals = parallel_run
    assert len(journals) == len(_NAMES)
    for journal in journals:
        events = load_journal(journal)  # raises on a malformed journal
        assert any(e.get("name") == "bench" for e in events)


def test_concatenated_worker_journals_validate(parallel_run, tmp_path):
    _rows, _stats, journals = parallel_run
    merged = tmp_path / "merged.jsonl"
    with open(merged, "w", encoding="utf-8") as out:
        for journal in journals:
            with open(journal, encoding="utf-8") as part:
                out.write(part.read())
    events = load_journal(str(merged))
    headers = [e for e in events if e.get("ev") == "trace"]
    assert len(headers) == len(_NAMES)


def test_bench_json_from_parallel_run(parallel_run, tmp_path):
    rows, stats, _journals = parallel_run
    path = write_bench_json(
        rows, "par", out_dir=str(tmp_path),
        spans=stats_as_dict(stats),
        trace_counters=counter_totals(stats),
    )
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    assert document["spans"]["bench"]["count"] == len(_NAMES)
    assert document["trace_counters"]["quotients"] >= 1
    assert "proj_cache_misses" in document["trace_counters"]


def test_serial_bench_json_carries_trace_counters(tmp_path):
    with obs.tracing() as tracer:
        rows = table_rows(names=["vbe-ex1"], methods=("modular",),
                          minimize=False)
    path = write_bench_json(rows, "ser", out_dir=str(tmp_path),
                            tracer=tracer)
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    assert document["trace_counters"]["quotients"] >= 1
    assert document["trace_counters"]["proj_cache_hits"] >= 1


def test_table1_cli_jobs_writes_merged_artifacts(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    code = table1_main([
        "--names", ",".join(_NAMES), "--methods", "modular",
        "--no-minimize", "--jobs", "2",
        "--trace", str(trace),
        "--bench-json", "jobs", "--out-dir", str(tmp_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "vbe-ex1" in out and "nousc-ser" in out
    events = load_journal(str(trace))
    assert sum(1 for e in events if e.get("ev") == "trace") == len(_NAMES)
    assert not list(tmp_path.glob("trace.jsonl.*"))  # partials cleaned up
    with open(tmp_path / "BENCH_jobs.json", encoding="utf-8") as handle:
        document = json.load(handle)
    assert {row["benchmark"] for row in document["rows"]} == set(_NAMES)
    assert document["trace_counters"]["quotients"] >= 1


def test_table1_cli_rejects_bad_jobs():
    with pytest.raises(SystemExit):
        table1_main(["--names", "vbe-ex1", "--jobs", "0"])


def test_quotient_drop_tool_agrees_with_artifacts(tmp_path):
    tool = _load_tool(_QUOTIENT_DROP_TOOL, "check_quotient_drop")

    def artifact(name, quotients):
        path = tmp_path / f"BENCH_{name}.json"
        path.write_text(json.dumps({
            "schema": "repro-bench/1", "tag": name, "rows": [],
            "counters": {}, "spans": None,
            "trace_counters": {"quotients": quotients},
        }))
        return str(path)

    assert tool.main([artifact("base", 18), artifact("cur", 2)]) == 0
    assert tool.main([artifact("base2", 18), artifact("cur2", 10)]) == 1
    assert tool.main([
        artifact("base3", 18), artifact("cur3", 9), "--min-ratio", "2",
    ]) == 0
