"""The crash-recovery bench artifact and its validators agree."""

import copy
import importlib.util
import json
import os

import pytest

_TOOLS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "tools",
)


def _load(name):
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(_TOOLS, name + ".py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def bench_crash():
    return _load("bench_crash")


@pytest.fixture(scope="module")
def schema_check():
    return _load("check_bench_schema")


def _valid_document():
    return {
        "schema": "repro-crash-bench/1",
        "cores": 1,
        "jobs": 2,
        "repeat": 2,
        "benchmarks": ["alloc-outbound", "nak-pa", "vbe-ex2"],
        "serial_seconds": 2.5,
        "clean_parallel_seconds": 3.0,
        "faulted_parallel_seconds": 3.2,
        "corrupted_records": 5,
        "healed_records": 5,
        "recovery": {
            "worker_deaths": 1,
            "module_retries": 1,
            "pool_respawns": 1,
            "serial_rescues": 0,
        },
        "recovery_overhead": 0.0667,
        "identical": True,
    }


def test_valid_document_passes_both_validators(bench_crash, schema_check):
    document = _valid_document()
    assert bench_crash.check_document(document) == []
    problems = []
    schema_check.check_document(document, problems)
    assert problems == []


def test_thresholds_enforced_by_bench_tool_only(bench_crash, schema_check):
    # Overhead at the ceiling: structurally fine, threshold-invalid.
    document = _valid_document()
    document["recovery_overhead"] = 0.25
    assert any(
        "recovery_overhead" in p
        for p in bench_crash.check_document(document)
    )
    problems = []
    schema_check.check_document(document, problems)
    assert problems == []  # structure-only check does not own the ceiling


def test_recovery_must_show_a_recovered_crash(bench_crash):
    document = _valid_document()
    document["recovery"]["worker_deaths"] = 0
    assert any(
        "worker_deaths" in p for p in bench_crash.check_document(document)
    )
    document = _valid_document()
    document["recovery"]["module_retries"] = 0
    document["recovery"]["serial_rescues"] = 0
    assert any(
        "module_retries" in p for p in bench_crash.check_document(document)
    )
    # A rescue instead of a retry also proves the module was re-solved.
    document["recovery"]["serial_rescues"] = 1
    assert bench_crash.check_document(document) == []


def test_divergent_or_underfaulted_documents_rejected(bench_crash):
    for mutate, needle in [
        (lambda d: d.update(identical=False), "identical"),
        (lambda d: d.update(corrupted_records=2), "corrupted_records"),
        (lambda d: d.update(healed_records=0), "healed_records"),
        (lambda d: d.update(schema="repro-crash-bench/999"), "schema"),
        (lambda d: d.update(serial_seconds="fast"), "serial_seconds"),
        (lambda d: d.pop("recovery"), "recovery"),
    ]:
        document = copy.deepcopy(_valid_document())
        mutate(document)
        problems = bench_crash.check_document(document)
        assert any(needle in p for p in problems), (needle, problems)


def test_structural_check_rejects_malformed_crash_documents(schema_check):
    document = _valid_document()
    document["jobs"] = 0
    document["recovery"]["pool_respawns"] = -1
    del document["recovery_overhead"]
    problems = []
    schema_check.check_document(document, problems)
    assert any("jobs" in p for p in problems)
    assert any("pool_respawns" in p for p in problems)
    assert any("recovery_overhead" in p for p in problems)


def test_schema_checker_dispatches_parallel_bench(schema_check, tmp_path):
    document = {
        "schema": "repro-parallel-bench/1",
        "cores": 4, "jobs": 4, "repeat": 2,
        "benchmarks": ["mmu0"],
        "serial_seconds": 4.0, "parallel_seconds": 2.0,
        "warm_seconds": 0.4,
        "parallel_speedup": 2.0, "warm_cache_speedup": 10.0,
        "identical": True,
    }
    path = tmp_path / "BENCH_parallel_modular.json"
    path.write_text(json.dumps(document), encoding="utf-8")
    assert schema_check.check_file(str(path)) == []
    document["warm_seconds"] = None
    path.write_text(json.dumps(document), encoding="utf-8")
    assert any("warm_seconds" in p for p in schema_check.check_file(str(path)))


def test_committed_artifact_is_valid(bench_crash, schema_check):
    path = os.path.join(os.path.dirname(_TOOLS), "BENCH_crash_recovery.json")
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    assert bench_crash.check_document(document) == []
    problems = []
    schema_check.check_document(document, problems)
    assert problems == []
    assert document["recovery"]["worker_deaths"] >= 1
    assert document["corrupted_records"] >= bench_crash.MIN_CORRUPTED
    assert document["identical"] is True