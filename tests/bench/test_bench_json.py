"""BENCH_<tag>.json emission and its schema checker agree."""

import importlib.util
import json
import os

import pytest

from repro import obs
from repro.bench.runner import (
    BENCH_SCHEMA,
    MethodRow,
    table_rows,
    write_bench_json,
)

_TOOL = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    "tools", "check_bench_schema.py",
)


@pytest.fixture(scope="module")
def schema_check():
    spec = importlib.util.spec_from_file_location("check_bench_schema", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def rows():
    return table_rows(names=["vbe-ex1"], methods=("modular", "lavagno"))


def test_method_row_counters_replace_adhoc_fields():
    row = MethodRow(
        "x", "modular", initial_states=4, initial_signals=2,
        backtracks=7, escalations=1, degraded=2, skipped=1,
    )
    assert row.backtracks == 7
    assert row.escalations == 1
    assert row.degraded == 2
    assert row.skipped == 1
    assert row.metrics == {
        "backtracks": 7, "escalations": 1,
        "modules_degraded": 2, "modules_skipped": 1,
    }


def test_method_row_as_dict_is_json_ready():
    row = MethodRow(
        "x", "direct", initial_states=4, initial_signals=2,
        cpu=1.23456789, note="backtrack-limit",
        formula_sizes=[(10, 5)],
    )
    snapshot = row.as_dict()
    json.dumps(snapshot)  # must serialise without a custom encoder
    assert snapshot["cpu"] == 1.234568
    assert snapshot["note"] == "backtrack-limit"
    assert snapshot["formula_sizes"] == [[10, 5]]


def test_write_bench_json_document_shape(rows, tmp_path):
    path = write_bench_json(rows, "unit", out_dir=str(tmp_path))
    assert os.path.basename(path) == "BENCH_unit.json"
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    assert document["schema"] == BENCH_SCHEMA
    assert document["tag"] == "unit"
    assert len(document["rows"]) == 2
    methods = {row["method"] for row in document["rows"]}
    assert methods == {"modular", "lavagno"}
    assert document["spans"] is None  # no tracer was active


def test_write_bench_json_includes_tracer_spans(rows, tmp_path):
    with obs.tracing() as tracer:
        with obs.span("module"):
            obs.add("sat_attempts", 3)
    path = write_bench_json(
        rows, "spans", out_dir=str(tmp_path), tracer=tracer
    )
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    assert document["spans"]["module"]["count"] == 1
    assert document["spans"]["module"]["counters"]["sat_attempts"] == 3


def test_written_document_passes_the_schema_check(rows, tmp_path,
                                                  schema_check):
    with obs.tracing() as tracer:
        with obs.span("module"):
            pass
    path = write_bench_json(rows, "ok", out_dir=str(tmp_path), tracer=tracer)
    assert schema_check.check_file(path) == []
    assert schema_check.main([path]) == 0


def test_schema_check_rejects_corrupted_documents(rows, tmp_path,
                                                  schema_check):
    path = write_bench_json(rows, "bad", out_dir=str(tmp_path))
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    document["schema"] = "repro-bench/999"
    del document["rows"][0]["counters"]
    document["rows"][1]["formula_sizes"] = [["not", "ints"]]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    problems = schema_check.check_file(path)
    assert any("schema" in p for p in problems)
    assert any("counters" in p for p in problems)
    assert any("formula_sizes" in p for p in problems)
    assert schema_check.main([path]) == 1


def test_schema_check_rejects_non_json(tmp_path, schema_check):
    path = tmp_path / "BENCH_junk.json"
    path.write_text("not json at all")
    problems = schema_check.check_file(str(path))
    assert problems and problems[0].startswith("not valid JSON")
    assert schema_check.main([str(path)]) == 1
