"""Tests for the Table-1 command line printer."""

import pytest

from repro.bench.runner import table_rows
from repro.bench.table1 import format_table, main


def test_format_table_shape():
    rows = table_rows(names=["vbe-ex1"], methods=("modular",))
    text = format_table(rows, ("modular",))
    assert "vbe-ex1" in text
    assert "modular" in text
    assert "paper" in text


def test_cli_runs_on_subset(capsys):
    assert main(["--names", "vbe-ex1", "--methods", "modular"]) == 0
    out = capsys.readouterr().out
    assert "vbe-ex1" in out


def test_cli_area_summary(capsys):
    assert main(
        ["--names", "vbe-ex1,sendr-done", "--methods", "modular,direct"]
    ) == 0
    out = capsys.readouterr().out
    assert "average area change" in out
    assert "paper reports" in out


def test_cli_no_minimize_skips_summary(capsys):
    assert main(
        ["--names", "vbe-ex1", "--methods", "modular,direct",
         "--no-minimize"]
    ) == 0
    out = capsys.readouterr().out
    assert "average area change" not in out


def test_cli_rejects_unknown_method():
    with pytest.raises(SystemExit):
        main(["--methods", "quantum"])


def test_cli_rejects_unknown_benchmark():
    with pytest.raises(SystemExit):
        main(["--names", "not-a-benchmark"])
