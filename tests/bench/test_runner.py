"""Integration tests for the benchmark runners (small benchmarks only)."""

import pytest

from repro.bench import run_direct, run_lavagno, run_modular, table_rows
from repro.bench.runner import aggregate_area
from repro.sat.solver import Limits

SMALL = ["vbe-ex1", "sendr-done", "nousc-ser", "nouse"]


class TestRunModular:
    def test_row_fields(self):
        row = run_modular("vbe-ex1")
        assert row.method == "modular"
        assert row.completed
        assert row.initial_signals == 2
        assert row.final_signals == 3
        assert row.final_states > row.initial_states
        assert row.area > 0
        assert row.cpu >= 0
        assert row.formula_sizes

    def test_repr(self):
        row = run_modular("vbe-ex1")
        assert "vbe-ex1" in repr(row)


class TestRunDirect:
    def test_completes_on_small(self):
        row = run_direct("sendr-done")
        assert row.completed
        assert row.final_signals >= 4

    def test_limit_produces_note(self):
        row = run_direct(
            "mr1", limits=Limits(max_backtracks=5, max_seconds=0.5),
            minimize=False,
        )
        assert not row.completed
        assert row.note == "backtrack-limit"
        assert "backtrack" in repr(row)


class TestRunLavagno:
    def test_completes_on_small(self):
        row = run_lavagno("nouse")
        assert row.completed
        assert row.method == "lavagno"
        assert row.area > 0


class TestTableRows:
    def test_all_methods_on_smallest(self):
        rows = table_rows(names=["vbe-ex1"], minimize=True)
        per_method = rows["vbe-ex1"]
        assert set(per_method) == {"modular", "direct", "lavagno"}
        assert all(r.completed for r in per_method.values())

    def test_method_subset(self):
        rows = table_rows(names=SMALL, methods=("modular",), minimize=False)
        assert all(set(r) == {"modular"} for r in rows.values())

    def test_aggregate_area(self):
        rows = table_rows(names=SMALL, methods=("modular", "direct"))
        delta = aggregate_area(rows, baseline_method="direct")
        assert delta is not None
        assert -1.0 <= delta <= 1.0

    def test_aggregate_area_empty(self):
        assert aggregate_area({}, baseline_method="direct") is None
