"""The bench-trend watchdog: committed thresholds and drift detection."""

import importlib.util
import json
import os

import pytest

_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _load(name):
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(_ROOT, "tools", f"{name}.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def bench_trend():
    return _load("bench_trend")


def _committed_artifacts():
    return sorted(
        os.path.join(_ROOT, name) for name in os.listdir(_ROOT)
        if name.startswith("BENCH_") and name.endswith(".json")
    )


def _sat_document():
    with open(os.path.join(_ROOT, "BENCH_sat_incremental.json"),
              encoding="utf-8") as handle:
        return json.load(handle)


# -- --check mode -----------------------------------------------------------


def test_check_passes_on_every_committed_artifact(bench_trend, capsys):
    paths = _committed_artifacts()
    assert len(paths) >= 5
    assert bench_trend.main(["--check", *paths]) == 0
    out = capsys.readouterr().out
    assert out.count(": ok") == len(paths)


def test_check_fails_on_synthetically_regressed_artifact(
        bench_trend, tmp_path, capsys):
    document = _sat_document()
    document["speedup"] = 1.1  # below the committed 1.3 floor
    regressed = tmp_path / "BENCH_sat_incremental.json"
    regressed.write_text(json.dumps(document))
    assert bench_trend.main(["--check", str(regressed)]) == 1
    err = capsys.readouterr().err
    assert "below floor" in err


def test_check_rejects_unknown_schema_and_bad_json(
        bench_trend, tmp_path, capsys):
    unknown = tmp_path / "unknown.json"
    unknown.write_text(json.dumps({"schema": "repro-mystery/9"}))
    broken = tmp_path / "broken.json"
    broken.write_text("{not json")
    assert bench_trend.main(["--check", str(unknown), str(broken)]) == 1
    err = capsys.readouterr().err
    assert "unknown schema" in err
    assert str(broken) in err


def test_check_dispatches_repro_bench_to_structural_checker(
        bench_trend, tmp_path):
    document = {"schema": "repro-bench/1", "tag": "x"}  # rows missing
    path = tmp_path / "BENCH_x.json"
    path.write_text(json.dumps(document))
    assert bench_trend.main(["--check", str(path)]) == 1


# -- compare mode -----------------------------------------------------------


def test_compare_flags_bad_direction_moves_only(bench_trend):
    baseline = _sat_document()
    improved = dict(baseline, speedup=baseline["speedup"] * 2,
                    incremental_seconds=baseline["incremental_seconds"] / 2)
    lines, regressions = bench_trend.compare_documents(baseline, improved)
    assert regressions == []
    assert any("speedup" in line and "ok" in line for line in lines)

    worse = dict(baseline, speedup=baseline["speedup"] / 2,
                 incremental_seconds=baseline["incremental_seconds"] * 2)
    _lines, regressions = bench_trend.compare_documents(baseline, worse)
    assert len(regressions) == 2
    assert any("speedup" in problem for problem in regressions)


def test_compare_tolerance_shields_small_drift(bench_trend):
    baseline = _sat_document()
    drifted = dict(baseline, speedup=baseline["speedup"] * 0.9)
    _lines, regressions = bench_trend.compare_documents(
        baseline, drifted, tolerance=0.25
    )
    assert regressions == []
    _lines, regressions = bench_trend.compare_documents(
        baseline, drifted, tolerance=0.05
    )
    assert len(regressions) == 1


def test_compare_rejects_schema_mismatch(bench_trend):
    _lines, regressions = bench_trend.compare_documents(
        {"schema": "repro-sat-bench/1"}, {"schema": "repro-bench/1"}
    )
    assert regressions and "schema mismatch" in regressions[0]


def test_compare_near_zero_baseline_gets_absolute_slack(bench_trend):
    baseline = {"schema": "repro-crash-bench/1", "recovery_overhead": -0.05,
                "faulted_parallel_seconds": 1.0}
    ok = dict(baseline, recovery_overhead=-0.06)
    _lines, regressions = bench_trend.compare_documents(baseline, ok)
    assert regressions == []
    bad = dict(baseline, recovery_overhead=0.2)
    _lines, regressions = bench_trend.compare_documents(baseline, bad)
    assert len(regressions) == 1


def test_repro_bench_trend_metrics_derive_from_rows(bench_trend):
    document = {
        "schema": "repro-bench/1",
        "rows": [
            {"note": None, "cpu": 1.5},
            {"note": None, "cpu": 0.5},
            {"note": "limit", "cpu": None},
        ],
    }
    metrics = bench_trend.trend_metrics(document)
    assert metrics == {"total_cpu_seconds": 2.0, "completed_rows": 2}


def test_compare_cli_exit_codes(bench_trend, tmp_path, capsys):
    baseline_path = os.path.join(_ROOT, "BENCH_sat_incremental.json")
    same = tmp_path / "same.json"
    same.write_text(json.dumps(_sat_document()))
    assert bench_trend.main(["--baseline", baseline_path, str(same)]) == 0
    capsys.readouterr()

    document = _sat_document()
    document["speedup"] = 0.5
    worse = tmp_path / "worse.json"
    worse.write_text(json.dumps(document))
    assert bench_trend.main(["--baseline", baseline_path, str(worse)]) == 1
    err = capsys.readouterr().err
    assert "speedup" in err
