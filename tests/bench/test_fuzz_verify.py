"""The fuzz-verify campaign tool: artifact shape, gates, dispatch."""

import copy
import importlib.util
import json
import os

import pytest

_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _load(name):
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(_ROOT, "tools", f"{name}.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


fuzz_verify = _load("fuzz_verify")
bench_trend = _load("bench_trend")

#: One full pass over the synthesis matrix (8 cells).
COUNT = len(fuzz_verify.MATRIX)


@pytest.fixture(scope="module")
def document():
    return fuzz_verify.campaign(COUNT, seed=9)


def test_campaign_is_clean_and_covers_the_matrix(document):
    assert fuzz_verify.check_document(document, min_count=COUNT) == []
    assert document["errors"] == 0
    assert document["verify_failures"] == 0
    assert document["inconclusive"] == 0
    assert {r["method"] for r in document["rows"]} == {
        "modular", "direct", "lavagno"
    }
    assert any(r["jobs"] == 2 for r in document["rows"])
    assert len(document["table1"]) == 23
    assert all(r["verdict"] is True for r in document["table1"])
    assert document["mutants"]["caught"] >= 1
    assert document["mutants"]["replay_failures"] == 0


def test_campaign_is_seed_deterministic(document):
    again = fuzz_verify.campaign(COUNT, seed=9, table1=False)
    strip = lambda rows: [
        {k: v for k, v in row.items() if k != "seconds"}
        for row in rows
    ]
    assert strip(again["rows"]) == strip(document["rows"])
    assert again["mutants"] == document["mutants"]


def test_check_rejects_regressions(document):
    failing = copy.deepcopy(document)
    failing["verify_failures"] = 1
    assert any(
        "verify_failures" in p
        for p in fuzz_verify.check_document(failing, min_count=COUNT)
    )

    no_mutants = copy.deepcopy(document)
    no_mutants["mutants"]["caught"] = 0
    assert any(
        "caught" in p
        for p in fuzz_verify.check_document(no_mutants, min_count=COUNT)
    )

    bad_replay = copy.deepcopy(document)
    bad_replay["mutants"]["replay_failures"] = 2
    assert any(
        "replay" in p
        for p in fuzz_verify.check_document(bad_replay, min_count=COUNT)
    )

    no_table1 = copy.deepcopy(document)
    no_table1["table1"] = no_table1["table1"][:5]
    assert any(
        "table1" in p
        for p in fuzz_verify.check_document(no_table1, min_count=COUNT)
    )

    undocumented = copy.deepcopy(document)
    undocumented["table1"][0]["verdict"] = None
    undocumented["table1_exceptions"] = []
    assert any(
        "documented exception" in p
        for p in fuzz_verify.check_document(undocumented, min_count=COUNT)
    )

    short = copy.deepcopy(document)
    assert any(
        "floor" in p
        for p in fuzz_verify.check_document(short, min_count=COUNT + 1)
    )


def test_bench_trend_dispatches_the_schema(document):
    # Too few rows for the committed floor fails through the watchdog...
    problems = bench_trend.check_artifact(document)
    assert any("floor" in p for p in problems)
    # ...and the trend metrics are registered for the schema.
    metrics = bench_trend.trend_metrics(document)
    assert set(metrics) == {
        "verified_rate", "verify_failures", "mutants_caught"
    }


def test_check_cli_round_trip(tmp_path, document):
    path = tmp_path / "BENCH_verify.json"
    path.write_text(json.dumps(document))
    assert fuzz_verify._check(str(path), min_count=COUNT) == 0
    assert fuzz_verify._check(str(path)) == 1  # committed floor is 200
