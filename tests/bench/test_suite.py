"""Tests for the benchmark suite: registry, sizes, and properties."""

import pytest

from repro.bench import BENCHMARKS, benchmark_names, load_benchmark
from repro.bench.specs import SPEC_BUILDERS, generate
from repro.petrinet.properties import is_free_choice
from repro.stg import parse_g, validate_stg
from repro.stategraph import build_state_graph, csc_conflicts


def test_all_23_benchmarks_registered():
    assert len(BENCHMARKS) == 23
    assert set(BENCHMARKS) == set(SPEC_BUILDERS)


def test_row_order_is_paper_order():
    names = benchmark_names()
    assert names[0] == "mr0"
    assert names[-1] == "vbe-ex1"


def test_unknown_benchmark_rejected():
    with pytest.raises(KeyError):
        load_benchmark("does-not-exist")


def test_specs_parse_and_match_packaged_files():
    for name in BENCHMARKS:
        packaged = load_benchmark(name)
        fresh = parse_g(generate(name), name_hint=name)
        assert packaged.signals == fresh.signals
        assert packaged.net.transitions == fresh.net.transitions


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_benchmark_is_valid_stg(name):
    stg = load_benchmark(name)
    validate_stg(stg, require_live=True)


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_signal_counts_match_paper(name):
    stg = load_benchmark(name)
    assert len(stg.signals) == BENCHMARKS[name].initial_signals


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_state_counts_near_paper(name):
    graph = build_state_graph(load_benchmark(name))
    paper = BENCHMARKS[name].initial_states
    # The recreated suite targets the paper's sizes within ~40% (see
    # DESIGN.md §4); vbe-ex1/mmu1 are the loosest.
    assert 0.5 * paper <= graph.num_states <= 1.6 * paper


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_every_benchmark_has_csc_conflicts(name):
    # Table 1 inserts state signals into every benchmark, so every
    # recreated STG must violate CSC.
    graph = build_state_graph(load_benchmark(name))
    assert csc_conflicts(graph)


def test_alex_nonfc_is_not_free_choice():
    stg = load_benchmark("alex-nonfc")
    assert not is_free_choice(stg.net)


def test_most_benchmarks_are_free_choice():
    free_choice = sum(
        1 for name in BENCHMARKS if is_free_choice(load_benchmark(name).net)
    )
    assert free_choice == len(BENCHMARKS) - 1


def test_paper_numbers_recorded():
    info = BENCHMARKS["mr0"]
    assert info.ours.area == 41
    assert info.vanbekbergen.note == "backtrack-limit"
    assert info.lavagno.cpu == 1084.5
    mmu0 = BENCHMARKS["mmu0"]
    assert mmu0.lavagno.note == "internal-error"
    assert not mmu0.lavagno.completed
