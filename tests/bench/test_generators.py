"""Unit tests for the phase-cycle STG generator."""

import pytest

from repro.bench.generators import Choice, Par, build_g
from repro.stg import parse_g, validate_stg
from repro.stategraph import build_state_graph


def test_plain_cycle():
    text = build_g(
        "plain", inputs=["a"], outputs=["b"],
        cycle=["a+", "b+", "a-", "b-"],
    )
    stg = parse_g(text)
    validate_stg(stg, require_live=True)
    assert build_state_graph(stg).num_states == 4


def test_par_multiplies_states():
    text = build_g(
        "par", inputs=["r"], outputs=["x", "y"],
        cycle=["r+", Par(["x+", "x-"], ["y+", "y-"]), "r-"],
    )
    graph = build_state_graph(parse_g(text))
    # The pre-r+ state plus the 3*3 par positions (the cycle wraps).
    assert graph.num_states == 1 + 9


def test_choice_alternatives():
    text = build_g(
        "ch", inputs=["a", "b"], outputs=["c"],
        cycle=[
            "c+",
            Choice(["a+", "a-"], ["b+", "b-"]),
            "c-",
        ],
    )
    stg = parse_g(text)
    validate_stg(stg, require_live=True)
    graph = build_state_graph(stg)
    # pre-c+, post-c+ (split), one mid-state per alternative, join.
    assert graph.num_states == 5


def test_instances_numbered():
    text = build_g(
        "inst", inputs=["a"], outputs=["b"],
        cycle=["a+", "b+", "b-", "a-", "b+", "b-"],
    )
    assert "b+/2" in text
    stg = parse_g(text)
    assert "b+/2" in stg.net.transitions


def test_marking_on_cycle_closing_arc():
    text = build_g(
        "mark", inputs=["a"], outputs=["b"],
        cycle=["a+", "b+", "a-", "b-"],
    )
    assert ".marking { <b-,a+> }" in text


class TestErrors:
    def test_empty_cycle(self):
        with pytest.raises(ValueError):
            build_g("x", [], [], [])

    def test_cycle_must_start_with_event(self):
        with pytest.raises(ValueError):
            build_g("x", ["a"], ["b"], [Par(["a+"]), "b+"])

    def test_cycle_must_end_with_event(self):
        with pytest.raises(ValueError):
            build_g("x", ["a"], ["b"], ["a+", Par(["b+"])])

    def test_empty_par_branch(self):
        with pytest.raises(ValueError):
            Par([])

    def test_choice_needs_two_alternatives(self):
        with pytest.raises(ValueError):
            Choice(["a+"])

    def test_bad_phase_type(self):
        with pytest.raises(TypeError):
            build_g("x", ["a"], ["b"], ["a+", 42, "b+"])
