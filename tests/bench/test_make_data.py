"""Tests for the benchmark data (re)generation tool."""

from pathlib import Path

from repro.bench import BENCHMARKS
from repro.bench.make_data import data_dir, main
from repro.bench.specs import generate


def test_data_dir_is_packaged():
    directory = data_dir()
    assert directory.name == "data"
    assert (directory / "nak-pa.g").exists()


def test_all_files_present_and_current():
    directory = data_dir()
    for name in BENCHMARKS:
        path = directory / f"{name}.g"
        assert path.exists(), f"{name}.g missing; run repro.bench.make_data"
        assert path.read_text(encoding="utf-8") == generate(name), (
            f"{name}.g is stale; run python -m repro.bench.make_data"
        )


def test_main_regenerates_selected(tmp_path, monkeypatch):
    import repro.bench.make_data as module

    monkeypatch.setattr(module, "data_dir", lambda: Path(tmp_path))
    assert main(["vbe-ex1"]) == 0
    written = tmp_path / "vbe-ex1.g"
    assert written.exists()
    assert written.read_text(encoding="utf-8") == generate("vbe-ex1")
