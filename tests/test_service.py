"""Tests for the HTTP synthesis service (:mod:`repro.service`)."""

import asyncio
import json
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor

import pytest

from repro import api
from repro.obs.export import validate_prometheus_text
from repro.runtime.supervise import RetryPolicy
from repro.service import (
    SynthesisService,
    handle_connection,
    parse_request,
    start_server,
)

from tests.example_stgs import CSC_CONFLICT, HANDSHAKE


def run(coro):
    return asyncio.run(coro)


def make_service(**kwargs):
    kwargs.setdefault("executor", "inline")
    return SynthesisService(**kwargs)


class TestParseRequest:
    def test_raw_g_text(self):
        request = parse_request(CSC_CONFLICT)
        assert isinstance(request, api.SynthesisRequest)
        assert request.method == "modular"

    def test_bytes_decode(self):
        request = parse_request(CSC_CONFLICT.encode("utf-8"))
        assert request.g_text == CSC_CONFLICT

    def test_json_document(self):
        body = api.to_json_bytes(
            api.SynthesisRequest(g_text=HANDSHAKE, method="direct")
        )
        request = parse_request(body)
        assert request.method == "direct"

    def test_empty_body_rejected(self):
        with pytest.raises(api.ApiError, match="empty"):
            parse_request("   \n ")

    def test_response_document_rejected(self):
        body = json.dumps(
            {"schema": api.API_SCHEMA, "kind": "response"}
        )
        with pytest.raises(api.ApiError):
            parse_request(body)

    def test_non_utf8_rejected(self):
        with pytest.raises(api.ApiError, match="UTF-8"):
            parse_request(b"\xff\xfe\x00")


class TestSynthesize:
    def test_ok_run_without_cache(self):
        service = make_service()
        status, payload = run(service.synthesize(CSC_CONFLICT))
        assert status == 200
        response = api.from_json(payload)
        assert response.status == "ok"
        assert response.cache == "off"
        assert response.verified is True
        assert response.model == "csc-ex"
        assert service.counters["service_requests"] == 1
        assert service.counters["service_cache_misses"] == 1

    def test_cache_miss_then_hit_byte_identical(self, tmp_path):
        service = make_service(cache_dir=tmp_path / "cache")

        async def scenario():
            first = await service.synthesize(CSC_CONFLICT)
            second = await service.synthesize(CSC_CONFLICT)
            third = await service.synthesize(CSC_CONFLICT)
            return first, second, third

        (s1, p1), (s2, p2), (s3, p3) = run(scenario())
        assert (s1, s2, s3) == (200, 200, 200)
        assert api.from_json(p1).cache == "miss"
        assert api.from_json(p2).cache == "hit"
        assert p2 == p3  # replayed bytes, not a re-serialization
        assert service.counters["service_cache_hits"] == 2
        assert service.counters["service_cache_misses"] == 1

    def test_reformatted_duplicate_hits(self, tmp_path):
        # The fingerprint is over canonical text: whitespace noise in
        # the upload must not split the cache.
        service = make_service(cache_dir=tmp_path / "cache")
        noisy = CSC_CONFLICT.replace("\n.end", "\n\n.end") + "\n"

        async def scenario():
            await service.synthesize(CSC_CONFLICT)
            return await service.synthesize(noisy)

        _status, payload = run(scenario())
        assert api.from_json(payload).cache == "hit"

    def test_budgeted_request_never_cached(self, tmp_path):
        service = make_service(cache_dir=tmp_path / "cache")
        body = api.to_json_bytes(
            api.SynthesisRequest(g_text=HANDSHAKE, timeout_seconds=60)
        )

        async def scenario():
            first = await service.synthesize(body)
            second = await service.synthesize(body)
            return first, second

        (_s1, p1), (_s2, p2) = run(scenario())
        assert api.from_json(p1).cache == "off"
        assert api.from_json(p2).cache == "off"

    def test_json_request_document_honored(self):
        service = make_service()
        body = api.to_json_bytes(
            api.SynthesisRequest(g_text=CSC_CONFLICT, method="direct")
        )
        status, payload = run(service.synthesize(body))
        assert status == 200
        assert api.from_json(payload).method == "direct"

    def test_malformed_document_is_400(self):
        service = make_service()
        status, payload = run(service.synthesize(b'{"schema": "nope"}'))
        assert status == 400
        assert "schema" in json.loads(payload)["error"]
        assert service.counters["service_errors"] == 1

    def test_invalid_g_is_400(self):
        service = make_service()
        bad = ".model broken\n.inputs a\n.graph\n"
        status, payload = run(service.synthesize(bad))
        assert status == 400
        assert "invalid specification" in json.loads(payload)["error"]

    def test_one_line_body_is_400_not_a_path_probe(self):
        # A body without newlines must never be interpreted as a
        # server-side file path.
        service = make_service()
        status, payload = run(service.synthesize("/etc/passwd"))
        assert status == 400
        assert "invalid specification" in json.loads(payload)["error"]

    def test_inflight_dedup_coalesces(self):
        service = make_service(executor="thread", jobs=1)

        async def scenario():
            first, second = await asyncio.gather(
                service.synthesize(CSC_CONFLICT),
                service.synthesize(CSC_CONFLICT),
            )
            return first, second

        (s1, p1), (s2, p2) = run(scenario())
        service.close()
        assert (s1, s2) == (200, 200)
        assert service.counters["service_inflight_dedup"] == 1
        assert service.counters["service_cache_misses"] == 1
        # The follower is served the "hit" variant of the same bytes.
        assert api.from_json(p1).equations == api.from_json(p2).equations


class TestWorkerRecovery:
    @staticmethod
    def flaky_factory(broken_generations):
        """Executors that refuse every submit for the first N builds."""
        state = {"built": 0}

        class Broken:
            def submit(self, fn, *args, **kwargs):
                raise BrokenExecutor("injected pool failure")

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        def factory():
            state["built"] += 1
            if state["built"] <= broken_generations:
                return Broken()
            return ThreadPoolExecutor(max_workers=1)

        return factory, state

    def test_respawn_rescues_the_request(self):
        factory, state = self.flaky_factory(broken_generations=1)
        service = make_service(
            executor=factory,
            retry=RetryPolicy(retries=2, backoff=0.0),
        )
        status, payload = run(service.synthesize(HANDSHAKE))
        service.close()
        assert status == 200
        assert api.from_json(payload).status == "ok"
        assert service.counters["service_worker_respawns"] == 1
        assert state["built"] == 2

    def test_exhausted_retries_are_500(self):
        factory, _state = self.flaky_factory(broken_generations=99)
        service = make_service(
            executor=factory,
            retry=RetryPolicy(retries=1, backoff=0.0),
        )
        status, payload = run(service.synthesize(HANDSHAKE))
        service.close()
        assert status == 500
        assert "died" in json.loads(payload)["error"]
        assert service.counters["service_errors"] == 1


class TestIntrospection:
    def test_metrics_text_is_valid_prometheus(self, tmp_path):
        service = make_service(cache_dir=tmp_path / "cache")

        async def scenario():
            await service.synthesize(CSC_CONFLICT)
            await service.synthesize(CSC_CONFLICT)

        run(scenario())
        text = service.metrics_text()
        validate_prometheus_text(text)
        assert "repro_service_requests_total 2" in text
        assert "repro_service_cache_hits_total 1" in text
        assert "repro_service_cache_hit_rate 0.5" in text
        assert "repro_service_request_seconds_bucket" in text

    def test_health(self):
        service = make_service()
        assert service.health() == {"status": "ok", "inflight": 0}


async def http_request(port, method, path, body=b"", keep_reader=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    data = await reader.read(-1)
    writer.close()
    await writer.wait_closed()
    head_part, _sep, payload = data.partition(b"\r\n\r\n")
    status = int(head_part.split(b" ", 2)[1])
    return status, payload


class TestHttpLayer:
    def test_end_to_end(self, tmp_path):
        async def scenario():
            service = make_service(cache_dir=tmp_path / "cache")
            server = await start_server(service, port=0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                first = await http_request(
                    port, "POST", "/synthesize",
                    CSC_CONFLICT.encode("utf-8"),
                )
                second = await http_request(
                    port, "POST", "/synthesize",
                    CSC_CONFLICT.encode("utf-8"),
                )
                health = await http_request(port, "GET", "/healthz")
                metrics = await http_request(port, "GET", "/metrics")
                missing = await http_request(port, "GET", "/nope")
                wrong = await http_request(port, "GET", "/synthesize")
            return first, second, health, metrics, missing, wrong

        first, second, health, metrics, missing, wrong = run(scenario())
        assert first[0] == 200
        assert api.from_json(first[1]).status == "ok"
        assert second[0] == 200
        assert api.from_json(second[1]).cache == "hit"
        assert health[0] == 200
        assert json.loads(health[1])["status"] == "ok"
        assert metrics[0] == 200
        assert b"repro_service_requests_total" in metrics[1]
        assert missing[0] == 404
        assert wrong[0] == 405

    def test_keep_alive_serves_two_requests(self):
        async def scenario():
            service = make_service()
            server = await start_server(service, port=0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                for _ in range(2):
                    writer.write(
                        b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                        b"Content-Length: 0\r\n\r\n"
                    )
                    await writer.drain()
                statuses = []
                for _ in range(2):
                    line = await reader.readline()
                    statuses.append(int(line.split(b" ", 2)[1]))
                    while True:
                        header = await reader.readline()
                        if header == b"\r\n":
                            break
                        if header.lower().startswith(b"content-length:"):
                            length = int(header.split(b":")[1])
                    await reader.readexactly(length)
                writer.close()
                await writer.wait_closed()
            return statuses

        assert run(scenario()) == [200, 200]

    def test_oversized_body_is_413(self, monkeypatch):
        import repro.service as service_mod

        monkeypatch.setattr(service_mod, "MAX_BODY_BYTES", 64)

        async def scenario():
            service = make_service()
            server = await start_server(service, port=0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                return await http_request(
                    port, "POST", "/synthesize", b"x" * 100
                )

        status, payload = run(scenario())
        assert status == 413
        assert b"too large" in payload
