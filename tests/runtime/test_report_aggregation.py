"""RunReport metric aggregation edge cases and exit-code stability."""

from repro.obs import Counters
from repro.runtime.budget import Budget
from repro.runtime.report import (
    EXIT_CODES,
    MODULE_DEGRADED,
    MODULE_OK,
    MODULE_SKIPPED,
    RUN_DEGRADED,
    RUN_ERROR,
    RUN_OK,
    RUN_TIMEOUT,
    RunReport,
)


def test_exit_codes_are_a_stable_contract():
    # Scripts and CI gate on these exact values; changing them is a
    # breaking change, not a refactor.
    assert EXIT_CODES == {
        RUN_OK: 0,
        RUN_ERROR: 1,
        RUN_DEGRADED: 2,
        RUN_TIMEOUT: 3,
    }


def test_fresh_report_has_empty_metrics_bag():
    report = RunReport()
    assert isinstance(report.metrics, Counters)
    assert not report.metrics


def test_empty_module_list_aggregates_to_empty_bag():
    report = RunReport().finish()
    assert report.status == RUN_OK
    assert report.exit_code == 0
    assert report.metrics.as_dict() == {}
    # Absent counters still read as zero.
    assert report.metrics["modules_ok"] == 0


def test_all_skipped_run_aggregates_and_degrades():
    report = RunReport()
    report.add_module("a", status=MODULE_SKIPPED)
    report.add_module("b", status=MODULE_SKIPPED)
    report.finish()
    assert report.status == RUN_DEGRADED
    assert report.exit_code == 2
    assert report.metrics == {"modules_skipped": 2}
    assert report.metrics["modules_ok"] == 0


def test_mixed_statuses_fold_into_per_status_counts():
    report = RunReport()
    report.add_module("a", status=MODULE_OK, signals_added=2)
    report.add_module("b", status=MODULE_DEGRADED, escalations=1)
    report.add_module("c", status=MODULE_SKIPPED)
    report.finish()
    assert report.metrics == {
        "modules_ok": 1,
        "modules_degraded": 1,
        "modules_skipped": 1,
        "signals_added": 2,
        "escalations": 1,
    }


def test_budget_consumption_contributes_counters():
    budget = Budget(max_seconds=100.0)
    budget.charge_backtracks(42)
    budget.checkpoint("somewhere")
    report = RunReport()
    report.add_module("a", status=MODULE_OK)
    report.finish(budget=budget)
    assert report.metrics["backtracks"] == 42
    assert report.metrics["checkpoints"] == 1


def test_forced_status_still_aggregates_metrics():
    report = RunReport()
    report.add_module("a", status=MODULE_OK, signals_added=1)
    report.finish(status=RUN_TIMEOUT)
    assert report.status == RUN_TIMEOUT
    assert report.exit_code == 3
    assert report.metrics["modules_ok"] == 1


def test_finish_twice_does_not_double_count():
    report = RunReport()
    report.add_module("a", status=MODULE_OK, signals_added=3)
    report.finish()
    report.finish()
    assert report.metrics == {"modules_ok": 1, "signals_added": 3}
