"""Every named fault-injection point degrades its site, never crashes it."""

import pytest

from repro.csc import modular_synthesis
from repro.csc.errors import SynthesisError
from repro.petrinet.errors import UnboundedNetError
from repro.runtime import faults
from repro.sat import LIMIT, SAT, Cnf, solve_bdd, solve_with
from repro.stg import parse_g
from repro.stg.errors import GFormatError
from repro.stategraph import build_state_graph
from repro.runtime.options import SynthesisOptions

from tests.example_stgs import CSC_CONFLICT


@pytest.fixture(autouse=True)
def _clean_registry():
    faults.clear()
    yield
    faults.clear()


def _tiny_cnf():
    cnf = Cnf()
    a, b = cnf.new_var("a"), cnf.new_var("b")
    cnf.add_clause([a, b])
    cnf.add_clause([-a, b])
    return cnf


def test_unknown_point_rejected():
    with pytest.raises(ValueError):
        faults.inject("no-such-point")


def test_shots_are_bounded_and_counted():
    spec = faults.inject("solver-limit", times=2)
    assert faults.should_fire("solver-limit")
    assert faults.should_fire("solver-limit")
    assert not faults.should_fire("solver-limit")
    assert spec.fired == 2


def test_injected_context_manager_disarms():
    # Membership, not emptiness: the CI fault matrix may have armed
    # unrelated points through REPRO_FAULTS.
    with faults.injected("parse-error"):
        assert "parse-error" in faults.active()
    assert "parse-error" not in faults.active()


def test_solver_limit_point_forces_limit():
    with faults.injected("solver-limit"):
        result = solve_with(_tiny_cnf(), engine="hybrid")
    assert result.status == LIMIT


def test_solver_limit_point_can_target_one_engine():
    # Only the dpll rung is faulted; the hybrid dispatch is untouched.
    with faults.injected(
        "solver-limit", times=None, match=lambda engine: engine == "dpll"
    ):
        assert solve_with(_tiny_cnf(), engine="dpll").status == LIMIT
        assert solve_with(_tiny_cnf(), engine="hybrid").status == SAT


def test_fallback_ladder_recovers_from_injected_limit():
    with faults.injected("solver-limit"):
        result = solve_with(_tiny_cnf(), engine="hybrid", fallback=True)
    assert result.status == SAT
    assert result.escalations[0] == ("hybrid", LIMIT)
    assert result.escalations[-1][1] == SAT


def test_reachability_overflow_point():
    stg = parse_g(CSC_CONFLICT)
    with faults.injected("reachability-overflow"):
        with pytest.raises(UnboundedNetError):
            build_state_graph(stg)


def test_bdd_blowup_point_reports_limit():
    with faults.injected("bdd-blowup"):
        assert solve_bdd(_tiny_cnf()).status == LIMIT
    # ... and the "bdd" engine's built-in rescue still decides it.
    with faults.injected("bdd-blowup"):
        assert solve_with(_tiny_cnf(), engine="bdd").status == SAT


def test_parse_error_point():
    with faults.injected("parse-error"):
        with pytest.raises(GFormatError):
            parse_g(CSC_CONFLICT)


def test_module_solve_point_raises_synthesis_error():
    graph = build_state_graph(parse_g(CSC_CONFLICT))
    with faults.injected("module-solve"):
        with pytest.raises(SynthesisError):
            modular_synthesis(graph)


def test_module_solve_point_degrades_when_allowed():
    graph = build_state_graph(parse_g(CSC_CONFLICT))
    with faults.injected("module-solve", match=lambda output: output == "c"):
        result = modular_synthesis(
            graph, options=SynthesisOptions(degrade=True)
        )
    entry = result.report.module("c")
    assert entry.status == "degraded"
    assert result.report.status == "degraded"
    # The degraded run still satisfies CSC.
    from repro.stategraph import csc_conflicts

    assert csc_conflicts(result.expanded) == []


# -- environment arming (the CI fault matrix) -------------------------------

@pytest.fixture
def _clean_env_registry():
    yield
    faults.clear(env=True)


def test_load_env_parses_points_and_shot_counts(_clean_env_registry):
    handles = faults.load_env("worker-crash:2, cache-corrupt-record")
    assert [h.point for h in handles] == [
        "worker-crash", "cache-corrupt-record",
    ]
    assert handles[0].remaining == 2
    assert handles[1].remaining is None  # unlimited
    assert faults.should_fire("worker-crash")
    assert faults.should_fire("cache-corrupt-record")


def test_load_env_rejects_unknown_point_and_bad_count():
    with pytest.raises(ValueError):
        faults.load_env("no-such-point")
    with pytest.raises(ValueError):
        faults.load_env("worker-crash:many")


def test_env_faults_survive_plain_clear(_clean_env_registry):
    faults.load_env("cache-io-error")
    faults.clear()  # what every test fixture does
    assert faults.should_fire("cache-io-error", detail="get")
    faults.clear(env=True)
    assert not faults.should_fire("cache-io-error", detail="get")


def test_test_armed_fault_shadows_env_fault(_clean_env_registry):
    env_spec, = faults.load_env("worker-crash")
    spec = faults.inject("worker-crash", times=1)
    assert faults.active()["worker-crash"] is spec
    assert faults.should_fire("worker-crash")
    assert spec.fired == 1  # the test-armed spec took the shot
    assert env_spec.fired == 0
    # The spent test spec no longer shadows; the env fault shows again.
    assert faults.active()["worker-crash"] is env_spec


def test_load_env_empty_spec_arms_nothing(_clean_env_registry):
    assert faults.load_env("") == []
    assert not faults.active()


def test_cache_points_are_registered():
    for point in (
        "worker-crash", "cache-corrupt-record", "cache-io-error",
    ):
        assert point in faults.POINTS
