"""Tests for SynthesisOptions, coerce_options, and the facade."""

import pytest

import repro
from repro.baselines import lavagno_synthesis
from repro.csc import direct_synthesis, modular_synthesis
from repro.runtime import SynthesisOptions, coerce_options
from repro.runtime.run import run_synthesis
from repro.stg import parse_g

from tests.example_stgs import CSC_CONFLICT


class TestSynthesisOptions:
    def test_frozen(self):
        options = SynthesisOptions()
        with pytest.raises(AttributeError):
            options.engine = "dpll"

    def test_evolve_replaces_fields(self):
        options = SynthesisOptions(engine="dpll")
        changed = options.evolve(minimize=False)
        assert changed.engine == "dpll"
        assert changed.minimize is False
        assert options.minimize is True

    def test_output_order_normalised_to_tuple(self):
        options = SynthesisOptions(output_order=["b", "c"])
        assert options.output_order == ("b", "c")

    def test_per_method_defaults_resolve(self):
        options = SynthesisOptions()
        assert options.resolved_prefix("csc") == "csc"
        assert options.resolved_prefix("lm") == "lm"
        assert options.resolved_max_signals(7) == 7
        assert SynthesisOptions(max_signals=2).resolved_max_signals(7) == 2
        assert SynthesisOptions(signal_prefix="s").resolved_prefix("lm") \
            == "s"

    def test_sat_mode_defaults_incremental(self):
        assert SynthesisOptions().sat_mode == "incremental"
        assert SynthesisOptions(sat_mode="oneshot").sat_mode == "oneshot"

    def test_sat_mode_validated(self):
        with pytest.raises(ValueError, match="sat_mode"):
            SynthesisOptions(sat_mode="warm")

    def test_robustness_knob_defaults(self):
        options = SynthesisOptions()
        assert options.retries == 2
        assert options.retry_backoff == 0.05
        assert options.cache_max_bytes is None

    def test_robustness_knobs_validated(self):
        with pytest.raises(ValueError, match="retries"):
            SynthesisOptions(retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            SynthesisOptions(retry_backoff=-0.5)
        with pytest.raises(ValueError, match="cache_max_bytes"):
            SynthesisOptions(cache_max_bytes=-1)
        # Zero is meaningful for all three: escalate immediately, no
        # backoff sleep, evict everything.
        options = SynthesisOptions(
            retries=0, retry_backoff=0.0, cache_max_bytes=0
        )
        assert options.retries == 0


class TestCoerceOptions:
    def test_none_builds_defaults(self):
        assert coerce_options(None, "x_synthesis") == SynthesisOptions()

    def test_caller_defaults_fill_in(self):
        options = coerce_options(
            None, "run_synthesis", defaults={"fallback": True}
        )
        assert options.fallback is True

    def test_options_returned_as_is(self):
        options = SynthesisOptions(minimize=False)
        assert coerce_options(options, "x_synthesis") is options

    def test_non_options_value_rejected(self):
        with pytest.raises(TypeError, match="SynthesisOptions"):
            coerce_options({"engine": "dpll"}, "x_synthesis")

    def test_legacy_kwargs_raise_type_error(self):
        # The PR-3 deprecation cycle is over: any forwarded legacy
        # keyword dict is a TypeError naming the replacement.
        with pytest.raises(TypeError, match="options=SynthesisOptions"):
            coerce_options(
                None, "modular_synthesis", legacy={"minimize": False}
            )

    def test_legacy_error_names_the_keywords(self):
        with pytest.raises(TypeError, match="engine, minimize"):
            coerce_options(
                None, "x_synthesis",
                legacy={"minimize": False, "engine": "dpll"},
            )


class TestEntryPoints:
    def test_modular_rejects_legacy_kwargs(self):
        stg = parse_g(CSC_CONFLICT)
        with pytest.raises(TypeError):
            modular_synthesis(stg, minimize=False)

    def test_direct_rejects_legacy_kwargs(self):
        stg = parse_g(CSC_CONFLICT)
        with pytest.raises(TypeError):
            direct_synthesis(stg, minimize=False)

    def test_lavagno_rejects_legacy_kwargs(self):
        stg = parse_g(CSC_CONFLICT)
        with pytest.raises(TypeError):
            lavagno_synthesis(stg, minimize=False)

    def test_run_synthesis_rejects_legacy_kwargs(self):
        stg = parse_g(CSC_CONFLICT)
        with pytest.raises(TypeError):
            run_synthesis(stg, fallback=False)

    def test_options_path_works(self):
        stg = parse_g(CSC_CONFLICT)
        result = modular_synthesis(
            stg, options=SynthesisOptions(minimize=False)
        )
        assert result.literals is None

    def test_custom_signal_prefix_via_options(self):
        stg = parse_g(CSC_CONFLICT)
        result = modular_synthesis(
            stg, options=SynthesisOptions(minimize=False, signal_prefix="z")
        )
        assert all(
            name.startswith("z") for name in result.assignment.names
        )

    def test_run_synthesis_defaults_keep_resilience(self):
        # No options: the orchestrator's historical defaults (fallback
        # ladder + modular degradation on) still apply.
        stg = parse_g(CSC_CONFLICT)
        report = run_synthesis(stg)
        assert report.status == "ok"

    def test_run_synthesis_accepts_options(self):
        stg = parse_g(CSC_CONFLICT)
        report = run_synthesis(
            stg, method="direct", options=SynthesisOptions(minimize=False)
        )
        assert report.status == "ok"
        assert report.result.literals is None

    def test_run_synthesis_accepts_g_text(self):
        report = run_synthesis(
            CSC_CONFLICT, options=repro.SynthesisOptions(minimize=False)
        )
        assert report.status == "ok"

    def test_facade_returns_run_report(self):
        stg = parse_g(CSC_CONFLICT)
        report = repro.synthesize(
            stg, options=repro.SynthesisOptions(minimize=False)
        )
        assert report.status == "ok"
        assert report.result is not None
        assert report.exit_code == 0
