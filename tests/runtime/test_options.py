"""Tests for SynthesisOptions, the legacy-kwarg shim, and the facade."""

import warnings

import pytest

import repro
from repro.baselines import lavagno_synthesis
from repro.csc import direct_synthesis, modular_synthesis
from repro.runtime import SynthesisOptions, coerce_options
from repro.runtime.run import run_synthesis
from repro.stg import parse_g

from tests.example_stgs import CSC_CONFLICT


class TestSynthesisOptions:
    def test_frozen(self):
        options = SynthesisOptions()
        with pytest.raises(AttributeError):
            options.engine = "dpll"

    def test_evolve_replaces_fields(self):
        options = SynthesisOptions(engine="dpll")
        changed = options.evolve(minimize=False)
        assert changed.engine == "dpll"
        assert changed.minimize is False
        assert options.minimize is True

    def test_output_order_normalised_to_tuple(self):
        options = SynthesisOptions(output_order=["b", "c"])
        assert options.output_order == ("b", "c")

    def test_per_method_defaults_resolve(self):
        options = SynthesisOptions()
        assert options.resolved_prefix("csc") == "csc"
        assert options.resolved_prefix("lm") == "lm"
        assert options.resolved_max_signals(7) == 7
        assert SynthesisOptions(max_signals=2).resolved_max_signals(7) == 2
        assert SynthesisOptions(signal_prefix="s").resolved_prefix("lm") \
            == "s"

    def test_sat_mode_defaults_incremental(self):
        assert SynthesisOptions().sat_mode == "incremental"
        assert SynthesisOptions(sat_mode="oneshot").sat_mode == "oneshot"

    def test_sat_mode_validated(self):
        with pytest.raises(ValueError, match="sat_mode"):
            SynthesisOptions(sat_mode="warm")

    def test_robustness_knob_defaults(self):
        options = SynthesisOptions()
        assert options.retries == 2
        assert options.retry_backoff == 0.05
        assert options.cache_max_bytes is None

    def test_robustness_knobs_validated(self):
        with pytest.raises(ValueError, match="retries"):
            SynthesisOptions(retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            SynthesisOptions(retry_backoff=-0.5)
        with pytest.raises(ValueError, match="cache_max_bytes"):
            SynthesisOptions(cache_max_bytes=-1)
        # Zero is meaningful for all three: escalate immediately, no
        # backoff sleep, evict everything.
        options = SynthesisOptions(
            retries=0, retry_backoff=0.0, cache_max_bytes=0
        )
        assert options.retries == 0


class TestCoerceOptions:
    def test_legacy_kwargs_warn_and_fold(self):
        with pytest.warns(DeprecationWarning, match="modular_synthesis"):
            options = coerce_options(
                None, {"minimize": False}, "modular_synthesis"
            )
        assert options == SynthesisOptions(minimize=False)

    def test_mixing_options_and_legacy_is_an_error(self):
        with pytest.raises(TypeError, match="not both"):
            coerce_options(
                SynthesisOptions(), {"minimize": False}, "x_synthesis"
            )

    def test_unknown_legacy_kwargs_rejected(self):
        with pytest.raises(TypeError, match="bogus"):
            coerce_options(None, {"bogus": 1}, "x_synthesis")

    def test_non_options_value_rejected(self):
        with pytest.raises(TypeError, match="SynthesisOptions"):
            coerce_options({"engine": "dpll"}, {}, "x_synthesis")

    def test_legacy_defaults_fill_unpassed_fields_only(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            options = coerce_options(
                None, {"minimize": False}, "run_synthesis",
                legacy_defaults={"fallback": True},
            )
        assert options.fallback is True
        assert options.minimize is False
        assert coerce_options(
            None, {}, "run_synthesis", legacy_defaults={"fallback": True}
        ).fallback is True


class TestEntryPoints:
    def test_modular_legacy_kwargs_still_work_with_warning(self):
        stg = parse_g(CSC_CONFLICT)
        with pytest.warns(DeprecationWarning, match="minimize"):
            result = modular_synthesis(stg, minimize=False)
        assert result.literals is None

    def test_direct_legacy_kwargs_still_work_with_warning(self):
        stg = parse_g(CSC_CONFLICT)
        with pytest.warns(DeprecationWarning):
            result = direct_synthesis(stg, minimize=False)
        assert result.literals is None

    def test_lavagno_legacy_kwargs_still_work_with_warning(self):
        stg = parse_g(CSC_CONFLICT)
        with pytest.warns(DeprecationWarning):
            result = lavagno_synthesis(stg, minimize=False)
        assert result.literals is None

    def test_options_path_emits_no_warning(self):
        stg = parse_g(CSC_CONFLICT)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = modular_synthesis(
                stg, options=SynthesisOptions(minimize=False)
            )
        assert result.literals is None

    def test_custom_signal_prefix_via_options(self):
        stg = parse_g(CSC_CONFLICT)
        result = modular_synthesis(
            stg, options=SynthesisOptions(minimize=False, signal_prefix="z")
        )
        assert all(
            name.startswith("z") for name in result.assignment.names
        )

    def test_run_synthesis_defaults_keep_resilience(self):
        # No options, no kwargs: the orchestrator's historical defaults
        # (fallback ladder + modular degradation on) still apply, with
        # no deprecation warning.
        stg = parse_g(CSC_CONFLICT)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            report = run_synthesis(stg)
        assert report.status == "ok"

    def test_run_synthesis_accepts_options(self):
        stg = parse_g(CSC_CONFLICT)
        report = run_synthesis(
            stg, method="direct", options=SynthesisOptions(minimize=False)
        )
        assert report.status == "ok"
        assert report.result.literals is None

    def test_facade_returns_run_report(self):
        stg = parse_g(CSC_CONFLICT)
        report = repro.synthesize(
            stg, options=repro.SynthesisOptions(minimize=False)
        )
        assert report.status == "ok"
        assert report.result is not None
        assert report.exit_code == 0
