"""The supervised pool: retry policy, crash classification, escalation.

The pool under test is fake -- a scripted executor whose futures fail on
command -- so every recovery path (worker death, collateral broken-pool
fallout, per-task overrun, submit-time breakage, retry exhaustion,
budget cut-off) runs deterministically and instantly.  The
integration with real ``ProcessPoolExecutor`` death is covered by the
``worker-crash`` fault tests in ``tests/csc/test_parallel.py``.
"""

from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeout

import pytest

from repro.runtime.budget import Budget
from repro.runtime.supervise import (
    OUTCOME_FAILED,
    OUTCOME_OK,
    ModuleOverrunError,
    RetryPolicy,
    SupervisedPool,
    SuperviseStats,
    WorkerCrashError,
)


# -- the scripted executor --------------------------------------------------

class FakeFuture:
    def __init__(self, action, value):
        self.action = action
        self.value = value

    def result(self, timeout=None):
        if self.action == "ok":
            return self.value
        if self.action == "crash":
            raise BrokenExecutor("process pool terminated abruptly")
        if self.action == "hang":
            raise FuturesTimeout()
        raise self.value  # action == "raise": fn's own exception


class FakePool:
    """An executor whose per-token behaviour is scripted per attempt.

    ``script[token]`` is a list over attempts: ``"ok"``, ``"crash"``,
    ``"hang"``, ``"reject"`` (submit raises) or an exception instance
    (the task function raising it).
    """

    def __init__(self, script, log):
        self.script = script
        self.log = log
        self.shutdowns = []
        # Mimic ProcessPoolExecutor's private process table so _kill's
        # terminate sweep has something to walk.
        self._processes = {}

    def submit(self, fn, *args):
        token, attempt = args[0], args[-1]
        self.log.append(("submit", token, attempt))
        action = self.script[token][min(attempt, len(self.script[token]) - 1)]
        if action == "reject":
            raise BrokenExecutor("pool broke at submit")
        if isinstance(action, Exception):
            return FakeFuture("raise", action)
        return FakeFuture(action, f"{token}@{attempt}")

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdowns.append((wait, cancel_futures))


def make_pool(script, policy=None, budget=None, **kwargs):
    log = []
    generations = []

    def factory():
        pool = FakePool(script, log)
        generations.append(pool)
        return pool

    supervisor = SupervisedPool(
        factory,
        policy=policy if policy is not None else RetryPolicy(backoff=0.0),
        budget=budget,
        sleep=lambda _s: None,
        **kwargs,
    )
    return supervisor, log, generations


def run_fn(token, attempt):
    raise AssertionError("FakePool never calls the task function")


# -- retry policy -----------------------------------------------------------

def test_delay_is_deterministic_and_jittered():
    policy = RetryPolicy(backoff=0.1, seed=7)
    first = policy.delay(1, token="a")
    assert first == policy.delay(1, token="a")
    assert 0.05 <= first < 0.1
    assert policy.delay(1, token="b") != first  # de-synchronised


def test_delay_doubles_and_caps():
    policy = RetryPolicy(backoff=0.1, backoff_cap=0.3)
    d1, d2, d3, d9 = (policy.delay(n, token="t") for n in (1, 2, 3, 9))
    assert d1 < d2 < d3
    assert d9 <= 0.3  # capped


def test_delay_differs_by_seed():
    assert (RetryPolicy(seed=0).delay(1, token="t")
            != RetryPolicy(seed=1).delay(1, token="t"))


def test_delay_attempt_starts_at_one():
    with pytest.raises(ValueError):
        RetryPolicy().delay(0)


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=-0.1)


# -- the happy path ---------------------------------------------------------

def test_all_ok_runs_once():
    supervisor, log, generations = make_pool({"a": ["ok"], "b": ["ok"]})
    outcomes, stats = supervisor.run(run_fn, {"a": ("a",), "b": ("b",)})
    assert outcomes == {
        "a": (OUTCOME_OK, "a@0"), "b": (OUTCOME_OK, "b@0"),
    }
    assert len(generations) == 1
    assert stats.worker_deaths == 0
    assert stats.pool_respawns == 0
    assert stats.retries == {} and stats.respawns == {}


def test_attempt_number_is_appended():
    supervisor, log, _ = make_pool({"a": ["crash", "ok"]})
    supervisor.run(run_fn, {"a": ("a",)})
    assert [(t, n) for op, t, n in log if op == "submit"] == [
        ("a", 0), ("a", 1),
    ]


# -- crash recovery ---------------------------------------------------------

def test_crash_is_retried_on_a_fresh_pool():
    supervisor, log, generations = make_pool({"a": ["crash", "ok"]})
    outcomes, stats = supervisor.run(run_fn, {"a": ("a",)})
    assert outcomes["a"] == (OUTCOME_OK, "a@1")
    assert len(generations) == 2  # the broken pool was respawned
    assert stats.worker_deaths == 1
    assert stats.pool_respawns == 1
    assert stats.retries == {"a": 1}
    assert stats.module_retries == 1
    # The broken pool was torn down without waiting.
    assert (False, True) in generations[0].shutdowns


def test_collateral_tasks_are_respawned_not_retried():
    # Both futures raise BrokenExecutor; only the first (in gather
    # order) was the task the worker died under.
    supervisor, _, _ = make_pool({
        "a": ["crash", "ok"], "b": ["crash", "ok"],
    })
    outcomes, stats = supervisor.run(run_fn, {"a": ("a",), "b": ("b",)})
    assert outcomes["a"][0] == OUTCOME_OK
    assert outcomes["b"][0] == OUTCOME_OK
    assert stats.retries == {"a": 1}
    assert stats.respawns == {"b": 1}
    assert stats.worker_deaths == 1


def test_retry_exhaustion_fails_with_worker_crash_error():
    supervisor, _, generations = make_pool(
        {"a": ["crash", "crash", "crash", "crash"]},
        policy=RetryPolicy(retries=2, backoff=0.0),
    )
    outcomes, stats = supervisor.run(run_fn, {"a": ("a",)})
    tag, exc = outcomes["a"]
    assert tag == OUTCOME_FAILED
    assert isinstance(exc, WorkerCrashError)
    assert exc.kind == "worker"
    assert stats.retries == {"a": 2}
    assert len(generations) == 3  # initial + one respawn per retry


def test_zero_retries_escalates_immediately():
    supervisor, _, generations = make_pool(
        {"a": ["crash", "ok"]}, policy=RetryPolicy(retries=0),
    )
    outcomes, stats = supervisor.run(run_fn, {"a": ("a",)})
    assert outcomes["a"][0] == OUTCOME_FAILED
    assert stats.retries == {}
    assert len(generations) == 1


def test_submit_time_breakage_is_retried():
    supervisor, log, generations = make_pool({
        "a": ["reject", "ok"], "b": ["reject", "ok"],
    })
    outcomes, stats = supervisor.run(run_fn, {"a": ("a",), "b": ("b",)})
    assert outcomes["a"][0] == OUTCOME_OK
    assert outcomes["b"][0] == OUTCOME_OK
    assert stats.worker_deaths == 1


# -- overrun ----------------------------------------------------------------

def test_overrun_kills_pool_and_retries():
    supervisor, _, generations = make_pool(
        {"a": ["hang", "ok"]},
        policy=RetryPolicy(retries=1, backoff=0.0, task_timeout=0.01),
    )
    outcomes, stats = supervisor.run(run_fn, {"a": ("a",)})
    assert outcomes["a"] == (OUTCOME_OK, "a@1")
    assert stats.retries == {"a": 1}
    assert len(generations) == 2  # the stuck worker was reclaimed


def test_overrun_exhaustion_is_module_overrun_error():
    supervisor, _, _ = make_pool(
        {"a": ["hang", "hang"]},
        policy=RetryPolicy(retries=1, backoff=0.0, task_timeout=0.01),
    )
    outcomes, _ = supervisor.run(run_fn, {"a": ("a",)})
    tag, exc = outcomes["a"]
    assert tag == OUTCOME_FAILED
    assert isinstance(exc, ModuleOverrunError)
    assert exc.kind == "worker"


# -- deterministic failures are not retried ---------------------------------

def test_task_exception_is_not_retried():
    boom = ValueError("deterministic solve failure")
    supervisor, log, generations = make_pool({"a": [boom, "ok"]})
    outcomes, stats = supervisor.run(run_fn, {"a": ("a",)})
    assert outcomes["a"] == (OUTCOME_FAILED, boom)
    assert stats.retries == {} and stats.worker_deaths == 0
    assert len(generations) == 1  # the pool stayed healthy
    assert len([op for op, *_ in log if op == "submit"]) == 1


# -- budget interaction -----------------------------------------------------

def test_expired_budget_stops_retrying_without_raising():
    budget = Budget(max_seconds=0.0)  # pre-expired
    supervisor, _, _ = make_pool(
        {"a": ["crash", "ok"]}, budget=budget,
    )
    outcomes, stats = supervisor.run(run_fn, {"a": ("a",)})
    tag, exc = outcomes["a"]
    assert tag == OUTCOME_FAILED
    assert isinstance(exc, WorkerCrashError)
    assert stats.retries == {}


def test_backoff_sleep_is_clamped_to_remaining_wall():
    slept = []
    ticks = iter([0.0] * 50)
    budget = Budget(max_seconds=1000.0, clock=lambda: next(ticks, 0.0))
    log = []

    def factory():
        return FakePool({"a": ["crash", "ok"]}, log)

    supervisor = SupervisedPool(
        factory,
        policy=RetryPolicy(retries=1, backoff=5000.0, backoff_cap=5000.0),
        budget=budget,
        sleep=slept.append,
    )
    outcomes, _ = supervisor.run(run_fn, {"a": ("a",)})
    assert outcomes["a"][0] == OUTCOME_OK
    assert slept and all(s <= 1000.0 for s in slept)


def test_sleep_schedule_is_reproducible():
    def run_once():
        slept = []
        log = []
        supervisor = SupervisedPool(
            lambda: FakePool({"a": ["crash", "crash", "ok"]}, log),
            policy=RetryPolicy(retries=2, backoff=0.25),
            sleep=slept.append,
        )
        supervisor.run(run_fn, {"a": ("a",)})
        return slept

    assert run_once() == run_once()


# -- stats ------------------------------------------------------------------

def test_stats_repr_and_totals():
    stats = SuperviseStats()
    stats.worker_deaths = 2
    stats.retries = {"a": 1, "b": 2}
    stats.respawns = {"c": 1}
    assert stats.module_retries == 3
    text = repr(stats)
    assert "worker_deaths=2" in text and "retries=3" in text
