"""End-to-end behaviour of the budgeted orchestrator."""

import time

import pytest

from repro.runtime import Budget, SynthesisOptions, faults
from repro.runtime.report import RunReport
from repro.runtime.run import run_synthesis
from repro.stg import parse_g

from tests.example_stgs import CSC_CONFLICT, HANDSHAKE


@pytest.fixture(autouse=True)
def _clean_registry():
    faults.clear()
    yield
    faults.clear()


def test_ok_run_reports_every_module_ok():
    report = run_synthesis(parse_g(CSC_CONFLICT))
    assert report.status == "ok"
    assert report.exit_code == 0
    assert {m.output for m in report.modules} == {"b", "c"}
    assert all(m.status == "ok" for m in report.modules)
    assert report.result is not None
    assert report.budget["elapsed_seconds"] >= 0


def test_methods_share_the_contract():
    for method in ("modular", "direct", "lavagno"):
        report = run_synthesis(parse_g(HANDSHAKE), method=method)
        assert report.status == "ok", method
        assert report.result is not None


def test_unknown_method_is_a_bug_not_a_report():
    with pytest.raises(ValueError):
        run_synthesis(parse_g(HANDSHAKE), method="quantum")


def test_timeout_returns_partial_report_within_deadline():
    # An already-expired budget dies at the first checkpoint, making the
    # "terminates promptly and still returns a report" contract
    # deterministic regardless of machine speed.
    budget = Budget(max_seconds=0.0)
    started = time.perf_counter()
    report = run_synthesis(
        parse_g(CSC_CONFLICT),
        options=SynthesisOptions(budget=budget, fallback=True, degrade=True),
    )
    elapsed = time.perf_counter() - started
    assert report.status == "timeout"
    assert report.exit_code == 3
    assert report.result is None
    assert report.error is not None
    # Generous slack for interpreter jitter; the contract is ~1.1x.
    assert elapsed < 1.0
    assert report.budget["exhausted_at"] is not None


def test_timeout_mid_modules_marks_remaining_skipped():
    # A budget that survives graph construction but dies at the first
    # module checkpoint: expired the moment it is first consulted.
    class Dying(Budget):
        def checkpoint(self, point=""):
            if point.startswith("module:"):
                self.max_seconds = -1.0
            super().checkpoint(point)

    report = run_synthesis(
        parse_g(CSC_CONFLICT),
        options=SynthesisOptions(
            budget=Dying(), fallback=True, degrade=True
        ),
    )
    assert report.status == "timeout"
    assert report.modules, "partial per-module results expected"
    assert all(m.status == "skipped" for m in report.modules)


def test_structured_error_becomes_error_report():
    # An inconsistent STG (a only ever rises) surfaces as status=error.
    bad = parse_g(
        """
.model broken
.inputs a
.outputs b
.graph
a+ b+
b+ a+
.marking { <b+,a+> }
.end
"""
    )
    report = run_synthesis(bad)
    assert report.status == "error"
    assert report.exit_code == 1
    assert report.error is not None


def test_injected_module_fault_yields_exit_code_2():
    with faults.injected("module-solve"):
        report = run_synthesis(parse_g(CSC_CONFLICT))
    assert report.status == "degraded"
    assert report.exit_code == 2
    assert len(report.degraded_modules) + len(report.skipped_modules) == 1


def test_no_fallback_propagates_as_error_report():
    with faults.injected("module-solve"):
        report = run_synthesis(
            parse_g(CSC_CONFLICT), options=SynthesisOptions(fallback=False)
        )
    assert report.status == "error"
    assert report.exit_code == 1


def test_max_states_budget_trips_on_big_graph():
    report = run_synthesis(
        parse_g(CSC_CONFLICT),
        options=SynthesisOptions(
            budget=Budget(max_states=2), fallback=True, degrade=True
        ),
    )
    assert report.status == "timeout"
    assert report.error.resource == "states"


def test_report_summary_mentions_module_counts():
    report = run_synthesis(parse_g(CSC_CONFLICT))
    assert "2 ok" in report.summary()


def test_exit_code_table_is_total():
    report = RunReport()
    for status in ("ok", "degraded", "timeout", "error"):
        report.status = status
        assert isinstance(report.exit_code, int)
