"""Property-based coverage of the degradation paths.

Two invariants from the robustness contract:

* an injected per-module solver fault must leave a ``degraded`` (or
  ``skipped``) mark in the :class:`RunReport` while the final circuit
  still verifies against the specification;
* arbitrarily corrupted ``.g`` text must only ever escape ``parse_g`` as
  a :class:`~repro.errors.ReproError` subclass (or parse cleanly).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.runtime import faults
from repro.runtime.run import run_synthesis
from repro.stg import parse_g
from repro.stategraph import build_state_graph, csc_conflicts
from repro.verify import verify_synthesis

from tests.example_stgs import ALL, CHOICE, CONCURRENT, CSC_CONFLICT


@pytest.fixture(autouse=True)
def _clean_registry():
    faults.clear()
    yield
    faults.clear()


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    text=st.sampled_from([CSC_CONFLICT, CONCURRENT, CHOICE]),
    faulted=st.integers(min_value=0, max_value=3),
)
def test_injected_module_fault_degrades_but_verifies(text, faulted):
    """One output's modular pass fails; the run covers for it."""
    stg = parse_g(text)
    graph = build_state_graph(stg)
    outputs = sorted(graph.non_inputs)
    target = outputs[faulted % len(outputs)]

    with faults.injected(
        "module-solve", match=lambda output: output == target
    ):
        report = run_synthesis(graph, method="modular")

    assert report.status in ("ok", "degraded")
    entry = report.module(target)
    assert entry is not None
    assert entry.status in ("degraded", "skipped")
    # Every other output solved modularly.
    for other in report.modules:
        if other.output != target:
            assert other.status == "ok"

    result = report.result
    assert result is not None
    assert csc_conflicts(result.expanded) == []
    check = verify_synthesis(result, stg)
    assert check.conforms, (check.violations, check.deadlocks)


def _corrupt(text, position, payload):
    return text[:position] + payload + text[position + 1:]


@settings(max_examples=60, deadline=None)
@given(
    text=st.sampled_from(sorted(ALL.values())),
    position=st.integers(min_value=0, max_value=400),
    payload=st.text(
        alphabet=st.characters(
            codec="utf-8", exclude_categories=["Cs"]
        ),
        max_size=6,
    ),
)
def test_corrupted_g_text_raises_only_repro_errors(text, position, payload):
    corrupted = _corrupt(text, position % len(text), payload)
    try:
        parse_g(corrupted)
    except ReproError:
        pass  # structured failure: exactly what the CLI can report


@settings(max_examples=40, deadline=None)
@given(
    text=st.sampled_from(sorted(ALL.values())),
    cut=st.integers(min_value=0, max_value=400),
)
def test_truncated_g_text_raises_only_repro_errors(text, cut):
    try:
        parse_g(text[: cut % len(text)])
    except ReproError:
        pass
