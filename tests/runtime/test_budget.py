"""Unit tests for the run-wide :class:`Budget`."""

import pytest

from repro.runtime.budget import Budget, BudgetExhaustedError
from repro.sat.solver import Limits


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_unlimited_budget_never_exhausts():
    budget = Budget.unlimited()
    for _ in range(100):
        budget.checkpoint("anywhere")
    budget.check_states(10**9)
    assert budget.remaining_seconds() is None
    assert budget.remaining_backtracks() is None
    assert budget.sub_limits(None) is None


def test_deadline_checkpoint_raises():
    clock = FakeClock()
    budget = Budget(max_seconds=5.0, clock=clock)
    budget.checkpoint("early")
    clock.advance(5.1)
    with pytest.raises(BudgetExhaustedError) as excinfo:
        budget.checkpoint("late")
    assert excinfo.value.resource == "wall-clock"
    assert excinfo.value.point == "late"
    assert budget.exhausted_at == "late"


def test_state_cap():
    budget = Budget(max_states=100)
    budget.check_states(100)
    with pytest.raises(BudgetExhaustedError) as excinfo:
        budget.check_states(101, point="reachability")
    assert excinfo.value.resource == "states"


def test_sub_limits_clips_seconds_to_deadline():
    clock = FakeClock()
    budget = Budget(max_seconds=10.0, clock=clock)
    clock.advance(8.0)
    limits = budget.sub_limits(Limits(max_backtracks=500, max_seconds=60.0))
    assert limits.max_backtracks == 500
    assert limits.max_seconds == pytest.approx(2.0)


def test_sub_limits_never_negative():
    clock = FakeClock()
    budget = Budget(max_seconds=1.0, clock=clock)
    clock.advance(5.0)
    limits = budget.sub_limits(Limits(max_seconds=60.0))
    assert limits.max_seconds == 0.0


def test_backtrack_pool_drains():
    budget = Budget(max_backtracks=1000)
    budget.charge_backtracks(400)
    assert budget.remaining_backtracks() == 600
    limits = budget.sub_limits(Limits(max_backtracks=10_000))
    assert limits.max_backtracks == 600
    budget.charge_backtracks(700)
    assert budget.remaining_backtracks() == 0
    assert budget.sub_limits(None).max_backtracks == 0


def test_sub_limits_without_caps_passes_through():
    budget = Budget()
    original = Limits(max_backtracks=7, max_seconds=3.0)
    assert budget.sub_limits(original) is original


def test_snapshot_shape():
    budget = Budget(max_seconds=2.0, max_states=50, max_backtracks=10)
    budget.charge_backtracks(3)
    budget.checkpoint()
    snap = budget.snapshot()
    assert snap["max_seconds"] == 2.0
    assert snap["max_states"] == 50
    assert snap["backtracks_used"] == 3
    assert snap["checkpoints"] == 1
    assert snap["exhausted_at"] is None


# -- parallel worker slices (Budget.split) -------------------------------

def test_split_shares_wall_clock_not_divides_it():
    clock = FakeClock()
    budget = Budget(max_seconds=10.0, clock=clock)
    clock.advance(4.0)
    slices = budget.split(4)
    assert len(slices) == 4
    # Workers run concurrently against the same absolute deadline: each
    # slice carries the parent's full remaining 6 s, not 6/4.
    assert all(s.max_seconds == pytest.approx(6.0) for s in slices)


def test_split_divides_backtrack_pool():
    budget = Budget(max_backtracks=1000)
    budget.charge_backtracks(100)
    slices = budget.split(3)
    assert all(s.max_backtracks == 300 for s in slices)


def test_split_clamps_expired_wall_to_zero():
    clock = FakeClock()
    budget = Budget(max_seconds=1.0, clock=clock)
    clock.advance(5.0)
    assert all(s.max_seconds == 0.0 for s in budget.split(2))


def test_split_preserves_unlimited_dimensions():
    for worker in Budget().split(2):
        assert worker.max_seconds is None
        assert worker.max_states is None
        assert worker.max_backtracks is None


def test_split_rejects_bad_jobs():
    with pytest.raises(ValueError):
        Budget().split(0)


def test_slice_round_trips_through_pickle_and_starts():
    import pickle

    from repro.runtime.budget import BudgetSlice

    original = Budget(
        max_seconds=2.0, max_states=50, max_backtracks=90
    ).split(3)[0]
    assert isinstance(original, BudgetSlice)
    revived = pickle.loads(pickle.dumps(original))
    clock = FakeClock()
    live = revived.start(clock=clock)
    # Loose tolerance: real wall-clock elapses between the parent
    # Budget's construction and the split, shaving the slice's window.
    assert live.max_seconds == pytest.approx(2.0, abs=0.05)
    assert live.max_states == 50
    assert live.max_backtracks == 30
    clock.advance(1.0)
    live.checkpoint("inside-deadline")
    clock.advance(1.5)
    with pytest.raises(BudgetExhaustedError):
        live.checkpoint("past-deadline")


def test_workers_collectively_respect_parent_pool():
    # The parent re-charges worker usage at merge: N workers burning
    # their full shares can never exceed the original pool.
    budget = Budget(max_backtracks=900)
    slices = budget.split(3)
    for worker in slices:
        budget.charge_backtracks(worker.max_backtracks)
    assert budget.remaining_backtracks() == 0
