"""Unit tests for the run-wide :class:`Budget`."""

import pytest

from repro.runtime.budget import Budget, BudgetExhaustedError
from repro.sat.solver import Limits


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_unlimited_budget_never_exhausts():
    budget = Budget.unlimited()
    for _ in range(100):
        budget.checkpoint("anywhere")
    budget.check_states(10**9)
    assert budget.remaining_seconds() is None
    assert budget.remaining_backtracks() is None
    assert budget.sub_limits(None) is None


def test_deadline_checkpoint_raises():
    clock = FakeClock()
    budget = Budget(max_seconds=5.0, clock=clock)
    budget.checkpoint("early")
    clock.advance(5.1)
    with pytest.raises(BudgetExhaustedError) as excinfo:
        budget.checkpoint("late")
    assert excinfo.value.resource == "wall-clock"
    assert excinfo.value.point == "late"
    assert budget.exhausted_at == "late"


def test_state_cap():
    budget = Budget(max_states=100)
    budget.check_states(100)
    with pytest.raises(BudgetExhaustedError) as excinfo:
        budget.check_states(101, point="reachability")
    assert excinfo.value.resource == "states"


def test_sub_limits_clips_seconds_to_deadline():
    clock = FakeClock()
    budget = Budget(max_seconds=10.0, clock=clock)
    clock.advance(8.0)
    limits = budget.sub_limits(Limits(max_backtracks=500, max_seconds=60.0))
    assert limits.max_backtracks == 500
    assert limits.max_seconds == pytest.approx(2.0)


def test_sub_limits_never_negative():
    clock = FakeClock()
    budget = Budget(max_seconds=1.0, clock=clock)
    clock.advance(5.0)
    limits = budget.sub_limits(Limits(max_seconds=60.0))
    assert limits.max_seconds == 0.0


def test_backtrack_pool_drains():
    budget = Budget(max_backtracks=1000)
    budget.charge_backtracks(400)
    assert budget.remaining_backtracks() == 600
    limits = budget.sub_limits(Limits(max_backtracks=10_000))
    assert limits.max_backtracks == 600
    budget.charge_backtracks(700)
    assert budget.remaining_backtracks() == 0
    assert budget.sub_limits(None).max_backtracks == 0


def test_sub_limits_without_caps_passes_through():
    budget = Budget()
    original = Limits(max_backtracks=7, max_seconds=3.0)
    assert budget.sub_limits(original) is original


def test_snapshot_shape():
    budget = Budget(max_seconds=2.0, max_states=50, max_backtracks=10)
    budget.charge_backtracks(3)
    budget.checkpoint()
    snap = budget.snapshot()
    assert snap["max_seconds"] == 2.0
    assert snap["max_states"] == 50
    assert snap["backtracks_used"] == 3
    assert snap["checkpoints"] == 1
    assert snap["exhausted_at"] is None
