"""Property-based end-to-end fuzzing of the whole synthesis flow.

Hypothesis generates random (but well-formed) phase-cycle controllers:
handshake branches, completion pulses, echo tails -- the construction
space the benchmark suite itself is drawn from.  For every generated STG
the full pipeline must uphold its invariants:

* the STG validates (1-safe, consistent, live);
* modular synthesis succeeds and the expanded graph satisfies CSC;
* collapsing the inserted signals recovers the original state graph;
* the ``.g`` writer round-trips the STG;
* the minimised covers implement the extracted next-state functions;
* the gate-level circuit conforms to the specification.

The strategies live in :mod:`tests.example_stgs` so the verification
suites reuse the same corpus, and every ``@settings`` here passes
``derandomize=True``: the examples are a pure function of the strategy
definitions, so a failure in CI replays locally without a seed hunt.
"""

from hypothesis import HealthCheck, given, settings

from repro.csc import modular_synthesis
from repro.logic.espresso import verify_cover
from repro.logic.extract import next_state_tables
from repro.stategraph import build_state_graph, csc_conflicts, quotient
from repro.stg import parse_g, write_g
from repro.verify import verify_synthesis

from tests.example_stgs import choice_controller, controller, well_formed

# Kept as the historical import surface: the differential suite used to
# import the strategy helpers from this module.
_well_formed = well_formed


@settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(choice_controller())
def test_fuzzed_choice_controllers(text):
    stg = well_formed(text)
    if stg is None:
        return
    graph = build_state_graph(stg)
    result = modular_synthesis(graph)
    assert csc_conflicts(result.expanded) == []
    report = verify_synthesis(result, stg)
    assert report.conforms, (report.violations, report.deadlocks)


@settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(controller())
def test_fuzzed_controllers_synthesise_correctly(text):
    stg = well_formed(text)
    if stg is None:
        return  # generation produced an inconsistent combination; skip

    # .g round-trip preserves the state graph.
    graph = build_state_graph(stg)
    reparsed = build_state_graph(parse_g(write_g(stg)))
    assert sorted(graph.codes) == sorted(reparsed.codes)

    result = modular_synthesis(graph)

    # CSC holds on the expansion.
    assert csc_conflicts(result.expanded) == []

    # Collapsing inserted signals recovers the original behaviour.
    if result.assignment.names:
        collapsed = quotient(
            result.expanded, hidden_signals=result.assignment.names
        ).graph
        assert sorted(collapsed.codes) == sorted(graph.codes)

    # Covers implement the extracted functions.
    tables = next_state_tables(result.expanded)
    for signal, cover in result.covers.items():
        onset, offset = tables[signal]
        assert verify_cover(cover, onset, offset) == []

    # The gate-level closed loop conforms.
    report = verify_synthesis(result, stg)
    assert report.conforms, (report.violations, report.deadlocks)
