"""Property-based end-to-end fuzzing of the whole synthesis flow.

Hypothesis generates random (but well-formed) phase-cycle controllers:
handshake branches, completion pulses, echo tails -- the construction
space the benchmark suite itself is drawn from.  For every generated STG
the full pipeline must uphold its invariants:

* the STG validates (1-safe, consistent, live);
* modular synthesis succeeds and the expanded graph satisfies CSC;
* collapsing the inserted signals recovers the original state graph;
* the ``.g`` writer round-trips the STG;
* the minimised covers implement the extracted next-state functions;
* the gate-level circuit conforms to the specification.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.generators import Par, build_g
from repro.csc import modular_synthesis
from repro.logic.espresso import verify_cover
from repro.logic.extract import next_state_tables
from repro.stategraph import build_state_graph, csc_conflicts, quotient
from repro.stg import parse_g, validate_stg, write_g
from repro.verify import verify_synthesis


@st.composite
def controller(draw):
    """A random phase-cycle controller specification."""
    num_branches = draw(st.integers(min_value=1, max_value=2))
    rising_branches = []
    falling_branches = []
    inputs = {"r"}
    outputs = {"a", "e"}
    for index in range(1, num_branches + 1):
        kind = draw(st.sampled_from(["half", "open", "pulse"]))
        d, q = f"d{index}", f"q{index}"
        outputs.add(q)
        if kind == "half":
            inputs.add(d)
            rising_branches.append([f"{d}+", f"{q}+"])
            falling_branches.append([f"{d}-", f"{q}-"])
        elif kind == "open":
            inputs.add(d)
            rising_branches.append(
                [f"{d}+", f"{q}+", f"{d}-", f"{q}-", f"{d}+", f"{q}+"]
            )
            falling_branches.append([f"{d}-", f"{q}-"])
        else:
            rising_branches.append([f"{q}+"])
            falling_branches.append([f"{q}-"])

    def phase(branches):
        if len(branches) == 1:
            return list(branches[0])
        return [Par(*branches)]

    echo_first = draw(st.booleans())
    tail = ["a-", "e+", "e-"] if echo_first else ["e+", "a-", "e-"]
    cycle = (
        ["r+"] + phase(rising_branches) + ["a+", "r-"]
        + phase(falling_branches) + tail
    )
    return build_g(
        "fuzz",
        inputs=sorted(inputs),
        outputs=sorted(outputs),
        cycle=cycle,
    )


@st.composite
def choice_controller(draw):
    """A random controller with an environment-resolved free choice."""
    from repro.bench.generators import Choice

    # Both alternatives are input-led and leave every signal back at its
    # entry value except d1/q1, which both alternatives complete.
    alt1 = ["d1+", "q1+"]
    alt2_prefix = draw(
        st.sampled_from([["x+", "x-"], ["x+", "q2+", "x-", "q2-"]])
    )
    alt2 = alt2_prefix + ["d1+", "q1+"]
    echo = draw(st.booleans())
    tail = ["e+", "e-"] if echo else ["e+", "a-", "e-"]
    cycle = (
        ["r+", Choice(alt1, alt2), "a+", "r-", "d1-", "q1-"]
        + (["a-"] if echo else [])
        + tail
    )
    outputs = {"a", "e", "q1"}
    if "q2+" in alt2:
        outputs.add("q2")
    return build_g(
        "fuzz-choice",
        inputs=["d1", "r", "x"],
        outputs=sorted(outputs),
        cycle=cycle,
    )


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(choice_controller())
def test_fuzzed_choice_controllers(text):
    stg = _well_formed(text)
    if stg is None:
        return
    graph = build_state_graph(stg)
    result = modular_synthesis(graph)
    assert csc_conflicts(result.expanded) == []
    report = verify_synthesis(result, stg)
    assert report.conforms, (report.violations, report.deadlocks)


def _well_formed(text):
    try:
        stg = parse_g(text)
        validate_stg(stg, require_live=True)
        return stg
    except Exception:
        return None


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(controller())
def test_fuzzed_controllers_synthesise_correctly(text):
    stg = _well_formed(text)
    if stg is None:
        return  # generation produced an inconsistent combination; skip

    # .g round-trip preserves the state graph.
    graph = build_state_graph(stg)
    reparsed = build_state_graph(parse_g(write_g(stg)))
    assert sorted(graph.codes) == sorted(reparsed.codes)

    result = modular_synthesis(graph)

    # CSC holds on the expansion.
    assert csc_conflicts(result.expanded) == []

    # Collapsing inserted signals recovers the original behaviour.
    if result.assignment.names:
        collapsed = quotient(
            result.expanded, hidden_signals=result.assignment.names
        ).graph
        assert sorted(collapsed.codes) == sorted(graph.codes)

    # Covers implement the extracted functions.
    tables = next_state_tables(result.expanded)
    for signal, cover in result.covers.items():
        onset, offset = tables[signal]
        assert verify_cover(cover, onset, offset) == []

    # The gate-level closed loop conforms.
    report = verify_synthesis(result, stg)
    assert report.conforms, (report.violations, report.deadlocks)
