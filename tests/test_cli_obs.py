"""The observability flags of ``python -m repro`` and their composition."""

import importlib.util
import json
import os

import pytest

from repro import obs
from repro.__main__ import main
from repro.obs import load_journal
from repro.runtime import faults

from tests.example_stgs import CSC_CONFLICT


@pytest.fixture
def spec(tmp_path):
    path = tmp_path / "spec.g"
    path.write_text(CSC_CONFLICT)
    return str(path)


@pytest.fixture(autouse=True)
def _clean_slate():
    faults.clear()
    yield
    faults.clear()
    assert obs.active() is None, "the CLI left a tracer installed"


def test_trace_writes_wellformed_journal_even_with_quiet(spec, tmp_path,
                                                         capsys):
    trace = tmp_path / "run.jsonl"
    assert main([spec, "--quiet", "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert " = " not in out  # --quiet still suppresses the equations
    events = load_journal(str(trace))  # raises if malformed
    names = {e.get("name") for e in events}
    assert "run" in names
    assert "sat_attempt" in names


def test_metrics_prints_counter_totals_despite_quiet(spec, capsys):
    assert main([spec, "--quiet", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "sat_attempts" in out
    assert "states_explored" in out


def test_metrics_surface_projection_cache_counters(spec, capsys):
    assert main([spec, "--quiet", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "proj_cache_hits" in out
    assert "proj_cache_misses" in out
    assert "quotients" in out


def test_profile_top_prints_span_table(spec, capsys):
    assert main([spec, "--quiet", "--profile-top", "3"]) == 0
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line.startswith("run ")]
    assert lines, out
    # Header + exactly N span rows.
    header_index = next(
        i for i, line in enumerate(out.splitlines())
        if line.startswith("span")
    )
    assert len(out.splitlines()) - header_index - 1 == 3


def test_without_flags_no_tracer_is_installed(spec, capsys):
    assert main([spec, "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "span" not in out
    assert "sat_attempts" not in out


def test_trace_written_on_degraded_run_and_exit_code_unchanged(
        spec, tmp_path, capsys):
    trace = tmp_path / "degraded.jsonl"
    with faults.injected("module-solve"):
        code = main([spec, "--quiet", "--trace", str(trace)])
    capsys.readouterr()
    assert code == 2  # observability flags never change the exit code
    events = load_journal(str(trace))
    module_ends = [
        e for e in events
        if e.get("ev") == "end" and e.get("name") == "module"
    ]
    assert any(
        e.get("attrs", {}).get("status") == "degraded" for e in module_ends
    )


def test_trace_written_on_error_run(spec, tmp_path, capsys):
    # With fallback disabled, a module fault is fatal; the journal must
    # still be written and closed for the failed run.
    trace = tmp_path / "error.jsonl"
    with faults.injected("module-solve"):
        code = main([spec, "--quiet", "--trace", str(trace),
                     "--no-fallback"])
    capsys.readouterr()
    assert code == 1
    events = load_journal(str(trace))  # closed cleanly despite the error
    run_end = next(
        e for e in events
        if e.get("ev") == "end" and e.get("name") == "run"
    )
    assert run_end["attrs"]["status"] == "error"


def test_summarize_trace_tool_reads_cli_journal(spec, tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    assert main([spec, "--quiet", "--trace", str(trace)]) == 0
    capsys.readouterr()

    tool = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "tools", "summarize_trace.py",
    )
    spec_ = importlib.util.spec_from_file_location("summarize_trace", tool)
    module = importlib.util.module_from_spec(spec_)
    spec_.loader.exec_module(module)

    assert module.main([str(trace), "--counters"]) == 0
    out = capsys.readouterr().out
    assert "span" in out
    assert "sat_attempts" in out

    # A malformed journal fails loudly with exit 1.
    bad = tmp_path / "bad.jsonl"
    bad.write_text(json.dumps({"ev": "start", "id": 1, "name": "x",
                               "t": 0.0}) + "\n")
    assert module.main([str(bad)]) == 1


def _load_tool(name):
    tool = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "tools", f"{name}.py",
    )
    spec_ = importlib.util.spec_from_file_location(name, tool)
    module = importlib.util.module_from_spec(spec_)
    spec_.loader.exec_module(module)
    return module


def test_metrics_include_derived_hit_rates(spec, capsys):
    assert main([spec, "--quiet", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "proj_cache_hit_rate" in out


def test_metrics_tree_prints_span_hierarchy(spec, capsys):
    assert main([spec, "--quiet", "--metrics-tree"]) == 0
    out = capsys.readouterr().out
    lines = out.splitlines()
    assert any(line.startswith("span") for line in lines)  # table header
    assert any(line.startswith("run") for line in lines)
    assert any(line.startswith("  module") for line in lines)  # indented


def test_metrics_prom_writes_valid_exposition_page(spec, tmp_path, capsys):
    from repro.obs import validate_prometheus_text

    prom = tmp_path / "metrics.prom"
    assert main([spec, "--quiet", "--metrics-prom", str(prom)]) == 0
    out = capsys.readouterr().out
    assert f"wrote {prom}" in out
    page = prom.read_text()
    assert validate_prometheus_text(page) == []
    assert "repro_sat_attempts_total" in page
    assert "# TYPE repro_module_solve_seconds histogram" in page
    assert 'repro_module_solve_seconds_bucket{le="+Inf"}' in page


def test_trace_memory_records_peak_gauges(spec, tmp_path, capsys):
    prom = tmp_path / "metrics.prom"
    assert main([spec, "--quiet", "--trace-memory",
                 "--metrics-prom", str(prom)]) == 0
    capsys.readouterr()
    page = prom.read_text()
    assert 'repro_peak_memory_bytes{span="run"}' in page


def test_trace_gz_journal_round_trips(spec, tmp_path, capsys):
    trace = tmp_path / "run.jsonl.gz"
    assert main([spec, "--quiet", "--trace", str(trace)]) == 0
    capsys.readouterr()
    import gzip

    with gzip.open(str(trace), "rt") as handle:  # genuinely gzipped
        assert json.loads(handle.readline())["ev"] == "trace"
    events = load_journal(str(trace))
    assert "run" in {e.get("name") for e in events}


def test_summarize_trace_diagnoses_truncated_journal(spec, tmp_path,
                                                     capsys):
    trace = tmp_path / "run.jsonl"
    assert main([spec, "--quiet", "--trace", str(trace)]) == 0
    capsys.readouterr()
    torn = tmp_path / "torn.jsonl"
    text = trace.read_text()
    torn.write_text(text[: len(text) // 2])  # cut mid-record

    module = _load_tool("summarize_trace")
    assert module.main([str(torn)]) == 1
    captured = capsys.readouterr()
    assert "skipped" in captured.err
    assert "line" in captured.err
    assert "Traceback" not in captured.err


def test_analyze_trace_tool_attributes_parallel_journal(spec, tmp_path,
                                                        capsys):
    trace = tmp_path / "jobs.jsonl"
    assert main([spec, "--quiet", "--jobs", "2",
                 "--trace", str(trace)]) == 0
    capsys.readouterr()

    module = _load_tool("analyze_trace")
    folded = tmp_path / "jobs.folded"
    chrome = tmp_path / "jobs.chrome.json"
    assert module.main([str(trace), "--verify",
                        "--flamegraph", str(folded),
                        "--chrome", str(chrome)]) == 0
    out = capsys.readouterr().out
    assert "total" in out and "self" in out  # the critical-path hops
    assert "worker" in out  # the dispatch section saw the segments
    assert folded.read_text().strip()
    document = json.loads(chrome.read_text())
    assert document["traceEvents"]
