"""Load test for the HTTP synthesis service.

Boots the service in-process (a real asyncio HTTP server on a loopback
port, synthesis on a real worker pool), generates a synthetic corpus
with :func:`repro.stg.generate.generate_corpus`, and hammers
``POST /synthesize`` with a shuffled schedule that uploads every
circuit ``--repeats`` times from ``--concurrency`` concurrent client
connections.  It then writes ``BENCH_service.json``
(schema ``repro-service-bench/1``) recording:

* ``throughput_rps`` and the ``latency_p50/p95_seconds`` quantiles over
  every request (connection setup included);
* ``cache_hit_rate`` as observed from the response documents' ``cache``
  tiers (first upload misses, every repeat replays);
* the transport verdicts the service promises under load:
  ``server_5xx == 0`` and ``duplicates_byte_identical`` (every repeat
  of an upload returns the same bytes).

Usage::

    PYTHONPATH=src python tools/loadtest.py --output BENCH_service.json
    python tools/loadtest.py --circuits 200 --concurrency 32 --jobs 8

``check_document`` validates a committed artifact for
``tools/bench_trend.py --check``: the corpus floor (>= 200 circuits),
the concurrency floor (>= 32 in-flight), zero 5xx and byte-identical
replays are hard requirements; throughput and latency are recorded as
trend metrics, not gated on absolute values (they are machine-bound).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import sys
import time

if __package__ in (None, ""):  # script invocation: put src/ on the path
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if os.path.isdir(_src) and _src not in sys.path:
        sys.path.insert(0, _src)

SCHEMA = "repro-service-bench/1"

#: Floors the committed artifact must prove (ISSUE acceptance bar).
MIN_CIRCUITS = 200
MIN_CONCURRENCY = 32


async def _post(port, body):
    """One POST /synthesize over a fresh connection; returns
    ``(status, payload, seconds)``."""
    started = time.perf_counter()
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    head = (
        f"POST /synthesize HTTP/1.1\r\nHost: loadtest\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    data = await reader.read(-1)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass
    head_part, _sep, payload = data.partition(b"\r\n\r\n")
    status = int(head_part.split(b" ", 2)[1])
    return status, payload, time.perf_counter() - started


async def _drive(port, corpus, repeats, concurrency, seed):
    """Run the shuffled upload schedule; returns per-request records."""
    schedule = [
        (index, repeat)
        for index in range(len(corpus))
        for repeat in range(repeats)
    ]
    random.Random(seed).shuffle(schedule)
    queue = asyncio.Queue()
    for item in schedule:
        queue.put_nowait(item)
    records = []

    async def worker():
        while True:
            try:
                index, repeat = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            body = corpus[index].g_text.encode("utf-8")
            status, payload, seconds = await _post(port, body)
            records.append((index, repeat, status, payload, seconds))

    await asyncio.gather(*(worker() for _ in range(concurrency)))
    return records


def _quantile(sorted_values, q):
    if not sorted_values:
        return None
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return (
        sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction
    )


def _analyze(records, corpus):
    """Fold request records into the artifact's verdicts and quantiles."""
    status_counts = {}
    latencies = []
    by_circuit = {}
    tiers = {"miss": 0, "hit": 0, "off": 0}
    for index, _repeat, status, payload, seconds in records:
        status_counts[str(status)] = status_counts.get(str(status), 0) + 1
        latencies.append(seconds)
        by_circuit.setdefault(index, []).append((status, payload))
        if status == 200:
            tier = json.loads(payload).get("cache")
            if tier in tiers:
                tiers[tier] += 1
    server_5xx = sum(
        count for code, count in status_counts.items()
        if int(code) >= 500
    )
    identical = True
    misses_per_circuit = True
    for index, responses in by_circuit.items():
        payloads = [p for s, p in responses if s == 200]
        if len(payloads) != len(responses):
            identical = False
            continue
        replays = {
            payload for payload in payloads
            if json.loads(payload).get("cache") == "hit"
        }
        misses = len(payloads) - len(
            [p for p in payloads if json.loads(p).get("cache") == "hit"]
        )
        if misses != 1:
            misses_per_circuit = False
        if len(replays) > 1:
            identical = False
    latencies.sort()
    lookups = tiers["miss"] + tiers["hit"]
    return {
        "status_counts": dict(sorted(status_counts.items())),
        "server_5xx": server_5xx,
        "duplicates_byte_identical": identical,
        "one_miss_per_circuit": misses_per_circuit,
        "cache_hit_rate": (
            round(tiers["hit"] / lookups, 4) if lookups else None
        ),
        "latency_p50_seconds": round(_quantile(latencies, 0.50), 6),
        "latency_p95_seconds": round(_quantile(latencies, 0.95), 6),
        "latency_max_seconds": round(latencies[-1], 6),
    }


def run_loadtest(circuits=MIN_CIRCUITS, repeats=3,
                 concurrency=MIN_CONCURRENCY, jobs=None, signals=6,
                 width=2, csc_density=0.3, seed=0, executor="process",
                 cache_dir=None, verify=True, quiet=False):
    """Generate the corpus, boot the service, drive the schedule.

    Returns the ``repro-service-bench/1`` document (not yet written).
    """
    from repro.service import SynthesisService, start_server
    from repro.stg.generate import generate_corpus

    if jobs is None:
        jobs = max(2, min(8, (os.cpu_count() or 2)))

    def say(message):
        if not quiet:
            print(message, flush=True)

    say(f"generating {circuits} circuits "
        f"(signals={signals}, width={width}, csc_density={csc_density})...")
    corpus = generate_corpus(
        circuits, signals=signals, width=width,
        csc_density=csc_density, seed=seed,
    )

    async def scenario():
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            service = SynthesisService(
                cache_dir=cache_dir or os.path.join(tmp, "cache"),
                jobs=jobs, verify=verify, executor=executor,
            )
            server = await start_server(service, port=0)
            port = server.sockets[0].getsockname()[1]
            say(f"service up on port {port} "
                f"({jobs} workers, {concurrency} clients)...")
            started = time.perf_counter()
            try:
                async with server:
                    records = await _drive(
                        port, corpus, repeats, concurrency, seed
                    )
            finally:
                service.close()
            wall = time.perf_counter() - started
            return records, wall, service.counters.as_dict()

    records, wall, counters = asyncio.run(scenario())
    analysis = _analyze(records, corpus)
    document = {
        "schema": SCHEMA,
        "circuits": circuits,
        "repeats": repeats,
        "requests": len(records),
        "concurrency": concurrency,
        "jobs": jobs,
        "cores": os.cpu_count() or 1,
        "generator": {
            "signals": signals,
            "width": width,
            "csc_density": csc_density,
            "seed": seed,
        },
        "wall_seconds": round(wall, 6),
        "throughput_rps": round(len(records) / wall, 4),
        "service_counters": counters,
        **analysis,
    }
    return document


def check_document(document):
    """Problem strings for one artifact (empty list = valid)."""
    problems = []
    if not isinstance(document, dict):
        return ["top level is not an object"]
    if document.get("schema") != SCHEMA:
        problems.append(
            f"schema is {document.get('schema')!r}, expected {SCHEMA!r}"
        )
    for field, floor in (
        ("circuits", MIN_CIRCUITS),
        ("concurrency", MIN_CONCURRENCY),
        ("repeats", 2),
        ("jobs", 1),
        ("cores", 1),
    ):
        value = document.get(field)
        if not isinstance(value, int) or isinstance(value, bool):
            problems.append(f"{field} missing or not an int")
        elif value < floor:
            problems.append(f"{field} is {value}, need >= {floor}")
    requests = document.get("requests")
    circuits = document.get("circuits")
    repeats = document.get("repeats")
    if not isinstance(requests, int) or isinstance(requests, bool):
        problems.append("requests missing or not an int")
    elif (isinstance(circuits, int) and isinstance(repeats, int)
            and requests != circuits * repeats):
        problems.append(
            f"requests is {requests}, expected circuits*repeats "
            f"({circuits * repeats})"
        )
    for field in ("wall_seconds", "throughput_rps",
                  "latency_p50_seconds", "latency_p95_seconds"):
        value = document.get(field)
        if (not isinstance(value, (int, float)) or isinstance(value, bool)
                or value <= 0):
            problems.append(f"{field} missing or not a positive number")
    p50 = document.get("latency_p50_seconds")
    p95 = document.get("latency_p95_seconds")
    if (isinstance(p50, (int, float)) and isinstance(p95, (int, float))
            and p95 < p50):
        problems.append(f"latency_p95 ({p95}) below latency_p50 ({p50})")
    if document.get("server_5xx") != 0:
        problems.append(
            f"server_5xx is {document.get('server_5xx')!r}, must be 0"
        )
    if document.get("duplicates_byte_identical") is not True:
        problems.append("duplicates_byte_identical is not true")
    if document.get("one_miss_per_circuit") is not True:
        problems.append("one_miss_per_circuit is not true")
    rate = document.get("cache_hit_rate")
    if (not isinstance(rate, (int, float)) or isinstance(rate, bool)
            or not 0.0 <= rate <= 1.0):
        problems.append("cache_hit_rate missing or not in [0, 1]")
    elif isinstance(repeats, int) and repeats >= 2 and rate < 0.5:
        problems.append(
            f"cache_hit_rate is {rate}; with {repeats} uploads per "
            f"circuit it must be >= 0.5"
        )
    status_counts = document.get("status_counts")
    if not isinstance(status_counts, dict) or not status_counts:
        problems.append("status_counts missing or empty")
    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuits", type=int, default=MIN_CIRCUITS)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="uploads per circuit (first misses, the rest replay)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=MIN_CONCURRENCY,
        help="concurrent client connections",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="service worker processes (default: min(8, cores), >= 2)",
    )
    parser.add_argument("--signals", type=int, default=6)
    parser.add_argument("--width", type=int, default=2)
    parser.add_argument("--csc-density", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--executor", choices=["process", "thread", "inline"],
        default="process",
    )
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the per-result conformance check in the workers",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the artifact here (default: stdout only)",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    document = run_loadtest(
        circuits=args.circuits, repeats=args.repeats,
        concurrency=args.concurrency, jobs=args.jobs,
        signals=args.signals, width=args.width,
        csc_density=args.csc_density, seed=args.seed,
        executor=args.executor, verify=not args.no_verify,
        quiet=args.quiet,
    )
    text = json.dumps(document, indent=2, sort_keys=False)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        if not args.quiet:
            print(f"wrote {args.output}")
    else:
        print(text)
    if (args.circuits < MIN_CIRCUITS
            or args.concurrency < MIN_CONCURRENCY):
        print(
            f"note: below the committed floors ({MIN_CIRCUITS} circuits, "
            f"{MIN_CONCURRENCY} clients); this artifact will not pass "
            f"bench_trend --check", file=sys.stderr,
        )
    else:
        problems = check_document(document)
        if problems:
            for problem in problems:
                print(f"error: {problem}", file=sys.stderr)
            return 1
    if not args.quiet:
        print(
            f"{document['requests']} requests in "
            f"{document['wall_seconds']:.2f}s "
            f"({document['throughput_rps']:.1f} rps), "
            f"p50 {document['latency_p50_seconds'] * 1000:.1f}ms, "
            f"p95 {document['latency_p95_seconds'] * 1000:.1f}ms, "
            f"hit rate {document['cache_hit_rate']}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
