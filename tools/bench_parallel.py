"""Measure and record modular synthesis' parallel / warm-cache speedups.

Usage::

    python tools/bench_parallel.py [--names A,B,...] [--jobs N]
                                   [--repeat N] [--out-dir DIR]
    python tools/bench_parallel.py --check BENCH_parallel_modular.json

Times three configurations of :func:`repro.csc.synthesis.modular_synthesis`
over a benchmark set -- serial cold (``jobs=1``, no cache), parallel cold
(``jobs=N``, no cache) and warm (second pass over a freshly primed
:class:`repro.perf.ResultCache`) -- verifies all three produce identical
results, and writes ``BENCH_parallel_modular.json``
(schema ``repro-parallel-bench/1``)::

    {
      "schema": "repro-parallel-bench/1",
      "cores": int,                  # os.cpu_count() where measured
      "jobs": int,                   # worker count of the parallel pass
      "repeat": int,                 # timing passes (best-of)
      "benchmarks": [str, ...],
      "serial_seconds": number,
      "parallel_seconds": number,
      "warm_seconds": number,
      "parallel_speedup": number,    # serial / parallel
      "warm_cache_speedup": number,  # serial / warm
      "identical": bool              # parallel and warm match serial
    }

``--check`` validates an existing artifact instead: structural schema
plus the thresholds the repository commits to -- results identical,
``warm_cache_speedup >= 5``, and ``parallel_speedup >= 1.5`` *when the
recording machine had at least 2 cores* (a single-core box cannot
demonstrate process-level parallelism, so the artifact records the
honest number and the core count that explains it).

Run with ``src`` on ``PYTHONPATH`` (the script bootstraps it when
invoked from a checkout).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

if __package__ in (None, ""):  # script invocation: put src/ on the path
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if os.path.isdir(_src) and _src not in sys.path:
        sys.path.insert(0, _src)

SCHEMA = "repro-parallel-bench/1"
DEFAULT_NAMES = (
    "alloc-outbound", "nak-pa", "sbuf-read-ctl", "vbe-ex2",
    "mmu0", "pe-rcv-ifc-fc", "atod", "mr1",
)

WARM_SPEEDUP_FLOOR = 5.0
PARALLEL_SPEEDUP_FLOOR = 1.5

_NUMBER_FIELDS = (
    "serial_seconds", "parallel_seconds", "warm_seconds",
    "parallel_speedup", "warm_cache_speedup",
)


def _result_key(result):
    """A comparable snapshot of everything synthesis promises to fix."""
    return (
        result.assignment.names,
        result.assignment.values,
        {name: str(cover) for name, cover in result.covers.items()},
        result.final_states,
        result.final_signals,
        tuple((m.output, m.status) for m in result.report.modules),
    )


def _run_suite(names, options_factory):
    """One full pass over the suite; returns (wall_seconds, result_keys)."""
    from repro.bench.suite import load_benchmark
    from repro.csc.synthesis import modular_synthesis

    keys = []
    start = time.perf_counter()
    for name in names:
        stg = load_benchmark(name)
        result = modular_synthesis(stg, options=options_factory())
        keys.append(_result_key(result))
    return time.perf_counter() - start, keys


def measure(names, jobs, repeat):
    """Time the three configurations; returns the artifact document."""
    from repro.runtime.options import SynthesisOptions

    def best(options_factory, passes=repeat):
        seconds, keys = None, None
        for _ in range(passes):
            elapsed, pass_keys = _run_suite(names, options_factory)
            if seconds is None or elapsed < seconds:
                seconds, keys = elapsed, pass_keys
        return seconds, keys

    serial_seconds, serial_keys = best(
        lambda: SynthesisOptions(minimize=True)
    )
    parallel_seconds, parallel_keys = best(
        lambda: SynthesisOptions(minimize=True, jobs=jobs)
    )

    cache_root = tempfile.mkdtemp(prefix="bench-parallel-cache-")
    try:
        _run_suite(  # prime
            names,
            lambda: SynthesisOptions(minimize=True, cache_dir=cache_root),
        )
        warm_seconds, warm_keys = best(
            lambda: SynthesisOptions(minimize=True, cache_dir=cache_root)
        )
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    return {
        "schema": SCHEMA,
        "cores": os.cpu_count() or 1,
        "jobs": jobs,
        "repeat": repeat,
        "benchmarks": list(names),
        "serial_seconds": round(serial_seconds, 6),
        "parallel_seconds": round(parallel_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "parallel_speedup": round(serial_seconds / parallel_seconds, 3),
        "warm_cache_speedup": round(serial_seconds / warm_seconds, 3),
        "identical": (
            serial_keys == parallel_keys and serial_keys == warm_keys
        ),
    }


def check_document(document):
    """Problem strings for one artifact (empty list = valid)."""
    problems = []
    if not isinstance(document, dict):
        return ["top level is not an object"]
    if document.get("schema") != SCHEMA:
        problems.append(
            f"schema is {document.get('schema')!r}, expected {SCHEMA!r}"
        )
    for field in ("cores", "jobs", "repeat"):
        value = document.get(field)
        if not isinstance(value, int) or value < 1:
            problems.append(f"{field} missing or not a positive int")
    benchmarks = document.get("benchmarks")
    if (not isinstance(benchmarks, list) or not benchmarks
            or not all(isinstance(n, str) for n in benchmarks)):
        problems.append("benchmarks missing or not a list of names")
    for field in _NUMBER_FIELDS:
        value = document.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"{field} missing or not a number")
        elif value <= 0:
            problems.append(f"{field} is not positive: {value!r}")
    if document.get("identical") is not True:
        problems.append("identical is not true: parallel or warm-cache "
                        "results diverged from the serial run")
    if problems:
        return problems

    warm = document["warm_cache_speedup"]
    if warm < WARM_SPEEDUP_FLOOR:
        problems.append(
            f"warm_cache_speedup {warm} below floor {WARM_SPEEDUP_FLOOR}"
        )
    parallel = document["parallel_speedup"]
    if document["cores"] >= 2 and parallel < PARALLEL_SPEEDUP_FLOOR:
        problems.append(
            f"parallel_speedup {parallel} below floor "
            f"{PARALLEL_SPEEDUP_FLOOR} on a {document['cores']}-core machine"
        )
    return problems


def _check(path):
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        problems = [f"cannot read: {exc}"]
    except ValueError as exc:
        problems = [f"not valid JSON: {exc}"]
    else:
        problems = check_document(document)
    if problems:
        print(f"{path}: INVALID", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"{path}: ok")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", metavar="PATH", default=None,
        help="validate an existing artifact instead of measuring",
    )
    parser.add_argument(
        "--names", default=",".join(DEFAULT_NAMES),
        help="comma-separated benchmark subset",
    )
    parser.add_argument(
        "--jobs", type=int, default=4, metavar="N",
        help="worker count for the parallel pass (default 4)",
    )
    parser.add_argument(
        "--repeat", type=int, default=2, metavar="N",
        help="timing passes per configuration, best-of (default 2)",
    )
    parser.add_argument(
        "--out-dir", metavar="DIR", default=".",
        help="directory for BENCH_parallel_modular.json (default: cwd)",
    )
    args = parser.parse_args(argv)

    if args.check:
        return _check(args.check)

    names = [n.strip() for n in args.names.split(",") if n.strip()]
    document = measure(names, max(1, args.jobs), max(1, args.repeat))
    path = os.path.join(args.out_dir, "BENCH_parallel_modular.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    print(
        f"  cores={document['cores']} jobs={document['jobs']} "
        f"serial={document['serial_seconds']:.2f}s "
        f"parallel={document['parallel_seconds']:.2f}s "
        f"warm={document['warm_seconds']:.2f}s"
    )
    print(
        f"  parallel_speedup={document['parallel_speedup']} "
        f"warm_cache_speedup={document['warm_cache_speedup']} "
        f"identical={document['identical']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
