"""Turn a JSONL span journal into a per-phase time/counter table.

Usage::

    python tools/summarize_trace.py TRACE.jsonl [--top N] [--counters]
                                                [--require COUNTER]

Reads plain or gzipped journals (``.gz`` suffix).  Validates the
journal first (header, nesting, monotonic timestamps) and exits 1 with
the problems listed when it is malformed, so CI can gate on journal
well-formedness with the same command developers use to read one.  A
truncated or corrupt line produces a one-line diagnostic with the
skipped-line count -- never a traceback.  The aggregation is :func:`repro.obs.aggregate_events` -- the exact
fold the live tracer maintains for ``--metrics``/``--profile-top``.
``--require COUNTER`` (repeatable) additionally exits 1 when the named
counter total is missing or zero -- CI uses it to assert, e.g., that a
warm-cache run actually hit the cache (``--require result_cache_hits``).

Run with the repository's ``src`` on ``PYTHONPATH`` (or the package
installed).
"""

from __future__ import annotations

import argparse
import os
import sys

if __package__ in (None, ""):  # script invocation: put src/ on the path
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if os.path.isdir(_src) and _src not in sys.path:
        sys.path.insert(0, _src)

from repro.obs import (  # noqa: E402  (path bootstrap above)
    aggregate_events,
    counter_totals,
    format_counters,
    format_profile,
    read_events_tolerant,
    validate_events,
)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("journal", help="JSONL trace written by --trace")
    parser.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="only show the N heaviest span names",
    )
    parser.add_argument(
        "--counters", action="store_true",
        help="also print the counter totals across all spans",
    )
    parser.add_argument(
        "--require", action="append", default=[], metavar="COUNTER",
        help="exit 1 unless this counter total is > 0 (repeatable)",
    )
    args = parser.parse_args(argv)

    try:
        events, skipped = read_events_tolerant(args.journal)
    except OSError as exc:
        print(f"error: cannot read {args.journal}: {exc}", file=sys.stderr)
        return 1
    if skipped:
        # One line, not a traceback: a truncated journal (crashed or
        # still-running producer) is an expected failure mode.
        print(
            f"error: {args.journal}: skipped {len(skipped)} bad journal "
            f"line(s); first: {skipped[0]}",
            file=sys.stderr,
        )
        return 1
    problems = validate_events(events)
    if problems:
        print(f"error: malformed journal {args.journal}:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1

    stats = aggregate_events(events)
    print(format_profile(stats, top=args.top))
    totals = counter_totals(stats)
    if args.counters:
        print()
        print(format_counters(totals))
    failed = [name for name in args.require if totals.get(name, 0) <= 0]
    if failed:
        for name in failed:
            print(
                f"error: required counter {name!r} is missing or zero "
                f"in {args.journal}",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
