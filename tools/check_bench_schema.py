"""Validate a ``BENCH_<tag>.json`` artifact against its declared schema.

Usage::

    python tools/check_bench_schema.py BENCH_smoke.json [...]

Exit 0 when every file conforms, 1 otherwise (problems on stderr).
Deliberately dependency-free -- a hand-rolled structural check, not
jsonschema -- so CI can run it on the bare bench image.

Dispatches on the document's ``schema`` field: ``repro-bench/1`` (the
Table-1 bench runner's artifact, specified below) gets the full check;
``repro-crash-bench/1`` (``tools/bench_crash.py``) and
``repro-parallel-bench/1`` (``tools/bench_parallel.py``) get a
structure-only check here -- their producing tools' ``--check`` modes
additionally enforce the committed thresholds (speedup floors, the
recovery-overhead ceiling).

Schema ``repro-bench/1``::

    {
      "schema": "repro-bench/1",
      "tag": str,
      "rows": [
        {
          "benchmark": str, "method": str,
          "initial_states": int, "initial_signals": int,
          "final_states": int|null, "final_signals": int|null,
          "area": int|null, "cpu": number|null, "note": str|null,
          "formula_sizes": [[clauses, vars], ...],
          "counters": {name: number}
        }, ...
      ],
      "counters": {name: number},
      "spans": {name: {"count": int, "total_seconds": number,
                       "max_seconds": number,
                       "counters": {name: number}}} | null,
      "trace_counters": {name: number}       # optional; run-wide totals
    }
"""

from __future__ import annotations

import json
import sys

SCHEMA = "repro-bench/1"
CRASH_SCHEMA = "repro-crash-bench/1"
PARALLEL_SCHEMA = "repro-parallel-bench/1"

_ROW_REQUIRED = {
    "benchmark": str,
    "method": str,
    "initial_states": int,
    "initial_signals": int,
    "formula_sizes": list,
    "counters": dict,
}
#: Fields that are a number when the run completed, null when it aborted.
_ROW_NULLABLE = ("final_states", "final_signals", "area", "cpu", "note")


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_counters(mapping, where, problems):
    for name, value in mapping.items():
        if not isinstance(name, str) or not _is_number(value):
            problems.append(f"{where}: bad counter entry {name!r}: {value!r}")


def _check_flat_fields(document, spec, problems):
    """Check a flat mapping of ``field -> kind`` where kind is one of
    ``"posint"``, ``"nonnegint"``, ``"number"``, ``"bool"``, ``"names"``."""
    for field, kind in spec.items():
        value = document.get(field)
        if kind == "posint":
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                problems.append(f"{field} missing or not a positive int")
        elif kind == "nonnegint":
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                problems.append(f"{field} missing or not a non-negative int")
        elif kind == "number":
            if not _is_number(value):
                problems.append(f"{field} missing or not a number")
        elif kind == "bool":
            if not isinstance(value, bool):
                problems.append(f"{field} missing or not a bool")
        elif kind == "names":
            if (not isinstance(value, list) or not value
                    or not all(isinstance(n, str) for n in value)):
                problems.append(f"{field} missing or not a list of names")


def _check_crash_bench(document, problems):
    """Structure-only check for ``repro-crash-bench/1``.

    Thresholds (overhead ceiling, recovery minima) are enforced by
    ``tools/bench_crash.py --check``.
    """
    _check_flat_fields(document, {
        "cores": "posint", "jobs": "posint", "repeat": "posint",
        "benchmarks": "names",
        "serial_seconds": "number",
        "clean_parallel_seconds": "number",
        "faulted_parallel_seconds": "number",
        "corrupted_records": "nonnegint",
        "healed_records": "nonnegint",
        "recovery_overhead": "number",
        "identical": "bool",
    }, problems)
    recovery = document.get("recovery")
    if not isinstance(recovery, dict):
        problems.append("recovery missing or not an object")
    else:
        for field in ("worker_deaths", "module_retries",
                      "pool_respawns", "serial_rescues"):
            value = recovery.get(field)
            if (not isinstance(value, int) or isinstance(value, bool)
                    or value < 0):
                problems.append(
                    f"recovery.{field} missing or not a non-negative int"
                )


def _check_parallel_bench(document, problems):
    """Structure-only check for ``repro-parallel-bench/1``.

    Thresholds (speedup floors) are enforced by
    ``tools/bench_parallel.py --check``.
    """
    _check_flat_fields(document, {
        "cores": "posint", "jobs": "posint", "repeat": "posint",
        "benchmarks": "names",
        "serial_seconds": "number",
        "parallel_seconds": "number",
        "warm_seconds": "number",
        "parallel_speedup": "number",
        "warm_cache_speedup": "number",
        "identical": "bool",
    }, problems)


def check_document(document, problems):
    """Append problem strings for every schema violation in ``document``."""
    if not isinstance(document, dict):
        problems.append("top level is not an object")
        return
    declared = document.get("schema")
    if declared == CRASH_SCHEMA:
        _check_crash_bench(document, problems)
        return
    if declared == PARALLEL_SCHEMA:
        _check_parallel_bench(document, problems)
        return
    if document.get("schema") != SCHEMA:
        problems.append(
            f"schema is {document.get('schema')!r}, expected {SCHEMA!r}"
        )
    if not isinstance(document.get("tag"), str) or not document.get("tag"):
        problems.append("tag missing or not a non-empty string")

    rows = document.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("rows missing or empty")
        rows = []
    for index, row in enumerate(rows):
        where = f"rows[{index}]"
        if not isinstance(row, dict):
            problems.append(f"{where}: not an object")
            continue
        for field, kind in _ROW_REQUIRED.items():
            if not isinstance(row.get(field), kind):
                problems.append(
                    f"{where}: {field} missing or not {kind.__name__}"
                )
        for field in _ROW_NULLABLE:
            if field not in row:
                problems.append(f"{where}: {field} missing")
        if row.get("note") is None and not _is_number(row.get("cpu")):
            problems.append(f"{where}: completed row has no cpu time")
        for pair in row.get("formula_sizes", []):
            if (not isinstance(pair, list) or len(pair) != 2
                    or not all(isinstance(n, int) for n in pair)):
                problems.append(f"{where}: bad formula_sizes entry {pair!r}")
        if isinstance(row.get("counters"), dict):
            _check_counters(row["counters"], where, problems)

    if not isinstance(document.get("counters"), dict):
        problems.append("counters missing or not an object")
    else:
        _check_counters(document["counters"], "counters", problems)

    trace_counters = document.get("trace_counters")
    if trace_counters is not None:
        if not isinstance(trace_counters, dict):
            problems.append("trace_counters is not an object")
        else:
            _check_counters(trace_counters, "trace_counters", problems)

    spans = document.get("spans")
    if spans is not None:
        if not isinstance(spans, dict):
            problems.append("spans is neither null nor an object")
        else:
            for name, entry in spans.items():
                where = f"spans[{name}]"
                if not isinstance(entry, dict):
                    problems.append(f"{where}: not an object")
                    continue
                if not isinstance(entry.get("count"), int):
                    problems.append(f"{where}: count missing or not int")
                for field in ("total_seconds", "max_seconds"):
                    if not _is_number(entry.get(field)):
                        problems.append(f"{where}: {field} missing")
                if not isinstance(entry.get("counters"), dict):
                    problems.append(f"{where}: counters missing")
                else:
                    _check_counters(entry["counters"], where, problems)


def check_file(path):
    """Problem strings for one artifact (empty list = valid)."""
    problems = []
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        return [f"cannot read: {exc}"]
    except ValueError as exc:
        return [f"not valid JSON: {exc}"]
    check_document(document, problems)
    return problems


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: check_bench_schema.py BENCH_*.json", file=sys.stderr)
        return 1
    failed = False
    for path in argv:
        problems = check_file(path)
        if problems:
            failed = True
            print(f"{path}: INVALID", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
