"""Generator-driven verification campaign over the synthesis matrix.

Usage::

    python tools/fuzz_verify.py [--count N] [--seed S] [--out PATH]
                                [--check [PATH]]

Generates ``N`` random live/safe free-choice STGs
(:func:`repro.stg.generate.generate_stg`, sweeping ``signals``,
``width`` and ``csc_density`` deterministically from the seed),
synthesises each under one cell of the method matrix (modular /
direct / lavagno x sat_mode x jobs, round-robin by index), and runs
the full closed-loop checker (:func:`repro.verify.verify_result`,
level ``hazards``) on every result.  Three legs land in one artifact,
``BENCH_verify.json`` (schema ``repro-verify-bench/1``):

* **fuzz rows** -- one per generated circuit: knobs, matrix cell,
  verdict, states explored, counterexamples (there must be none);
* **table1** -- the 23 paper benchmarks, modular synthesis, verified
  at ``hazards`` (exceptions, if any, must carry a documented reason);
* **mutants** -- every 8th clean modular row is re-checked under
  seeded mutations (:func:`repro.verify.mutate_result`); caught
  mutants must replay their counterexample traces end to end.

``--check PATH`` validates an existing artifact against the gates the
repository commits to: zero verifier failures, zero errors, zero
inconclusive rows, full matrix coverage, all Table-1 circuits verified
(or journalled exceptions), at least one caught-and-replayed mutant,
and at least ``MIN_COUNT`` fuzzed circuits.  A bare ``--check`` after a
campaign self-validates the fresh artifact with the floor scaled to
``--count`` (the CI smoke mode).

Run with ``src`` on ``PYTHONPATH`` (the script bootstraps it when
invoked from a checkout).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

if __package__ in (None, ""):  # script invocation: put src/ on the path
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if os.path.isdir(_src) and _src not in sys.path:
        sys.path.insert(0, _src)

SCHEMA = "repro-verify-bench/1"

#: Committed-artifact floor on fuzzed circuits (ISSUE 9 acceptance).
MIN_COUNT = 200

#: The synthesis matrix, cycled round-robin over the circuit index.
MATRIX = (
    {"method": "modular", "sat_mode": "incremental", "jobs": 1},
    {"method": "modular", "sat_mode": "oneshot", "jobs": 1},
    {"method": "modular", "sat_mode": "incremental", "jobs": 2},
    {"method": "modular", "sat_mode": "oneshot", "jobs": 2},
    {"method": "direct", "sat_mode": "incremental", "jobs": 1},
    {"method": "direct", "sat_mode": "oneshot", "jobs": 1},
    {"method": "lavagno", "sat_mode": "incremental", "jobs": 1},
    {"method": "lavagno", "sat_mode": "oneshot", "jobs": 1},
)

#: Knob sweep ranges for the generator.
SIGNAL_RANGE = (4, 8)
WIDTH_RANGE = (1, 3)
CSC_DENSITIES = (0.0, 0.25, 0.5, 1.0)

#: Closed-loop exploration cap per circuit.
MAX_STATES = 200_000

#: Every Nth clean modular row feeds the mutation leg.
MUTATE_EVERY = 8


def _knobs(seed, index):
    """Deterministic generator knobs for circuit ``index``."""
    rng = random.Random(f"{seed}:{index}")
    return {
        "signals": rng.randrange(SIGNAL_RANGE[0], SIGNAL_RANGE[1] + 1),
        "width": rng.randrange(WIDTH_RANGE[0], WIDTH_RANGE[1] + 1),
        "csc_density": rng.choice(CSC_DENSITIES),
        "seed": seed * 100_000 + index,
    }


def _synthesise(graph, cell):
    from repro.baselines import lavagno_synthesis
    from repro.csc import direct_synthesis, modular_synthesis
    from repro.runtime.options import SynthesisOptions

    options = SynthesisOptions(
        minimize=True, sat_mode=cell["sat_mode"], jobs=cell["jobs"]
    )
    method = {
        "modular": modular_synthesis,
        "direct": direct_synthesis,
        "lavagno": lavagno_synthesis,
    }[cell["method"]]
    return method(graph, options=options)


def _fuzz_leg(count, seed):
    from repro.stategraph import build_state_graph
    from repro.stg.generate import generate_stg
    from repro.verify import verify_result

    rows = []
    keep = []  # (index, stg, result) feeding the mutation leg
    for index in range(count):
        knobs = _knobs(seed, index)
        cell = MATRIX[index % len(MATRIX)]
        generated = generate_stg(**knobs)
        row = {
            "name": generated.name,
            "index": index,
            "knobs": knobs,
            **cell,
        }
        start = time.perf_counter()
        try:
            graph = build_state_graph(generated.stg)
            result = _synthesise(graph, cell)
            report = verify_result(
                result, generated.stg, level="hazards",
                max_states=MAX_STATES,
            )
        except Exception as exc:  # campaign must survive any one circuit
            row.update(status="error", error=f"{type(exc).__name__}: {exc}")
        else:
            row.update(
                status="ok",
                verdict=report.verdict,
                states=report.states_explored,
                truncated=report.truncated,
                skipped=report.skipped,
            )
            if report.violations:
                row["violations"] = [
                    cex.as_dict() for cex in report.violations
                ]
            if (cell["method"] == "modular" and report.verdict is True
                    and index % MUTATE_EVERY == 0):
                keep.append((index, generated.stg, result))
        row["seconds"] = round(time.perf_counter() - start, 4)
        rows.append(row)
    return rows, keep


def _mutation_leg(keep, seed):
    from repro.verify import (
        check_circuit,
        mutant_circuit,
        mutate_result,
        observable_check,
        replay_counterexample,
    )

    summary = {
        "circuits": len(keep),
        "generated": 0,
        "caught": 0,
        "equivalent": 0,
        "survived": 0,
        "replayed": 0,
        "replay_failures": 0,
        "false_positives": 0,
        "caught_by_kind": {},
    }
    for index, stg, result in keep:
        for mutant in mutate_result(result, seed=seed * 31 + index,
                                    per_kind=1):
            summary["generated"] += 1
            classification = observable_check(result, mutant)
            circuit, initial = mutant_circuit(result, stg.inputs, mutant)
            report = check_circuit(
                circuit, result.graph, level="hazards",
                initial_vector=initial, max_states=MAX_STATES,
            )
            if classification == "equivalent":
                summary["equivalent"] += 1
                if report.verdict is not True:
                    summary["false_positives"] += 1
                continue
            if report.verdict is False:
                summary["caught"] += 1
                by_kind = summary["caught_by_kind"]
                by_kind[mutant.kind] = by_kind.get(mutant.kind, 0) + 1
                for cex in report.violations:
                    try:
                        replayed = replay_counterexample(
                            circuit, result.graph, cex,
                            initial_vector=initial,
                        )
                    except Exception:
                        replayed = False
                    if replayed:
                        summary["replayed"] += 1
                    else:
                        summary["replay_failures"] += 1
            else:
                summary["survived"] += 1
    return summary


def _table1_leg():
    from repro.bench.suite import BENCHMARKS, load_benchmark
    from repro.csc import modular_synthesis
    from repro.runtime.options import SynthesisOptions
    from repro.stategraph import build_state_graph
    from repro.verify import verify_result

    rows = []
    for name in sorted(BENCHMARKS):
        stg = load_benchmark(name)
        graph = build_state_graph(stg)
        result = modular_synthesis(
            graph, options=SynthesisOptions(minimize=True)
        )
        report = verify_result(
            result, stg, level="hazards", max_states=MAX_STATES
        )
        rows.append({
            "name": name,
            "verdict": report.verdict,
            "states": report.states_explored,
        })
    return rows


def campaign(count, seed, table1=True):
    """Run all legs; returns the artifact document."""
    start = time.perf_counter()
    rows, keep = _fuzz_leg(count, seed)
    mutants = _mutation_leg(keep, seed)
    table1_rows = _table1_leg() if table1 else []

    ok_rows = [r for r in rows if r["status"] == "ok"]
    verified = sum(1 for r in ok_rows if r.get("verdict") is True)
    return {
        "schema": SCHEMA,
        "seed": seed,
        "count": count,
        "cores": os.cpu_count() or 1,
        "rows": rows,
        "table1": table1_rows,
        "table1_exceptions": [
            {"name": r["name"],
             "reason": "closed-loop verdict was not clean"}
            for r in table1_rows if r["verdict"] is not True
        ],
        "mutants": mutants,
        "errors": len(rows) - len(ok_rows),
        "verify_failures": sum(
            1 for r in ok_rows if r.get("verdict") is False
        ),
        "inconclusive": sum(
            1 for r in ok_rows if r.get("verdict") is None
        ),
        "verified_rate": round(verified / count, 4) if count else 0.0,
        "mutants_caught": mutants["caught"],
        "states_total": sum(r.get("states", 0) for r in ok_rows),
        "wall_seconds": round(time.perf_counter() - start, 3),
    }


def check_document(document, min_count=MIN_COUNT):
    """Problem strings for one artifact (empty list = valid)."""
    problems = []
    if not isinstance(document, dict):
        return ["top level is not an object"]
    if document.get("schema") != SCHEMA:
        problems.append(
            f"schema is {document.get('schema')!r}, expected {SCHEMA!r}"
        )
    for field in ("seed", "count", "cores"):
        value = document.get(field)
        if not isinstance(value, int) or isinstance(value, bool):
            problems.append(f"{field} missing or not an int")
    rows = document.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("rows missing or empty")
        return problems
    count = document.get("count")
    if isinstance(count, int) and len(rows) != count:
        problems.append(f"rows has {len(rows)} entries, count says {count}")
    if len(rows) < min_count:
        problems.append(
            f"only {len(rows)} fuzzed circuits; the floor is {min_count}"
        )

    for field in ("errors", "verify_failures", "inconclusive"):
        value = document.get(field)
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            problems.append(f"{field} missing or not a counter")
        elif value != 0:
            problems.append(
                f"{field} is {value}: every fuzzed circuit must "
                f"synthesise and verify clean"
            )

    rate = document.get("verified_rate")
    if not isinstance(rate, (int, float)) or isinstance(rate, bool):
        problems.append("verified_rate missing or not a number")

    if len(rows) >= len(MATRIX):
        methods = {r.get("method") for r in rows}
        for method in ("modular", "direct", "lavagno"):
            if method not in methods:
                problems.append(f"matrix coverage: no {method} rows")
        modular = [r for r in rows if r.get("method") == "modular"]
        if {r.get("sat_mode") for r in modular} != {
                "incremental", "oneshot"}:
            problems.append(
                "matrix coverage: modular rows miss a sat_mode"
            )
        if not any(r.get("jobs") == 2 for r in modular):
            problems.append("matrix coverage: no jobs=2 modular rows")

    table1 = document.get("table1")
    if not isinstance(table1, list) or len(table1) < 23:
        problems.append(
            "table1 missing or incomplete (all 23 paper benchmarks)"
        )
    else:
        exceptions = document.get("table1_exceptions")
        failed = [r["name"] for r in table1 if r.get("verdict") is not True]
        if failed:
            documented = {
                e.get("name") for e in (exceptions or [])
                if e.get("reason")
            }
            undocumented = [n for n in failed if n not in documented]
            if undocumented:
                problems.append(
                    f"table1 circuits failed verification without a "
                    f"documented exception: {undocumented}"
                )

    mutants = document.get("mutants")
    if not isinstance(mutants, dict):
        problems.append("mutants summary missing")
    else:
        if not isinstance(mutants.get("caught"), int) \
                or mutants.get("caught", 0) < 1:
            problems.append(
                "mutants.caught < 1: the campaign never demonstrated a "
                "caught mutant"
            )
        if mutants.get("replay_failures") != 0:
            problems.append(
                f"mutants.replay_failures is "
                f"{mutants.get('replay_failures')!r}: every "
                f"counterexample must replay"
            )
        if mutants.get("false_positives") != 0:
            problems.append(
                f"mutants.false_positives is "
                f"{mutants.get('false_positives')!r}: an observably "
                f"equivalent mutant was flagged"
            )
    return problems


def _check(path, min_count=MIN_COUNT):
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        problems = [f"cannot read: {exc}"]
    except ValueError as exc:
        problems = [f"not valid JSON: {exc}"]
    else:
        problems = check_document(document, min_count=min_count)
    if problems:
        print(f"{path}: INVALID", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"{path}: ok")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", metavar="PATH", nargs="?", const="", default=None,
        help="validate an artifact: with PATH, check that file and exit; "
             "bare, self-check the artifact a campaign just wrote",
    )
    parser.add_argument(
        "--count", type=int, default=MIN_COUNT, metavar="N",
        help=f"fuzzed circuits to generate (default {MIN_COUNT})",
    )
    parser.add_argument(
        "--seed", type=int, default=9, metavar="S",
        help="campaign seed (default 9)",
    )
    parser.add_argument(
        "--out", metavar="PATH", default="BENCH_verify.json",
        help="artifact path (default: BENCH_verify.json in cwd)",
    )
    args = parser.parse_args(argv)

    if args.check:
        return _check(args.check)

    document = campaign(max(1, args.count), args.seed)
    directory = os.path.dirname(args.out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    print(
        f"  count={document['count']} errors={document['errors']} "
        f"verify_failures={document['verify_failures']} "
        f"inconclusive={document['inconclusive']} "
        f"verified_rate={document['verified_rate']}"
    )
    print(
        f"  mutants: generated={document['mutants']['generated']} "
        f"caught={document['mutants']['caught']} "
        f"replayed={document['mutants']['replayed']} "
        f"replay_failures={document['mutants']['replay_failures']}"
    )
    print(
        f"  table1: {sum(1 for r in document['table1'] if r['verdict'] is True)}"
        f"/{len(document['table1'])} verified  "
        f"wall={document['wall_seconds']}s"
    )
    if args.check is not None:  # bare --check: self-validate the artifact
        return _check(args.out, min_count=min(MIN_COUNT, args.count))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
