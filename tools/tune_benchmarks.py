"""Developer tool: measure the benchmark specs against the paper's sizes.

Prints, per benchmark: parsed signal count, state-graph size, CSC conflict
count, and the paper's target specification columns.  Used while tuning
``repro/bench/specs.py``; not part of the installed package.
"""

import sys
import time

from repro.bench.specs import SPEC_BUILDERS, generate
from repro.stg import parse_g, validate_stg
from repro.stategraph import build_state_graph, csc_conflicts, csc_lower_bound

# Paper Table 1 "Specifications" columns: (initial states, initial signals,
# final signals for Our Method).
PAPER = {
    "mr0": (302, 11, 14),
    "mr1": (190, 8, 12),
    "mmu0": (174, 8, 11),
    "mmu1": (82, 8, 10),
    "sbuf-ram-write": (58, 10, 12),
    "vbe4a": (58, 6, 8),
    "nak-pa": (56, 9, 10),
    "pe-rcv-ifc-fc": (46, 8, 9),
    "ram-read-sbuf": (36, 10, 11),
    "alex-nonfc": (24, 6, 7),
    "sbuf-send-pkt2": (21, 6, 7),
    "sbuf-send-ctl": (20, 6, 8),
    "atod": (20, 6, 7),
    "pa": (18, 4, 6),
    "alloc-outbound": (17, 7, 9),
    "wrdata": (16, 4, 5),
    "fifo": (16, 4, 5),
    "sbuf-read-ctl": (14, 6, 7),
    "nouse": (12, 3, 4),
    "vbe-ex2": (8, 2, 4),
    "nousc-ser": (8, 3, 4),
    "sendr-done": (7, 3, 4),
    "vbe-ex1": (5, 2, 3),
}


def main(names=None):
    names = names or list(SPEC_BUILDERS)
    print(
        f"{'name':16} {'sig':>4} {'tgt':>4} {'states':>7} {'tgt':>5} "
        f"{'confl':>6} {'lb':>3} {'time':>6}"
    )
    for name in names:
        target_states, target_signals, _final = PAPER[name]
        started = time.perf_counter()
        try:
            stg = parse_g(generate(name))
            validate_stg(stg, require_live=True)
            graph = build_state_graph(stg)
            conflicts = len(csc_conflicts(graph))
            bound = csc_lower_bound(graph)
            elapsed = time.perf_counter() - started
            print(
                f"{name:16} {len(stg.signals):>4} {target_signals:>4} "
                f"{graph.num_states:>7} {target_states:>5} "
                f"{conflicts:>6} {bound:>3} {elapsed:>6.2f}"
            )
        except Exception as exc:  # noqa: BLE001 - tuning tool
            print(f"{name:16} ERROR: {type(exc).__name__}: {exc}")


if __name__ == "__main__":
    main(sys.argv[1:] or None)
