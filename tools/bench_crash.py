"""Measure and record modular synthesis' crash-recovery overhead.

Usage::

    python tools/bench_crash.py [--names A,B,...] [--jobs N]
                                [--repeat N] [--out-dir DIR]
    python tools/bench_crash.py --check BENCH_crash_recovery.json

Times three configurations of :func:`repro.csc.synthesis.modular_synthesis`
over a benchmark set -- serial clean (``jobs=1``, the reference results),
parallel clean (``jobs=N``) and parallel *faulted*: the same ``jobs=N``
run with a worker killed mid-run via the armed ``worker-crash`` fault
point (a real ``os._exit`` in the worker, not a simulation) **and** every
record of a freshly primed :class:`repro.perf.ResultCache` overwritten
with garbage (at least 3 corrupted records, exercising the stale
self-heal).  It verifies the faulted run still produces results
bit-identical to the clean serial run, collects the recovery counters
from the run reports, and writes ``BENCH_crash_recovery.json``
(schema ``repro-crash-bench/1``)::

    {
      "schema": "repro-crash-bench/1",
      "cores": int,                      # os.cpu_count() where measured
      "jobs": int,                       # worker count of the parallel passes
      "repeat": int,                     # timing passes (best-of)
      "benchmarks": [str, ...],
      "serial_seconds": number,
      "clean_parallel_seconds": number,
      "faulted_parallel_seconds": number,
      "corrupted_records": int,          # cache records overwritten (>= 3)
      "healed_records": int,             # of those, deleted/rewritten after
      "recovery": {                      # counters of the faulted run
        "worker_deaths": int, "module_retries": int,
        "pool_respawns": int, "serial_rescues": int
      },
      "recovery_overhead": number,       # faulted / clean_parallel - 1
      "identical": bool                  # faulted and clean match serial
    }

``--check`` validates an existing artifact instead: structural schema
plus the thresholds the repository commits to -- results identical, at
least one recovered worker death, at least 3 corrupted records, and
``recovery_overhead < 0.25`` (crash recovery costs less than a quarter
of the clean run).

Run with ``src`` on ``PYTHONPATH`` (the script bootstraps it when
invoked from a checkout).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

if __package__ in (None, ""):  # script invocation: put src/ on the path
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if os.path.isdir(_src) and _src not in sys.path:
        sys.path.insert(0, _src)

SCHEMA = "repro-crash-bench/1"
DEFAULT_NAMES = (
    "alloc-outbound", "nak-pa", "sbuf-read-ctl", "vbe-ex2",
    "mmu0", "pe-rcv-ifc-fc", "atod", "mr1",
)

#: Recovery must cost less than a quarter of the clean parallel run.
OVERHEAD_CEILING = 0.25
#: The faulted run corrupts every primed record; the suite must be big
#: enough to leave at least this many in the cache.
MIN_CORRUPTED = 3

GARBAGE = b"\x00bench-crash-corrupted-record\x00"

_NUMBER_FIELDS = (
    "serial_seconds", "clean_parallel_seconds", "faulted_parallel_seconds",
)
_RECOVERY_FIELDS = (
    "worker_deaths", "module_retries", "pool_respawns", "serial_rescues",
)


def _result_key(result):
    """A comparable snapshot of everything synthesis promises to fix."""
    return (
        result.assignment.names,
        result.assignment.values,
        {name: str(cover) for name, cover in result.covers.items()},
        result.final_states,
        result.final_signals,
        tuple((m.output, m.status) for m in result.report.modules),
    )


def _run_suite(names, options_factory):
    """One full pass over the suite.

    Returns ``(wall_seconds, result_keys, recovery_counters)`` where the
    counters are the recovery family summed over the suite's run reports.
    """
    from repro.bench.suite import load_benchmark
    from repro.csc.synthesis import modular_synthesis

    keys = []
    recovery = {field: 0 for field in _RECOVERY_FIELDS}
    start = time.perf_counter()
    for name in names:
        stg = load_benchmark(name)
        result = modular_synthesis(stg, options=options_factory())
        keys.append(_result_key(result))
        metrics = result.report.aggregate()
        for field in _RECOVERY_FIELDS:
            recovery[field] += int(metrics[field])
    return time.perf_counter() - start, keys, recovery


def _best(names, options_factory, passes, setup=None):
    """Best-of-N timing; ``setup`` runs before (outside) each timed pass."""
    seconds = keys = recovery = None
    for _ in range(passes):
        if setup is not None:
            setup()
        elapsed, pass_keys, pass_recovery = _run_suite(names, options_factory)
        if seconds is None or elapsed < seconds:
            seconds, keys, recovery = elapsed, pass_keys, pass_recovery
    return seconds, keys, recovery


def _record_paths(cache_root):
    from repro.perf.result_cache import RECORD_SUFFIX

    paths = []
    for dirpath, _dirnames, filenames in os.walk(cache_root):
        for filename in filenames:
            if filename.endswith(RECORD_SUFFIX):
                paths.append(os.path.join(dirpath, filename))
    return sorted(paths)


def _corrupt_records(cache_root):
    """Overwrite every record with garbage; returns the corrupted paths."""
    paths = _record_paths(cache_root)
    if len(paths) < MIN_CORRUPTED:
        raise RuntimeError(
            f"primed cache holds only {len(paths)} records; need at least "
            f"{MIN_CORRUPTED} to corrupt -- use a larger --names set"
        )
    for path in paths:
        with open(path, "wb") as handle:
            handle.write(GARBAGE)
    return paths


def _count_healed(paths):
    """Corrupted records that were since deleted or rewritten."""
    healed = 0
    for path in paths:
        try:
            with open(path, "rb") as handle:
                if handle.read() != GARBAGE:
                    healed += 1
        except OSError:
            healed += 1  # deleted: the self-heal won the race
    return healed


def measure(names, jobs, repeat):
    """Time the three configurations; returns the artifact document."""
    from repro.runtime import faults
    from repro.runtime.options import SynthesisOptions

    serial_seconds, serial_keys, _ = _best(
        names, lambda: SynthesisOptions(minimize=True), repeat
    )
    clean_seconds, clean_keys, _ = _best(
        names, lambda: SynthesisOptions(minimize=True, jobs=jobs), repeat
    )

    cache_root = tempfile.mkdtemp(prefix="bench-crash-cache-")
    corrupted = []
    try:
        _run_suite(  # prime the cache the faulted passes will corrupt
            names,
            lambda: SynthesisOptions(
                minimize=True, jobs=jobs, cache_dir=cache_root
            ),
        )

        def sabotage():
            corrupted[:] = _corrupt_records(cache_root)
            faults.clear()
            faults.inject("worker-crash", times=1)

        faulted_seconds, faulted_keys, recovery = _best(
            names,
            lambda: SynthesisOptions(
                minimize=True, jobs=jobs, cache_dir=cache_root
            ),
            repeat,
            setup=sabotage,
        )
        healed = _count_healed(corrupted)
    finally:
        faults.clear()
        shutil.rmtree(cache_root, ignore_errors=True)

    return {
        "schema": SCHEMA,
        "cores": os.cpu_count() or 1,
        "jobs": jobs,
        "repeat": repeat,
        "benchmarks": list(names),
        "serial_seconds": round(serial_seconds, 6),
        "clean_parallel_seconds": round(clean_seconds, 6),
        "faulted_parallel_seconds": round(faulted_seconds, 6),
        "corrupted_records": len(corrupted),
        "healed_records": healed,
        "recovery": recovery,
        "recovery_overhead": round(
            faulted_seconds / clean_seconds - 1.0, 4
        ),
        "identical": (
            serial_keys == clean_keys and serial_keys == faulted_keys
        ),
    }


def check_document(document):
    """Problem strings for one artifact (empty list = valid)."""
    problems = []
    if not isinstance(document, dict):
        return ["top level is not an object"]
    if document.get("schema") != SCHEMA:
        problems.append(
            f"schema is {document.get('schema')!r}, expected {SCHEMA!r}"
        )
    for field in ("cores", "jobs", "repeat"):
        value = document.get(field)
        if not isinstance(value, int) or value < 1:
            problems.append(f"{field} missing or not a positive int")
    benchmarks = document.get("benchmarks")
    if (not isinstance(benchmarks, list) or not benchmarks
            or not all(isinstance(n, str) for n in benchmarks)):
        problems.append("benchmarks missing or not a list of names")
    for field in _NUMBER_FIELDS:
        value = document.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"{field} missing or not a number")
        elif value <= 0:
            problems.append(f"{field} is not positive: {value!r}")
    overhead = document.get("recovery_overhead")
    if not isinstance(overhead, (int, float)) or isinstance(overhead, bool):
        problems.append("recovery_overhead missing or not a number")
        overhead = None
    for field in ("corrupted_records", "healed_records"):
        value = document.get(field)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(f"{field} missing or not a non-negative int")
    recovery = document.get("recovery")
    if not isinstance(recovery, dict):
        problems.append("recovery missing or not an object")
        recovery = {}
    else:
        for field in _RECOVERY_FIELDS:
            value = recovery.get(field)
            if (not isinstance(value, int) or isinstance(value, bool)
                    or value < 0):
                problems.append(
                    f"recovery.{field} missing or not a non-negative int"
                )
    if document.get("identical") is not True:
        problems.append("identical is not true: the faulted or clean "
                        "parallel results diverged from the serial run")
    if problems:
        return problems

    # Thresholds: the artifact must demonstrate actual recovery.
    if document["corrupted_records"] < MIN_CORRUPTED:
        problems.append(
            f"corrupted_records {document['corrupted_records']} below the "
            f"required {MIN_CORRUPTED}"
        )
    if document["healed_records"] < 1:
        problems.append("healed_records is 0: the stale self-heal never ran")
    if recovery["worker_deaths"] < 1:
        problems.append(
            "recovery.worker_deaths is 0: no worker crash was recovered"
        )
    if recovery["module_retries"] < 1 and recovery["serial_rescues"] < 1:
        problems.append(
            "neither module_retries nor serial_rescues is positive: "
            "the crashed module was never re-solved"
        )
    if overhead >= OVERHEAD_CEILING:
        problems.append(
            f"recovery_overhead {overhead} not below the "
            f"{OVERHEAD_CEILING} ceiling"
        )
    return problems


def _check(path):
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        problems = [f"cannot read: {exc}"]
    except ValueError as exc:
        problems = [f"not valid JSON: {exc}"]
    else:
        problems = check_document(document)
    if problems:
        print(f"{path}: INVALID", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"{path}: ok")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", metavar="PATH", default=None,
        help="validate an existing artifact instead of measuring",
    )
    parser.add_argument(
        "--names", default=",".join(DEFAULT_NAMES),
        help="comma-separated benchmark subset",
    )
    parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker count for the parallel passes (default 2)",
    )
    parser.add_argument(
        "--repeat", type=int, default=2, metavar="N",
        help="timing passes per configuration, best-of (default 2)",
    )
    parser.add_argument(
        "--out-dir", metavar="DIR", default=".",
        help="directory for BENCH_crash_recovery.json (default: cwd)",
    )
    args = parser.parse_args(argv)

    if args.check:
        return _check(args.check)

    names = [n.strip() for n in args.names.split(",") if n.strip()]
    document = measure(names, max(1, args.jobs), max(1, args.repeat))
    os.makedirs(args.out_dir, exist_ok=True)
    path = os.path.join(args.out_dir, "BENCH_crash_recovery.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    print(
        f"  cores={document['cores']} jobs={document['jobs']} "
        f"serial={document['serial_seconds']:.2f}s "
        f"clean={document['clean_parallel_seconds']:.2f}s "
        f"faulted={document['faulted_parallel_seconds']:.2f}s"
    )
    recovery = document["recovery"]
    print(
        f"  corrupted={document['corrupted_records']} "
        f"healed={document['healed_records']} "
        f"worker_deaths={recovery['worker_deaths']} "
        f"retries={recovery['module_retries']} "
        f"respawns={recovery['pool_respawns']} "
        f"rescues={recovery['serial_rescues']}"
    )
    print(
        f"  recovery_overhead={document['recovery_overhead']} "
        f"identical={document['identical']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
