"""Developer tool: collect every EXPERIMENTS.md measurement in one run.

Writes ``tools/experiments.json`` with, per benchmark: the modular,
direct (dpll, paper-era limits) and lavagno rows, plus the clause-size
study and the aggregate area deltas.
"""

import json
import time

from repro.bench.runner import (
    aggregate_area,
    run_direct,
    run_lavagno,
    run_modular,
)
from repro.bench.suite import BENCHMARKS, load_benchmark
from repro.csc.sat_csc import build_csc_formula
from repro.csc.synthesis import modular_synthesis
from repro.sat.solver import Limits
from repro.stategraph.build import build_state_graph
from repro.stategraph.csc import csc_lower_bound

DIRECT_LIMITS = Limits(max_backtracks=150_000, max_seconds=30.0)
LAVAGNO_LIMITS = Limits(max_backtracks=100_000, max_seconds=10.0)


def method_dict(row):
    if not row.completed:
        return {"note": row.note, "cpu": round(row.cpu, 2)}
    return {
        "final_states": row.final_states,
        "final_signals": row.final_signals,
        "area": row.area,
        "cpu": round(row.cpu, 3),
    }


def main():
    started = time.time()
    data = {"benchmarks": {}, "clause_study": {}, "area": {}}
    rows_for_area = {}
    for name in BENCHMARKS:
        print(name, flush=True)
        graph = build_state_graph(load_benchmark(name))
        entry = {
            "initial_states": graph.num_states,
            "initial_signals": len(graph.signals),
        }
        modular = run_modular(name, graph=graph)
        entry["modular"] = method_dict(modular)
        direct = run_direct(
            name, graph=graph, limits=DIRECT_LIMITS, engine="dpll"
        )
        entry["direct"] = method_dict(direct)
        lavagno = run_lavagno(name, graph=graph)
        entry["lavagno"] = method_dict(lavagno)
        data["benchmarks"][name] = entry
        rows_for_area[name] = {
            "modular": modular, "direct": direct, "lavagno": lavagno,
        }

    for name in ["mr0", "mr1", "mmu0"]:
        graph = build_state_graph(load_benchmark(name))
        m = max(1, int(csc_lower_bound(graph)))
        direct_formula = build_csc_formula(graph, m)
        result = modular_synthesis(graph, minimize=False)
        sizes = result.formula_sizes()
        largest = max(c for c, _v in sizes)
        data["clause_study"][name] = {
            "direct_clauses": direct_formula.num_clauses,
            "direct_vars": direct_formula.num_vars,
            "modular_sizes": sizes,
            "ratio": round(direct_formula.num_clauses / largest, 1),
        }

    for baseline in ("direct", "lavagno"):
        delta = aggregate_area(rows_for_area, baseline_method=baseline)
        data["area"][f"vs_{baseline}"] = (
            None if delta is None else round(delta * 100, 1)
        )

    data["total_seconds"] = round(time.time() - started, 1)
    with open("tools/experiments.json", "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)
    print(f"wrote tools/experiments.json in {data['total_seconds']}s")


if __name__ == "__main__":
    main()
