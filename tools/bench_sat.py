"""Measure and record the incremental SAT core's cold-run speedup.

Usage::

    python tools/bench_sat.py [--names A,B,...] [--repeat N]
                              [--out-dir DIR]
    python tools/bench_sat.py --check BENCH_sat_incremental.json

Times :func:`repro.csc.synthesis.modular_synthesis` over the Table-1
suite twice cold -- ``sat_mode="oneshot"`` (a fresh engine per formula,
the paper-faithful baseline) and ``sat_mode="incremental"`` (one
assumption-based solver per grow-``m`` loop) -- with ``minimize`` and
``polish`` off, so the SAT attempts are the dominant cost and the
number is about the solver, not the cover minimiser.  Both passes must
insert the same number of state signals on every benchmark
(``signals_agree``).  Writes ``BENCH_sat_incremental.json``
(schema ``repro-sat-bench/1``)::

    {
      "schema": "repro-sat-bench/1",
      "cores": int,                  # os.cpu_count() where measured
      "repeat": int,                 # timing passes (best-of)
      "scope": "synthesis only (minimize/polish off)",
      "benchmarks": [str, ...],
      "oneshot_seconds": number,
      "incremental_seconds": number,
      "speedup": number,             # oneshot / incremental
      "signals_agree": bool,         # same signal count per benchmark
      "incremental_solves": int,     # solver calls served incrementally
      "learned_kept": int,           # learned clauses carried forward
      "oneshot_fallbacks": int       # attempts retried one-shot
    }

``--check`` validates an existing artifact instead: structural schema
plus the thresholds the repository commits to -- ``signals_agree`` and
``speedup >= 1.3`` (the cold-suite floor of ISSUE 5).

Run with ``src`` on ``PYTHONPATH`` (the script bootstraps it when
invoked from a checkout).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

if __package__ in (None, ""):  # script invocation: put src/ on the path
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if os.path.isdir(_src) and _src not in sys.path:
        sys.path.insert(0, _src)

SCHEMA = "repro-sat-bench/1"
SCOPE = "synthesis only (minimize/polish off)"
SPEEDUP_FLOOR = 1.3

_NUMBER_FIELDS = ("oneshot_seconds", "incremental_seconds", "speedup")
_COUNTER_FIELDS = ("incremental_solves", "learned_kept",
                   "oneshot_fallbacks")


def _options(sat_mode):
    from repro.runtime.options import SynthesisOptions

    return SynthesisOptions(minimize=False, polish=False, sat_mode=sat_mode)


def _run_suite(names, sat_mode):
    """One cold pass; returns (wall_seconds, {name: signals_inserted})."""
    from repro.bench.suite import load_benchmark
    from repro.csc.synthesis import modular_synthesis

    signals = {}
    start = time.perf_counter()
    for name in names:
        stg = load_benchmark(name)
        result = modular_synthesis(stg, options=_options(sat_mode))
        signals[name] = len(result.assignment.names)
    return time.perf_counter() - start, signals


def _counter_totals(names):
    """Untimed traced pass collecting the incremental counters."""
    from repro import obs

    tracer = obs.install(obs.Tracer())
    try:
        _run_suite(names, "incremental")
    finally:
        obs.uninstall()
    return tracer.counter_totals()


def measure(names, repeat):
    """Time both modes; returns the artifact document."""

    def best(sat_mode):
        seconds, signals = None, None
        for _ in range(repeat):
            elapsed, pass_signals = _run_suite(names, sat_mode)
            if seconds is None or elapsed < seconds:
                seconds, signals = elapsed, pass_signals
        return seconds, signals

    oneshot_seconds, oneshot_signals = best("oneshot")
    incremental_seconds, incremental_signals = best("incremental")
    totals = _counter_totals(names)

    return {
        "schema": SCHEMA,
        "cores": os.cpu_count() or 1,
        "repeat": repeat,
        "scope": SCOPE,
        "benchmarks": list(names),
        "oneshot_seconds": round(oneshot_seconds, 6),
        "incremental_seconds": round(incremental_seconds, 6),
        "speedup": round(oneshot_seconds / incremental_seconds, 3),
        "signals_agree": oneshot_signals == incremental_signals,
        "incremental_solves": int(totals.get("incremental_solves", 0)),
        "learned_kept": int(totals.get("learned_kept", 0)),
        "oneshot_fallbacks": int(totals.get("oneshot_fallbacks", 0)),
    }


def check_document(document):
    """Problem strings for one artifact (empty list = valid)."""
    problems = []
    if not isinstance(document, dict):
        return ["top level is not an object"]
    if document.get("schema") != SCHEMA:
        problems.append(
            f"schema is {document.get('schema')!r}, expected {SCHEMA!r}"
        )
    for field in ("cores", "repeat"):
        value = document.get(field)
        if not isinstance(value, int) or value < 1:
            problems.append(f"{field} missing or not a positive int")
    benchmarks = document.get("benchmarks")
    if (not isinstance(benchmarks, list) or not benchmarks
            or not all(isinstance(n, str) for n in benchmarks)):
        problems.append("benchmarks missing or not a list of names")
    for field in _NUMBER_FIELDS:
        value = document.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"{field} missing or not a number")
        elif value <= 0:
            problems.append(f"{field} is not positive: {value!r}")
    for field in _COUNTER_FIELDS:
        value = document.get(field)
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            problems.append(f"{field} missing or not a counter")
    if document.get("signals_agree") is not True:
        problems.append("signals_agree is not true: the sat modes "
                        "disagreed on inserted state signals")
    if problems:
        return problems

    if document["incremental_solves"] < 1:
        problems.append("incremental_solves is 0: the incremental pass "
                        "never ran the incremental solver")
    speedup = document["speedup"]
    if speedup < SPEEDUP_FLOOR:
        problems.append(
            f"speedup {speedup} below floor {SPEEDUP_FLOOR}"
        )
    return problems


def _check(path):
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        problems = [f"cannot read: {exc}"]
    except ValueError as exc:
        problems = [f"not valid JSON: {exc}"]
    else:
        problems = check_document(document)
    if problems:
        print(f"{path}: INVALID", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"{path}: ok")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", metavar="PATH", default=None,
        help="validate an existing artifact instead of measuring",
    )
    parser.add_argument(
        "--names", default=None,
        help="comma-separated benchmark subset (default: whole suite)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3, metavar="N",
        help="timing passes per mode, best-of (default 3)",
    )
    parser.add_argument(
        "--out-dir", metavar="DIR", default=".",
        help="directory for BENCH_sat_incremental.json (default: cwd)",
    )
    args = parser.parse_args(argv)

    if args.check:
        return _check(args.check)

    if args.names:
        names = [n.strip() for n in args.names.split(",") if n.strip()]
    else:
        from repro.bench.suite import BENCHMARKS

        names = sorted(BENCHMARKS)
    document = measure(names, max(1, args.repeat))
    path = os.path.join(args.out_dir, "BENCH_sat_incremental.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")
    print(
        f"  cores={document['cores']} "
        f"oneshot={document['oneshot_seconds']:.2f}s "
        f"incremental={document['incremental_seconds']:.2f}s "
        f"speedup={document['speedup']}"
    )
    print(
        f"  signals_agree={document['signals_agree']} "
        f"incremental_solves={document['incremental_solves']} "
        f"learned_kept={document['learned_kept']} "
        f"oneshot_fallbacks={document['oneshot_fallbacks']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
