"""Bench-trend watchdog: threshold checks and baseline/candidate deltas.

Usage::

    python tools/bench_trend.py --check BENCH_*.json
    python tools/bench_trend.py --baseline OLD.json CANDIDATE.json
                                [--tolerance R]

``--check`` validates each committed artifact against its schema's
structural rules *and* the performance floors/ceilings its producing
tool promises (dispatched on the document's ``schema`` field):

* ``repro-sat-bench/1`` -- ``speedup >= 1.3``, ``signals_agree``
  (``tools/bench_sat.py``);
* ``repro-parallel-bench/1`` -- ``warm_cache_speedup >= 5``,
  ``parallel_speedup >= 1.5`` when ``cores >= 2``, ``identical``
  (``tools/bench_parallel.py``);
* ``repro-crash-bench/1`` -- ``recovery_overhead < 0.25``,
  ``identical`` (``tools/bench_crash.py``);
* ``repro-service-bench/1`` -- ``server_5xx == 0``,
  ``duplicates_byte_identical``, the corpus and concurrency floors
  (``tools/loadtest.py``);
* ``repro-verify-bench/1`` -- zero verifier failures/errors, matrix
  coverage, Table-1 verified, mutants caught-and-replayed
  (``tools/fuzz_verify.py``);
* ``repro-bench/1`` -- structural check (``tools/check_bench_schema``).

The threshold logic lives in the producing tools' ``check_document``
functions; this watchdog only dispatches, so a floor is never written
down twice.

The compare mode takes a committed baseline and a freshly produced
candidate of the *same* schema and flags per-metric deltas beyond a
direction-aware tolerance (default 25%): a metric that should stay
high (``speedup``) regresses by dropping, one that should stay low
(``recovery_overhead``, wall-clock seconds) by rising.  Exit 0 when
everything holds, 1 otherwise -- CI gates on it exactly like the
schema check.

Run with the repository's ``src`` on ``PYTHONPATH`` (or the package
installed).
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import sys

if __package__ in (None, ""):  # script invocation: put src/ on the path
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if os.path.isdir(_src) and _src not in sys.path:
        sys.path.insert(0, _src)

_TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))

#: schema -> module holding its ``check_document`` (None = structural only).
CHECKERS = {
    "repro-sat-bench/1": "bench_sat",
    "repro-parallel-bench/1": "bench_parallel",
    "repro-crash-bench/1": "bench_crash",
    "repro-service-bench/1": "loadtest",
    "repro-verify-bench/1": "fuzz_verify",
    "repro-bench/1": None,
}

#: Per-schema trend metrics: name -> "higher" (regression when it drops)
#: or "lower" (regression when it rises).  ``repro-bench/1`` metrics are
#: derived from the rows by :func:`trend_metrics`.
TREND_METRICS = {
    "repro-sat-bench/1": {
        "speedup": "higher",
        "incremental_seconds": "lower",
        "oneshot_fallbacks": "lower",
    },
    "repro-parallel-bench/1": {
        "warm_cache_speedup": "higher",
        "parallel_speedup": "higher",
        "warm_seconds": "lower",
    },
    "repro-crash-bench/1": {
        "recovery_overhead": "lower",
        "faulted_parallel_seconds": "lower",
    },
    "repro-service-bench/1": {
        "throughput_rps": "higher",
        "latency_p50_seconds": "lower",
        "latency_p95_seconds": "lower",
        "cache_hit_rate": "higher",
    },
    "repro-verify-bench/1": {
        "verified_rate": "higher",
        "verify_failures": "lower",
        "mutants_caught": "higher",
    },
    "repro-bench/1": {
        "total_cpu_seconds": "lower",
        "completed_rows": "higher",
    },
}

#: Relative slack is taken against max(|baseline|, this) so near-zero
#: baselines (e.g. a negative recovery_overhead) still get real slack.
ABS_FLOOR = 0.05


def _load_tool(name):
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(_TOOLS_DIR, f"{name}.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def check_artifact(document):
    """Problem strings for one artifact (structure + thresholds)."""
    if not isinstance(document, dict):
        return ["top level is not an object"]
    schema = document.get("schema")
    if schema not in CHECKERS:
        return [f"unknown schema {schema!r}"]
    checker = CHECKERS[schema]
    if checker is not None:
        return _load_tool(checker).check_document(document)
    problems = []
    _load_tool("check_bench_schema").check_document(document, problems)
    return problems


def trend_metrics(document):
    """The ``{name: value}`` trend metrics for one artifact."""
    schema = document.get("schema")
    spec = TREND_METRICS.get(schema, {})
    if schema == "repro-bench/1":
        rows = document.get("rows") or []
        completed = [row for row in rows if row.get("note") is None]
        return {
            "total_cpu_seconds": sum(row.get("cpu") or 0 for row in completed),
            "completed_rows": len(completed),
        }
    metrics = {}
    for name in spec:
        value = document.get(name)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metrics[name] = value
    return metrics


def compare_documents(baseline, candidate, tolerance=0.25):
    """``(report_lines, regressions)`` for a baseline/candidate pair.

    Both documents must declare the same schema.  A metric regresses
    when it moves in the bad direction by more than
    ``tolerance * max(|baseline|, ABS_FLOOR)``; movement in the good
    direction (or missing metrics) never flags.
    """
    schema = baseline.get("schema")
    if candidate.get("schema") != schema:
        return [], [
            f"schema mismatch: baseline {schema!r} vs "
            f"candidate {candidate.get('schema')!r}"
        ]
    directions = TREND_METRICS.get(schema)
    if directions is None:
        return [], [f"unknown schema {schema!r}"]
    base = trend_metrics(baseline)
    cand = trend_metrics(candidate)
    lines = []
    regressions = []
    for name, direction in directions.items():
        if name not in base or name not in cand:
            continue
        old, new = base[name], cand[name]
        slack = tolerance * max(abs(old), ABS_FLOOR)
        if direction == "higher":
            bad = new < old - slack
        else:
            bad = new > old + slack
        arrow = "<-" if direction == "higher" else "->"
        status = "REGRESSION" if bad else "ok"
        lines.append(
            f"  {name:24} {old:>12.4f} {arrow} {new:>12.4f}  "
            f"(slack {slack:.4f})  {status}"
        )
        if bad:
            regressions.append(
                f"{name}: {old} -> {new} (want "
                f"{'>=' if direction == 'higher' else '<='} "
                f"{old - slack if direction == 'higher' else old + slack:.4f})"
            )
    return lines, regressions


def _read(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", nargs="+", metavar="BENCH.json", default=None,
        help="validate artifacts against their schema floors/ceilings",
    )
    parser.add_argument(
        "--baseline", metavar="OLD.json", default=None,
        help="committed artifact to compare the candidate against",
    )
    parser.add_argument(
        "candidate", nargs="?", default=None,
        help="freshly produced artifact (with --baseline)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25, metavar="R",
        help="relative slack before a delta flags (default 0.25)",
    )
    args = parser.parse_args(argv)

    if args.check is None and args.baseline is None:
        parser.error("need --check FILES... or --baseline OLD.json NEW.json")
    if (args.baseline is None) != (args.candidate is None):
        parser.error("--baseline and the candidate path go together")

    failed = False
    if args.check:
        for path in args.check:
            try:
                document = _read(path)
            except (OSError, ValueError) as exc:
                print(f"{path}: INVALID\n  - {exc}", file=sys.stderr)
                failed = True
                continue
            problems = check_artifact(document)
            if problems:
                failed = True
                print(f"{path}: INVALID", file=sys.stderr)
                for problem in problems:
                    print(f"  - {problem}", file=sys.stderr)
            else:
                print(f"{path}: ok")

    if args.baseline:
        try:
            baseline = _read(args.baseline)
            candidate = _read(args.candidate)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        lines, regressions = compare_documents(
            baseline, candidate, tolerance=args.tolerance
        )
        print(f"trend {args.baseline} -> {args.candidate}:")
        for line in lines:
            print(line)
        if regressions:
            failed = True
            for regression in regressions:
                print(f"error: {regression}", file=sys.stderr)

    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
