"""Assert a bench run's ``quotients`` counter dropped against a baseline.

Usage::

    python tools/check_quotient_drop.py BASELINE.json CURRENT.json [--min-ratio R]

Both files are ``BENCH_<tag>.json`` artifacts whose ``trace_counters``
section carries the run-wide counter totals.  The check passes when

    baseline_quotients >= min_ratio * current_quotients

i.e. the current run computed at most ``1/min_ratio`` of the baseline's
from-scratch quotient merges (cache hits and incremental refinements do
not count as ``quotients`` -- see docs/observability.md).  The default
ratio of 3 matches the regression bar CI holds the projection cache to.

Exit 0 on pass, 1 on fail or malformed input (details on stderr).
Dependency-free, like the other CI checkers.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_quotients(path):
    """The ``trace_counters.quotients`` total of one artifact."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    trace_counters = document.get("trace_counters")
    if not isinstance(trace_counters, dict):
        raise ValueError(f"{path}: no trace_counters section")
    value = trace_counters.get("quotients")
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ValueError(
            f"{path}: trace_counters.quotients missing or not a "
            f"non-negative integer (got {value!r})"
        )
    return value


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="pre-change BENCH_<tag>.json")
    parser.add_argument("current", help="freshly produced BENCH_<tag>.json")
    parser.add_argument(
        "--min-ratio", type=float, default=3.0, metavar="R",
        help="required baseline/current ratio (default 3)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_quotients(args.baseline)
        current = load_quotients(args.current)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if current == 0:
        ratio = float("inf")
    else:
        ratio = baseline / current
    verdict = ratio >= args.min_ratio
    print(
        f"quotients: baseline={baseline} current={current} "
        f"ratio={ratio:.1f}x (required >= {args.min_ratio:.1f}x): "
        f"{'ok' if verdict else 'FAIL'}"
    )
    if not verdict:
        print(
            "error: the projection cache is computing too many "
            "from-scratch quotients; did a call site stop sharing the "
            "run's ProjectionCache?",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
