"""Attribute a span journal: tree, per-module costs, critical path.

Usage::

    python tools/analyze_trace.py TRACE.jsonl[.gz]
        [--tree] [--modules] [--critical-path] [--dispatch]
        [--min-seconds S] [--verify]
        [--flamegraph OUT.folded] [--chrome OUT.json]

With no section flag all four sections print.  The journal may be a
multi-segment concatenation (a ``--jobs N`` run: one self-contained
segment per worker); spans are folded per segment and attributed
together, and ``--dispatch`` sizes the parallel dispatch (parent
``module_parallel`` wall vs the longest worker chain vs merge
overhead).

``--verify`` checks the self-time arithmetic -- every span's self time
plus its children's durations must equal its own duration within float
tolerance -- and exits 1 when it does not hold.  ``--flamegraph``
writes Brendan-Gregg folded-stack lines (feed to ``flamegraph.pl`` or
speedscope); ``--chrome`` writes a Chrome trace-event JSON that loads
in Perfetto / ``chrome://tracing``.  Both outputs are validated before
the tool exits 0.

Run with the repository's ``src`` on ``PYTHONPATH`` (or the package
installed).
"""

from __future__ import annotations

import argparse
import os
import sys

if __package__ in (None, ""):  # script invocation: put src/ on the path
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if os.path.isdir(_src) and _src not in sys.path:
        sys.path.insert(0, _src)

from repro.obs import (  # noqa: E402  (path bootstrap above)
    build_forest,
    chrome_trace,
    critical_path,
    dispatch_summary,
    folded_stacks,
    format_attribution,
    format_critical_path,
    format_tree,
    module_attribution,
    read_events_tolerant,
    validate_chrome_trace,
    validate_folded,
    verify_forest,
    write_chrome_trace,
)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("journal", help="JSONL trace written by --trace")
    parser.add_argument(
        "--tree", action="store_true",
        help="print the span tree (self vs child time)",
    )
    parser.add_argument(
        "--modules", action="store_true",
        help="print per-output-module attribution",
    )
    parser.add_argument(
        "--critical-path", action="store_true",
        help="print the heaviest root-to-leaf span chain",
    )
    parser.add_argument(
        "--dispatch", action="store_true",
        help="print the parallel-dispatch summary (jobs > 1 traces)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=0.0, metavar="S",
        help="hide tree rows totalling less than S seconds",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="exit 1 unless self + children == duration for every span",
    )
    parser.add_argument(
        "--flamegraph", metavar="OUT.folded", default=None,
        help="write folded-stack lines (flamegraph.pl / speedscope)",
    )
    parser.add_argument(
        "--chrome", metavar="OUT.json", default=None,
        help="write Chrome trace-event JSON (Perfetto-loadable)",
    )
    args = parser.parse_args(argv)

    try:
        events, skipped = read_events_tolerant(args.journal)
    except OSError as exc:
        print(f"error: cannot read {args.journal}: {exc}", file=sys.stderr)
        return 1
    if skipped:
        print(
            f"error: {args.journal}: skipped {len(skipped)} bad journal "
            f"line(s); first: {skipped[0]}",
            file=sys.stderr,
        )
        return 1
    roots = build_forest(events)
    if not roots:
        print(f"error: {args.journal}: no completed spans", file=sys.stderr)
        return 1

    if args.verify:
        problems = verify_forest(roots)
        if problems:
            print(
                f"error: self-time arithmetic broken in {args.journal}:",
                file=sys.stderr,
            )
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1

    sections = []
    everything = not (
        args.tree or args.modules or args.critical_path or args.dispatch
    )
    if args.tree or everything:
        sections.append(format_tree(roots, min_seconds=args.min_seconds))
    if args.modules or everything:
        attribution = module_attribution(roots)
        if attribution:
            sections.append(format_attribution(attribution, title="output"))
        elif args.modules:
            sections.append("no module spans recorded")
    if args.critical_path or everything:
        sections.append(format_critical_path(critical_path(roots)))
    if args.dispatch or everything:
        sections.append(_format_dispatch(dispatch_summary(roots)))
    print("\n\n".join(sections))

    if args.flamegraph:
        lines = folded_stacks(roots)
        problems = validate_folded(lines)
        if problems:
            print(
                f"error: folded output invalid: {problems[0]}",
                file=sys.stderr,
            )
            return 1
        with open(args.flamegraph, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"wrote {args.flamegraph} ({len(lines)} stacks)")
    if args.chrome:
        document = chrome_trace(roots, events)
        problems = validate_chrome_trace(document)
        if problems:
            print(
                f"error: chrome trace invalid: {problems[0]}",
                file=sys.stderr,
            )
            return 1
        write_chrome_trace(document, args.chrome)
        print(
            f"wrote {args.chrome} "
            f"({len(document['traceEvents'])} events)"
        )
    return 0


def _format_dispatch(summary):
    """The dispatch dict as a small fixed-width table."""
    lines = ["parallel dispatch:"]
    if summary["parallel_seconds"] is None:
        lines.append("  serial trace (no module_parallel span)")
        if summary["worker_segments"]:
            lines.append(
                f"  worker segments    {summary['worker_segments']}"
            )
    else:
        lines.append(
            f"  dispatch wall      {summary['parallel_seconds']:.6f}s"
        )
        lines.append(
            f"  worker segments    {summary['worker_segments']}"
        )
        busy = ", ".join(
            f"{seconds:.6f}s" for seconds in summary["worker_busy_seconds"]
        )
        lines.append(f"  worker busy        [{busy}]")
        lines.append(
            f"  longest worker     {summary['longest_worker_seconds']:.6f}s"
        )
        lines.append(
            f"  merge overhead     {summary['merge_seconds']:.6f}s"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    raise SystemExit(main())
