"""The Petri net structure ``<P, T, F, M0>``.

All arcs have weight one, which is the class of nets signal transition
graphs are built from (Section 2 of the paper).  Multiple parallel arcs
between the same pair of nodes are rejected.
"""

from __future__ import annotations

from repro.petrinet.errors import NetStructureError
from repro.petrinet.marking import Marking


class PetriNet:
    """A weight-1 Petri net with an initial marking.

    Parameters
    ----------
    places:
        Iterable of place names.
    transitions:
        Iterable of transition names.  Names must be disjoint from places.
    arcs:
        Iterable of ``(source, target)`` pairs; each pair must connect a
        place to a transition or a transition to a place.
    initial_marking:
        Anything accepted by :class:`~repro.petrinet.marking.Marking`; every
        marked place must be declared.
    """

    def __init__(self, places, transitions, arcs, initial_marking=()):
        self._places = frozenset(places)
        self._transitions = frozenset(transitions)
        overlap = self._places & self._transitions
        if overlap:
            raise NetStructureError(
                f"names used as both place and transition: {sorted(overlap)}"
            )

        self._preset = {t: set() for t in self._transitions}
        self._postset = {t: set() for t in self._transitions}
        self._place_preset = {p: set() for p in self._places}
        self._place_postset = {p: set() for p in self._places}
        seen = set()
        for source, target in arcs:
            if (source, target) in seen:
                raise NetStructureError(
                    f"duplicate arc {source!r} -> {target!r}"
                )
            seen.add((source, target))
            if source in self._places and target in self._transitions:
                self._preset[target].add(source)
                self._place_postset[source].add(target)
            elif source in self._transitions and target in self._places:
                self._postset[source].add(target)
                self._place_preset[target].add(source)
            else:
                raise NetStructureError(
                    f"arc {source!r} -> {target!r} does not connect a "
                    "declared place with a declared transition"
                )

        marking = Marking(initial_marking)
        unknown = marking.places() - self._places
        if unknown:
            raise NetStructureError(
                f"initial marking uses undeclared places: {sorted(unknown)}"
            )
        self._initial = marking

    # -- structure ---------------------------------------------------------

    @property
    def places(self):
        """Frozenset of place names."""
        return self._places

    @property
    def transitions(self):
        """Frozenset of transition names."""
        return self._transitions

    @property
    def initial_marking(self):
        """The initial :class:`Marking` ``M0``."""
        return self._initial

    def arcs(self):
        """All arcs as sorted ``(source, target)`` pairs."""
        result = []
        for t in self._transitions:
            result.extend((p, t) for p in self._preset[t])
            result.extend((t, p) for p in self._postset[t])
        return sorted(result)

    def preset(self, transition):
        """Fanin places of a transition (its ``•t``)."""
        self._require_transition(transition)
        return frozenset(self._preset[transition])

    def postset(self, transition):
        """Fanout places of a transition (its ``t•``)."""
        self._require_transition(transition)
        return frozenset(self._postset[transition])

    def place_preset(self, place):
        """Fanin transitions of a place (its ``•p``)."""
        self._require_place(place)
        return frozenset(self._place_preset[place])

    def place_postset(self, place):
        """Fanout transitions of a place (its ``p•``)."""
        self._require_place(place)
        return frozenset(self._place_postset[place])

    def _require_transition(self, transition):
        if transition not in self._transitions:
            raise NetStructureError(f"unknown transition {transition!r}")

    def _require_place(self, place):
        if place not in self._places:
            raise NetStructureError(f"unknown place {place!r}")

    # -- token game --------------------------------------------------------

    def enabled(self, marking, transition=None):
        """Enabled transitions in ``marking``.

        With a ``transition`` argument, returns a bool for that transition;
        otherwise returns the sorted list of all enabled transitions.
        """
        if transition is not None:
            self._require_transition(transition)
            return marking.covers(self._preset[transition])
        return sorted(
            t for t in self._transitions if marking.covers(self._preset[t])
        )

    def fire(self, marking, transition):
        """Fire ``transition`` from ``marking`` and return the new marking.

        Raises
        ------
        ValueError
            If the transition is not enabled.
        """
        self._require_transition(transition)
        if not marking.covers(self._preset[transition]):
            raise ValueError(
                f"transition {transition!r} is not enabled in {marking!r}"
            )
        return marking.remove(self._preset[transition]).add(
            self._postset[transition]
        )

    def fire_sequence(self, sequence, marking=None):
        """Fire a sequence of transitions, returning the final marking.

        Starts from ``marking`` (default: the initial marking).
        """
        current = self._initial if marking is None else marking
        for transition in sequence:
            current = self.fire(current, transition)
        return current

    # -- derived nets --------------------------------------------------------

    def with_marking(self, marking):
        """A copy of this net whose initial marking is ``marking``."""
        return PetriNet(
            self._places, self._transitions, self.arcs(), marking
        )

    def renamed_transitions(self, mapping):
        """A copy with transitions renamed through ``mapping``.

        Transitions absent from the mapping keep their name.  The mapping
        must not merge two transitions into one.
        """
        new_names = {t: mapping.get(t, t) for t in self._transitions}
        if len(set(new_names.values())) != len(new_names):
            raise NetStructureError("transition renaming is not injective")
        arcs = []
        for source, target in self.arcs():
            arcs.append(
                (new_names.get(source, source), new_names.get(target, target))
            )
        return PetriNet(
            self._places, set(new_names.values()), arcs, self._initial
        )

    def to_networkx(self):
        """The net as a bipartite :class:`networkx.DiGraph`.

        Nodes carry a ``kind`` attribute (``"place"``/``"transition"``)
        and places their initial ``tokens``; handy for drawing and for
        structural analysis with the networkx toolbox.
        """
        import networkx as nx

        graph = nx.DiGraph()
        for place in self._places:
            graph.add_node(
                place, kind="place", tokens=self._initial[place]
            )
        for transition in self._transitions:
            graph.add_node(transition, kind="transition")
        graph.add_edges_from(self.arcs())
        return graph

    def __repr__(self):
        return (
            f"PetriNet(|P|={len(self._places)}, |T|={len(self._transitions)}, "
            f"|F|={len(self.arcs())})"
        )
