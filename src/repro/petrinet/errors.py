"""Exception hierarchy for the Petri net kernel."""

from repro.errors import ReproError


class PetriNetError(ReproError):
    """Base class for every error raised by :mod:`repro.petrinet`."""

    kind = "petri-net"


class NetStructureError(PetriNetError):
    """The net definition itself is malformed.

    Raised for arcs that reference undeclared nodes, duplicate node names,
    place/transition name collisions, and similar structural problems.
    """

    kind = "net-structure"


class UnboundedNetError(PetriNetError):
    """Reachability exploration exceeded the configured bound.

    Signal transition graphs must be bounded (in practice 1-safe) for a
    finite state graph to exist; exploration aborts with this error when a
    place's token count exceeds the allowed bound or when the number of
    reachable markings exceeds the exploration limit.
    """

    kind = "unbounded-net"

    def __init__(self, message, markings_seen=None):
        super().__init__(message, markings_seen=markings_seen)
        #: Number of markings generated before exploration aborted, when
        #: known.  ``None`` if the error was raised before counting started.
        self.markings_seen = markings_seen
