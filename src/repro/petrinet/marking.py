"""Immutable Petri net markings.

A marking assigns a non-negative token count to every place of a net.  The
paper represents a marking as "a collection of places corresponding to the
local conditions which hold at a particular moment"; we generalise slightly
to multisets so that boundedness violations can be *detected* rather than
silently misrepresented.

Markings are hashable value objects: they are used as dictionary keys by the
reachability construction and as state identities in state graphs.
"""

from __future__ import annotations


class Marking:
    """An immutable multiset of marked places.

    Only places with at least one token are stored.  Token counts are
    accessed with indexing (``marking["p1"]``), which returns 0 for places
    that carry no token.

    Parameters
    ----------
    tokens:
        Either an iterable of place names (each occurrence adds one token)
        or a mapping from place name to token count.  Counts must be
        non-negative; zero counts are dropped.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, tokens=()):
        counts = {}
        if hasattr(tokens, "items"):
            source = tokens.items()
        else:
            source = ((place, 1) for place in tokens)
        for place, count in source:
            if count < 0:
                raise ValueError(
                    f"negative token count {count} for place {place!r}"
                )
            if count:
                counts[place] = counts.get(place, 0) + count
        self._items = tuple(sorted(counts.items()))
        self._hash = hash(self._items)

    # -- mapping-style access -------------------------------------------

    def __getitem__(self, place):
        for name, count in self._items:
            if name == place:
                return count
        return 0

    def __contains__(self, place):
        return self[place] > 0

    def __iter__(self):
        """Iterate over the names of marked places."""
        return (name for name, _count in self._items)

    def __len__(self):
        """Number of *distinct* marked places."""
        return len(self._items)

    def items(self):
        """``(place, count)`` pairs in sorted place order."""
        return self._items

    def places(self):
        """Frozenset of marked place names."""
        return frozenset(name for name, _count in self._items)

    def total_tokens(self):
        """Total number of tokens across all places."""
        return sum(count for _name, count in self._items)

    # -- token game ------------------------------------------------------

    def add(self, places):
        """Return a new marking with one extra token in each given place."""
        counts = dict(self._items)
        for place in places:
            counts[place] = counts.get(place, 0) + 1
        return Marking(counts)

    def remove(self, places):
        """Return a new marking with one token removed from each place.

        Raises
        ------
        ValueError
            If some place does not carry a token to remove.
        """
        counts = dict(self._items)
        for place in places:
            current = counts.get(place, 0)
            if current <= 0:
                raise ValueError(f"no token to remove from place {place!r}")
            if current == 1:
                del counts[place]
            else:
                counts[place] = current - 1
        return Marking(counts)

    def covers(self, places):
        """True if every given place carries at least one token.

        ``places`` may contain duplicates, in which case the marking must
        carry at least that many tokens in the repeated place.
        """
        needed = {}
        for place in places:
            needed[place] = needed.get(place, 0) + 1
        return all(self[place] >= count for place, count in needed.items())

    def is_safe(self):
        """True if no place carries more than one token."""
        return all(count <= 1 for _name, count in self._items)

    # -- value-object protocol --------------------------------------------

    def __eq__(self, other):
        if isinstance(other, Marking):
            return self._items == other._items
        return NotImplemented

    def __hash__(self):
        return self._hash

    def __lt__(self, other):
        if isinstance(other, Marking):
            return self._items < other._items
        return NotImplemented

    def __repr__(self):
        inner = ", ".join(
            name if count == 1 else f"{name}*{count}"
            for name, count in self._items
        )
        return f"Marking({{{inner}}})"
