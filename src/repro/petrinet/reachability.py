"""Reachability graph construction.

The state graph of an STG is "derived by exhaustively generating all
possible markings" (paper, Section 2).  This module provides that
exhaustive generation for any bounded Petri net, with explicit bounds so
that unbounded specifications fail loudly instead of looping forever.
"""

from __future__ import annotations

from collections import deque

from repro import obs
from repro.petrinet.errors import UnboundedNetError
from repro.runtime.faults import should_fire as _fault_fires

#: Default cap on the number of reachable markings explored before the net
#: is declared (practically) unbounded.  The largest graph in the paper has
#: a few hundred states; the cap is generous.
DEFAULT_MARKING_LIMIT = 200_000

#: Default per-place token bound.  STGs are expected to be 1-safe, but the
#: checker tolerates any finite bound so the safety *check* itself can run.
DEFAULT_TOKEN_BOUND = 8


class ReachabilityGraph:
    """The reachable markings of a net and the firings between them.

    Attributes
    ----------
    initial:
        The initial marking.
    markings:
        List of reachable markings in BFS discovery order.
    edges:
        List of ``(marking, transition, marking')`` triples.
    """

    def __init__(self, initial, markings, edges):
        self.initial = initial
        self.markings = markings
        self.edges = edges
        self._successors = {m: [] for m in markings}
        self._predecessors = {m: [] for m in markings}
        for source, transition, target in edges:
            self._successors[source].append((transition, target))
            self._predecessors[target].append((transition, source))

    def __len__(self):
        return len(self.markings)

    def __contains__(self, marking):
        return marking in self._successors

    def successors(self, marking):
        """``(transition, marking')`` pairs firable from ``marking``."""
        return list(self._successors[marking])

    def predecessors(self, marking):
        """``(transition, marking)`` pairs leading into ``marking``."""
        return list(self._predecessors[marking])

    def deadlocks(self):
        """Markings with no enabled transition."""
        return [m for m in self.markings if not self._successors[m]]

    def fired_transitions(self):
        """The set of transitions that fire somewhere in the graph."""
        return {transition for _s, transition, _t in self.edges}


#: Markings processed between cooperative budget checkpoints.
_CHECKPOINT_STRIDE = 256


def reachability_graph(
    net,
    marking_limit=DEFAULT_MARKING_LIMIT,
    token_bound=DEFAULT_TOKEN_BOUND,
    budget=None,
):
    """Breadth-first exploration of the reachable markings of ``net``.

    Parameters
    ----------
    net:
        The :class:`~repro.petrinet.net.PetriNet` to explore.
    marking_limit:
        Abort with :class:`UnboundedNetError` once more than this many
        distinct markings have been discovered.
    token_bound:
        Abort with :class:`UnboundedNetError` as soon as any place carries
        more than this many tokens.
    budget:
        Optional :class:`~repro.runtime.budget.Budget`; its wall-clock
        deadline is checked every :data:`_CHECKPOINT_STRIDE` markings and
        its state cap bounds the exploration alongside ``marking_limit``
        (raising :class:`~repro.runtime.budget.BudgetExhaustedError`
        rather than declaring the net unbounded).

    Returns
    -------
    ReachabilityGraph
    """
    if _fault_fires("reachability-overflow"):
        raise UnboundedNetError(
            "injected fault: reachability overflow", markings_seen=0
        )
    initial = net.initial_marking
    _check_token_bound(initial, token_bound)
    seen = {initial}
    order = [initial]
    edges = []
    queue = deque([initial])
    processed = 0
    while queue:
        marking = queue.popleft()
        processed += 1
        if budget is not None and processed % _CHECKPOINT_STRIDE == 0:
            budget.checkpoint("reachability")
        for transition in net.enabled(marking):
            successor = net.fire(marking, transition)
            _check_token_bound(successor, token_bound)
            if successor not in seen:
                if budget is not None:
                    budget.check_states(len(seen) + 1, point="reachability")
                if len(seen) >= marking_limit:
                    raise UnboundedNetError(
                        f"more than {marking_limit} reachable markings; "
                        "net is unbounded or the limit is too small",
                        markings_seen=len(seen),
                    )
                seen.add(successor)
                order.append(successor)
                queue.append(successor)
            edges.append((marking, transition, successor))
    # Counters land on the enclosing span (the builder's "reachability"
    # phase); recorded once at the end, never inside the BFS loop.
    obs.add("states_explored", len(order))
    obs.add("edges_explored", len(edges))
    return ReachabilityGraph(initial, order, edges)


def _check_token_bound(marking, token_bound):
    for place, count in marking.items():
        if count > token_bound:
            raise UnboundedNetError(
                f"place {place!r} holds {count} tokens, exceeding the "
                f"bound {token_bound}; net is not {token_bound}-bounded"
            )
