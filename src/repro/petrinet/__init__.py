"""Petri net kernel.

A Petri net is the quadruple ``<P, T, F, M0>`` of the paper's Section 2: a
finite set of places, a finite set of transitions, a flow relation between
them, and an initial marking.  This package provides the net structure
itself (:class:`PetriNet`), immutable markings (:class:`Marking`), the
reachability graph construction used to derive state graphs
(:mod:`repro.petrinet.reachability`), structural/behavioural property
checks (:mod:`repro.petrinet.properties`) and a small fluent builder
(:mod:`repro.petrinet.builder`).
"""

from repro.petrinet.errors import (
    NetStructureError,
    PetriNetError,
    UnboundedNetError,
)
from repro.petrinet.marking import Marking
from repro.petrinet.net import PetriNet
from repro.petrinet.builder import NetBuilder
from repro.petrinet.reachability import ReachabilityGraph, reachability_graph
from repro.petrinet.properties import (
    is_free_choice,
    is_live,
    is_marked_graph,
    is_safe,
    is_state_machine,
)

__all__ = [
    "Marking",
    "NetBuilder",
    "NetStructureError",
    "PetriNet",
    "PetriNetError",
    "ReachabilityGraph",
    "UnboundedNetError",
    "is_free_choice",
    "is_live",
    "is_marked_graph",
    "is_safe",
    "is_state_machine",
    "reachability_graph",
]
