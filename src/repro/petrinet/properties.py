"""Structural and behavioural Petri net properties.

These are the net classes the synthesis literature keys on: *marked graphs*
(pure concurrency, the class handled by Lin/Vanbekbergen/Yu's early
methods), *state machines* (pure choice), *free-choice* nets (the class
handled by Lavagno & Moon), plus safety and liveness which every STG must
satisfy for a speed-independent circuit to exist.
"""

from __future__ import annotations

from repro.petrinet.reachability import reachability_graph


def is_marked_graph(net):
    """True if every place has at most one fanin and one fanout transition.

    Marked graphs express concurrency but no choice.
    """
    return all(
        len(net.place_preset(p)) <= 1 and len(net.place_postset(p)) <= 1
        for p in net.places
    )


def is_state_machine(net):
    """True if every transition has exactly one fanin and one fanout place.

    State machines express choice but no concurrency.
    """
    return all(
        len(net.preset(t)) == 1 and len(net.postset(t)) == 1
        for t in net.transitions
    )


def is_free_choice(net):
    """True if the net is free-choice.

    A net is free-choice when for every place ``p`` with more than one
    fanout transition, each of those transitions has ``{p}`` as its entire
    preset: choice is never influenced by the rest of the net.
    """
    for place in net.places:
        fanout = net.place_postset(place)
        if len(fanout) > 1:
            for transition in fanout:
                if net.preset(transition) != frozenset({place}):
                    return False
    return True


def is_safe(net, graph=None, **explore_kwargs):
    """True if no reachable marking puts more than one token in a place.

    Accepts a precomputed reachability ``graph`` to avoid re-exploration.
    """
    if graph is None:
        graph = reachability_graph(net, **explore_kwargs)
    return all(m.is_safe() for m in graph.markings)


def is_live(net, graph=None, **explore_kwargs):
    """True if from every reachable marking, every transition can still fire.

    This is liveness in the classical (L4) sense, decided on the finite
    reachability graph: for each reachable marking ``M`` and each transition
    ``t``, some marking reachable from ``M`` enables ``t``.  Bounded STGs
    describing non-terminating handshake circuits are expected to be live.
    """
    if graph is None:
        graph = reachability_graph(net, **explore_kwargs)
    if not graph.markings:
        return not net.transitions

    # Backward closure per transition: the set of markings from which the
    # transition is still fireable.
    index = {m: i for i, m in enumerate(graph.markings)}
    reverse = [[] for _ in graph.markings]
    for source, _t, target in graph.edges:
        reverse[index[target]].append(index[source])

    for transition in net.transitions:
        can_reach = [False] * len(graph.markings)
        stack = []
        for source, fired, _target in graph.edges:
            if fired == transition:
                i = index[source]
                if not can_reach[i]:
                    can_reach[i] = True
                    stack.append(i)
        if not stack:
            return False  # transition is dead from the start
        while stack:
            node = stack.pop()
            for pred in reverse[node]:
                if not can_reach[pred]:
                    can_reach[pred] = True
                    stack.append(pred)
        if not all(can_reach):
            return False
    return True
