"""A small fluent builder for Petri nets.

Hand-writing nets as raw place/transition/arc triples is noisy; the builder
lets tests and benchmark generators say what they mean:

>>> net = (
...     NetBuilder()
...     .transition("a+").transition("a-")
...     .arc("a+", "a-").arc("a-", "a+")
...     .mark("a-", "a+")
...     .build()
... )

Arcs between two transitions create an implicit place (the STG shorthand of
Section 2: "every place with a single fanin and fanout transition is
represented by an arc between these transitions").  ``mark`` on a
transition pair marks that implicit place.
"""

from __future__ import annotations

from repro.petrinet.errors import NetStructureError
from repro.petrinet.net import PetriNet


def implicit_place_name(source, target):
    """Canonical name for the implicit place on arc ``source -> target``."""
    return f"<{source},{target}>"


class NetBuilder:
    """Accumulates places, transitions, arcs, and the initial marking."""

    def __init__(self):
        self._places = set()
        self._transitions = set()
        self._arcs = []
        self._marking = {}

    def place(self, name):
        """Declare an explicit place."""
        self._places.add(name)
        return self

    def transition(self, name):
        """Declare a transition."""
        self._transitions.add(name)
        return self

    def arc(self, source, target):
        """Add an arc; a transition->transition arc creates an implicit place.

        Nodes mentioned for the first time are declared automatically:
        a node already declared keeps its kind, otherwise it is assumed to
        be a transition (the common case when writing STGs).
        """
        source_is_place = source in self._places
        target_is_place = target in self._places
        if not source_is_place and source not in self._transitions:
            self._transitions.add(source)
        if not target_is_place and target not in self._transitions:
            self._transitions.add(target)

        if source in self._transitions and target in self._transitions:
            middle = implicit_place_name(source, target)
            if middle in self._places:
                raise NetStructureError(
                    f"duplicate implicit place for arc {source!r}->{target!r}"
                )
            self._places.add(middle)
            self._arcs.append((source, middle))
            self._arcs.append((middle, target))
        else:
            self._arcs.append((source, target))
        return self

    def mark(self, *spec, tokens=1):
        """Put tokens on a place.

        ``mark("p")`` marks an explicit place; ``mark("a+", "b+")`` marks
        the implicit place created by ``arc("a+", "b+")``.
        """
        if len(spec) == 1:
            (place,) = spec
        elif len(spec) == 2:
            place = implicit_place_name(*spec)
        else:
            raise TypeError("mark() takes a place or a transition pair")
        if place not in self._places:
            raise NetStructureError(f"cannot mark undeclared place {place!r}")
        self._marking[place] = self._marking.get(place, 0) + tokens
        return self

    def build(self):
        """Construct the immutable :class:`PetriNet`."""
        return PetriNet(
            self._places, self._transitions, self._arcs, self._marking
        )
