"""Assumption-based incremental CDCL solving for formula *sequences*.

The grow-``m`` loop (:mod:`repro.csc.solve`) decides a sequence of
closely related SAT-CSC formulas per module: the ``m``-signal attempt,
its two serialisation variants, then the ``m+1``-signal re-encoding when
``m`` proved infeasible.  The one-shot engines rebuild the CNF and start
a cold search for every member of that sequence, throwing away all
learned clauses -- including the refutation that just proved ``m``
infeasible, which is exactly the work the ``m+1`` attempt repeats.

:class:`IncrementalSolver` is the standard modern remedy (the MiniSat
``solve(assumptions)`` interface): one persistent solver accepts clauses
monotonically (:meth:`add_clause` / :meth:`add_clauses`) and decides the
formula *under assumptions* -- temporary unit hypotheses that activate
or deactivate guarded clause families without touching the clause
database.  Between calls everything expensive survives:

* **learned clauses**, tagged with their LBD (literal block distance)
  and periodically reduced -- low-LBD "glue" clauses and clauses locked
  as propagation reasons are never dropped;
* **variable activities and saved phases**, so the search resumes where
  the previous attempt's heuristic state left off;
* the **watch lists** themselves, with blocking literals so a clause
  already satisfied by its cached blocker is skipped without touching
  the clause.

Branching is VSIDS over an indexed max-heap (:class:`_VarHeap`) --
``O(log n)`` per decision instead of the ``O(num_vars)`` scan of
:meth:`repro.sat.cdcl._Cdcl._pick_branch` -- with ties broken towards
the lowest variable index, so two runs over the same clause stream make
identical decisions and the serial/parallel bit-identity contract of
``docs/parallelism.md`` survives.  Restarts follow the Luby sequence.

On UNSAT under assumptions the solver extracts the **failed-assumption
core**: the subset of assumptions that the refutation actually used
(``result.failed_assumptions``).  An empty core means the formula is
unsatisfiable regardless of assumptions; a core that omits a guard
literal proves every variant not assuming that guard unsatisfiable too,
which is how the solve loop skips the second serialisation variant for
free.

The ``Limits`` budget applies per :meth:`solve` call --
``max_backtracks`` counts that call's conflicts, keeping the paper's
"SAT backtrack limit" abort semantics meaningful -- and the wall-clock
budget is checked on every conflict *and* on a decision stride, so a
long conflict-free propagation stretch cannot blow through a deadline.
"""

from __future__ import annotations

from repro.obs import Counters, Stopwatch
from repro.sat.solver import LIMIT, SAT, UNSAT, Limits, SolveResult

_ACTIVITY_DECAY = 0.95
_RESCALE_LIMIT = 1e100
#: Luby restart base: restart after ``luby(i) * unit`` conflicts.
_LUBY_UNIT = 100
#: Wall-clock deadline check cadence, in decisions.
_TIME_CHECK_STRIDE = 64
#: Learned clauses with LBD at or below this survive every reduction.
_DB_KEEP_LBD = 2


def luby(i):
    """The ``i``-th (1-based) element of the Luby restart sequence.

    1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
    """
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class _Clause:
    """One clause: literal list plus learned-database metadata."""

    __slots__ = ("lits", "learned", "lbd", "seq", "deleted")

    def __init__(self, lits, learned=False, lbd=0, seq=0):
        self.lits = lits
        self.learned = learned
        self.lbd = lbd
        self.seq = seq
        self.deleted = False

    def __repr__(self):
        kind = "learned" if self.learned else "original"
        return f"_Clause({self.lits}, {kind}, lbd={self.lbd})"


class _VarHeap:
    """Indexed max-heap over variables, keyed by VSIDS activity.

    Priority order is (higher activity, then *lower* variable index):
    the index tie-break makes every decision deterministic, so equal
    activity profiles -- e.g. the all-zero start -- branch identically
    on every run and in every worker process.
    """

    __slots__ = ("activity", "heap", "pos")

    def __init__(self, activity):
        self.activity = activity  # shared 1-based list, owned by solver
        self.heap = []
        self.pos = [-1]  # 1-based: pos[var] = heap index, -1 = absent

    def _before(self, u, v):
        """True when ``u`` has priority over ``v``."""
        au, av = self.activity[u], self.activity[v]
        return au > av or (au == av and u < v)

    def _sift_up(self, i):
        heap, pos = self.heap, self.pos
        var = heap[i]
        while i > 0:
            parent = (i - 1) >> 1
            if not self._before(var, heap[parent]):
                break
            heap[i] = heap[parent]
            pos[heap[i]] = i
            i = parent
        heap[i] = var
        pos[var] = i

    def _sift_down(self, i):
        heap, pos = self.heap, self.pos
        size = len(heap)
        var = heap[i]
        while True:
            left = 2 * i + 1
            if left >= size:
                break
            best = left
            right = left + 1
            if right < size and self._before(heap[right], heap[left]):
                best = right
            if not self._before(heap[best], var):
                break
            heap[i] = heap[best]
            pos[heap[i]] = i
            i = best
        heap[i] = var
        pos[var] = i

    def grow(self):
        """Register one more variable (appended to the pos table)."""
        self.pos.append(-1)

    def push(self, var):
        """Insert ``var`` unless already present."""
        if self.pos[var] >= 0:
            return
        self.heap.append(var)
        self._sift_up(len(self.heap) - 1)

    def pop(self):
        """Remove and return the highest-priority variable."""
        heap, pos = self.heap, self.pos
        top = heap[0]
        pos[top] = -1
        last = heap.pop()
        if heap:
            heap[0] = last
            pos[last] = 0
            self._sift_down(0)
        return top

    def update(self, var):
        """Restore heap order after ``var``'s activity increased."""
        if self.pos[var] >= 0:
            self._sift_up(self.pos[var])

    def __len__(self):
        return len(self.heap)


class IncrementalSolver:
    """A persistent assumption-based CDCL solver.

    Parameters
    ----------
    limits:
        Default per-:meth:`solve` budget (overridable per call).
    reduce_base / reduce_inc:
        Learned-database reduction schedule: a reduction pass runs when
        the database exceeds ``reduce_base + reduce_inc * reductions``
        clauses.  The defaults never trigger on the paper's modular
        instances; tests inject tiny values to exercise the pass.

    Usage::

        solver = IncrementalSolver()
        x, y = solver.new_var(), solver.new_var()
        solver.add_clauses([[x, y], [-x, y]])
        result = solver.solve(assumptions=[-y])
        result.status                 # "unsat"
        result.failed_assumptions     # (-y,)
        solver.solve().status         # "sat" -- clauses persist
    """

    def __init__(self, limits=None, reduce_base=2000, reduce_inc=1000):
        self.limits = limits if limits is not None else Limits()
        self.reduce_base = reduce_base
        self.reduce_inc = reduce_inc
        self.num_vars = 0
        self.value = [0]  # 1-based: 0 unassigned, 1 true, -1 false
        self.level = [0]
        self.reason = [None]
        self.saved_phase = [False]
        self.activity = [0.0]
        self.heap = _VarHeap(self.activity)
        self.watches = {}  # literal -> list of [clause, blocking literal]
        self.clauses = []  # problem clauses (never removed)
        self.learned = []  # learned clauses (reduction target)
        self.trail = []
        self.trail_lim = []
        self.qhead = 0
        self.bump = 1.0
        self.root_conflict = False
        self._seq = 0
        #: lifetime statistics (per-call numbers ride on SolveResult)
        self.solves = 0
        self.total_conflicts = 0
        self.total_reductions = 0

    # -- formula growth ----------------------------------------------------

    @classmethod
    def from_cnf(cnf_class, cnf, limits=None, **kwargs):
        """A solver preloaded with an existing :class:`~repro.sat.cnf.Cnf`."""
        solver = cnf_class(limits=limits, **kwargs)
        solver.add_vars(cnf.num_vars)
        solver.add_clauses(cnf.clauses)
        return solver

    def new_var(self):
        """Allocate a fresh variable; returns its (positive) index."""
        self.num_vars += 1
        self.value.append(0)
        self.level.append(0)
        self.reason.append(None)
        self.saved_phase.append(False)
        self.activity.append(0.0)
        self.heap.grow()
        self.heap.push(self.num_vars)
        return self.num_vars

    def add_vars(self, count):
        """Allocate ``count`` variables; returns the last index."""
        last = self.num_vars
        for _ in range(count):
            last = self.new_var()
        return last

    def add_clause(self, literals):
        """Add one clause; only legal between :meth:`solve` calls.

        The clause is simplified against the root-level assignments:
        literals already false at level 0 are dropped, and a clause with
        a root-true literal is discarded as satisfied (level-0
        assignments are permanent).  Tautologies are dropped, duplicate
        literals deduplicated; an empty (or fully falsified) clause
        marks the whole formula unsatisfiable.
        """
        if self.trail_lim:
            raise RuntimeError("add_clause during an active solve")
        seen = set()
        clause = []
        for literal in literals:
            literal = int(literal)
            var = literal if literal > 0 else -literal
            if var == 0 or var > self.num_vars:
                raise ValueError(f"literal {literal} uses unknown variable")
            if -literal in seen:
                return  # tautology
            if literal in seen:
                continue
            value = self.value[var]
            if value != 0:  # root-level assignment
                if (value > 0) == (literal > 0):
                    return  # already satisfied forever
                continue  # already falsified forever
            seen.add(literal)
            clause.append(literal)
        if not clause:
            self.root_conflict = True
            return
        if len(clause) == 1:
            self._assign(clause[0], None)
            return
        record = _Clause(list(clause), seq=self._next_seq())
        self.clauses.append(record)
        self._watch(record)

    def add_clauses(self, clauses):
        """Add every clause of an iterable (the plural of ``add_clause``)."""
        for clause in clauses:
            self.add_clause(clause)

    @property
    def num_clauses(self):
        """Problem clauses currently stored (learned ones not counted)."""
        return len(self.clauses)

    @property
    def num_learned(self):
        return len(self.learned)

    def _next_seq(self):
        self._seq += 1
        return self._seq

    def _watch(self, record):
        lits = record.lits
        self.watches.setdefault(lits[0], []).append([record, lits[1]])
        self.watches.setdefault(lits[1], []).append([record, lits[0]])

    # -- assignment / trail ------------------------------------------------

    def _lit_value(self, literal):
        value = self.value[literal if literal > 0 else -literal]
        if value == 0:
            return 0
        return value if literal > 0 else -value

    def _assign(self, literal, reason):
        var = literal if literal > 0 else -literal
        self.value[var] = 1 if literal > 0 else -1
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.saved_phase[var] = literal > 0
        self.trail.append(literal)

    def _cancel_until(self, target_level):
        if len(self.trail_lim) <= target_level:
            return
        limit = self.trail_lim[target_level]
        value, reason, push = self.value, self.reason, self.heap.push
        for literal in self.trail[limit:]:
            var = literal if literal > 0 else -literal
            value[var] = 0
            reason[var] = None
            push(var)
        del self.trail[limit:]
        del self.trail_lim[target_level:]
        self.qhead = limit

    def _bump_var(self, var):
        self.activity[var] += self.bump
        if self.activity[var] > _RESCALE_LIMIT:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.bump *= 1e-100
        self.heap.update(var)

    # -- propagation -------------------------------------------------------

    def _propagate(self):
        """Exhaust the propagation queue; returns a conflict clause or
        ``None``.  Watch entries carry a blocking literal: when the
        cached blocker is already true the clause is skipped without
        being touched (the dominant case on re-visited clauses)."""
        value = self.value
        watches = self.watches
        propagated = 0
        conflict = None
        while self.qhead < len(self.trail):
            literal = self.trail[self.qhead]
            self.qhead += 1
            falsified = -literal
            watchers = watches.get(falsified)
            if not watchers:
                continue
            i = keep = 0
            count = len(watchers)
            while i < count:
                entry = watchers[i]
                i += 1
                blocker = entry[1]
                bval = value[blocker if blocker > 0 else -blocker]
                if (bval > 0) == (blocker > 0) and bval != 0:
                    watchers[keep] = entry
                    keep += 1
                    continue
                record = entry[0]
                if record.deleted:
                    continue  # lazily drop watchers of reduced clauses
                lits = record.lits
                if lits[0] == falsified:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                fval = value[first if first > 0 else -first]
                if fval != 0 and (fval > 0) == (first > 0):
                    entry[1] = first
                    watchers[keep] = entry
                    keep += 1
                    continue
                moved = False
                for j in range(2, len(lits)):
                    other = lits[j]
                    oval = value[other if other > 0 else -other]
                    if oval == 0 or (oval > 0) == (other > 0):
                        lits[1], lits[j] = lits[j], lits[1]
                        entry[1] = first
                        watches.setdefault(lits[1], []).append(entry)
                        moved = True
                        break
                if moved:
                    continue
                watchers[keep] = entry
                keep += 1
                if fval != 0:  # first is false: conflict
                    while i < count:
                        watchers[keep] = watchers[i]
                        keep += 1
                        i += 1
                    conflict = record
                    break
                self._assign(first, record)
                propagated += 1
            del watchers[keep:]
            if conflict is not None:
                break
        self.propagations += propagated
        return conflict

    # -- conflict analysis -------------------------------------------------

    def _analyze(self, conflict):
        """First-UIP analysis.

        Returns ``(learned literals, backjump level, lbd)``; the
        asserting literal is placed *last* (the attach step moves it to
        watch slot 0).
        """
        learned = []
        seen = bytearray(self.num_vars + 1)
        touched = []
        counter = 0
        pivot = None
        index = len(self.trail) - 1
        current = len(self.trail_lim)
        record = conflict
        level = self.level

        while True:
            lits = record.lits
            for q in (lits[1:] if pivot is not None else lits):
                var = q if q > 0 else -q
                if seen[var] or level[var] == 0:
                    continue
                seen[var] = 1
                touched.append(var)
                self._bump_var(var)
                if level[var] == current:
                    counter += 1
                else:
                    learned.append(q)
            while not seen[abs(self.trail[index])]:
                index -= 1
            pivot = self.trail[index]
            var = abs(pivot)
            record = self.reason[var]
            seen[var] = 0
            counter -= 1
            index -= 1
            if counter == 0:
                break
        learned.append(-pivot)

        if len(learned) == 1:
            backjump = 0
        else:
            backjump = max(level[abs(q)] for q in learned[:-1])
        lbd = len({level[abs(q)] for q in learned})
        return learned, backjump, lbd

    def _analyze_final(self, failed_literal, assumptions):
        """The failed-assumption core behind a falsified assumption.

        Walks the implication graph backwards from ``failed_literal``
        (an assumption found false while being established) and
        collects every assumption *decision* the refutation rests on.
        Returns the core in assumption-list order -- a subset such that
        the formula is already unsatisfiable under it alone.
        """
        core = {failed_literal}
        if not self.trail_lim:
            return tuple(a for a in assumptions if a in core)
        seen = bytearray(self.num_vars + 1)
        seen[abs(failed_literal)] = 1
        level = self.level
        for index in range(len(self.trail) - 1, self.trail_lim[0] - 1, -1):
            literal = self.trail[index]
            var = abs(literal)
            if not seen[var]:
                continue
            record = self.reason[var]
            if record is None:
                if level[var] > 0:
                    core.add(literal)
            else:
                for q in record.lits:
                    if level[abs(q)] > 0:
                        seen[abs(q)] = 1
            seen[var] = 0
        picked = []
        for assumption in assumptions:
            if assumption in core and assumption not in picked:
                picked.append(assumption)
        return tuple(picked)

    def _attach_learned(self, learned, lbd):
        """Store a learned clause, watch it, assert its literal."""
        learned = list(learned)
        learned[0], learned[-1] = learned[-1], learned[0]
        if len(learned) == 1:
            self._assign(learned[0], None)
            return
        if len(learned) > 2:
            deepest = max(
                range(1, len(learned)),
                key=lambda i: self.level[abs(learned[i])],
            )
            learned[1], learned[deepest] = learned[deepest], learned[1]
        record = _Clause(learned, learned=True, lbd=lbd,
                         seq=self._next_seq())
        self.learned.append(record)
        self._watch(record)
        self._assign(learned[0], record)

    # -- learned-database reduction ----------------------------------------

    def _locked(self, record):
        """Is this clause the propagation reason of an assigned var?"""
        first = record.lits[0]
        return self.reason[first if first > 0 else -first] is record

    def _reduce_db(self):
        """Drop the worse half of the disposable learned clauses.

        Kept unconditionally: glue clauses (LBD <= ``_DB_KEEP_LBD``),
        binary clauses and clauses locked as propagation reasons.  The
        rest are ranked by (LBD, newest first) and the worse half is
        deleted -- marked and purged from the watch lists, so the trail
        and all reasons stay untouched and the reduction is safe at any
        decision level.
        """
        candidates = []
        for record in self.learned:
            if (record.lbd <= _DB_KEEP_LBD or len(record.lits) <= 2
                    or self._locked(record)):
                continue
            candidates.append(record)
        candidates.sort(key=lambda r: (r.lbd, -r.seq))
        for record in candidates[len(candidates) // 2:]:
            record.deleted = True
        self.learned = [r for r in self.learned if not r.deleted]
        for watchers in self.watches.values():
            watchers[:] = [e for e in watchers if not e[0].deleted]
        self.total_reductions += 1

    # -- branching ---------------------------------------------------------

    def _pick_branch(self):
        heap = self.heap
        value = self.value
        while len(heap):
            var = heap.pop()
            if value[var] == 0:
                return var if self.saved_phase[var] else -var
        return None

    # -- the solve loop ----------------------------------------------------

    def solve(self, assumptions=(), limits=None):
        """Decide the accumulated formula under ``assumptions``.

        Returns a :class:`~repro.sat.solver.SolveResult` whose
        ``metrics`` additionally carry ``incremental_solves``,
        ``learned_kept`` (learned clauses carried in from earlier
        calls), ``db_reductions`` and ``assumption_cores``.  On UNSAT,
        ``result.failed_assumptions`` holds the extracted core (a tuple
        of assumption literals; empty when the formula is unsatisfiable
        under *no* assumptions); otherwise it is ``None``.
        """
        limits = self.limits if limits is None else limits
        watch = Stopwatch()
        self.solves += 1
        self.decisions = 0
        self.propagations = 0
        self.conflicts = 0
        reductions_before = self.total_reductions
        learned_kept = len(self.learned)
        assumptions = [int(a) for a in assumptions]

        failed = None

        def result(status, assignment=None):
            metrics = Counters(
                decisions=self.decisions,
                propagations=self.propagations,
                backtracks=self.conflicts,
                seconds=watch.elapsed(),
                incremental_solves=1,
                learned_kept=learned_kept,
                db_reductions=self.total_reductions - reductions_before,
                assumption_cores=1 if failed else 0,
            )
            outcome = SolveResult(status, assignment, 0, 0, 0, 0.0,
                                  metrics=metrics)
            outcome.failed_assumptions = (
                failed if status == UNSAT else None
            )
            return outcome

        self._cancel_until(0)
        if self.root_conflict:
            failed = ()
            return result(UNSAT)
        for literal in assumptions:
            var = abs(literal)
            if not 1 <= var <= self.num_vars:
                raise ValueError(
                    f"assumption {literal} uses unknown variable"
                )

        restart_index = 1
        restart_budget = _LUBY_UNIT * luby(restart_index)
        conflicts_since_restart = 0
        time_check = _TIME_CHECK_STRIDE
        max_seconds = limits.max_seconds

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                self.total_conflicts += 1
                conflicts_since_restart += 1
                if not self.trail_lim:
                    # Conflict with no decisions: UNSAT outright (the
                    # empty core -- no assumption was even in play).
                    self.root_conflict = True
                    failed = ()
                    return result(UNSAT)
                if (limits.max_backtracks is not None
                        and self.conflicts >= limits.max_backtracks):
                    self._cancel_until(0)
                    return result(LIMIT)
                if watch.exceeded(max_seconds):
                    self._cancel_until(0)
                    return result(LIMIT)
                learned, backjump, lbd = self._analyze(conflict)
                self._cancel_until(backjump)
                self._attach_learned(learned, lbd)
                self.bump /= _ACTIVITY_DECAY
                if (len(self.learned)
                        >= self.reduce_base
                        + self.reduce_inc * self.total_reductions):
                    self._reduce_db()
                if conflicts_since_restart >= restart_budget:
                    conflicts_since_restart = 0
                    restart_index += 1
                    restart_budget = _LUBY_UNIT * luby(restart_index)
                    self._cancel_until(0)
                continue

            # No conflict: establish assumptions, then branch.
            branch = None
            while len(self.trail_lim) < len(assumptions):
                literal = assumptions[len(self.trail_lim)]
                value = self._lit_value(literal)
                if value == 1:
                    # Already satisfied: push an empty pseudo-level so
                    # assumption i always lives at decision level i+1.
                    self.trail_lim.append(len(self.trail))
                elif value == -1:
                    failed = self._analyze_final(literal, assumptions)
                    self._cancel_until(0)
                    return result(UNSAT)
                else:
                    branch = literal
                    break
            if branch is None:
                branch = self._pick_branch()
                if branch is None:
                    assignment = {
                        v: self.value[v] == 1
                        for v in range(1, self.num_vars + 1)
                    }
                    self._cancel_until(0)
                    return result(SAT, assignment)
                self.decisions += 1
                time_check -= 1
                if time_check <= 0:
                    time_check = _TIME_CHECK_STRIDE
                    if watch.exceeded(max_seconds):
                        self._cancel_until(0)
                        return result(LIMIT)
            self.trail_lim.append(len(self.trail))
            self._assign(branch, None)

    def __repr__(self):
        return (
            f"IncrementalSolver(vars={self.num_vars}, "
            f"clauses={len(self.clauses)}, learned={len(self.learned)}, "
            f"solves={self.solves})"
        )
