"""Small clause-level encoding helpers shared by the CSC encodings."""

from __future__ import annotations


def add_implies(cnf, antecedents, consequent):
    """Add ``(a1 & a2 & ...) -> c`` as one clause."""
    cnf.add_clause([-a for a in antecedents] + [consequent])


def add_equal(cnf, a, b, condition=()):
    """Add ``a <-> b``, optionally guarded: ``(cond1 & ...) -> (a <-> b)``."""
    guard = [-c for c in condition]
    cnf.add_clause(guard + [-a, b])
    cnf.add_clause(guard + [a, -b])


def add_xor_var(cnf, a, b, name=None):
    """Allocate ``d`` with ``d <-> (a xor b)`` and return it."""
    d = cnf.new_var(name)
    cnf.add_clause([-d, a, b])
    cnf.add_clause([-d, -a, -b])
    cnf.add_clause([d, -a, b])
    cnf.add_clause([d, a, -b])
    return d


def add_at_most_one(cnf, literals):
    """Pairwise at-most-one over ``literals``."""
    literals = list(literals)
    for i, a in enumerate(literals):
        for b in literals[i + 1:]:
            cnf.add_clause([-a, -b])
