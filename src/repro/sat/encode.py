"""Small clause-level encoding helpers shared by the CSC encodings."""

from __future__ import annotations


def add_implies(cnf, antecedents, consequent):
    """Add ``(a1 & a2 & ...) -> c`` as one clause."""
    cnf.add_clause([-a for a in antecedents] + [consequent])


def add_equal(cnf, a, b, condition=()):
    """Add ``a <-> b``, optionally guarded: ``(cond1 & ...) -> (a <-> b)``."""
    guard = [-c for c in condition]
    cnf.add_clause(guard + [-a, b])
    cnf.add_clause(guard + [a, -b])


def add_xor_var(cnf, a, b, name=None):
    """Allocate ``d`` with ``d <-> (a xor b)`` and return it."""
    d = cnf.new_var(name)
    cnf.add_clause([-d, a, b])
    cnf.add_clause([-d, -a, -b])
    cnf.add_clause([d, -a, b])
    cnf.add_clause([d, a, -b])
    return d


#: Above this many literals the pairwise at-most-one encoding (which
#: needs n(n-1)/2 clauses) loses to the sequential counter (3n-4).
_SEQUENTIAL_THRESHOLD = 6


def add_at_most_one(cnf, literals):
    """At-most-one over ``literals``.

    Small sets keep the classic pairwise encoding; above
    :data:`_SEQUENTIAL_THRESHOLD` literals the sequential-counter
    encoding of Sinz (2005) is used instead, spending ``n - 1``
    auxiliary variables to cut the clause count from pairwise's
    quadratic ``n(n-1)/2`` to ``3n - 4``.  The auxiliaries are
    functionally determined ("some literal up to position *i* is
    true"), so the two encodings are equisatisfiable over the input
    literals and every model's projection is preserved.
    """
    literals = list(literals)
    n = len(literals)
    if n <= _SEQUENTIAL_THRESHOLD:
        for i, a in enumerate(literals):
            for b in literals[i + 1:]:
                cnf.add_clause([-a, -b])
        return
    registers = [cnf.new_var() for _ in range(n - 1)]
    cnf.add_clause([-literals[0], registers[0]])
    for i in range(1, n - 1):
        cnf.add_clause([-literals[i], registers[i]])
        cnf.add_clause([-registers[i - 1], registers[i]])
        cnf.add_clause([-literals[i], -registers[i - 1]])
    cnf.add_clause([-literals[n - 1], -registers[n - 2]])
