"""CNF formulas with named variables.

Variables are positive integers; literals are signed integers in the DIMACS
convention (``-v`` is the negation of ``v``).  :class:`Cnf` also keeps an
optional name for every variable so encodings stay debuggable and models
can be read back symbolically.
"""

from __future__ import annotations


class Cnf:
    """A growable CNF formula.

    >>> cnf = Cnf()
    >>> a, b = cnf.new_var("a"), cnf.new_var("b")
    >>> cnf.add_clause([a, b])
    >>> cnf.add_clause([-a, b])
    >>> cnf.num_vars, cnf.num_clauses
    (2, 2)
    """

    def __init__(self):
        self._names = [None]  # 1-based variable indexing
        self._by_name = {}
        self.clauses = []
        self._weights = {}

    # -- variables ---------------------------------------------------------

    @property
    def num_vars(self):
        return len(self._names) - 1

    @property
    def num_clauses(self):
        return len(self.clauses)

    def new_var(self, name=None):
        """Allocate a fresh variable; optional unique name."""
        var = len(self._names)
        if name is not None:
            if name in self._by_name:
                raise ValueError(f"variable name {name!r} already used")
            self._by_name[name] = var
        self._names.append(name)
        return var

    def var(self, name):
        """Look up a variable by name, allocating it on first use."""
        existing = self._by_name.get(name)
        if existing is not None:
            return existing
        return self.new_var(name)

    def name_of(self, var):
        """The name of a variable, or ``None`` if anonymous."""
        if not 1 <= var <= self.num_vars:
            raise ValueError(f"unknown variable {var}")
        return self._names[var]

    # -- optional optimisation weights --------------------------------------

    def set_weight(self, var, weight):
        """Price of assigning ``var = True`` (used by optimising engines).

        Plain decision engines ignore weights; the BDD engine minimises
        the summed weight of true variables over all models.
        """
        if not 1 <= var <= self.num_vars:
            raise ValueError(f"unknown variable {var}")
        self._weights[var] = weight

    def weight_of(self, var):
        return self._weights.get(var, 0)

    @property
    def weights(self):
        """Copy of the ``var -> weight`` mapping (zero weights omitted)."""
        return dict(self._weights)

    # -- clauses ---------------------------------------------------------------

    def add_clause(self, literals):
        """Add one clause (an iterable of non-zero literals).

        Tautological clauses (containing ``l`` and ``-l``) are dropped;
        duplicate literals within a clause are deduplicated.  An empty
        clause is accepted and makes the formula trivially unsatisfiable.
        """
        seen = set()
        clause = []
        for literal in literals:
            literal = int(literal)
            if literal == 0:
                raise ValueError("literal 0 is not allowed")
            var = abs(literal)
            if var > self.num_vars:
                raise ValueError(f"literal {literal} uses unallocated variable")
            if -literal in seen:
                return  # tautology
            if literal not in seen:
                seen.add(literal)
                clause.append(literal)
        self.clauses.append(tuple(clause))

    def extend(self, clauses):
        for clause in clauses:
            self.add_clause(clause)

    # -- evaluation (for tests and model checking) -----------------------------

    def evaluate(self, assignment):
        """Evaluate under ``assignment`` (dict var -> bool). True iff satisfied.

        Unassigned variables default to False.
        """
        for clause in self.clauses:
            if not any(
                assignment.get(abs(lit), False) == (lit > 0)
                for lit in clause
            ):
                return False
        return True

    def to_dimacs(self):
        """Serialise in DIMACS cnf format (for debugging/interop)."""
        lines = [f"p cnf {self.num_vars} {self.num_clauses}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    def __repr__(self):
        return f"Cnf(vars={self.num_vars}, clauses={self.num_clauses})"
