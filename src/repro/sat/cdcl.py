"""A conflict-driven clause-learning (CDCL) SAT solver.

The modular method's formulas are small, but proving their
unsatisfiability (the "add one more state signal" step) and navigating
the heavily-structured satisfiable instances is exponential for the
chronological branch-and-bound search in :mod:`repro.sat.solver`.  This
module provides the standard modern remedy: two-watched-literal
propagation, first-UIP clause learning with non-chronological backjumping,
VSIDS-style activity ordering with phase saving, and geometric restarts.

The ``Limits`` budget still applies -- ``max_backtracks`` counts
*conflicts*, which keeps the paper's "SAT backtrack limit" abort semantics
meaningful for both engines.
"""

from __future__ import annotations

from repro.obs import Stopwatch
from repro.sat.solver import (
    LIMIT, SAT, UNSAT, Limits, SolveResult, _TIME_CHECK_STRIDE,
)

_ACTIVITY_DECAY = 0.95
_RESCALE_LIMIT = 1e100
_RESTART_FIRST = 100
_RESTART_FACTOR = 1.5


def solve_cdcl(cnf, limits=None):
    """Decide satisfiability of ``cnf`` with clause learning."""
    return _Cdcl(cnf, limits or Limits()).run()


class _Cdcl:
    def __init__(self, cnf, limits):
        self.limits = limits
        self.num_vars = cnf.num_vars
        self.clauses = [list(c) for c in cnf.clauses]
        self.value = [0] * (self.num_vars + 1)  # 0 / 1 / -1
        self.level = [0] * (self.num_vars + 1)
        self.reason = [None] * (self.num_vars + 1)  # clause index
        self.trail = []
        self.trail_lim = []  # trail length at each decision level
        self.watches = {}
        self.activity = [0.0] * (self.num_vars + 1)
        self.bump = 1.0
        self.saved_phase = [False] * (self.num_vars + 1)
        self.decisions = 0
        self.propagations = 0
        self.conflicts = 0

    # -- helpers ----------------------------------------------------------

    def _lit_value(self, literal):
        value = self.value[abs(literal)]
        if value == 0:
            return 0
        return value if literal > 0 else -value

    def _current_level(self):
        return len(self.trail_lim)

    def _assign(self, literal, reason):
        var = abs(literal)
        self.value[var] = 1 if literal > 0 else -1
        self.level[var] = self._current_level()
        self.reason[var] = reason
        self.saved_phase[var] = literal > 0
        self.trail.append(literal)

    def _watch(self, literal, index):
        self.watches.setdefault(literal, []).append(index)

    def _bump_var(self, var):
        self.activity[var] += self.bump
        if self.activity[var] > _RESCALE_LIMIT:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.bump *= 1e-100

    # -- propagation ---------------------------------------------------------

    def _propagate(self, head):
        """Propagate from trail position ``head``; returns conflict clause
        index or None."""
        while head < len(self.trail):
            literal = self.trail[head]
            head += 1
            falsified = -literal
            watchers = self.watches.get(falsified, [])
            i = 0
            while i < len(watchers):
                index = watchers[i]
                clause = self.clauses[index]
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                other = clause[0]
                if self._lit_value(other) == 1:
                    i += 1
                    continue
                replacement = None
                for j in range(2, len(clause)):
                    if self._lit_value(clause[j]) != -1:
                        replacement = j
                        break
                if replacement is not None:
                    clause[1], clause[replacement] = (
                        clause[replacement], clause[1],
                    )
                    watchers[i] = watchers[-1]
                    watchers.pop()
                    self._watch(clause[1], index)
                    continue
                if self._lit_value(other) == -1:
                    return index  # conflict
                self._assign(other, index)
                self.propagations += 1
                i += 1
        return None

    # -- learning --------------------------------------------------------------

    def _analyze(self, conflict_index):
        """First-UIP analysis; returns (learned clause, backjump level)."""
        learned = []
        seen = [False] * (self.num_vars + 1)
        counter = 0  # literals of the current level still to resolve
        literal = None
        index = conflict_index
        position = len(self.trail) - 1
        current = self._current_level()

        while True:
            for lit in self.clauses[index]:
                if literal is not None and abs(lit) == abs(literal):
                    continue  # the pivot variable being resolved away
                var = abs(lit)
                if seen[var] or self.level[var] == 0:
                    continue
                seen[var] = True
                self._bump_var(var)
                if self.level[var] == current:
                    counter += 1
                else:
                    learned.append(lit)
            # Find the next seen literal on the trail.
            while not seen[abs(self.trail[position])]:
                position -= 1
            literal = -self.trail[position]
            var = abs(literal)
            seen[var] = False
            counter -= 1
            position -= 1
            if counter == 0:
                learned.append(literal)
                break
            index = self.reason[var]

        # Backjump to the second-highest level in the learned clause.
        if len(learned) == 1:
            return learned, 0
        levels = sorted(
            (self.level[abs(lit)] for lit in learned[:-1]), reverse=True
        )
        return learned, levels[0]

    def _backjump(self, target_level):
        limit = self.trail_lim[target_level]
        for literal in self.trail[limit:]:
            var = abs(literal)
            self.value[var] = 0
            self.reason[var] = None
        del self.trail[limit:]
        del self.trail_lim[target_level:]

    def _attach_learned(self, learned):
        """Store a learned clause, watch it correctly, assert its literal.

        The asserting literal (placed last by ``_analyze``) moves to slot
        0; the deepest remaining literal moves to slot 1 so the watch
        invariant ("watched literals live in slots 0 and 1") holds.
        Returns the trail position to resume propagation from.
        """
        learned = list(learned)
        learned[0], learned[-1] = learned[-1], learned[0]
        if len(learned) > 2:
            deepest = max(
                range(1, len(learned)),
                key=lambda i: self.level[abs(learned[i])],
            )
            learned[1], learned[deepest] = learned[deepest], learned[1]
        index = len(self.clauses)
        self.clauses.append(learned)
        if len(learned) > 1:
            self._watch(learned[0], index)
            self._watch(learned[1], index)
            self._assign(learned[0], index)
        else:
            self._assign(learned[0], None)
        return len(self.trail) - 1

    def _pick_branch(self):
        best = None
        best_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if self.value[var] == 0 and self.activity[var] > best_activity:
                best = var
                best_activity = self.activity[var]
        if best is None:
            return None
        return best if self.saved_phase[best] else -best

    # -- main loop ----------------------------------------------------------------

    def run(self):
        watch = Stopwatch()

        def result(status):
            assignment = None
            if status == SAT:
                assignment = {
                    v: self.value[v] == 1
                    for v in range(1, self.num_vars + 1)
                }
            return SolveResult(
                status, assignment, self.decisions, self.propagations,
                self.conflicts, watch.elapsed(),
            )

        # Install watches; queue unit clauses.
        for index, clause in enumerate(self.clauses):
            if not clause:
                return result(UNSAT)
            if len(clause) == 1:
                value = self._lit_value(clause[0])
                if value == -1:
                    return result(UNSAT)
                if value == 0:
                    self._assign(clause[0], None)
            else:
                self._watch(clause[0], index)
                self._watch(clause[1], index)

        if self._propagate(0) is not None:
            return result(UNSAT)
        restart_budget = _RESTART_FIRST
        conflicts_since_restart = 0

        while True:
            branch = self._pick_branch()
            if branch is None:
                return result(SAT)
            self.decisions += 1
            if (
                self.decisions % _TIME_CHECK_STRIDE == 0
                and watch.exceeded(self.limits.max_seconds)
            ):
                return result(LIMIT)
            self.trail_lim.append(len(self.trail))
            self._assign(branch, None)
            head = len(self.trail) - 1

            while True:
                conflict = self._propagate(head)
                if conflict is None:
                    break
                self.conflicts += 1
                conflicts_since_restart += 1
                if (
                    self.limits.max_backtracks is not None
                    and self.conflicts >= self.limits.max_backtracks
                ):
                    return result(LIMIT)
                if watch.exceeded(self.limits.max_seconds):
                    return result(LIMIT)
                if self._current_level() == 0:
                    return result(UNSAT)
                learned, target = self._analyze(conflict)
                self._backjump(target)
                head = self._attach_learned(learned)
                self.bump /= _ACTIVITY_DECAY
                if conflicts_since_restart >= restart_budget:
                    conflicts_since_restart = 0
                    restart_budget = int(restart_budget * _RESTART_FACTOR)
                    if self._current_level() > 0:
                        self._backjump(0)
                    break
