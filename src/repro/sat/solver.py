"""DPLL branch-and-bound with two-watched-literal propagation.

This mirrors the solver class the paper relied on (Stephan/Brayton's SIS
SAT program): depth-first search with unit propagation and *chronological*
backtracking -- no clause learning, no restarts.  The ``Limits`` budget is
the paper's "backtrack limit": Table 1's large direct formulas abort with
:data:`LIMIT` instead of completing.
"""

from __future__ import annotations

from repro.obs import Counters, Stopwatch

SAT = "sat"
UNSAT = "unsat"
#: Returned when the search gave up because a budget was exhausted.
LIMIT = "limit"

#: Decisions between wall-clock checks.  Conflicts always check the
#: deadline, but a long conflict-free decide/propagate stretch must not
#: be allowed to sail past ``Limits.max_seconds`` unchecked.
_TIME_CHECK_STRIDE = 64


class Limits:
    """Search budgets.

    Parameters
    ----------
    max_backtracks:
        Maximum number of conflicts repaired by backtracking before the
        search aborts (``None`` = unlimited).
    max_seconds:
        Wall-clock budget (``None`` = unlimited).
    """

    def __init__(self, max_backtracks=None, max_seconds=None):
        self.max_backtracks = max_backtracks
        self.max_seconds = max_seconds


class SolveResult:
    """Outcome of a solver run.

    Attributes
    ----------
    status:
        :data:`SAT`, :data:`UNSAT` or :data:`LIMIT`.
    assignment:
        dict ``var -> bool`` when satisfiable, else ``None``.
    metrics:
        A :class:`~repro.obs.metrics.Counters` bag holding the search
        statistics (``decisions``, ``propagations``, ``backtracks``,
        ``seconds``, plus engine-specific counters such as
        ``bdd_nodes``).  The classic statistic names remain available as
        properties reading from it.
    """

    def __init__(self, status, assignment, decisions, propagations,
                 backtracks, seconds, metrics=None):
        self.status = status
        self.assignment = assignment
        if metrics is None:
            metrics = Counters(
                decisions=decisions, propagations=propagations,
                backtracks=backtracks, seconds=seconds,
            )
        self.metrics = metrics
        #: ``(engine, status)`` rungs when the fallback ladder ran
        #: (:func:`repro.sat.solve_with`), else ``None``.
        self.escalations = None

    @property
    def decisions(self):
        return self.metrics["decisions"]

    @property
    def propagations(self):
        return self.metrics["propagations"]

    @property
    def backtracks(self):
        return self.metrics["backtracks"]

    @property
    def seconds(self):
        return self.metrics["seconds"]

    @property
    def is_sat(self):
        return self.status == SAT

    def __repr__(self):
        return (
            f"SolveResult({self.status}, decisions={self.decisions}, "
            f"backtracks={self.backtracks}, {self.seconds:.3f}s)"
        )


def solve(cnf, limits=None):
    """Decide satisfiability of ``cnf`` under optional ``limits``."""
    return _Search(cnf, limits or Limits()).run()


class _Search:
    def __init__(self, cnf, limits):
        self.cnf = cnf
        self.limits = limits
        self.num_vars = cnf.num_vars
        self.clauses = [list(clause) for clause in cnf.clauses]
        # value[v]: 0 unassigned, 1 true, -1 false (1-based vars).
        self.value = [0] * (self.num_vars + 1)
        self.trail = []  # (literal, is_decision, tried_both)
        self.watches = {}  # literal -> list of clause indices watching it
        self.decisions = 0
        self.propagations = 0
        self.backtracks = 0
        # Static branching order: variables by descending literal frequency,
        # preferred phase = the more frequent literal (a MOMs-style, 1990s
        # heuristic).
        counts = {}
        for clause in self.clauses:
            for literal in clause:
                counts[literal] = counts.get(literal, 0) + 1
        self.order = sorted(
            range(1, self.num_vars + 1),
            key=lambda v: -(counts.get(v, 0) + counts.get(-v, 0)),
        )
        self.phase = [
            counts.get(v, 0) >= counts.get(-v, 0)
            for v in range(self.num_vars + 1)
        ]
        self.next_order_pos = 0
        self.order_pos_stack = []

    # -- literal values --------------------------------------------------------

    def _lit_value(self, literal):
        value = self.value[abs(literal)]
        if value == 0:
            return 0
        return value if literal > 0 else -value

    # -- setup ------------------------------------------------------------------

    def _init_watches(self):
        """Returns False if an empty clause makes the formula UNSAT."""
        units = []
        for index, clause in enumerate(self.clauses):
            if not clause:
                return None
            if len(clause) == 1:
                units.append(clause[0])
                continue
            for literal in clause[:2]:
                self.watches.setdefault(literal, []).append(index)
        return units

    # -- propagation --------------------------------------------------------------

    def _assign(self, literal, is_decision):
        self.value[abs(literal)] = 1 if literal > 0 else -1
        self.trail.append([literal, is_decision, False])

    def _propagate(self, queue):
        """Unit-propagate; returns True on success, False on conflict."""
        head = 0
        while head < len(queue):
            literal = queue[head]
            head += 1
            falsified = -literal
            watchers = self.watches.get(falsified, [])
            i = 0
            while i < len(watchers):
                index = watchers[i]
                clause = self.clauses[index]
                # Make sure the falsified literal is in slot 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                other = clause[0]
                if self._lit_value(other) == 1:
                    i += 1
                    continue
                # Look for a replacement watch.
                replacement = None
                for j in range(2, len(clause)):
                    if self._lit_value(clause[j]) != -1:
                        replacement = j
                        break
                if replacement is not None:
                    clause[1], clause[replacement] = (
                        clause[replacement], clause[1],
                    )
                    watchers[i] = watchers[-1]
                    watchers.pop()
                    self.watches.setdefault(clause[1], []).append(index)
                    continue
                # No replacement: clause is unit or conflicting.
                other_value = self._lit_value(other)
                if other_value == -1:
                    return False  # conflict
                if other_value == 0:
                    self._assign(other, is_decision=False)
                    self.propagations += 1
                    queue.append(other)
                i += 1
        return True

    # -- backtracking -------------------------------------------------------------

    def _backtrack(self):
        """Undo to the most recent decision not yet tried both ways.

        Returns the literal to try next (the flipped decision), or None if
        the search space is exhausted.
        """
        self.backtracks += 1
        while self.trail:
            literal, is_decision, tried_both = self.trail[-1]
            if is_decision and not tried_both:
                # Flip this decision in place; it is no longer a decision
                # (both phases will then have been explored).
                self.trail.pop()
                self.value[abs(literal)] = 0
                self.next_order_pos = self.order_pos_stack.pop()
                flipped = -literal
                self._assign(flipped, is_decision=False)
                return flipped
            self.trail.pop()
            self.value[abs(literal)] = 0
            if is_decision:
                self.next_order_pos = self.order_pos_stack.pop()
        return None

    def _pick_branch(self):
        while self.next_order_pos < len(self.order):
            var = self.order[self.next_order_pos]
            if self.value[var] == 0:
                return var if self.phase[var] else -var
            self.next_order_pos += 1
        return None

    # -- main loop ---------------------------------------------------------------

    def run(self):
        watch = Stopwatch()

        def result(status):
            assignment = None
            if status == SAT:
                assignment = {
                    v: self.value[v] == 1 for v in range(1, self.num_vars + 1)
                }
            return SolveResult(
                status, assignment, self.decisions, self.propagations,
                self.backtracks, watch.elapsed(),
            )

        units = self._init_watches()
        if units is None:
            return result(UNSAT)
        queue = []
        for literal in units:
            value = self._lit_value(literal)
            if value == -1:
                return result(UNSAT)
            if value == 0:
                self._assign(literal, is_decision=False)
                queue.append(literal)
        if not self._propagate(queue):
            return result(UNSAT)

        while True:
            branch = self._pick_branch()
            if branch is None:
                return result(SAT)
            self.decisions += 1
            if (
                self.decisions % _TIME_CHECK_STRIDE == 0
                and watch.exceeded(self.limits.max_seconds)
            ):
                return result(LIMIT)
            self.order_pos_stack.append(self.next_order_pos)
            self._assign(branch, is_decision=True)
            self.trail[-1][1] = True  # mark decision
            queue = [branch]
            while not self._propagate(queue):
                if (
                    self.limits.max_backtracks is not None
                    and self.backtracks >= self.limits.max_backtracks
                ):
                    return result(LIMIT)
                if watch.exceeded(self.limits.max_seconds):
                    return result(LIMIT)
                flipped = self._backtrack()
                if flipped is None:
                    return result(UNSAT)
                queue = [flipped]
