"""SAT solving: CNF building and three interchangeable engines.

The paper solves its CSC constraint formulas with "an efficient
implementation of a branch and bound algorithm" (the SAT program shipped
with SIS, Stephan et al. 1992).  This package provides:

* :mod:`repro.sat.cnf` -- a CNF builder with named variables and
  optional optimisation weights;
* :mod:`repro.sat.solver` -- the era-faithful chronological DPLL with
  two-watched-literal propagation (its "backtrack limit" produces the
  Table-1 aborts);
* :mod:`repro.sat.cdcl` -- a modern conflict-driven solver (1UIP
  learning, VSIDS, restarts);
* :mod:`repro.sat.bdd_engine` -- decision by BDD construction returning
  *minimum-weight* models (the follow-up paper's area-driven approach);
* :func:`solve_with` -- engine dispatch, defaulting to a DPLL-then-CDCL
  hybrid, with an optional fallback ladder that escalates engines on a
  ``LIMIT`` outcome;
* :mod:`repro.sat.encode` -- small clause-encoding helpers.
"""

from repro import obs
from repro.runtime.faults import should_fire as _fault_fires
from repro.sat.cnf import Cnf
from repro.sat.bdd_engine import solve_bdd
from repro.sat.cdcl import solve_cdcl
from repro.sat.solver import (
    LIMIT,
    SAT,
    UNSAT,
    Limits,
    SolveResult,
    solve,
)


#: Budget for the DPLL pass of the hybrid engine.
_HYBRID_DPLL_LIMITS = Limits(max_backtracks=50_000, max_seconds=2.0)

#: Budget multipliers for the ladder's enlarged CDCL retry.
_LADDER_BACKTRACK_FACTOR = 4
_LADDER_SECONDS_FACTOR = 2.0


def solve_with(cnf, limits=None, engine="hybrid", fallback=False,
               budget=None):
    """Solve with a named engine.

    * ``"dpll"`` -- the chronological branch-and-bound search matching
      the solver class the paper used.
    * ``"cdcl"`` -- clause learning, backjumping, restarts.
    * ``"bdd"`` -- decide by BDD construction and return the model
      minimising the CNF's variable weights (the follow-up paper's
      area-driven approach); on a node/time blow-up the instance falls
      back to CDCL (losing only the optimality, not the decision).
    * ``"hybrid"`` (default) -- a budgeted DPLL pass first, CDCL on
      limit.  DPLL's static variable order sweeps the state graph like a
      wavefront and tends to produce *compact* state-signal excitation
      regions (smaller covers); CDCL guarantees the instance still gets
      decided when DPLL thrashes.

    All engines honour the same :class:`Limits` budget.

    With ``fallback=True`` a ``LIMIT`` outcome climbs the escalation
    ladder -- the requested engine, then CDCL with an enlarged budget,
    then the BDD engine (whose own rescue is CDCL) -- and the trail of
    ``(engine, status)`` rungs is recorded on ``result.escalations``.
    ``budget`` (a :class:`~repro.runtime.budget.Budget`) additionally
    clips every rung to the run's remaining global allowance, so the
    ladder can never climb past the run deadline.
    """
    if budget is not None:
        limits = budget.sub_limits(limits)
    result = _solve_once(cnf, limits, engine)
    if result.status != LIMIT or not fallback:
        return result
    trail = [(engine, result.status)]
    for rung_engine, rung_limits in _ladder(engine, limits, budget):
        obs.add("escalations")
        obs.event("escalate", engine=rung_engine)
        result = _solve_once(cnf, rung_limits, rung_engine)
        trail.append((rung_engine, result.status))
        if result.status != LIMIT:
            break
    result.escalations = trail
    return result


def _solve_once(cnf, limits, engine):
    """One rung: dispatch to a single engine (plus its built-in rescue)."""
    if _fault_fires("solver-limit", detail=engine):
        return SolveResult(LIMIT, None, 0, 0, 0, 0.0)
    if engine == "cdcl":
        return solve_cdcl(cnf, limits)
    if engine == "dpll":
        return solve(cnf, limits)
    if engine == "bdd":
        result = solve_bdd(cnf, limits)
        if result.status != LIMIT:
            return result
        return solve_cdcl(cnf, limits)
    if engine == "hybrid":
        first = _HYBRID_DPLL_LIMITS
        if limits is not None:
            first = Limits(
                max_backtracks=_min_opt(
                    limits.max_backtracks, first.max_backtracks
                ),
                max_seconds=_min_opt(limits.max_seconds, first.max_seconds),
            )
        result = solve(cnf, first)
        if result.status != LIMIT:
            return result
        return solve_cdcl(cnf, limits)
    raise ValueError(f"unknown SAT engine {engine!r}")


def _ladder(engine, limits, budget):
    """Escalation rungs after ``engine`` exhausted ``limits``.

    CDCL gets an enlarged budget (learning needs room the first attempt
    did not have); the BDD rung is the last resort because its cost is
    structural, not search-bound.  Every rung is clipped to the global
    budget so escalation never outlives the run deadline.
    """
    enlarged = None
    if limits is not None:
        enlarged = Limits(
            max_backtracks=_scale_opt(
                limits.max_backtracks, _LADDER_BACKTRACK_FACTOR
            ),
            max_seconds=_scale_opt(
                limits.max_seconds, _LADDER_SECONDS_FACTOR
            ),
        )
    rungs = [("cdcl", enlarged)]
    if engine != "bdd":
        rungs.append(("bdd", enlarged))
    for rung_engine, rung_limits in rungs:
        if budget is not None:
            rung_limits = budget.sub_limits(rung_limits)
        yield rung_engine, rung_limits


def _scale_opt(value, factor):
    if value is None:
        return None
    scaled = value * factor
    return type(value)(scaled) if isinstance(value, int) else scaled


def _min_opt(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


from repro.sat.encode import (
    add_at_most_one,
    add_equal,
    add_implies,
    add_xor_var,
)
from repro.sat.incremental import IncrementalSolver

__all__ = [
    "Cnf",
    "IncrementalSolver",
    "LIMIT",
    "Limits",
    "SAT",
    "SolveResult",
    "UNSAT",
    "add_at_most_one",
    "add_equal",
    "add_implies",
    "add_xor_var",
    "solve",
    "solve_bdd",
    "solve_cdcl",
    "solve_with",
]
