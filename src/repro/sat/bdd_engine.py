"""The BDD solve engine: decide by construction, pick the cheapest model.

Reproduces the approach of the paper's follow-up ([19], Puri & Gu,
High-Level Synthesis Symposium 1994): build the constraint function as a
BDD and extract not just *a* satisfying assignment but the one minimising
a cost -- here the CNF's variable weights, which the CSC encoding places
on the "excited" bits, so the chosen solution has the fewest split states
and (downstream) the smallest covers.

BDD sizes are the engine's risk; a node-table overflow is reported as a
:data:`~repro.sat.solver.LIMIT` outcome so callers fall back exactly as
they do for search budgets.
"""

from __future__ import annotations

import time

from repro.bdd.manager import BddManager, BddOverflowError, FALSE
from repro.sat.solver import LIMIT, SAT, UNSAT, SolveResult

#: Node-table capacity; small modular formulas stay far below this.
DEFAULT_MAX_NODES = 400_000


def solve_bdd(cnf, limits=None, max_nodes=DEFAULT_MAX_NODES):
    """Decide ``cnf`` by BDD construction; minimise its variable weights.

    The ``limits`` budget applies its ``max_seconds`` only (there is no
    backtracking to count); a blow-up in nodes or time yields
    :data:`LIMIT`.
    """
    started = time.perf_counter()
    deadline = None
    if limits is not None and limits.max_seconds is not None:
        deadline = started + limits.max_seconds

    manager = BddManager(cnf.num_vars, max_nodes=max_nodes)

    def result(status, assignment=None):
        return SolveResult(
            status, assignment, 0, 0, 0, time.perf_counter() - started
        )

    try:
        function = _build(manager, cnf, deadline)
    except BddOverflowError:
        return result(LIMIT)
    except TimeoutError:
        return result(LIMIT)
    if function == FALSE:
        return result(UNSAT)
    model = manager.min_cost_model(function, cnf.weights)
    return result(SAT, model)


def _build(manager, cnf, deadline):
    function = 1
    clauses = sorted(
        cnf.clauses, key=lambda c: min((abs(l) for l in c), default=0)
    )
    for clause_literals in clauses:
        if deadline is not None and time.perf_counter() > deadline:
            raise TimeoutError
        function = manager.apply_and(
            function, manager.clause(clause_literals)
        )
        if function == FALSE:
            return FALSE
    return function
