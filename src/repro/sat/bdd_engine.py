"""The BDD solve engine: decide by construction, pick the cheapest model.

Reproduces the approach of the paper's follow-up ([19], Puri & Gu,
High-Level Synthesis Symposium 1994): build the constraint function as a
BDD and extract not just *a* satisfying assignment but the one minimising
a cost -- here the CNF's variable weights, which the CSC encoding places
on the "excited" bits, so the chosen solution has the fewest split states
and (downstream) the smallest covers.

BDD sizes are the engine's risk; a node-table overflow is reported as a
:data:`~repro.sat.solver.LIMIT` outcome so callers fall back exactly as
they do for search budgets.
"""

from __future__ import annotations

from repro.bdd.manager import BddManager, BddOverflowError, FALSE
from repro.obs import Stopwatch
from repro.runtime.faults import should_fire as _fault_fires
from repro.sat.solver import LIMIT, SAT, UNSAT, SolveResult

#: Node-table capacity; small modular formulas stay far below this.
DEFAULT_MAX_NODES = 400_000

#: Nodes granted per backtrack when mapping a search budget onto the node
#: table (see :func:`nodes_for_limits`).
_NODES_PER_BACKTRACK = 8

#: Smallest node table a mapped budget may request; below this the engine
#: cannot even represent trivial formulas and every call would LIMIT.
_MIN_MAPPED_NODES = 64


def nodes_for_limits(limits, max_nodes=DEFAULT_MAX_NODES):
    """Map a :class:`~repro.sat.solver.Limits` budget onto a node cap.

    The BDD engine has no backtracks to count, so a caller-supplied
    ``max_backtracks`` would otherwise be silently ignored -- the one
    engine that could blow up past every budget.  The conversion grants
    :data:`_NODES_PER_BACKTRACK` table nodes per allowed backtrack
    (clamped to ``[_MIN_MAPPED_NODES, max_nodes]``), which keeps the
    default modular budgets at the full table while making a deliberately
    tiny budget produce a prompt ``LIMIT`` like the search engines do.
    """
    if limits is None or limits.max_backtracks is None:
        return max_nodes
    mapped = limits.max_backtracks * _NODES_PER_BACKTRACK
    return max(_MIN_MAPPED_NODES, min(max_nodes, mapped))


def solve_bdd(cnf, limits=None, max_nodes=None):
    """Decide ``cnf`` by BDD construction; minimise its variable weights.

    The ``limits`` budget bounds both dimensions the construction has:
    ``max_seconds`` as a deadline and ``max_backtracks`` mapped onto the
    node table via :func:`nodes_for_limits` (overridden by an explicit
    ``max_nodes``).  A blow-up in nodes or time yields :data:`LIMIT`.
    """
    watch = Stopwatch()
    max_seconds = limits.max_seconds if limits is not None else None
    if max_nodes is None:
        max_nodes = nodes_for_limits(limits)

    manager = BddManager(cnf.num_vars, max_nodes=max_nodes)

    def result(status, assignment=None):
        # The node count rides on the result's metrics; the enclosing
        # sat_attempt span merges them, so no direct obs.add here (it
        # would double-count).
        outcome = SolveResult(status, assignment, 0, 0, 0, watch.elapsed())
        outcome.metrics.add("bdd_nodes", manager.num_nodes)
        return outcome

    if _fault_fires("bdd-blowup"):
        return result(LIMIT)
    try:
        function = _build(manager, cnf, watch, max_seconds)
    except BddOverflowError:
        return result(LIMIT)
    except TimeoutError:
        return result(LIMIT)
    if function == FALSE:
        return result(UNSAT)
    model = manager.min_cost_model(function, cnf.weights)
    return result(SAT, model)


def _build(manager, cnf, watch, max_seconds):
    function = 1
    clauses = sorted(
        cnf.clauses, key=lambda c: min((abs(l) for l in c), default=0)
    )
    for clause_literals in clauses:
        if watch.exceeded(max_seconds):
            raise TimeoutError
        function = manager.apply_and(
            function, manager.clause(clause_literals)
        )
        if function == FALSE:
            return FALSE
    return function
