"""A state-table baseline in the spirit of Lavagno & Moon et al. (DAC'92).

The original algorithm transforms the STG into an FSM state table and
solves the state assignment problem with state minimisation and critical
race-free assignment, inserting state signals into the STG one at a time.
Its full machinery is a synthesis system of its own; this module
reimplements its *working style* on our shared substrate (DESIGN.md §4):

* it operates on the whole state graph at once (no partitioning);
* it inserts state signals **sequentially** -- each round picks the
  same-code class with the most unresolved conflicts and solves a
  single-signal assignment problem for it, rather than jointly optimising
  all signals the way the monolithic SAT formulation does;
* every round solves a whole-graph constraint problem, so the per-round
  formulas stay large -- which is why the historical tool was an order of
  magnitude slower than the modular method on the big benchmarks.

The outcome mirrors the Table-1 "Lavagno and Moon et al." column's
qualitative profile: it completes on everything (given budget), is slower
than the modular method on large inputs, and its covers are generally
comparable but found along a different trade-off.
"""

from __future__ import annotations

from repro import obs
from repro.csc.assignment import Assignment
from repro.csc.errors import SynthesisError
from repro.csc.insertion import expand
from repro.csc.solve import solve_state_signals
from repro.csc.verify import assert_csc
from repro.obs import Stopwatch
from repro.stategraph.build import build_state_graph
from repro.stategraph.csc import csc_conflicts
from repro.stategraph.graph import StateGraph

_MAX_ROUNDS = 16


class LavagnoResult:
    """Outcome of :func:`lavagno_synthesis`.

    Attributes
    ----------
    graph / expanded:
        The complete state graph and its final expansion.
    assignment:
        The accumulated state-signal assignment.
    rounds:
        Per-insertion solver statistics
        (list of :class:`~repro.csc.solve.AttemptStats` lists).
    covers / literals:
        Minimised covers and total literal count (``None`` when
        ``minimize=False``).
    seconds:
        End-to-end wall-clock time.
    """

    def __init__(self, graph, expanded, assignment, rounds, covers,
                 literals, seconds):
        self.graph = graph
        self.expanded = expanded
        self.assignment = assignment
        self.rounds = rounds
        self.covers = covers
        self.literals = literals
        self.seconds = seconds

    @property
    def initial_states(self):
        return self.graph.num_states

    @property
    def final_states(self):
        return self.expanded.num_states

    @property
    def initial_signals(self):
        return len(self.graph.signals)

    @property
    def final_signals(self):
        return len(self.graph.signals) + self.assignment.num_signals

    @property
    def state_signals(self):
        return self.assignment.num_signals

    def __repr__(self):
        return (
            f"LavagnoResult(states {self.initial_states}->"
            f"{self.final_states}, signals {self.initial_signals}->"
            f"{self.final_signals}, literals={self.literals}, "
            f"{self.seconds:.2f}s)"
        )


def lavagno_synthesis(stg, options=None):
    """Synthesise by sequential whole-graph state-signal insertion.

    Parameters
    ----------
    stg:
        A :class:`~repro.stg.model.SignalTransitionGraph` or a prebuilt
        :class:`~repro.stategraph.graph.StateGraph`.
    options:
        A :class:`~repro.runtime.options.SynthesisOptions`; this method
        reads ``limits`` (SAT budget per round), ``minimize`` (also
        derive covers and literal counts), ``engine`` and
        ``signal_prefix`` (default ``"lm"``).

    Returns
    -------
    LavagnoResult
    """
    from repro.runtime.options import coerce_options

    opts = coerce_options(options, "lavagno_synthesis")
    limits = opts.limits
    engine = opts.engine
    signal_prefix = opts.resolved_prefix("lm")
    watch = Stopwatch()
    if isinstance(stg, StateGraph):
        graph = stg
    else:
        graph = build_state_graph(stg)

    assignment = Assignment.empty(graph.num_states)
    rounds = []
    for _round in range(_MAX_ROUNDS):
        conflicts = csc_conflicts(
            graph,
            extra_codes=assignment.cur_bits(),
            extra_implied=assignment.implied_bits(),
        )
        if not conflicts:
            break
        target = _largest_class_conflicts(graph, assignment, conflicts)
        with obs.span("lavagno_round", round=_round):
            outcome = solve_state_signals(
                graph,
                extra_codes=assignment.cur_bits(),
                extra_implied=assignment.implied_bits(),
                conflict_pairs=target,
                limits=limits,
                engine=engine,
                on_limit="skip",
                sat_mode=opts.sat_mode,
            )
        names = [
            f"{signal_prefix}{assignment.num_signals + k}"
            for k in range(outcome.m)
        ]
        assignment = assignment.extended(names, outcome.rows)
        rounds.append(outcome.attempts)
    else:
        raise SynthesisError(
            f"sequential insertion did not converge in {_MAX_ROUNDS} rounds"
        )

    # Expansion-level violations (interleaving corner cases) get the same
    # verify-and-repair treatment as the other methods.
    from repro.csc.synthesis import _repair

    with obs.span("repair"):
        assignment, expanded, repair_attempts = _repair(
            graph, assignment, limits, 12, signal_prefix, engine
        )
    if repair_attempts:
        rounds.append(repair_attempts)
    assert_csc(expanded, context="lavagno baseline result")
    from repro.csc.synthesis import _assert_realizable

    _assert_realizable(graph, assignment)

    covers = literals = None
    if opts.minimize:
        from repro.logic.extract import synthesize_logic

        with obs.span("minimize"):
            covers, literals = synthesize_logic(expanded)
    return LavagnoResult(
        graph, expanded, assignment, rounds, covers, literals,
        watch.elapsed(),
    )


def _largest_class_conflicts(graph, assignment, conflicts):
    """Conflict pairs of the same-code class with the most of them.

    Sequential insertion attacks one class per round, mimicking the
    one-signal-at-a-time style of the original algorithm.
    """
    extra = assignment.cur_bits()

    def class_key(pair):
        state = pair[0]
        return graph.code_of(state) + tuple(extra[state])

    by_class = {}
    for pair in conflicts:
        by_class.setdefault(class_key(pair), []).append(pair)
    return max(by_class.values(), key=len)
