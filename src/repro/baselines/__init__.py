"""Baseline synthesis methods the paper compares against.

* :mod:`repro.baselines.lavagno` -- a state-table-level baseline in the
  spirit of Lavagno & Moon et al. (DAC'92): whole-graph state assignment
  with state signals inserted one at a time (see DESIGN.md §4 for the
  substitution rationale).
"""

from repro.baselines.lavagno import LavagnoResult, lavagno_synthesis

__all__ = ["LavagnoResult", "lavagno_synthesis"]
