"""Parser for the astg ``.g`` signal transition graph format.

This is the text format the classic asynchronous benchmark suites (SIS,
petrify, workcraft) use::

    .model nak-pa
    .inputs req ack
    .outputs done
    .graph
    req+ done+
    done+ ack+
    p0 req+
    ack+ p0
    .marking { <ack+,p0> }
    .end

``.graph`` lines list a source node followed by its successor nodes.  A
token is a *transition* when it parses as ``signal+``/``signal-`` (with an
optional ``/k`` instance suffix) over a declared signal, or when it names a
declared ``.dummy``; every other token is an explicit *place*.  An arc
between two transitions goes through an implicit place, named
``<source,target>`` as in the original tools, and the ``.marking`` section
may mark implicit places with that bracket syntax.
"""

from __future__ import annotations

from repro.petrinet.net import PetriNet
from repro.petrinet.builder import implicit_place_name
from repro.runtime.faults import should_fire as _fault_fires
from repro.stg.errors import GFormatError
from repro.stg.model import (
    DUMMY,
    SignalTransitionGraph,
    SignalType,
    TransitionLabel,
)

_TYPE_DIRECTIVES = {
    ".inputs": SignalType.INPUT,
    ".outputs": SignalType.OUTPUT,
    ".internal": SignalType.INTERNAL,
}

_IGNORED_DIRECTIVES = (".capacity", ".slowenv", ".coords")


def parse_g_file(path):
    """Parse a ``.g`` file from disk."""
    with open(path, encoding="utf-8") as handle:
        return parse_g(handle.read(), name_hint=str(path))


def parse_g(text, name_hint="stg"):
    """Parse ``.g`` source text into a :class:`SignalTransitionGraph`."""
    if _fault_fires("parse-error"):
        raise GFormatError("injected fault: parse error")
    state = _ParserState(name_hint)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        state.feed(line, lineno)
    return state.finish()


class _ParserState:
    def __init__(self, name_hint):
        self.name = name_hint
        self.signal_types = {}
        self.dummies = set()
        self.graph_lines = []
        self.marking_tokens = []
        self.in_graph = False
        self.saw_graph = False
        self.saw_end = False

    def feed(self, line, lineno):
        if self.saw_end:
            raise GFormatError("content after .end", lineno)
        if line.startswith("."):
            self._directive(line, lineno)
        elif self.in_graph:
            self.graph_lines.append((line.split(), lineno))
        else:
            raise GFormatError(f"unexpected line {line!r}", lineno)

    def _directive(self, line, lineno):
        parts = line.split()
        keyword = parts[0]
        if keyword == ".model" or keyword == ".name":
            if len(parts) != 2:
                raise GFormatError(".model needs exactly one name", lineno)
            self.name = parts[1]
        elif keyword in _TYPE_DIRECTIVES:
            for signal in parts[1:]:
                if signal in self.signal_types:
                    raise GFormatError(
                        f"signal {signal!r} declared twice", lineno
                    )
                self.signal_types[signal] = _TYPE_DIRECTIVES[keyword]
        elif keyword == ".dummy":
            self.dummies.update(parts[1:])
        elif keyword == ".graph":
            if self.saw_graph:
                raise GFormatError("duplicate .graph section", lineno)
            self.in_graph = True
            self.saw_graph = True
        elif keyword == ".marking":
            self.in_graph = False
            body = line[len(".marking"):].strip()
            if not (body.startswith("{") and body.endswith("}")):
                raise GFormatError(".marking body must be { ... }", lineno)
            self.marking_tokens = _split_marking(body[1:-1], lineno)
        elif keyword == ".end":
            self.in_graph = False
            self.saw_end = True
        elif keyword in _IGNORED_DIRECTIVES:
            self.in_graph = False
        else:
            raise GFormatError(f"unknown directive {keyword!r}", lineno)

    # -- assembly ---------------------------------------------------------

    def _is_transition(self, token):
        base = token.partition("/")[0]
        if token in self.dummies or base in self.dummies:
            return True
        if base.endswith(("+", "-")):
            return base[:-1] in self.signal_types
        return False

    def finish(self):
        if not self.saw_graph:
            raise GFormatError("missing .graph section")
        if not self.saw_end:
            raise GFormatError("missing .end")

        transitions = set()
        places = set()
        arc_pairs = []
        for tokens, lineno in self.graph_lines:
            if len(tokens) < 2:
                raise GFormatError(
                    "graph line needs a source and at least one target",
                    lineno,
                )
            for token in tokens:
                if self._is_transition(token):
                    transitions.add(token)
                else:
                    places.add(token)
            source = tokens[0]
            for target in tokens[1:]:
                arc_pairs.append((source, target, lineno))

        collisions = transitions & places
        if collisions:
            raise GFormatError(
                f"tokens used as both place and transition: "
                f"{sorted(collisions)}"
            )

        arcs = []
        for source, target, lineno in arc_pairs:
            src_is_t = source in transitions
            tgt_is_t = target in transitions
            if src_is_t and tgt_is_t:
                middle = implicit_place_name(source, target)
                if middle in places:
                    raise GFormatError(
                        f"duplicate arc {source} -> {target}", lineno
                    )
                places.add(middle)
                arcs.append((source, middle))
                arcs.append((middle, target))
            else:
                arcs.append((source, target))

        marking = {}
        for token, lineno in self.marking_tokens:
            place, count = _marking_entry(token, lineno)
            if place not in places:
                raise GFormatError(
                    f"marking references unknown place {place!r}", lineno
                )
            marking[place] = marking.get(place, 0) + count

        net = PetriNet(places, transitions, arcs, marking)
        labels = {}
        for transition in transitions:
            base = transition.partition("/")[0]
            if transition in self.dummies or base in self.dummies:
                labels[transition] = TransitionLabel(None, DUMMY, 1)
            else:
                labels[transition] = TransitionLabel.parse(transition)
        return SignalTransitionGraph(
            net, self.signal_types, labels, name=self.name
        )


def _split_marking(body, lineno):
    """Split a marking body into tokens, keeping ``<a,b>`` entries whole."""
    tokens = []
    current = []
    depth = 0
    for char in body:
        if char == "<":
            depth += 1
        elif char == ">":
            depth -= 1
            if depth < 0:
                raise GFormatError("unbalanced '>' in .marking", lineno)
        if char.isspace() and depth == 0:
            if current:
                tokens.append(("".join(current), lineno))
                current = []
        else:
            current.append(char)
    if depth != 0:
        raise GFormatError("unbalanced '<' in .marking", lineno)
    if current:
        tokens.append(("".join(current), lineno))
    return tokens


def _marking_entry(token, lineno):
    """Parse one marking token into ``(place_name, count)``.

    Supports ``p``, ``p=2``, and ``<a+,b->`` implicit-place syntax.
    """
    count = 1
    if token.startswith("<"):
        # The count suffix sits after the closing bracket: ``<a,b>=2``.
        head, bracket, tail = token.rpartition(">")
        if bracket and tail.startswith("="):
            token = head + bracket
            tail = tail[1:]
            try:
                count = int(tail)
            except ValueError:
                raise GFormatError(
                    f"bad token count in marking entry {token!r}", lineno
                ) from None
    elif "=" in token:
        token, _eq, count_text = token.partition("=")
        try:
            count = int(count_text)
        except ValueError:
            raise GFormatError(
                f"bad token count in marking entry {token!r}", lineno
            ) from None
    if token.startswith("<") and token.endswith(">"):
        inner = token[1:-1]
        source, comma, target = inner.partition(",")
        if not comma:
            raise GFormatError(
                f"bad implicit place {token!r} in marking", lineno
            )
        return implicit_place_name(source, target), count
    return token, count
