"""Canonical ``.g`` serialisation for content-addressed caching.

Two ``.g`` files that describe the same signal transition graph can
differ in ways that change no behaviour: explicit places carry arbitrary
names, a single-fanin/fanout place between two transitions can be spelt
either as a named place or as a direct arc, sections and marking entries
can be listed in any order, and whitespace is free.  The persistent
:class:`~repro.perf.result_cache.ResultCache` keys on file *content*, so
all of those spellings must hash equal.

:func:`canonical_g` produces the normal form:

* signal declarations are sorted;
* every explicit place with one fanin, one fanout and at most one token
  is collapsed to a direct transition-to-transition arc (the implicit
  ``<a,b>`` form), exactly as the writer does for bracket-named places;
* the remaining explicit places are renamed ``p0, p1, ...`` in the order
  of their structural signature (sorted preset, sorted postset, token
  count), so the original names never reach the output;
* graph lines, their targets and the marking entries are sorted (the
  writer's own normalisation).

The result is a fixed point: ``canonical_g(parse_g(canonical_g(stg)))``
returns the same text.  :func:`g_fingerprint` is the SHA-256 of that
text -- the "canonicalized ``.g``" component of every cache key.
"""

from __future__ import annotations

import hashlib

from repro.petrinet.builder import implicit_place_name
from repro.petrinet.net import PetriNet
from repro.stg.model import SignalTransitionGraph
from repro.stg.write import write_g


def canonical_g(stg):
    """The canonical ``.g`` serialisation of an STG.

    Returns text equal for every ``.g`` spelling of the same net: place
    names are structural, marking entries and sections are sorted.
    """
    return write_g(_normalised(stg))


def g_fingerprint(stg_or_text):
    """SHA-256 hex digest of the canonical ``.g`` form.

    Accepts a :class:`~repro.stg.model.SignalTransitionGraph` or raw
    ``.g`` source text (which is parsed first, so two texts with
    different place names hash equal).
    """
    if isinstance(stg_or_text, str):
        from repro.stg.parse import parse_g

        stg_or_text = parse_g(stg_or_text)
    text = canonical_g(stg_or_text)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _normalised(stg):
    """A copy of ``stg`` with structurally canonical place names."""
    net = stg.net
    marking = dict(net.initial_marking.items())
    rename = {}
    collapsible = []
    explicit = []
    for place in net.places:
        pre = sorted(net.place_preset(place))
        post = sorted(net.place_postset(place))
        if len(pre) == 1 and len(post) == 1 and marking.get(place, 0) <= 1:
            collapsible.append((place, pre[0], post[0]))
        else:
            explicit.append((place, pre, post))

    taken = set()
    for place, source, target in sorted(
        collapsible, key=lambda entry: (entry[1], entry[2])
    ):
        name = implicit_place_name(source, target)
        if name in taken:
            # A parallel redundant place on an arc that already has an
            # implicit one: keep it explicit so both survive.
            explicit.append(
                (place, [source], [target])
            )
            continue
        taken.add(name)
        rename[place] = name

    # Remaining explicit places: rename by structural signature.  Places
    # sharing a signature are interchangeable, so any fixed assignment
    # among them yields the same serialisation.
    def signature(entry):
        place, pre, post = entry
        return (pre, post, marking.get(place, 0))

    for index, (place, _pre, _post) in enumerate(
        sorted(explicit, key=signature)
    ):
        name = f"p{index}"
        while name in net.transitions or name in taken:
            name += "_"  # deterministic: depends only on net content
        taken.add(name)
        rename[place] = name

    places = {rename[p] for p in net.places}
    arcs = []
    for source, target in net.arcs():
        arcs.append((
            rename.get(source, source), rename.get(target, target),
        ))
    new_marking = {
        rename[place]: count for place, count in marking.items()
    }
    new_net = PetriNet(places, set(net.transitions), arcs, new_marking)
    return SignalTransitionGraph(
        new_net,
        {s: stg.signal_type(s) for s in stg.signals},
        stg.labels(),
        name=stg.name,
    )
