"""Signal transition graphs (STGs).

An STG interprets Petri net transitions as rising (``a+``) and falling
(``a-``) edges of circuit signals (paper, Section 2).  This package holds
the STG model itself, the astg ``.g`` file format used by the classic
benchmark suites (SIS, petrify), validation of the properties synthesis
relies on, and behaviour-preserving transformations such as signal hiding.
"""

from repro.stg.errors import (
    GFormatError,
    StgError,
    StgValidationError,
)
from repro.stg.model import (
    DUMMY,
    FALL,
    RISE,
    SignalTransitionGraph,
    SignalType,
    TransitionLabel,
)
from repro.stg.generate import GeneratedStg, generate_corpus, generate_stg
from repro.stg.load import load_stg
from repro.stg.parse import parse_g, parse_g_file
from repro.stg.write import write_g
from repro.stg.canonical import canonical_g, g_fingerprint
from repro.stg.validate import validate_stg
from repro.stg.transform import hide_signals, mirror_signals, rename_signals

__all__ = [
    "DUMMY",
    "FALL",
    "GFormatError",
    "GeneratedStg",
    "RISE",
    "SignalTransitionGraph",
    "SignalType",
    "StgError",
    "StgValidationError",
    "TransitionLabel",
    "canonical_g",
    "g_fingerprint",
    "generate_corpus",
    "generate_stg",
    "hide_signals",
    "load_stg",
    "mirror_signals",
    "parse_g",
    "parse_g_file",
    "rename_signals",
    "validate_stg",
    "write_g",
]
