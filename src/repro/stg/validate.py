"""STG validation.

Checks the properties synthesis relies on before any state graph is built:

* the underlying net is bounded (exploration terminates) and 1-safe;
* every declared signal actually has transitions;
* rising and falling transitions of every signal alternate consistently
  along every firing sequence (a prerequisite of the consistent state
  assignment of Section 2 -- the full check happens during state graph
  construction, this one gives earlier, cheaper diagnostics);
* optionally, the net is live (no reachable deadlock and no dead
  transitions), which non-terminating interface circuits require.
"""

from __future__ import annotations

from repro.petrinet.properties import is_live
from repro.petrinet.reachability import reachability_graph
from repro.stg.errors import StgValidationError


def validate_stg(stg, require_live=False, require_safe=True, graph=None):
    """Validate ``stg``; raises :class:`StgValidationError` on failure.

    Returns the reachability graph so callers can reuse it.
    """
    net = stg.net
    for signal in stg.signals:
        if not stg.transitions_of(signal):
            raise StgValidationError(
                f"signal {signal!r} is declared but has no transitions"
            )

    if graph is None:
        graph = reachability_graph(net)

    if require_safe:
        for marking in graph.markings:
            if not marking.is_safe():
                raise StgValidationError(
                    f"net is not 1-safe: marking {marking!r} reachable"
                )

    _check_alternation(stg, graph)

    if require_live and not is_live(net, graph=graph):
        raise StgValidationError("underlying net is not live")
    return graph


def _check_alternation(stg, graph):
    """Verify each signal's value is a consistent function of the marking.

    Propagates a per-signal binary value from the initial marking across
    every reachability edge: a ``s+`` edge forces value 0 before and 1
    after, ``s-`` the reverse, any other edge leaves the value unchanged.
    A contradiction means the STG's rises and falls do not alternate.
    """
    for signal in stg.signals:
        values = {}  # marking -> 0/1, only where forced
        # Seed from every edge labelled with this signal, then propagate.
        forced = []
        for source, transition, target in graph.edges:
            label = stg.label(transition)
            if label.signal != signal:
                continue
            before, after = (0, 1) if label.is_rise else (1, 0)
            for marking, value in ((source, before), (target, after)):
                if values.get(marking, value) != value:
                    raise StgValidationError(
                        f"signal {signal!r} does not alternate consistently "
                        f"at {marking!r}"
                    )
                values[marking] = value
            forced.append(source)
            forced.append(target)
        # Propagate across edges that do not move this signal.
        pending = list(values)
        while pending:
            marking = pending.pop()
            value = values[marking]
            for transition, successor in graph.successors(marking):
                if stg.label(transition).signal == signal:
                    continue
                if successor in values:
                    if values[successor] != value:
                        raise StgValidationError(
                            f"signal {signal!r} has inconsistent value at "
                            f"{successor!r}"
                        )
                else:
                    values[successor] = value
                    pending.append(successor)
            for transition, predecessor in graph.predecessors(marking):
                if stg.label(transition).signal == signal:
                    continue
                if predecessor in values:
                    if values[predecessor] != value:
                        raise StgValidationError(
                            f"signal {signal!r} has inconsistent value at "
                            f"{predecessor!r}"
                        )
                else:
                    values[predecessor] = value
                    pending.append(predecessor)
