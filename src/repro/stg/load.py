"""One loader for every way an STG reaches the toolkit.

The CLI historically parsed paths, the bench runner had its own file
helper, and the service accepts raw uploads.  :func:`load_stg` folds the
three shapes into one entry point so every front end -- ``python -m
repro``, :func:`repro.synthesize`, the HTTP service, the benchmark
loaders -- shares the same dispatch rule:

* a :class:`~repro.stg.model.SignalTransitionGraph` is returned as-is;
* a string (or :class:`os.PathLike`) that *looks like* ``.g`` source --
  it contains a newline or starts with a ``.`` directive -- is parsed
  as text;
* any other string is treated as a filesystem path.

The text-vs-path rule is safe because every non-empty ``.g`` document
is multi-line (it needs at least ``.graph`` … ``.end``) while no real
benchmark path contains a newline, and a path starting with ``"."``
that is meant as a file can always be spelled ``"./…"``.
"""

from __future__ import annotations

import os

from repro.stg.model import SignalTransitionGraph
from repro.stg.parse import parse_g, parse_g_file


def load_stg(source, name_hint=None):
    """Load an STG from a parsed graph, a ``.g`` path, or ``.g`` text.

    Parameters
    ----------
    source:
        A :class:`~repro.stg.model.SignalTransitionGraph` (returned
        unchanged), a path to a ``.g`` file, or raw ``.g`` source text.
    name_hint:
        Model-name fallback used when parsing text without a ``.model``
        line; ignored for graphs and defaulted to the path for files.

    Returns
    -------
    SignalTransitionGraph

    Raises
    ------
    TypeError
        ``source`` is none of the accepted shapes.
    GFormatError
        The ``.g`` document is malformed.
    OSError
        A path that cannot be read.
    """
    if isinstance(source, SignalTransitionGraph):
        return source
    if isinstance(source, os.PathLike):
        return parse_g_file(os.fspath(source))
    if isinstance(source, str):
        if "\n" in source or source.lstrip().startswith("."):
            return parse_g(source, name_hint=name_hint or "stg")
        return parse_g_file(source)
    raise TypeError(
        f"load_stg() expects a SignalTransitionGraph, a .g path, or .g "
        f"source text, not {type(source).__name__}"
    )
