"""Random live/safe free-choice STG generator.

The Table-1 corpus is 23 circuits; a service worth load-testing needs
thousands.  :func:`generate_stg` grows that corpus synthetically: it
assembles a random *phase cycle* from the same structural vocabulary the
bench generator (:mod:`repro.bench.generators`) distils out of the real
benchmarks -- return-to-zero handshake branches, ``Par`` forks, and
free-choice ``Choice`` splits -- so every generated net is live, safe,
and free-choice *by construction*, and :func:`generate_stg` verifies all
three before returning.

Knobs:

* ``signals`` -- target count of handshake signals (one input + one
  output per handshake pair; echo outputs come on top).
* ``width`` -- maximum branches of a ``Par`` fork (1 disables
  concurrency).
* ``csc_density`` -- probability that a phase is followed by an *echo
  tail*, an output pulse ``e+ e-`` that re-uses the state code of the
  cycle's restart point and thereby plants the classic CSC conflict.
  0.0 generates CSC-clean controllers; 1.0 echoes after every phase.
* ``seed`` -- the full structure is a deterministic function of the
  knobs and the seed.

Exposed on the CLI as ``python -m repro generate``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bench.generators import Choice, Par, build_g


@dataclass(frozen=True)
class GeneratedStg:
    """One generated circuit: its ``.g`` source plus structure stats.

    ``stg`` holds the parsed and validated
    :class:`~repro.stg.model.SignalTransitionGraph`; ``g_text`` the
    exact source that parses to it.  The counters describe the
    structure the knobs produced (phases by kind, echo tails planted).
    """

    name: str
    g_text: str
    stg: object
    seed: int
    signals: int
    pairs: int
    par_phases: int
    choice_phases: int
    plain_phases: int
    echoes: int

    def stats(self):
        """Structure counters as a plain dict (for journals/BENCH rows)."""
        return {
            "signals": self.signals,
            "pairs": self.pairs,
            "par_phases": self.par_phases,
            "choice_phases": self.choice_phases,
            "plain_phases": self.plain_phases,
            "echoes": self.echoes,
        }


def generate_stg(signals=6, width=2, csc_density=0.0, seed=0, name=None,
                 validate=True):
    """Generate one random live/safe free-choice STG.

    Parameters
    ----------
    signals:
        Target handshake signal count (>= 2); rounded down to whole
        input/output pairs.  Echo outputs planted by ``csc_density``
        add to the final count.
    width:
        Maximum concurrent branches per ``Par`` phase (>= 1).
    csc_density:
        Probability in [0, 1] of an echo tail after each phase.
    seed:
        Seed for the structure; the same knobs and seed always return
        the same circuit.
    name:
        Model name (default ``gen-s<signals>-w<width>-<seed>``).
    validate:
        Re-check liveness, safeness, free-choice and STG consistency on
        the parsed net (on by default; the load-test generator leaves
        it on, it is cheap at these sizes).

    Returns
    -------
    GeneratedStg
    """
    if signals < 2:
        raise ValueError(f"signals must be >= 2, not {signals!r}")
    if width < 1:
        raise ValueError(f"width must be >= 1, not {width!r}")
    if not 0.0 <= csc_density <= 1.0:
        raise ValueError(
            f"csc_density must be in [0, 1], not {csc_density!r}"
        )

    rng = random.Random(seed)
    pairs = max(1, signals // 2)
    if name is None:
        name = f"gen-s{signals}-w{width}-{seed}"

    def handshake(k):
        """Return-to-zero handshake of pair ``k``: req in, ack out."""
        return [f"a{k}+", f"b{k}+", f"a{k}-", f"b{k}-"]

    # Pair 0 frames the cycle (build_g needs plain first/last events);
    # the remaining pairs are grouped into random phases.
    cycle = [f"a0+", f"b0+"]
    par_phases = choice_phases = plain_phases = 0
    echoes = 0
    remaining = list(range(1, pairs))
    rng.shuffle(remaining)

    def maybe_echo():
        """Plant an echo tail (an output pulse) after the last phase."""
        nonlocal echoes
        if rng.random() < csc_density:
            echoes += 1
            cycle.append(f"e{echoes}+")
            cycle.append(f"e{echoes}-")

    while remaining:
        take = min(len(remaining), max(2, min(width, len(remaining))))
        kind = rng.random()
        if width > 1 and len(remaining) >= 2 and kind < 0.4:
            branches = [handshake(remaining.pop()) for _ in range(take)]
            cycle.append(Par(*branches))
            par_phases += 1
        elif len(remaining) >= 2 and kind < 0.7:
            alternatives = [handshake(remaining.pop()) for _ in range(2)]
            cycle.append(Choice(*alternatives))
            choice_phases += 1
        else:
            cycle.extend(handshake(remaining.pop()))
            plain_phases += 1
        # A block must sit between plain events: close it with the next
        # framing edge before another block can start.  The echo pulse
        # doubles as that plain separator when one is planted.
        maybe_echo()
        if remaining and not isinstance(cycle[-1], str):
            k = remaining.pop()
            cycle.extend(handshake(k))
            plain_phases += 1
            maybe_echo()

    if not isinstance(cycle[-1], str):
        maybe_echo()
    cycle.extend([f"a0-", f"b0-"])

    inputs = [f"a{k}" for k in range(pairs)]
    outputs = [f"b{k}" for k in range(pairs)]
    outputs += [f"e{j}" for j in range(1, echoes + 1)]
    g_text = build_g(name, inputs, outputs, cycle)

    from repro.stg.load import load_stg

    stg = load_stg(g_text, name_hint=name)
    if validate:
        _check_generated(stg)

    return GeneratedStg(
        name=name, g_text=g_text, stg=stg, seed=seed,
        signals=len(inputs) + len(outputs), pairs=pairs,
        par_phases=par_phases, choice_phases=choice_phases,
        plain_phases=plain_phases, echoes=echoes,
    )


def generate_corpus(count, signals=6, width=2, csc_density=0.0, seed=0,
                    validate=True):
    """Generate ``count`` circuits; circuit ``i`` uses seed ``seed + i``.

    The knobs are shared; variation comes from the per-circuit seed, so
    a corpus is reproducible from ``(count, knobs, seed)`` alone.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, not {count!r}")
    return [
        generate_stg(
            signals=signals, width=width, csc_density=csc_density,
            seed=seed + i, validate=validate,
        )
        for i in range(count)
    ]


def _check_generated(stg):
    """Assert the generator's by-construction guarantees on the result."""
    from repro.petrinet.properties import is_free_choice, is_safe
    from repro.stg.errors import StgValidationError
    from repro.stg.validate import validate_stg

    graph = validate_stg(stg, require_live=True, require_safe=True)
    if not is_free_choice(stg.net):
        raise StgValidationError(
            f"generated net {stg.name!r} is not free-choice"
        )
    # validate_stg already rejects unsafe nets; re-assert on the same
    # reachability graph so a validator regression cannot slip through.
    if not is_safe(stg.net, graph=graph):
        raise StgValidationError(f"generated net {stg.name!r} is not safe")
    return graph
