"""Writer for the astg ``.g`` format.

``write_g(parse_g(text))`` round-trips to an equivalent STG: implicit
places (those named ``<source,target>`` with a single fanin and fanout)
are written back as direct transition-to-transition arcs, explicit places
keep their names.
"""

from __future__ import annotations

import re

_IMPLICIT = re.compile(r"^<.*,.*>$")


def _is_implicit(net, place):
    return (
        _IMPLICIT.match(place)
        and len(net.place_preset(place)) == 1
        and len(net.place_postset(place)) == 1
    )


def write_g(stg):
    """Serialise a :class:`~repro.stg.model.SignalTransitionGraph`.

    Returns the ``.g`` source as a string.
    """
    net = stg.net
    lines = [f".model {stg.name}"]
    if stg.inputs:
        lines.append(".inputs " + " ".join(stg.inputs))
    if stg.outputs:
        lines.append(".outputs " + " ".join(stg.outputs))
    if stg.internals:
        lines.append(".internal " + " ".join(stg.internals))
    dummies = stg.dummy_transitions()
    if dummies:
        lines.append(".dummy " + " ".join(dummies))
    lines.append(".graph")

    for transition in sorted(net.transitions):
        targets = []
        for place in sorted(net.postset(transition)):
            if _is_implicit(net, place):
                (successor,) = net.place_postset(place)
                targets.append(successor)
            else:
                targets.append(place)
        if targets:
            lines.append(" ".join([transition] + sorted(targets)))
    for place in sorted(net.places):
        if _is_implicit(net, place):
            continue
        successors = sorted(net.place_postset(place))
        if successors:
            lines.append(" ".join([place] + successors))

    entries = []
    for place, count in stg.net.initial_marking.items():
        token = place  # implicit places are already "<source,target>"
        if count != 1:
            token = f"{token}={count}"
        entries.append(token)
    lines.append(".marking { " + " ".join(sorted(entries)) + " }")
    lines.append(".end")
    return "\n".join(lines) + "\n"
