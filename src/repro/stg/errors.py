"""Exception hierarchy for the STG layer."""

from repro.petrinet.errors import PetriNetError


class StgError(PetriNetError):
    """Base class for STG-level errors."""

    kind = "stg"


class GFormatError(StgError):
    """A ``.g`` file could not be parsed.

    Carries the 1-based line number when known.
    """

    kind = "g-format"

    def __init__(self, message, line=None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message, line=line)
        self.line = line


class StgValidationError(StgError):
    """The STG violates a property synthesis depends on.

    Examples: a signal whose rising/falling transitions do not alternate,
    an unbounded underlying net, a transition labelled with an undeclared
    signal.
    """

    kind = "stg-validation"
