"""Behaviour-preserving STG transformations.

The modular partitioning method works almost entirely at the state graph
level, but two STG-level operations are still needed: *hiding* signals
(relabelling their transitions as silent ε / dummy transitions -- the
paper's "labeling all the transitions of signal s_i as ε transitions"),
and renaming.  ``mirror_signals`` swaps the input/output role of signals,
which is handy for building environment models in tests and examples.
"""

from __future__ import annotations

from repro.stg.errors import StgError
from repro.stg.model import DUMMY, SignalTransitionGraph, SignalType, TransitionLabel


def hide_signals(stg, signals, drop_declarations=True):
    """Relabel every transition of the given signals as a dummy (ε).

    Parameters
    ----------
    stg:
        The source STG (not modified).
    signals:
        Iterable of signal names to hide.
    drop_declarations:
        When true (default), the hidden signals are also removed from the
        signal declarations, so they no longer contribute state code bits.

    Returns
    -------
    SignalTransitionGraph
    """
    hidden = set(signals)
    unknown = hidden - set(stg.signals)
    if unknown:
        raise StgError(f"cannot hide undeclared signals: {sorted(unknown)}")

    labels = {}
    for transition, label in stg.labels().items():
        if not label.is_dummy and label.signal in hidden:
            labels[transition] = TransitionLabel(None, DUMMY, 1)
        else:
            labels[transition] = label

    if drop_declarations:
        types = {
            s: t
            for s, t in ((s, stg.signal_type(s)) for s in stg.signals)
            if s not in hidden
        }
    else:
        types = {s: stg.signal_type(s) for s in stg.signals}
    return stg.relabelled(labels, signal_types=types)


def rename_signals(stg, mapping):
    """Rename signals through ``mapping`` (must be injective)."""
    new_names = {s: mapping.get(s, s) for s in stg.signals}
    if len(set(new_names.values())) != len(new_names):
        raise StgError("signal renaming is not injective")
    types = {new_names[s]: stg.signal_type(s) for s in stg.signals}
    labels = {}
    for transition, label in stg.labels().items():
        if label.is_dummy:
            labels[transition] = label
        else:
            labels[transition] = TransitionLabel(
                new_names[label.signal], label.direction, label.instance
            )
    return stg.relabelled(labels, signal_types=types)


def mirror_signals(stg, signals=None):
    """Swap input and output roles (internal signals are left alone).

    With no ``signals`` argument, mirrors every input and output: the
    result specifies the *environment* of the original circuit.
    """
    chosen = set(stg.signals if signals is None else signals)
    types = {}
    for signal in stg.signals:
        current = stg.signal_type(signal)
        if signal in chosen and current is SignalType.INPUT:
            types[signal] = SignalType.OUTPUT
        elif signal in chosen and current is SignalType.OUTPUT:
            types[signal] = SignalType.INPUT
        else:
            types[signal] = current
    return stg.relabelled(stg.labels(), signal_types=types)
