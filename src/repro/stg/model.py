"""The signal transition graph model.

An STG is a labelled Petri net: each net transition carries a
:class:`TransitionLabel` naming a signal and a direction (rise ``+`` /
fall ``-``), or is a *dummy* (the silent ε transition used by signal
hiding and by some benchmark specifications).

Signals are partitioned into inputs (set ``S_I`` of the paper) and
non-inputs (``S_NI``: outputs and internal signals).  Only non-input
signals get logic functions; inputs are driven by the environment.
"""

from __future__ import annotations

from enum import Enum

from repro.petrinet.net import PetriNet
from repro.stg.errors import StgError, StgValidationError

RISE = "+"
FALL = "-"
#: Direction marker for dummy (silent / ε) transitions.
DUMMY = "~"

_DIRECTIONS = (RISE, FALL)


class SignalType(Enum):
    """Role of a signal in the interface the STG specifies."""

    INPUT = "input"
    OUTPUT = "output"
    INTERNAL = "internal"

    @property
    def is_input(self):
        return self is SignalType.INPUT


class TransitionLabel:
    """An interpreted transition: ``a+``, ``b-/2`` or a dummy ``eps``.

    Attributes
    ----------
    signal:
        Signal name, or ``None`` for a dummy transition.
    direction:
        ``"+"``, ``"-"``, or ``"~"`` for dummies.
    instance:
        1-based instance index, distinguishing multiple transitions of the
        same signal edge (``a+/1`` vs ``a+/2``).
    """

    __slots__ = ("signal", "direction", "instance")

    def __init__(self, signal, direction, instance=1):
        if direction not in (_DIRECTIONS + (DUMMY,)):
            raise StgError(f"bad transition direction {direction!r}")
        if (signal is None) != (direction == DUMMY):
            raise StgError(
                "dummy labels have no signal; signal labels need a direction"
            )
        if instance < 1:
            raise StgError(f"instance index must be >= 1, got {instance}")
        self.signal = signal
        self.direction = direction
        self.instance = instance

    @property
    def is_dummy(self):
        return self.signal is None

    @property
    def is_rise(self):
        return self.direction == RISE

    @property
    def is_fall(self):
        return self.direction == FALL

    @classmethod
    def parse(cls, text):
        """Parse ``a+``, ``b-/3``; a bare name parses as a dummy label."""
        name = text
        instance = 1
        if "/" in name:
            name, _slash, index = name.partition("/")
            try:
                instance = int(index)
            except ValueError:
                raise StgError(f"bad instance index in {text!r}") from None
        if name.endswith(RISE):
            return cls(name[:-1], RISE, instance)
        if name.endswith(FALL):
            return cls(name[:-1], FALL, instance)
        return cls(None, DUMMY, 1)

    def __str__(self):
        if self.is_dummy:
            return "~"
        base = f"{self.signal}{self.direction}"
        if self.instance != 1:
            base += f"/{self.instance}"
        return base

    def __repr__(self):
        return f"TransitionLabel({str(self)!r})"

    def __eq__(self, other):
        if isinstance(other, TransitionLabel):
            return (
                self.signal == other.signal
                and self.direction == other.direction
                and self.instance == other.instance
            )
        return NotImplemented

    def __hash__(self):
        return hash((self.signal, self.direction, self.instance))


class SignalTransitionGraph:
    """A labelled Petri net specifying an asynchronous interface circuit.

    Parameters
    ----------
    net:
        The underlying :class:`~repro.petrinet.net.PetriNet`.
    signal_types:
        Mapping from signal name to :class:`SignalType`.
    labels:
        Mapping from net transition name to :class:`TransitionLabel`.
        Every net transition must be labelled; labels must reference
        declared signals.
    name:
        Optional model name (the ``.model`` line of a ``.g`` file).
    """

    def __init__(self, net, signal_types, labels, name="stg"):
        if not isinstance(net, PetriNet):
            raise StgError("net must be a PetriNet")
        self._net = net
        self._types = dict(signal_types)
        self._labels = dict(labels)
        self.name = name

        missing = net.transitions - set(self._labels)
        if missing:
            raise StgValidationError(
                f"unlabelled net transitions: {sorted(missing)}"
            )
        extra = set(self._labels) - net.transitions
        if extra:
            raise StgValidationError(
                f"labels for unknown transitions: {sorted(extra)}"
            )
        for transition, label in self._labels.items():
            if label.is_dummy:
                continue
            if label.signal not in self._types:
                raise StgValidationError(
                    f"transition {transition!r} uses undeclared signal "
                    f"{label.signal!r}"
                )

    # -- signal views ------------------------------------------------------

    @property
    def net(self):
        return self._net

    @property
    def signals(self):
        """All declared signal names, sorted (the set ``S``)."""
        return sorted(self._types)

    @property
    def inputs(self):
        """Input signal names, sorted (the set ``S_I``)."""
        return sorted(
            s for s, t in self._types.items() if t is SignalType.INPUT
        )

    @property
    def outputs(self):
        """Output signal names, sorted."""
        return sorted(
            s for s, t in self._types.items() if t is SignalType.OUTPUT
        )

    @property
    def internals(self):
        """Internal signal names, sorted."""
        return sorted(
            s for s, t in self._types.items() if t is SignalType.INTERNAL
        )

    @property
    def non_inputs(self):
        """Output and internal signal names, sorted (the set ``S_NI``)."""
        return sorted(
            s for s, t in self._types.items() if t is not SignalType.INPUT
        )

    def signal_type(self, signal):
        if signal not in self._types:
            raise StgError(f"unknown signal {signal!r}")
        return self._types[signal]

    # -- label views ---------------------------------------------------------

    def label(self, transition):
        """The :class:`TransitionLabel` of a net transition."""
        if transition not in self._labels:
            raise StgError(f"unknown transition {transition!r}")
        return self._labels[transition]

    def labels(self):
        """Copy of the full transition->label mapping."""
        return dict(self._labels)

    def transitions_of(self, signal, direction=None):
        """Net transitions of ``signal`` (optionally one direction), sorted."""
        return sorted(
            t
            for t, lab in self._labels.items()
            if lab.signal == signal
            and (direction is None or lab.direction == direction)
        )

    def dummy_transitions(self):
        """Net transitions with dummy labels, sorted."""
        return sorted(t for t, lab in self._labels.items() if lab.is_dummy)

    # -- causal structure -----------------------------------------------------

    def triggers(self, signal):
        """Signals whose transitions directly cause transitions of ``signal``.

        A signal ``s`` is a *trigger* of ``o`` when the STG contains a
        place from some ``s*`` transition to some ``o*`` transition.  This
        is the paper's "direct causal relationship" defining the immediate
        input set (Section 3.2).
        """
        result = set()
        for transition in self.transitions_of(signal):
            for place in self._net.preset(transition):
                for pred in self._net.place_preset(place):
                    pred_label = self._labels[pred]
                    if not pred_label.is_dummy:
                        result.add(pred_label.signal)
        result.discard(signal)
        return sorted(result)

    def immediate_input_set(self, output):
        """The immediate input set ``I`` of an output signal (Section 3.2)."""
        if self.signal_type(output).is_input:
            raise StgError(
                f"{output!r} is an input signal; it has no input set"
            )
        return self.triggers(output)

    # -- derivation --------------------------------------------------------------

    def relabelled(self, labels, signal_types=None, name=None):
        """Copy of this STG with replacement labels (and optionally types)."""
        return SignalTransitionGraph(
            self._net,
            self._types if signal_types is None else signal_types,
            labels,
            self.name if name is None else name,
        )

    def __repr__(self):
        return (
            f"SignalTransitionGraph({self.name!r}, "
            f"signals={len(self._types)}, "
            f"transitions={len(self._labels)})"
        )
