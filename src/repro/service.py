"""Synthesis-as-a-service: the asyncio HTTP front end.

``python -m repro serve`` turns the synthesis pipeline into a small
HTTP service speaking the versioned :mod:`repro.api` wire format:

``POST /synthesize``
    Body is either raw astg ``.g`` source or a ``repro-api/1`` request
    document (:class:`~repro.api.SynthesisRequest` as JSON).  The reply
    is a canonical ``repro-api/1`` response document -- the exact bytes
    :func:`repro.api.to_json_bytes` produces, so duplicate uploads
    replay byte-identically.
``GET /metrics``
    Prometheus text exposition of the service counters
    (``service_requests``, ``service_cache_hits``, ...), the request
    latency histogram and the shared result-cache statistics.
``GET /healthz``
    Liveness probe: ``{"status": "ok", "inflight": n}``.

The front end is a single asyncio event loop; synthesis itself runs on
a bounded worker pool (``--jobs`` processes).  Three layers keep one
request from being computed twice:

1. **Response replay** -- with ``--cache-dir`` set, complete responses
   are stored in the shared sharded :class:`~repro.perf.result_cache.
   ResultCache` under the ``response`` record kind, keyed by
   :meth:`~repro.api.SynthesisRequest.fingerprint` (canonical ``.g``
   text plus the synthesis-relevant knobs), so a repeated upload --
   even reformatted -- replays the stored bytes without touching a
   worker.  Budgeted requests (``timeout_seconds`` set) are never
   cached: a wall-clock-bounded outcome is not a pure function of the
   input (the same contract the module/artifact cache enforces).
2. **In-flight coalescing** -- concurrent identical requests
   single-flight on the leader's future; followers are counted as
   ``service_inflight_dedup`` and served the ``"hit"``-tier bytes.
3. **Worker caches** -- executing workers share the same cache
   directory for module/artifact records, so even a fresh request
   benefits from previously solved modules.

HTTP status codes classify *transport* outcomes only: a synthesis
error or timeout is still a valid API response (200) carrying its own
``status``/``exit_code``; 4xx means the request never reached a worker
(malformed document, invalid STG); 5xx is reserved for infrastructure
failure -- a worker pool that kept dying past the
:class:`~repro.runtime.supervise.RetryPolicy` budget.  A dead pool is
respawned with the policy's deterministic backoff
(``service_worker_respawns``), mirroring the supervised module
dispatch.

Observability: each request runs under a ``service_request`` span (so
``--trace`` journals the service like any run), latencies land in the
``service_request_seconds`` histogram, and the counters feed the
derived ``service_cache_hit_rate`` gauge (``docs/observability.md``).
"""

from __future__ import annotations

import asyncio
import functools
import json
import os
import sys
import time
import traceback
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)

from repro import api, obs
from repro.errors import ReproError
from repro.obs.export import prometheus_text
from repro.obs.metrics import Counters, Histogram
from repro.obs.profile import with_derived
from repro.perf.result_cache import ResultCache
from repro.runtime.supervise import RetryPolicy, WorkerCrashError

#: Result-cache record kind holding whole serialized responses.
RESPONSE_KIND = "response"

#: Largest request body the HTTP layer accepts (a ``.g`` upload is
#: kilobytes; anything near this bound is not a circuit).
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def parse_request(body):
    """Decode a ``POST /synthesize`` body into a
    :class:`~repro.api.SynthesisRequest`.

    A body whose first non-blank character is ``{`` is parsed as a
    ``repro-api/1`` request document; anything else is taken as raw
    ``.g`` source with default knobs.  Raises
    :class:`~repro.api.ApiError` on anything malformed.
    """
    if isinstance(body, (bytes, bytearray)):
        try:
            body = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise api.ApiError(f"body is not UTF-8 text: {exc}") from exc
    stripped = body.lstrip()
    if not stripped:
        raise api.ApiError("empty request body")
    if stripped.startswith("{"):
        value = api.from_json(body)
        if not isinstance(value, api.SynthesisRequest):
            raise api.ApiError(
                "body must be a request document, not a response"
            )
        return value
    return api.SynthesisRequest(g_text=body)


def _execute_request(document, jobs=1, cache_dir=None, verify=True):
    """Run one request end to end; returns the response as a
    ``repro-api/1`` dict.

    Module-level with JSON-safe arguments so it pickles into a process
    pool worker.  The parent already validated the document and the
    ``.g`` text, so an exception escaping here is an infrastructure
    failure, which the service surfaces as HTTP 500.
    """
    from repro.runtime.run import run_synthesis
    from repro.stg.parse import parse_g

    request = api.from_json(document)
    stg = parse_g(request.g_text)
    options = request.to_options(jobs=jobs, cache_dir=cache_dir)
    if not verify:
        # Server-side opt-out (--no-verify): downgrade to the static
        # CSC re-check regardless of what the request asked for.
        options = options.evolve(verify_level="csc")
    report = run_synthesis(stg, method=request.method, options=options)
    response = api.response_from_report(report, model=stg.name)
    return api.to_json(response)


class SynthesisService:
    """The transport-independent request handler behind the HTTP layer.

    Parameters
    ----------
    cache_dir:
        Shared :class:`~repro.perf.result_cache.ResultCache` directory.
        ``None`` disables response replay (responses report
        ``cache="off"``) and worker-side module/artifact caching.
    jobs:
        Worker pool width -- the bound on concurrently *executing*
        requests (each worker runs synthesis with ``jobs=1``; the
        service parallelises across requests, not within one).
    verify:
        Honour each request's ``verify_level`` (default ``"hazards"``:
        gate-level conformance plus persistency) and record the verdict
        in ``response.verified``/``response.verify``.  ``False``
        downgrades every request to the static ``csc`` re-check.
    executor:
        ``"process"`` (default), ``"thread"``, ``"inline"`` (run in the
        event loop thread -- deterministic, for tests), or a zero-arg
        factory returning a :class:`concurrent.futures.Executor` (used
        for every (re)spawn).
    retry:
        :class:`~repro.runtime.supervise.RetryPolicy` governing pool
        respawns after a worker crash; defaults to ``RetryPolicy()``.
    """

    def __init__(self, cache_dir=None, jobs=1, verify=True,
                 executor="process", retry=None):
        self.jobs = max(1, int(jobs))
        self.verify = bool(verify)
        self.cache_dir = (
            os.fspath(cache_dir) if cache_dir is not None else None
        )
        self.cache = (
            ResultCache(self.cache_dir) if self.cache_dir else None
        )
        self.retry = retry if retry is not None else RetryPolicy()
        self.counters = Counters()
        self.histograms = {
            "service_request_seconds": Histogram("service_request_seconds"),
        }
        self._executor_spec = executor
        self._executor = None
        self._generation = 0
        self._inflight = {}

    # -- request handling --------------------------------------------------

    async def synthesize(self, body):
        """Handle one upload; returns ``(http_status, payload_bytes)``.

        Never raises on a request-shaped failure: malformed input comes
        back 400, an unrecoverable worker crash 500, everything else
        200 with the outcome encoded in the response document.
        """
        start = time.perf_counter()
        self._tick("service_requests")
        with obs.span("service_request") as span:
            try:
                status, payload = await self._synthesize(body, span)
            finally:
                elapsed = time.perf_counter() - start
                self.histograms["service_request_seconds"].observe(elapsed)
                obs.observe("service_request_seconds", elapsed)
            span.set("http_status", status)
        return status, payload

    async def _synthesize(self, body, span):
        try:
            request = parse_request(body)
        except api.ApiError as exc:
            return self._reject(400, str(exc))
        try:
            # ``g_text`` is literal source by contract: parse_g, never
            # load_stg, so an upload cannot name a server-side path.
            from repro.stg.parse import parse_g
            from repro.stg.validate import validate_stg

            validate_stg(parse_g(request.g_text))
        except ReproError as exc:
            return self._reject(
                400, f"invalid specification: {exc.describe()}"
            )
        fingerprint = request.fingerprint()
        span.set("fingerprint", fingerprint[:12])

        cacheable = (
            self.cache is not None and request.timeout_seconds is None
        )
        if cacheable:
            payload = self.cache.get(RESPONSE_KIND, fingerprint)
            if payload is not None:
                self._tick("service_cache_hits")
                span.set("tier", "hit")
                return 200, bytes(payload)

        pending = self._inflight.get(fingerprint)
        if pending is not None:
            # Coalesce onto the identical request already executing;
            # shield so one impatient client cannot cancel the leader.
            self._tick("service_inflight_dedup")
            span.set("tier", "dedup")
            try:
                _miss, hit_bytes = await asyncio.shield(pending)
            except WorkerCrashError as exc:
                return self._reject(500, str(exc))
            return 200, hit_bytes

        task = asyncio.ensure_future(
            self._lead(request, fingerprint, cacheable)
        )
        self._inflight[fingerprint] = task
        task.add_done_callback(
            lambda _t: self._inflight.pop(fingerprint, None)
        )
        span.set("tier", "miss" if cacheable else "off")
        try:
            miss_bytes, _hit = await asyncio.shield(task)
        except WorkerCrashError as exc:
            return self._reject(500, str(exc))
        return 200, miss_bytes

    async def _lead(self, request, fingerprint, cacheable):
        """Execute once for every coalesced requester.

        Returns ``(first_bytes, hit_bytes)``: the leader's own response
        (tier ``"miss"``, or ``"off"`` when uncacheable) and the
        ``"hit"`` variant -- the bytes stored for replay and served to
        every follower, so all non-first responses are byte-identical.
        """
        self._tick("service_cache_misses")
        response_doc = await self._execute(
            api.to_json(request), fingerprint
        )
        response = api.from_json(response_doc)
        if response.status in ("error", "timeout"):
            self._tick("service_errors")
        first = response.evolve(cache="miss" if cacheable else "off")
        hit_bytes = api.to_json_bytes(response.evolve(cache="hit"))
        if cacheable and response.ok:
            self.cache.put(RESPONSE_KIND, fingerprint, hit_bytes)
        return api.to_json_bytes(first), hit_bytes

    # -- worker pool -------------------------------------------------------

    async def _execute(self, document, token):
        """Dispatch to the pool, respawning it on crash per the policy."""
        attempt = 0
        while True:
            generation = self._generation
            try:
                return await self._submit(document)
            except BrokenExecutor as exc:
                # Only the first observer of a broken generation kills
                # it; collateral failures must not shoot the fresh pool.
                if self._generation == generation:
                    self._discard_executor()
                    self._tick("service_worker_respawns")
                    obs.add("worker_deaths")
                attempt += 1
                if attempt > self.retry.retries:
                    raise WorkerCrashError(
                        f"service worker died {attempt} times on request "
                        f"{token[:12]}: {exc or type(exc).__name__}"
                    ) from exc
                await asyncio.sleep(self.retry.delay(attempt, token=token))

    async def _submit(self, document):
        call = functools.partial(
            _execute_request, document,
            cache_dir=self.cache_dir, verify=self.verify,
        )
        if self._executor_spec == "inline":
            return call()
        if self._executor is None:
            self._executor = self._make_executor()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, call)

    def _make_executor(self):
        spec = self._executor_spec
        if callable(spec):
            return spec()
        if spec == "process":
            # Never fork: by the time the pool spawns lazily, the event
            # loop and the executor manager thread exist, and a fork
            # then copies locks mid-flight -- workers deadlock on the
            # first submit.  A forkserver (or spawn) context starts
            # workers from a thread-free process.
            import multiprocessing

            try:
                context = multiprocessing.get_context("forkserver")
            except ValueError:  # pragma: no cover - platform-dependent
                context = multiprocessing.get_context("spawn")
            return ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=context
            )
        if spec == "thread":
            return ThreadPoolExecutor(max_workers=self.jobs)
        raise ValueError(
            f"executor must be 'process', 'thread', 'inline' or a "
            f"factory, not {spec!r}"
        )

    def _discard_executor(self):
        self._generation += 1
        pool = self._executor
        self._executor = None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass

    def close(self):
        """Release the worker pool (idempotent)."""
        pool = self._executor
        self._executor = None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    # -- introspection -----------------------------------------------------

    def metrics_text(self):
        """The ``/metrics`` body: Prometheus text of counters,
        the latency histogram, and derived hit rates."""
        totals = Counters()
        totals.merge(self.counters)
        if self.cache is not None:
            stats = self.cache.stats()
            for name in ("hits", "misses", "stale", "stores",
                         "evictions", "io_errors"):
                totals.add(f"result_cache_{name}", stats[name])
        return prometheus_text(
            counters=with_derived(totals), histograms=self.histograms
        )

    def health(self):
        """The ``/healthz`` body."""
        return {"status": "ok", "inflight": len(self._inflight)}

    # -- internals ---------------------------------------------------------

    def _tick(self, counter):
        self.counters.add(counter)
        obs.add(counter)

    def _reject(self, status, message):
        self._tick("service_errors")
        body = json.dumps(
            {"schema": api.API_SCHEMA, "kind": "error", "error": message},
            sort_keys=True,
        ).encode("utf-8")
        return status, body


# -- the HTTP layer --------------------------------------------------------


async def handle_connection(service, reader, writer):
    """Serve HTTP/1.1 requests on one connection until it closes."""
    try:
        while True:
            parsed = await _read_request(reader)
            if parsed is None:
                break
            method, path, headers, body, overlong = parsed
            if overlong:
                status, ctype, payload = 413, "application/json", (
                    b'{"error": "request body too large"}'
                )
            else:
                try:
                    status, ctype, payload = await _route(
                        service, method, path, body
                    )
                except Exception:
                    # A bug must not kill the server; it becomes this
                    # request's 500 and is logged for the operator.
                    traceback.print_exc(file=sys.stderr)
                    status, ctype, payload = 500, "application/json", (
                        b'{"error": "internal server error"}'
                    )
            keep = (
                not overlong
                and headers.get("connection", "").lower() != "close"
            )
            writer.write(_render_response(status, ctype, payload, keep))
            await writer.drain()
            if not keep:
                break
    except (
        asyncio.IncompleteReadError,
        asyncio.LimitOverrunError,
        ConnectionResetError,
    ):
        pass  # client went away mid-request; nothing to answer
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _read_request(reader):
    """One parsed request: ``(method, path, headers, body, overlong)``,
    or ``None`` on a clean EOF between requests."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, path, _version = lines[0].split(" ", 2)
    except ValueError:
        raise asyncio.IncompleteReadError(head, None)
    headers = {}
    for line in lines[1:]:
        if ":" in line:
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0) or 0)
    if length > MAX_BODY_BYTES:
        # Drain what the client already sent, then refuse.
        while length > 0:
            chunk = await reader.read(min(length, 65536))
            if not chunk:
                break
            length -= len(chunk)
        return method, path, headers, b"", True
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body, False


async def _route(service, method, path, body):
    """Dispatch one request; returns ``(status, content_type, bytes)``."""
    path = path.split("?", 1)[0]
    if path == "/synthesize":
        if method != "POST":
            return 405, "application/json", b'{"error": "POST only"}'
        status, payload = await service.synthesize(body)
        return status, "application/json", payload
    if path == "/metrics":
        if method != "GET":
            return 405, "text/plain", b"GET only\n"
        text = service.metrics_text()
        return 200, "text/plain; version=0.0.4", text.encode("utf-8")
    if path == "/healthz":
        if method != "GET":
            return 405, "application/json", b'{"error": "GET only"}'
        payload = json.dumps(service.health(), sort_keys=True)
        return 200, "application/json", payload.encode("utf-8")
    return 404, "application/json", b'{"error": "unknown path"}'


def _render_response(status, content_type, payload, keep_alive):
    reason = _REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {connection}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + payload


async def start_server(service, host="127.0.0.1", port=0):
    """Bind the service; returns the :class:`asyncio.Server` (port 0
    picks a free port -- read it off ``server.sockets``)."""
    return await asyncio.start_server(
        lambda reader, writer: handle_connection(service, reader, writer),
        host=host, port=port,
    )


def run_server(host="127.0.0.1", port=8080, cache_dir=None, jobs=1,
               verify=True, executor="process"):
    """Blocking entry point behind ``python -m repro serve``.

    Prints one ``serving on http://host:port`` line once the socket is
    bound (the smoke tests and the load generator wait for it), then
    serves until interrupted.
    """

    async def _main():
        service = SynthesisService(
            cache_dir=cache_dir, jobs=jobs, verify=verify,
            executor=executor,
        )
        server = await start_server(service, host=host, port=port)
        bound = server.sockets[0].getsockname()
        print(f"serving on http://{bound[0]}:{bound[1]}", flush=True)
        try:
            async with server:
                await server.serve_forever()
        finally:
            service.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0
