"""A run-wide resource budget shared by every stage of the pipeline.

The per-solve :class:`~repro.sat.solver.Limits` budget bounds one SAT
call; nothing bounded the *run* -- state-graph construction, the quotient
per output, the grow-``m`` loops, the repair rounds -- so a single hard
instance could still hang the driver.  :class:`Budget` is the global
counterpart: one wall-clock deadline, one state cap, and one pooled SAT
backtrack allowance, passed down through the pipeline and consulted at
cooperative checkpoints.

Design rules:

* **Checkpoints are cheap.**  ``checkpoint()`` is a clock read and a
  comparison; call sites sprinkle it at loop granularity (every few
  hundred markings, once per SAT attempt, once per output module).
* **Sub-budgets are clipped, not allocated.**  ``sub_limits()`` returns a
  :class:`Limits` whose seconds and backtracks never exceed what is left
  globally, so a solve started near the deadline stops at the deadline,
  not at its own nominal budget.
* **Exhaustion is an exception.**  :class:`BudgetExhaustedError` derives
  from :class:`~repro.errors.ReproError`; the orchestrator catches it and
  turns partial progress into a ``timeout`` :class:`RunReport` instead of
  a crash.
"""

from __future__ import annotations

import time

from repro.errors import ReproError
from repro.obs import add as _obs_add


class BudgetExhaustedError(ReproError):
    """A global budget ran out mid-run.

    ``resource`` names the exhausted dimension (``"wall-clock"``,
    ``"states"`` or ``"backtracks"``); ``point`` the checkpoint that
    noticed.  The synthesis layers may attach a partial
    :class:`~repro.runtime.report.RunReport` as ``report``.
    """

    kind = "timeout"

    def __init__(self, message, resource=None, point=None):
        super().__init__(message, resource=resource, point=point)
        self.resource = resource
        self.point = point
        self.report = None


class Budget:
    """Run-wide budget: deadline, state cap, backtrack pool.

    Parameters
    ----------
    max_seconds:
        Wall-clock allowance for the whole run (``None`` = unlimited).
        The deadline starts counting at construction.
    max_states:
        Cap on the number of states/markings any single graph
        construction may generate.
    max_backtracks:
        Total SAT backtrack pool shared by every solve in the run.
    clock:
        Injectable time source (tests pass a fake to make deadlines
        deterministic).
    """

    def __init__(self, max_seconds=None, max_states=None,
                 max_backtracks=None, clock=time.perf_counter):
        self.max_seconds = max_seconds
        self.max_states = max_states
        self.max_backtracks = max_backtracks
        self._clock = clock
        self.started = clock()
        self.backtracks_used = 0
        self.checkpoints = 0
        #: Checkpoint name that exhausted the budget, when one did.
        self.exhausted_at = None

    @classmethod
    def unlimited(cls):
        """A budget that never exhausts (the default for library calls)."""
        return cls()

    # -- wall clock --------------------------------------------------------

    def elapsed(self):
        return self._clock() - self.started

    def remaining_seconds(self):
        """Seconds left before the deadline; ``None`` when unlimited."""
        if self.max_seconds is None:
            return None
        return self.max_seconds - self.elapsed()

    def expired(self):
        remaining = self.remaining_seconds()
        return remaining is not None and remaining <= 0

    def checkpoint(self, point=""):
        """Cooperative deadline check; raises when the budget is gone.

        Checkpoints double as the tracer's heartbeat: each one adds a
        ``checkpoints`` tick to the current span, giving per-phase
        checkpoint counts for free (a no-op with tracing disabled).
        """
        self.checkpoints += 1
        _obs_add("checkpoints")
        if self.expired():
            self.exhausted_at = point
            raise BudgetExhaustedError(
                f"wall-clock budget of {self.max_seconds:.3g}s exhausted"
                + (f" at {point}" if point else ""),
                resource="wall-clock", point=point,
            )

    # -- state cap ---------------------------------------------------------

    def check_states(self, count, point="state-graph"):
        """Raise when ``count`` generated states exceed the cap."""
        if self.max_states is not None and count > self.max_states:
            self.exhausted_at = point
            raise BudgetExhaustedError(
                f"state budget of {self.max_states} exceeded at {point} "
                f"({count} states)",
                resource="states", point=point,
            )

    # -- backtrack pool ----------------------------------------------------

    def remaining_backtracks(self):
        """Backtracks left in the pool; ``None`` when unlimited."""
        if self.max_backtracks is None:
            return None
        return max(0, self.max_backtracks - self.backtracks_used)

    def charge_backtracks(self, used):
        """Debit one solve's backtracks from the shared pool."""
        self.backtracks_used += used

    def sub_limits(self, limits=None):
        """Clip a per-solve :class:`Limits` to what is left globally.

        Returns ``limits`` unchanged when nothing needs clipping, so the
        zero-budget path costs nothing.
        """
        from repro.sat.solver import Limits

        pool = self.remaining_backtracks()
        wall = self.remaining_seconds()
        if pool is None and wall is None:
            return limits
        if wall is not None:
            wall = max(0.0, wall)
        if limits is None:
            return Limits(max_backtracks=pool, max_seconds=wall)
        return Limits(
            max_backtracks=_min_opt(limits.max_backtracks, pool),
            max_seconds=_min_opt(limits.max_seconds, wall),
        )

    # -- parallel workers --------------------------------------------------

    def split(self, jobs):
        """Per-worker budget slices for ``jobs`` concurrent processes.

        Wall clock is a *shared* dimension: the workers run at the same
        time, so every slice carries the parent's full remaining
        allowance -- they all stop at the same absolute deadline the
        serial run would.  (Splitting the wall ``jobs`` ways would make
        a parallel run give up ``jobs``× *earlier* than the serial one;
        summing per-worker allowances would let it run ``jobs``× longer
        -- the over-commit this method exists to prevent.)

        The backtrack pool is a *consumed* dimension: ``jobs`` workers
        burning the full pool each would over-commit it ``jobs``×, so
        each slice gets ``pool // jobs`` and the parent re-charges the
        workers' actual usage via :meth:`charge_backtracks` at merge.

        Returns a list of ``jobs`` picklable :class:`BudgetSlice`
        values; each worker process reconstructs a live budget with
        :meth:`BudgetSlice.start`.
        """
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        wall = self.remaining_seconds()
        if wall is not None:
            wall = max(0.0, wall)
        pool = self.remaining_backtracks()
        share = None if pool is None else pool // jobs
        return [
            BudgetSlice(
                max_seconds=wall,
                max_states=self.max_states,
                max_backtracks=share,
            )
            for _ in range(jobs)
        ]

    # -- reporting ---------------------------------------------------------

    def snapshot(self):
        """Consumption summary for :class:`~repro.runtime.report.RunReport`."""
        return {
            "elapsed_seconds": self.elapsed(),
            "max_seconds": self.max_seconds,
            "max_states": self.max_states,
            "backtracks_used": self.backtracks_used,
            "max_backtracks": self.max_backtracks,
            "checkpoints": self.checkpoints,
            "exhausted_at": self.exhausted_at,
        }

    def __repr__(self):
        return (
            f"Budget(max_seconds={self.max_seconds}, "
            f"max_states={self.max_states}, "
            f"max_backtracks={self.max_backtracks}, "
            f"elapsed={self.elapsed():.3f}s)"
        )


class BudgetSlice:
    """A picklable worker share of a parent :class:`Budget`.

    Plain data -- no clock, no start time -- so it crosses the process
    boundary; the worker calls :meth:`start` to begin counting on its
    own clock.  Produced by :meth:`Budget.split`.
    """

    __slots__ = ("max_seconds", "max_states", "max_backtracks")

    def __init__(self, max_seconds=None, max_states=None,
                 max_backtracks=None):
        self.max_seconds = max_seconds
        self.max_states = max_states
        self.max_backtracks = max_backtracks

    def __getstate__(self):
        return (self.max_seconds, self.max_states, self.max_backtracks)

    def __setstate__(self, state):
        self.max_seconds, self.max_states, self.max_backtracks = state

    def start(self, clock=time.perf_counter):
        """A live :class:`Budget` counting from now on ``clock``."""
        return Budget(
            max_seconds=self.max_seconds,
            max_states=self.max_states,
            max_backtracks=self.max_backtracks,
            clock=clock,
        )

    def __repr__(self):
        return (
            f"BudgetSlice(max_seconds={self.max_seconds}, "
            f"max_states={self.max_states}, "
            f"max_backtracks={self.max_backtracks})"
        )


def _min_opt(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)
