"""Deterministic fault injection for exercising degradation paths.

Real budget exhaustions need pathological inputs (a 35k-clause formula, a
200k-marking net) that make tests slow and flaky.  Instead, the pipeline
consults this registry at a handful of **named injection points**; a test
arms a point for a bounded number of shots and the instrumented site
fails exactly as the real failure would -- same exception class, same
:data:`~repro.sat.solver.LIMIT` status -- with zero cost when no fault is
armed.

Injection points
----------------
``solver-limit``
    :func:`repro.sat.solve_with` returns a ``LIMIT`` result without
    searching.  ``detail`` is the engine name, so a fault can target one
    rung of the fallback ladder.
``reachability-overflow``
    :func:`repro.petrinet.reachability.reachability_graph` raises
    :class:`~repro.petrinet.errors.UnboundedNetError` immediately.
``bdd-blowup``
    :func:`repro.sat.bdd_engine.solve_bdd` reports ``LIMIT`` as if the
    node table overflowed.
``parse-error``
    :func:`repro.stg.parse.parse_g` raises
    :class:`~repro.stg.errors.GFormatError`.
``module-solve``
    :func:`repro.csc.modular.partition_sat` raises
    :class:`~repro.csc.errors.SynthesisError` for one output's module.
    ``detail`` is the output signal name.
``worker-crash``
    The parallel dispatch (:mod:`repro.csc.parallel`) instructs one
    module's worker process to die with ``os._exit`` on its first
    attempt -- a *real* SIGKILL-shaped death that exercises the
    ``BrokenProcessPool`` recovery of
    :class:`~repro.runtime.supervise.SupervisedPool`, not a simulation
    of it.  ``detail`` is the output signal name.  Consulted
    parent-side at first dispatch only, so retries of the crashed
    module succeed.
``cache-corrupt-record``
    :meth:`repro.perf.result_cache.ResultCache.get` treats the record
    it just read as corrupt: the stale self-heal path runs against a
    byte-good record.  ``detail`` is the record kind.
``cache-io-error``
    :class:`~repro.perf.result_cache.ResultCache` fails one filesystem
    operation as an :class:`OSError` would: a ``get`` becomes a counted
    I/O miss, a ``put`` is skipped.  ``detail`` is ``"get"`` or
    ``"put"``.

Environment arming (``REPRO_FAULTS``)
-------------------------------------
CI's fault matrix arms points for a *whole test run* through the
``REPRO_FAULTS`` environment variable: a comma-separated list of
``point`` or ``point:times`` entries (``times`` omitted = unlimited
shots), parsed by :func:`load_env` at import.  Env-armed faults live in
their own registry so per-test :func:`clear` fixtures -- which exist
for test isolation -- do not silently disarm the matrix; use
``clear(env=True)`` to drop them too (worker processes do, since
faults are the parent's to fire).

This module is deliberately a leaf (no :mod:`repro` imports) so every
layer can consult it without cycles.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

#: The names the pipeline is instrumented with.
POINTS = (
    "solver-limit",
    "reachability-overflow",
    "bdd-blowup",
    "parse-error",
    "module-solve",
    "worker-crash",
    "cache-corrupt-record",
    "cache-io-error",
)

#: Environment variable :func:`load_env` reads.
ENV_VAR = "REPRO_FAULTS"

_active = {}
_env_active = {}


class FaultSpec:
    """One armed injection point.

    Parameters
    ----------
    point:
        One of :data:`POINTS`.
    times:
        Number of shots before the fault disarms itself (``None`` =
        unlimited).
    match:
        Optional predicate on the site's ``detail`` argument; the fault
        only fires (and only consumes a shot) when it returns true.
    """

    def __init__(self, point, times=1, match=None):
        if point not in POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; known: {POINTS}"
            )
        self.point = point
        self.remaining = times
        self.match = match
        #: Number of times this fault actually fired.
        self.fired = 0

    @property
    def armed(self):
        return self.remaining is None or self.remaining > 0

    def _fire(self):
        self.fired += 1
        if self.remaining is not None:
            self.remaining -= 1


def inject(point, times=1, match=None):
    """Arm ``point``; returns the :class:`FaultSpec` handle."""
    spec = FaultSpec(point, times=times, match=match)
    _active[point] = spec
    return spec


def clear(point=None, env=False):
    """Disarm one point, or every point when ``point`` is ``None``.

    Environment-armed faults (:func:`load_env`) survive by default so a
    test fixture's ``clear()`` cannot silently disarm a CI fault
    matrix; pass ``env=True`` to drop them too.
    """
    if point is None:
        _active.clear()
        if env:
            _env_active.clear()
    else:
        _active.pop(point, None)
        if env:
            _env_active.pop(point, None)


def load_env(spec=None):
    """Arm faults from a ``REPRO_FAULTS``-style specification string.

    ``spec`` is a comma-separated list of ``point`` or ``point:times``
    entries; omitted ``times`` means unlimited shots.  ``None`` reads
    :data:`ENV_VAR` from the environment.  Replaces any previously
    env-armed faults and returns the new :class:`FaultSpec` handles.
    Unknown points and malformed shot counts raise :class:`ValueError`
    -- a typo in a CI matrix should fail loudly, not silently test
    nothing.
    """
    if spec is None:
        spec = os.environ.get(ENV_VAR, "")
    _env_active.clear()
    specs = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        point, _, times_text = item.partition(":")
        point = point.strip()
        if times_text.strip() == "":
            times = None
        else:
            try:
                times = int(times_text)
            except ValueError:
                raise ValueError(
                    f"{ENV_VAR}: bad shot count {times_text!r} for "
                    f"point {point!r}"
                ) from None
        handle = FaultSpec(point, times=times)
        _env_active[point] = handle
        specs.append(handle)
    return specs


@contextmanager
def injected(point, times=1, match=None):
    """Context manager arming ``point`` for the body, disarming after."""
    spec = inject(point, times=times, match=match)
    try:
        yield spec
    finally:
        if _active.get(point) is spec:
            _active.pop(point, None)


def should_fire(point, detail=None):
    """Consult the registry at an instrumented site.

    Returns True (and consumes one shot) when an armed fault matches;
    the no-fault fast path is two dict lookups.  Test-armed faults
    (:func:`inject`) take precedence over env-armed ones
    (:func:`load_env`) for the same point.
    """
    for registry in (_active, _env_active):
        spec = registry.get(point)
        if spec is None or not spec.armed:
            continue
        if spec.match is not None and not spec.match(detail):
            continue
        spec._fire()
        return True
    return False


def active():
    """Snapshot of the armed points (for diagnostics).

    Merges both registries; a point armed in both shows the test-armed
    spec (the one :func:`should_fire` consults first).
    """
    merged = {
        point: spec for point, spec in _env_active.items() if spec.armed
    }
    merged.update(
        (point, spec) for point, spec in _active.items() if spec.armed
    )
    return merged


load_env()
