"""Deterministic fault injection for exercising degradation paths.

Real budget exhaustions need pathological inputs (a 35k-clause formula, a
200k-marking net) that make tests slow and flaky.  Instead, the pipeline
consults this registry at a handful of **named injection points**; a test
arms a point for a bounded number of shots and the instrumented site
fails exactly as the real failure would -- same exception class, same
:data:`~repro.sat.solver.LIMIT` status -- with zero cost when no fault is
armed.

Injection points
----------------
``solver-limit``
    :func:`repro.sat.solve_with` returns a ``LIMIT`` result without
    searching.  ``detail`` is the engine name, so a fault can target one
    rung of the fallback ladder.
``reachability-overflow``
    :func:`repro.petrinet.reachability.reachability_graph` raises
    :class:`~repro.petrinet.errors.UnboundedNetError` immediately.
``bdd-blowup``
    :func:`repro.sat.bdd_engine.solve_bdd` reports ``LIMIT`` as if the
    node table overflowed.
``parse-error``
    :func:`repro.stg.parse.parse_g` raises
    :class:`~repro.stg.errors.GFormatError`.
``module-solve``
    :func:`repro.csc.modular.partition_sat` raises
    :class:`~repro.csc.errors.SynthesisError` for one output's module.
    ``detail`` is the output signal name.

This module is deliberately a leaf (no :mod:`repro` imports) so every
layer can consult it without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager

#: The names the pipeline is instrumented with.
POINTS = (
    "solver-limit",
    "reachability-overflow",
    "bdd-blowup",
    "parse-error",
    "module-solve",
)

_active = {}


class FaultSpec:
    """One armed injection point.

    Parameters
    ----------
    point:
        One of :data:`POINTS`.
    times:
        Number of shots before the fault disarms itself (``None`` =
        unlimited).
    match:
        Optional predicate on the site's ``detail`` argument; the fault
        only fires (and only consumes a shot) when it returns true.
    """

    def __init__(self, point, times=1, match=None):
        if point not in POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; known: {POINTS}"
            )
        self.point = point
        self.remaining = times
        self.match = match
        #: Number of times this fault actually fired.
        self.fired = 0

    @property
    def armed(self):
        return self.remaining is None or self.remaining > 0

    def _fire(self):
        self.fired += 1
        if self.remaining is not None:
            self.remaining -= 1


def inject(point, times=1, match=None):
    """Arm ``point``; returns the :class:`FaultSpec` handle."""
    spec = FaultSpec(point, times=times, match=match)
    _active[point] = spec
    return spec


def clear(point=None):
    """Disarm one point, or every point when ``point`` is ``None``."""
    if point is None:
        _active.clear()
    else:
        _active.pop(point, None)


@contextmanager
def injected(point, times=1, match=None):
    """Context manager arming ``point`` for the body, disarming after."""
    spec = inject(point, times=times, match=match)
    try:
        yield spec
    finally:
        if _active.get(point) is spec:
            _active.pop(point, None)


def should_fire(point, detail=None):
    """Consult the registry at an instrumented site.

    Returns True (and consumes one shot) when an armed fault matches;
    the no-fault fast path is a single dict lookup.
    """
    spec = _active.get(point)
    if spec is None or not spec.armed:
        return False
    if spec.match is not None and not spec.match(detail):
        return False
    spec._fire()
    return True


def active():
    """Snapshot of the armed points (for diagnostics)."""
    return {
        point: spec for point, spec in _active.items() if spec.armed
    }
