"""The budgeted synthesis orchestrator behind ``python -m repro``.

:func:`run_synthesis` wraps the three synthesis methods in one uniform
contract: it *always* produces a :class:`~repro.runtime.report.RunReport`
-- complete on success, partial on budget exhaustion, structured on any
:class:`~repro.errors.ReproError` -- instead of letting layer-specific
exceptions decide the process outcome.  Only genuine bugs (non-
``ReproError`` exceptions) propagate.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor

from repro import obs
from repro.errors import ReproError
from repro.runtime.budget import Budget, BudgetExhaustedError
from repro.runtime.report import (
    RUN_ERROR,
    RUN_TIMEOUT,
    RunReport,
)
from repro.runtime.supervise import WorkerCrashError


def run_synthesis(stg, method="modular", options=None):
    """Synthesise ``stg`` under a global budget; never raise a ReproError.

    Parameters
    ----------
    stg:
        Anything :func:`repro.stg.load.load_stg` accepts -- a
        :class:`~repro.stg.model.SignalTransitionGraph`, a ``.g`` file
        path or raw ``.g`` source text -- or a prebuilt
        :class:`~repro.stategraph.graph.StateGraph`.
    method:
        ``"modular"`` (the paper's), ``"direct"`` (Vanbekbergen-style
        monolithic) or ``"lavagno"`` (sequential state-table baseline).
    options:
        A :class:`~repro.runtime.options.SynthesisOptions`, forwarded to
        the chosen method.  When omitted the orchestrator keeps its
        historically resilient defaults: the engine-fallback ladder is
        on and, for the modular method, drives per-output graceful
        degradation.

    Returns
    -------
    RunReport
        ``report.result`` holds the method's result object when one was
        produced; ``report.status`` / ``report.exit_code`` encode the
        verdict (``ok``/``degraded``/``timeout``/``error``).
    """
    # Imported here, not at module load: these pull in the synthesis
    # layers, which import this package's leaf modules at load time.
    from repro.baselines import lavagno_synthesis
    from repro.csc import direct_synthesis, modular_synthesis
    from repro.runtime.options import coerce_options
    from repro.stategraph.graph import StateGraph
    from repro.stg.load import load_stg

    opts = coerce_options(
        options, "run_synthesis", defaults={"fallback": True}
    )
    if options is None:
        opts = opts.evolve(degrade=opts.fallback)
    if not isinstance(stg, StateGraph):
        stg = load_stg(stg)

    budget = opts.budget
    if budget is None:
        budget = Budget.unlimited()
    opts = opts.evolve(budget=budget)
    engine = opts.engine

    with obs.span("run", method=method, engine=engine) as run_span:
        try:
            if method == "modular":
                result = modular_synthesis(stg, options=opts)
                report = result.report
            elif method == "direct":
                result = direct_synthesis(stg, options=opts)
                report = RunReport(method=method, engine=engine)
                report.finish(budget=budget)
            elif method == "lavagno":
                result = lavagno_synthesis(stg, options=opts)
                report = RunReport(method=method, engine=engine)
                report.finish(budget=budget)
            else:
                raise ValueError(f"unknown synthesis method {method!r}")
        except BudgetExhaustedError as exc:
            report = exc.report
            if report is None:
                report = RunReport(method=method, engine=engine)
                report.finish(status=RUN_TIMEOUT, error=exc, budget=budget)
            report.method = method
            report.engine = engine
            run_span.set("status", report.status)
            return report
        except BrokenExecutor as exc:
            # The supervised dispatch retries pool breakage; one escaping
            # anyway (a pool dying outside a supervised batch) is still
            # an infrastructure verdict, not a bug: surface it as a
            # structured worker error, never a raw executor traceback.
            report = RunReport(method=method, engine=engine)
            wrapped = WorkerCrashError(
                f"worker pool broke beyond recovery: "
                f"{exc or type(exc).__name__}"
            )
            status = RUN_TIMEOUT if budget.expired() else RUN_ERROR
            report.finish(status=status, error=wrapped, budget=budget)
            run_span.set("status", report.status)
            return report
        except ReproError as exc:
            report = RunReport(method=method, engine=engine)
            # A solve clipped to the remaining wall time reports its
            # failure as a limit/synthesis error; once the deadline has
            # passed, the deadline is the dominant cause.
            status = RUN_TIMEOUT if budget.expired() else RUN_ERROR
            report.finish(status=status, error=exc, budget=budget)
            run_span.set("status", report.status)
            return report
        report.result = result
        _verify_phase(report, stg, opts, budget)
        run_span.set("status", report.status)
        return report


def _verify_phase(report, stg, opts, budget):
    """Run the post-synthesis verification pass at ``opts.verify_level``.

    Attaches a :class:`~repro.verify.checker.VerifyReport` as
    ``report.verify`` and folds its counters into ``report.metrics``.
    The closed-loop levels are budget-aware: a deadline that expired
    during synthesis, or runs out mid-traversal, skips the pass
    (``skipped="deadline"``/``"budget"``) rather than breaking the
    run's promised wall clock -- the caller decides whether an
    unverified result degrades the verdict.  Each counterexample is
    journalled as a ``verify_violation`` point event.
    """
    from repro.verify.checker import VerifyReport, verify_result

    if report.result is None:
        return
    level = opts.verify_level
    with obs.span("verify", level=level) as verify_span:
        if level != "csc" and budget.expired():
            verify = VerifyReport(level, skipped="deadline")
        else:
            try:
                verify = verify_result(
                    report.result,
                    stg=stg if hasattr(stg, "inputs") else None,
                    level=level, budget=budget,
                )
            except BudgetExhaustedError as exc:
                reason = (
                    "budget" if exc.context.get("resource") == "states"
                    else "deadline"
                )
                verify = VerifyReport(level, skipped=reason)
        report.verify = verify
        report.metrics = report.aggregate()
        verify_span.set("verdict", verify.verdict)
        verify_span.add("verify_checks", len(verify.checks))
        verify_span.add("verify_states", verify.states_explored)
        verify_span.add("verify_violations", len(verify.violations))
        for cex in verify.violations:
            obs.event("verify_violation", level=level, **cex.as_dict())
