"""Supervised worker pools: crash recovery with deterministic backoff.

A bare :class:`~concurrent.futures.ProcessPoolExecutor` treats a worker
death as fatal: one process killed by the OS (OOM killer, SIGKILL, a
segfaulting native extension) raises
:class:`~concurrent.futures.process.BrokenProcessPool` out of *every*
outstanding future and sinks the whole run.  For a synthesis service
that promises graceful degradation of the circuits it emits, the
infrastructure has to hold itself to the same standard: worker death,
per-task wall-clock overrun and transient dispatch failures are
**recoverable events**, not verdicts.

:class:`SupervisedPool` is that layer.  It owns an executor built by a
caller-supplied factory and runs a batch of tasks to completion under a
:class:`RetryPolicy`:

* a task whose future raises :class:`BrokenExecutor` (the worker died)
  or times out against :attr:`RetryPolicy.task_timeout` (the worker is
  stuck) is **retried**: the dead pool is killed and respawned from the
  factory, and the task is resubmitted after a deterministic,
  exponentially growing backoff delay;
* tasks that were merely queued behind the crash are **respawned** on
  the fresh pool -- they are bookkept separately
  (:attr:`SuperviseStats.respawns`) because their own execution never
  failed;
* a task that keeps failing past :attr:`RetryPolicy.retries` attempts
  comes back as a ``("failed", exc)`` outcome, leaving the caller to
  escalate -- the modular merge loop re-solves such modules serially in
  the parent (a *serial rescue*) before anything enters the
  ``degrade=`` path;
* an exception raised *by the task function itself* (it travelled back
  pickled, so the worker was alive) is deterministic and is **not**
  retried: rerunning a correctness failure buys nothing.

Backoff is seeded and repeatable: :meth:`RetryPolicy.delay` mixes the
attempt number and a task token through SHA-256, so two runs of the
same workload sleep the same schedule -- no ``random`` module state, no
wall-clock dependence.  Every retry round is journalled as a ``retry``
span and ticks the ``worker_deaths`` / ``module_retries`` /
``pool_respawns`` counters (see ``docs/observability.md``).

This module is runtime-layer: it knows nothing about synthesis.  The
modular dispatch in :mod:`repro.csc.parallel` supplies the pool
factory, the task function and the tokens.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass

from repro import obs
from repro.errors import ReproError


class WorkerCrashError(ReproError):
    """A worker process died (SIGKILL, OOM, segfault) or the pool broke.

    Carries ``kind="worker"`` so drivers classify infrastructure deaths
    apart from solve failures; raised per task after the retry budget is
    spent, and surfaced by the supervised dispatch instead of a raw
    :class:`~concurrent.futures.process.BrokenProcessPool` traceback.
    """

    kind = "worker"


class ModuleOverrunError(ReproError):
    """A worker exceeded the supervisor's per-task wall-clock allowance.

    Distinct from cooperative budget exhaustion: the worker did not
    report back at all, so the supervisor reclaims it by killing the
    pool.  ``kind="worker"`` -- to the caller this is indistinguishable
    from a hung/dead worker.
    """

    kind = "worker"


@dataclass(frozen=True)
class RetryPolicy:
    """How a :class:`SupervisedPool` retries failed tasks.

    Parameters
    ----------
    retries:
        Attempts *beyond the first* a task may use before its failure
        becomes final.  ``0`` disables retrying (failures escalate to
        the caller immediately).
    backoff:
        Base delay in seconds before the first retry round; each later
        round doubles it (exponential backoff).
    backoff_cap:
        Upper bound on any single delay.
    seed:
        Mixed into the deterministic jitter so concurrent supervisors
        (e.g. bench shards) do not sleep in lockstep, while two runs of
        the same workload still sleep the same schedule.
    task_timeout:
        Per-task wall-clock allowance in seconds, measured while
        waiting on the task's future; ``None`` waits forever.  An
        overrun counts as a worker death: the pool is killed to reclaim
        the stuck process and the task is retried.
    """

    retries: int = 2
    backoff: float = 0.05
    backoff_cap: float = 2.0
    seed: int = 0
    task_timeout: object = None

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, not {self.retries!r}")
        if self.backoff < 0:
            raise ValueError(
                f"backoff must be >= 0, not {self.backoff!r}"
            )

    def delay(self, attempt, token=""):
        """Seconds to sleep before retry round ``attempt`` (1-based).

        ``min(cap, backoff * 2**(attempt-1))`` scaled by a deterministic
        jitter in ``[0.5, 1.0)`` derived from ``(seed, token, attempt)``
        -- repeatable across runs, de-synchronised across tokens.
        """
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        base = min(self.backoff_cap, self.backoff * (2 ** (attempt - 1)))
        digest = hashlib.sha256(
            f"{self.seed}\x1f{token}\x1f{attempt}".encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:4], "big") / 2 ** 32
        return base * (0.5 + fraction / 2)


class SuperviseStats:
    """What a supervised batch survived.

    Attributes
    ----------
    worker_deaths:
        Broken-pool / overrun events observed (each event kills at
        least one worker; the exact body count is not observable).
    pool_respawns:
        Fresh executors built after the first.
    retries:
        ``{token: n}`` -- resubmissions of tasks whose *own* execution
        failed (crash under the task, overrun, dispatch failure).
    respawns:
        ``{token: n}`` -- resubmissions of tasks that were collateral:
        queued or in flight on a pool another task's crash took down.
    """

    def __init__(self):
        self.worker_deaths = 0
        self.pool_respawns = 0
        self.retries = {}
        self.respawns = {}

    @property
    def module_retries(self):
        """Total own-failure resubmissions across all tasks."""
        return sum(self.retries.values())

    def __repr__(self):
        return (
            f"SuperviseStats(worker_deaths={self.worker_deaths}, "
            f"pool_respawns={self.pool_respawns}, "
            f"retries={self.module_retries}, "
            f"respawns={sum(self.respawns.values())})"
        )


#: Outcome tags returned by :meth:`SupervisedPool.run`.
OUTCOME_OK = "ok"
OUTCOME_FAILED = "failed"


class SupervisedPool:
    """Run a batch of tasks on a crash-supervised executor.

    Parameters
    ----------
    factory:
        Zero-argument callable building a fresh executor (typically a
        :class:`~concurrent.futures.ProcessPoolExecutor` with an
        initializer).  Called lazily once per pool generation, so a
        respawn after a crash re-reads any parent state the factory
        closes over (e.g. the remaining budget).
    policy:
        The :class:`RetryPolicy`; defaults to ``RetryPolicy()``.
    budget:
        Optional :class:`~repro.runtime.budget.Budget`.  The supervisor
        never *raises* on exhaustion -- it stops retrying instead, so
        the caller's own checkpoints report the timeout with a proper
        partial record -- and it clamps backoff sleeps to the remaining
        wall allowance.
    sleep:
        Injectable sleep (tests pass a no-op to run the retry ladder
        instantly).
    """

    def __init__(self, factory, policy=None, budget=None, sleep=time.sleep):
        self.factory = factory
        self.policy = policy if policy is not None else RetryPolicy()
        self.budget = budget
        self._sleep = sleep

    # -- public API --------------------------------------------------------

    def run(self, fn, tasks):
        """Run ``fn(*args, attempt)`` for every ``{token: args}`` task.

        Returns ``(outcomes, stats)``: ``outcomes[token]`` is
        ``(OUTCOME_OK, payload)`` or ``(OUTCOME_FAILED, exc)`` -- the
        batch itself never raises on worker failure.  The attempt
        number (0-based) is appended to each task's arguments so task
        functions can behave attempt-dependently (fault injection uses
        this to crash only the first try).
        """
        stats = SuperviseStats()
        outcomes = {}
        attempts = dict.fromkeys(tasks, 0)
        pending = list(tasks)
        pool = None
        generation = 0
        try:
            while pending:
                if pool is None:
                    pool = self.factory()
                    generation += 1
                    if generation > 1:
                        stats.pool_respawns += 1
                        obs.add("pool_respawns")
                futures, undispatched = self._submit(fn, tasks, attempts,
                                                     pending, pool)
                done, failures, own, broken = self._gather(futures)
                failures.update(undispatched)
                own.update(undispatched)
                if broken or undispatched:
                    self._kill(pool)
                    pool = None
                    stats.worker_deaths += 1
                    obs.add("worker_deaths")
                for token in pending:
                    if token in done:
                        outcomes[token] = (OUTCOME_OK, done[token])
                pending = self._requeue(
                    pending, failures, own, attempts, outcomes, stats
                )
                if pending:
                    self._pause(attempts, pending, stats)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        return outcomes, stats

    # -- internals ---------------------------------------------------------

    def _submit(self, fn, tasks, attempts, pending, pool):
        """Submit the pending tokens; a submit-time crash fails the rest."""
        futures = {}
        undispatched = {}
        broken = None
        for token in pending:
            if broken is not None:
                undispatched[token] = WorkerCrashError(
                    f"worker pool broke before dispatch of {token!r}: "
                    f"{broken}"
                )
                continue
            try:
                futures[token] = pool.submit(
                    fn, *tasks[token], attempts[token]
                )
            except Exception as exc:
                broken = exc
                undispatched[token] = WorkerCrashError(
                    f"worker pool rejected {token!r}: {exc}"
                )
        return futures, undispatched

    def _gather(self, futures):
        """Collect results; classify failures and spot a broken pool.

        Returns ``(done, failures, own, broken)`` where ``own`` is the
        subset of failed tokens whose *own* execution failed (the first
        crash, an overrun, a task exception) as opposed to collateral
        broken-pool fallout.
        """
        done, failures = {}, {}
        own = set()
        broken = False
        crash_seen = False
        for token, future in futures.items():
            try:
                done[token] = future.result(timeout=self.policy.task_timeout)
            except BrokenExecutor as exc:
                # The first broken future is (approximately) the task a
                # worker died under; everything after it was collateral.
                failures[token] = WorkerCrashError(
                    f"worker died while running {token!r}: "
                    f"{exc or type(exc).__name__}"
                )
                if not crash_seen:
                    own.add(token)
                    crash_seen = True
                broken = True
            except _FuturesTimeout:
                failures[token] = ModuleOverrunError(
                    f"worker exceeded {self.policy.task_timeout:.3g}s "
                    f"wall-clock allowance on {token!r}",
                    task_timeout=self.policy.task_timeout,
                )
                own.add(token)
                broken = True  # the worker is stuck; reclaim it
            except Exception as exc:  # raised by fn itself: deterministic
                failures[token] = exc
                own.add(token)
        return done, failures, own, broken

    def _requeue(self, pending, failures, own, attempts, outcomes, stats):
        """Split failures into retry / final according to the policy."""
        budget_gone = self.budget is not None and self.budget.expired()
        next_pending = []
        for token in pending:
            exc = failures.get(token)
            if exc is None:
                continue
            retryable = isinstance(
                exc, (WorkerCrashError, ModuleOverrunError)
            )
            attempts[token] += 1
            if (not retryable or budget_gone
                    or attempts[token] > self.policy.retries):
                outcomes[token] = (OUTCOME_FAILED, exc)
                continue
            bucket = stats.retries if token in own else stats.respawns
            bucket[token] = bucket.get(token, 0) + 1
            if token in own:
                obs.add("module_retries")
            next_pending.append(token)
        return next_pending

    def _pause(self, attempts, pending, stats):
        """One journalled backoff sleep before the next retry round."""
        attempt = max(attempts[token] for token in pending)
        delay = self.policy.delay(attempt, token=str(pending[0]))
        if self.budget is not None:
            remaining = self.budget.remaining_seconds()
            if remaining is not None:
                delay = max(0.0, min(delay, remaining))
        with obs.span("retry", attempt=attempt, tasks=len(pending)) as span:
            span.set("delay", round(delay, 6))
            if delay > 0:
                self._sleep(delay)

    @staticmethod
    def _kill(pool):
        """Tear a pool down without waiting on dead or stuck workers."""
        processes = list((getattr(pool, "_processes", None) or {}).values())
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        for process in processes:
            try:
                process.terminate()
            except Exception:
                pass
