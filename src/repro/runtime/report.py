"""Structured run outcomes: per-module status and overall verdict.

A production driver cannot treat "synthesis" as one opaque call that
either returns or raises: the modular method processes one output at a
time, and a single hard module should degrade (per-output direct
sub-solve, then the repair pass) rather than sink the run.
:class:`RunReport` is the record of that policy -- one
:class:`ModuleStatus` per output, the budget consumed, and the overall
status mapped onto the CLI's exit codes.
"""

from __future__ import annotations

from repro.obs import Counters

#: Per-module statuses.
MODULE_OK = "ok"
MODULE_DEGRADED = "degraded"
MODULE_SKIPPED = "skipped"

#: Overall run statuses, in order of badness.
RUN_OK = "ok"
RUN_DEGRADED = "degraded"
RUN_TIMEOUT = "timeout"
RUN_ERROR = "error"

#: CLI exit code for each overall status.
EXIT_CODES = {
    RUN_OK: 0,
    RUN_ERROR: 1,
    RUN_DEGRADED: 2,
    RUN_TIMEOUT: 3,
}


class ModuleStatus:
    """Outcome of one output's modular pass.

    ``ok``       -- solved on its modular graph, as the paper intends.
    ``degraded`` -- the modular pass failed (budget, unsolvable
                    projection, injected fault) and a per-output direct
                    sub-solve on the full graph covered for it.
    ``skipped``  -- both passes failed; the trailing verify-and-repair
                    rounds are the only remaining safety net.

    Recovery bookkeeping rides alongside the status -- deliberately
    *not* folded into it, because a module rescued from a worker crash
    still produced the exact result the serial run would have
    (``docs/robustness.md``):

    ``retries``   -- supervised resubmissions after this module's own
                     worker died, overran, or failed to dispatch.
    ``respawns``  -- resubmissions because *another* task's crash took
                     down the pool this module was queued on.
    ``rescued``   -- the retry budget ran out and the module was
                     re-solved serially in the parent instead.
    """

    def __init__(self, output, status=MODULE_OK, detail=None,
                 signals_added=0, escalations=0, retries=0, respawns=0,
                 rescued=False):
        self.output = output
        self.status = status
        self.detail = detail
        self.signals_added = signals_added
        #: Number of engine-ladder escalations recorded while solving.
        self.escalations = escalations
        self.retries = retries
        self.respawns = respawns
        self.rescued = rescued

    def __repr__(self):
        extra = f", detail={self.detail!r}" if self.detail else ""
        if self.retries:
            extra += f", retries={self.retries}"
        if self.rescued:
            extra += ", rescued"
        return f"ModuleStatus({self.output!r}, {self.status!r}{extra})"


class RunReport:
    """Outcome of one synthesis run under a budget.

    Attributes
    ----------
    method / engine:
        What was asked for.
    status:
        ``ok``, ``degraded`` (all outputs covered but not all by the
        modular pass), ``timeout`` (budget exhausted; partial results),
        or ``error``.
    modules:
        :class:`ModuleStatus` per output, in processing order.
    result:
        The synthesis result object when one was produced (possibly
        ``None`` on timeout/error).
    error:
        The terminal exception for ``timeout``/``error`` runs.
    budget:
        :meth:`repro.runtime.budget.Budget.snapshot` of consumption.
    metrics:
        :class:`~repro.obs.metrics.Counters` aggregated over the
        modules (and budget consumption) by :meth:`finish` -- the same
        bag type solver results and bench rows carry.
    """

    def __init__(self, method="modular", engine="hybrid"):
        self.method = method
        self.engine = engine
        self.status = RUN_OK
        self.modules = []
        self.result = None
        self.error = None
        self.budget = {}
        self.metrics = Counters()
        self.verified = None
        #: :class:`~repro.verify.checker.VerifyReport` of the
        #: post-synthesis verification pass, set by
        #: :func:`~repro.runtime.run.run_synthesis` (``None`` when no
        #: pass ran, e.g. on timeout/error runs without a result).
        self.verify = None
        #: Run-level crash-recovery tallies, set by the supervised
        #: parallel dispatch (zero on serial runs).
        self.worker_deaths = 0
        self.pool_respawns = 0

    # -- construction ------------------------------------------------------

    def add_module(self, output, status=MODULE_OK, detail=None,
                   signals_added=0, escalations=0, retries=0, respawns=0,
                   rescued=False):
        entry = ModuleStatus(
            output, status=status, detail=detail,
            signals_added=signals_added, escalations=escalations,
            retries=retries, respawns=respawns, rescued=rescued,
        )
        self.modules.append(entry)
        return entry

    def finish(self, status=None, result=None, error=None, budget=None):
        """Seal the report; derives the status and metrics when not forced."""
        if status is not None:
            self.status = status
        elif any(m.status != MODULE_OK for m in self.modules):
            self.status = RUN_DEGRADED
        else:
            self.status = RUN_OK
        if result is not None:
            self.result = result
        if error is not None:
            self.error = error
        if budget is not None:
            self.budget = budget.snapshot()
        self.metrics = self.aggregate()
        return self

    def aggregate(self):
        """Fold the per-module statuses into one :class:`Counters` bag.

        Safe on any report shape: an empty module list yields all-zero
        counters (an empty bag), and a sealed budget snapshot
        contributes its consumption counters.
        """
        metrics = Counters()
        for entry in self.modules:
            metrics.add(f"modules_{entry.status}")
            metrics.add("signals_added", entry.signals_added)
            metrics.add("escalations", entry.escalations)
            metrics.add("module_retries", entry.retries)
            if entry.rescued:
                metrics.add("serial_rescues")
        metrics.add("worker_deaths", self.worker_deaths)
        metrics.add("pool_respawns", self.pool_respawns)
        if self.verify is not None:
            metrics.add("verify_checks", len(self.verify.checks))
            metrics.add("verify_states", self.verify.states_explored)
            metrics.add("verify_violations", len(self.verify.violations))
        if self.budget.get("backtracks_used"):
            metrics.add("backtracks", self.budget["backtracks_used"])
        if self.budget.get("checkpoints"):
            metrics.add("checkpoints", self.budget["checkpoints"])
        return metrics

    # -- inspection --------------------------------------------------------

    def module(self, output):
        for entry in self.modules:
            if entry.output == output:
                return entry
        return None

    @property
    def degraded_modules(self):
        return [m for m in self.modules if m.status == MODULE_DEGRADED]

    @property
    def skipped_modules(self):
        return [m for m in self.modules if m.status == MODULE_SKIPPED]

    @property
    def retried_modules(self):
        """Modules whose own worker execution was retried."""
        return [m for m in self.modules if m.retries]

    @property
    def respawned_modules(self):
        """Modules resubmitted only because a crash took their pool down."""
        return [m for m in self.modules if m.respawns]

    @property
    def rescued_modules(self):
        """Modules re-solved serially after the retry budget ran out."""
        return [m for m in self.modules if m.rescued]

    @property
    def escalations(self):
        return sum(m.escalations for m in self.modules)

    @property
    def exit_code(self):
        return EXIT_CODES[self.status]

    def summary(self):
        """One line suitable for a log or the CLI summary."""
        counts = {}
        for entry in self.modules:
            counts[entry.status] = counts.get(entry.status, 0) + 1
        parts = [f"{self.status}"]
        if self.modules:
            detail = ", ".join(
                f"{counts[s]} {s}"
                for s in (MODULE_OK, MODULE_DEGRADED, MODULE_SKIPPED)
                if counts.get(s)
            )
            parts.append(f"modules: {detail}")
        recovered = []
        if self.retried_modules:
            recovered.append(f"{len(self.retried_modules)} retried")
        if self.rescued_modules:
            recovered.append(f"{len(self.rescued_modules)} rescued")
        if self.worker_deaths:
            recovered.append(
                f"{self.worker_deaths} worker death"
                + ("s" if self.worker_deaths != 1 else "")
            )
        if recovered:
            parts.append(f"recovered: {', '.join(recovered)}")
        if self.verify is not None:
            if self.verify.skipped is not None:
                parts.append(f"verify skipped ({self.verify.skipped})")
            elif self.verify.violations:
                parts.append(
                    f"verify: {len(self.verify.violations)} violation"
                    + ("s" if len(self.verify.violations) != 1 else "")
                    + f" ({self.verify.level})"
                )
            else:
                parts.append(f"verify: ok ({self.verify.level})")
        if self.budget.get("max_seconds") is not None:
            parts.append(
                f"{self.budget['elapsed_seconds']:.2f}s of "
                f"{self.budget['max_seconds']:.3g}s"
            )
        if self.error is not None:
            message = getattr(self.error, "describe", None)
            parts.append(message() if message else str(self.error))
        return "; ".join(parts)

    def __repr__(self):
        return (
            f"RunReport({self.method}/{self.engine}, {self.status!r}, "
            f"{len(self.modules)} modules)"
        )
