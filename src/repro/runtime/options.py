"""One options object for every synthesis entry point.

The synthesis methods accumulated a sprawl of keyword arguments
(``limits``, ``minimize``, ``max_signals``, ``output_order``,
``signal_prefix``, ``engine``, ``polish``, ``budget``, ``fallback``,
``degrade``) that had to be threaded, parameter by parameter, through
:func:`~repro.runtime.run.run_synthesis`, the CLI, and the benchmark
runner.  :class:`SynthesisOptions` replaces that sprawl: one frozen
dataclass accepted by :func:`~repro.csc.synthesis.modular_synthesis`,
:func:`~repro.csc.direct.direct_synthesis`,
:func:`~repro.baselines.lavagno.lavagno_synthesis`,
:func:`~repro.runtime.run.run_synthesis`, and the top-level
:func:`repro.synthesize` facade.

The old keywords are gone: after one deprecation cycle (the PR-3 shims
warned with :class:`DeprecationWarning`), passing them is a plain
:class:`TypeError`.  :func:`coerce_options` now only validates the
``options=`` value and fills per-caller defaults, so
:class:`SynthesisOptions` is the single options surface.

Fields whose natural default differs per method (``signal_prefix`` is
``"csc"`` for the SAT methods but ``"lm"`` for the Lavagno baseline;
``limits`` and ``max_signals`` default to per-method budgets) default to
``None``, meaning "the method's default".  This module is a dependency
leaf like the rest of :mod:`repro.runtime`'s core: it imports nothing
from the synthesis layers, so they can all import it at load time.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace


@dataclass(frozen=True)
class SynthesisOptions:
    """Every knob of a synthesis run, in one immutable value.

    Parameters
    ----------
    limits:
        Per-formula SAT budget (:class:`repro.sat.solver.Limits`);
        ``None`` means the method's default budget.
    minimize:
        Also derive minimised two-level covers and literal counts.
    max_signals:
        Cap on state signals tried per formula; ``None`` means the
        method's default.
    output_order:
        Explicit processing order for the non-input signals (modular
        method only); ``None`` derives the smallest-module-first order.
    signal_prefix:
        Prefix for inserted state signal names; ``None`` means the
        method's default (``"csc"``, or ``"lm"`` for the baseline).
    engine:
        SAT engine: ``"hybrid"``, ``"dpll"``, ``"cdcl"`` or ``"bdd"``.
    polish:
        Run the assignment polish pass after synthesis.
    budget:
        Run-wide :class:`~repro.runtime.budget.Budget`; ``None`` is
        unlimited.
    fallback:
        Enable the engine-fallback ladder on every solve.
    degrade:
        Modular method only: degrade failed per-output passes to direct
        sub-solves instead of aborting the run.
    jobs:
        Parallel worker processes.  Batch drivers (the Table-1 bench
        runner) spread whole benchmarks over this many processes;
        :func:`~repro.csc.synthesis.modular_synthesis` additionally
        dispatches independent per-output module solves to a worker
        pool when ``jobs > 1``.  Results are bit-identical to the
        serial ``jobs=1`` run (see ``docs/parallelism.md``).
    cache_dir:
        Directory of the persistent
        :class:`~repro.perf.result_cache.ResultCache`.  ``None`` (the
        default) disables cross-run caching.
    cache_max_bytes:
        Size bound on the persistent result cache.  After every store
        the cache evicts least-recently-used records (by access time)
        until the store fits.  ``None`` (the default) never evicts.
        Like ``cache_dir``, a scheduling knob: it never changes what a
        run produces, only what later runs find warm.
    retries:
        Supervised retry budget per module when ``jobs > 1``: how many
        times a module whose worker died, overran, or failed to
        dispatch is resubmitted (with deterministic exponential
        backoff) before being re-solved serially in the parent.  ``0``
        escalates straight to the serial rescue.  See
        ``docs/robustness.md``.
    retry_backoff:
        Base backoff delay in seconds before the first retry round;
        later rounds double it (capped).  Deterministic -- the jitter
        is seeded, so two runs of the same workload sleep the same
        schedule.
    sat_mode:
        ``"incremental"`` (default) solves each grow-``m`` loop on one
        persistent assumption-based solver, carrying learned clauses
        across attempts; ``"oneshot"`` rebuilds the formula and starts
        a cold engine per attempt (the paper-faithful baseline).  Only
        the search engines (``"hybrid"``/``"cdcl"``) have an
        incremental form; ``"dpll"`` and ``"bdd"`` always solve
        one-shot.  See ``docs/performance.md``.
    verify_level:
        Post-synthesis verification depth run by
        :func:`~repro.runtime.run.run_synthesis`: ``"csc"`` (default)
        re-checks complete state coding statically, ``"conformance"``
        model-checks the gate-level closed loop for I/O conformance,
        ``"hazards"`` additionally checks excitation persistency
        (semi-modularity / output-hazard freedom).  See
        ``docs/verification.md``.  A scheduling-independent knob that
        never changes what synthesis produces, only how hard the
        result is checked -- the result cache deliberately ignores it.
    """

    limits: object = None
    minimize: bool = True
    max_signals: object = None
    output_order: object = None
    signal_prefix: object = None
    engine: str = "hybrid"
    polish: bool = True
    budget: object = None
    fallback: bool = False
    degrade: bool = False
    jobs: int = 1
    cache_dir: object = None
    cache_max_bytes: object = None
    sat_mode: str = "incremental"
    retries: int = 2
    retry_backoff: float = 0.05
    verify_level: str = "csc"

    def __post_init__(self):
        if self.output_order is not None:
            object.__setattr__(
                self, "output_order", tuple(self.output_order)
            )
        if self.sat_mode not in ("incremental", "oneshot"):
            raise ValueError(
                f"sat_mode must be 'incremental' or 'oneshot', "
                f"not {self.sat_mode!r}"
            )
        if self.verify_level not in ("csc", "conformance", "hazards"):
            raise ValueError(
                f"verify_level must be 'csc', 'conformance' or "
                f"'hazards', not {self.verify_level!r}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, not {self.retries!r}")
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, not {self.retry_backoff!r}"
            )
        if self.cache_max_bytes is not None and self.cache_max_bytes < 0:
            raise ValueError(
                f"cache_max_bytes must be >= 0 or None, "
                f"not {self.cache_max_bytes!r}"
            )

    def evolve(self, **changes):
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def resolved_prefix(self, default="csc"):
        """``signal_prefix`` with the method's default filled in."""
        return self.signal_prefix if self.signal_prefix is not None \
            else default

    def resolved_max_signals(self, default):
        """``max_signals`` with the method's default filled in."""
        return self.max_signals if self.max_signals is not None else default

    def resolved_limits(self, default=None):
        """``limits`` with the method's default filled in."""
        return self.limits if self.limits is not None else default


#: Names of every :class:`SynthesisOptions` field.
OPTION_FIELDS = frozenset(f.name for f in fields(SynthesisOptions))


def coerce_options(options, caller, defaults=None, legacy=None):
    """Validate an ``options=`` value; fill per-caller defaults.

    * ``options`` given: type-checked and returned as-is.
    * ``options is None``: a fresh :class:`SynthesisOptions` built from
      ``defaults`` (a caller whose historical no-argument behaviour
      differs from the dataclass defaults -- ``run_synthesis`` keeps
      ``fallback=True`` -- preserves it here).

    ``legacy`` is the removed PR-3 keyword shim's slot: any non-empty
    mapping raises :class:`TypeError` naming the replacement.  Entry
    points dropped their ``**legacy`` catch-alls, so stray keywords now
    fail at the call site; this parameter remains only so an API
    wrapper forwarding a keyword dict gets the same one-line diagnosis.
    """
    if legacy:
        named = ", ".join(sorted(legacy))
        raise TypeError(
            f"{caller}() no longer accepts synthesis keywords "
            f"({named}); pass options=SynthesisOptions(...) instead"
        )
    if options is None:
        return SynthesisOptions(**(defaults or {}))
    if not isinstance(options, SynthesisOptions):
        raise TypeError(
            f"{caller}() options must be a SynthesisOptions, "
            f"not {type(options).__name__}"
        )
    return options
