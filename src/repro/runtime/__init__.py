"""Run budgets, fault injection, and graceful degradation.

The synthesis layers (:mod:`repro.csc`, :mod:`repro.stategraph`,
:mod:`repro.sat`) each bound their own work; this package owns what none
of them can see alone: the **whole run**.

* :mod:`repro.runtime.budget` -- a :class:`Budget` (wall-clock deadline,
  state cap, pooled SAT backtracks) threaded through the pipeline with
  cooperative checkpoints.
* :mod:`repro.runtime.faults` -- deterministic fault injection at named
  points, so every degradation path is testable without pathological
  inputs.
* :mod:`repro.runtime.report` -- :class:`RunReport` with per-module
  ``ok | degraded | skipped`` statuses and the CLI exit-code mapping.
* :mod:`repro.runtime.supervise` -- :class:`SupervisedPool`, the
  crash-supervised executor wrapper (worker death, per-task overrun,
  deterministic retry/backoff) behind the parallel module dispatch.
* :mod:`repro.runtime.run` -- :func:`run_synthesis`, the budgeted
  orchestrator the command line drives.

Import discipline: the low-level packages import the leaf modules
(:mod:`~repro.runtime.faults`, :mod:`~repro.runtime.budget`) at module
load, so this ``__init__`` must not eagerly import anything that imports
them back.  :func:`run_synthesis` is therefore loaded lazily (PEP 562).
"""

from repro.errors import ReproError
from repro.runtime.budget import Budget, BudgetExhaustedError, BudgetSlice
from repro.runtime.options import OPTION_FIELDS, SynthesisOptions, coerce_options
from repro.runtime.report import (
    EXIT_CODES,
    MODULE_DEGRADED,
    MODULE_OK,
    MODULE_SKIPPED,
    RUN_DEGRADED,
    RUN_ERROR,
    RUN_OK,
    RUN_TIMEOUT,
    ModuleStatus,
    RunReport,
)
from repro.runtime.supervise import (
    ModuleOverrunError,
    RetryPolicy,
    SupervisedPool,
    SuperviseStats,
    WorkerCrashError,
)
from repro.runtime import faults

__all__ = [
    "Budget",
    "BudgetExhaustedError",
    "BudgetSlice",
    "ModuleOverrunError",
    "RetryPolicy",
    "SupervisedPool",
    "SuperviseStats",
    "WorkerCrashError",
    "EXIT_CODES",
    "OPTION_FIELDS",
    "SynthesisOptions",
    "coerce_options",
    "MODULE_DEGRADED",
    "MODULE_OK",
    "MODULE_SKIPPED",
    "ModuleStatus",
    "ReproError",
    "RUN_DEGRADED",
    "RUN_ERROR",
    "RUN_OK",
    "RUN_TIMEOUT",
    "RunReport",
    "faults",
    "run_synthesis",
]

# repro.runtime.options is a leaf like budget/report: the synthesis
# layers import SynthesisOptions at load time, so it must not import
# them back (and does not).


def __getattr__(name):
    # Lazy: run.py imports the csc/stategraph layers, which import the
    # leaf modules above at load time -- an eager import here would cycle.
    if name == "run_synthesis":
        from repro.runtime.run import run_synthesis

        return run_synthesis
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
