.model nousc-ser
.inputs a
.outputs b c
.graph
a+ b+
a- c+
b+ b-
b- a-
c+ c-
c- a+
.marking { <c-,a+> }
.end
