.model nouse
.inputs a
.outputs b c
.graph
a+ b+
a+/2 c+
a- b-
a-/2 c-
b+ a-
b- a+/2
c+ a-/2
c- a+
.marking { <c-,a+> }
.end
