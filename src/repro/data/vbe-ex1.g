.model vbe-ex1
.inputs a
.outputs b
.graph
a+ b+
a- b+/2
b+ b-
b+/2 b-/2
b- a-
b-/2 a+
.marking { <b-/2,a+> }
.end
