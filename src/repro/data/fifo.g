.model fifo
.inputs r
.outputs a b e
.graph
a+ r-
a- r+/2
b+ r-
b- r+/2
e+ r-/2
e- r+
r+ a+ b+
r+/2 e+
r- a- b-
r-/2 e-
.marking { <e-,r+> }
.end
