.model vbe-ex2
.inputs a
.outputs b
.graph
a+ b+
a- b+/2
b+ b-
b+/2 b-/2
b+/3 b-/3
b- a-
b-/2 b+/3
b-/3 a+
.marking { <b-/3,a+> }
.end
