.model mr0
.inputs r d1 d2 d3
.outputs a q1 q2 q3 x y e
.graph
a+ r-
a- e+
d1+ q1+
d1+/2 q1+/2
d1- q1-
d1-/2 q1-/2
d2+ q2+
d2+/2 q2+/2
d2- q2-
d2-/2 q2-/2
d3+ q3+
d3- q3-
e+ e-
e- r+
q1+ d1-
q1+/2 a+
q1- x+
q1-/2 x-
q2+ d2-
q2+/2 a+
q2- y+
q2-/2 y-
q3+ a+
q3- a-
r+ d1+ d2+ d3+
r- d1-/2 d2-/2 d3-
x+ d1+/2
x- a-
y+ d2+/2
y- a-
.marking { <e-,r+> }
.end
