.model sbuf-send-pkt2
.inputs r d
.outputs a q x e
.graph
a+ r-
a- e+
d+ a+
d- a-
e+ e-
e- r+
q+ d+
q- d-
r+ q+ x+
r- q- x-
x+ a+
x- a-
.marking { <e-,r+> }
.end
