
.model alex-nonfc
.inputs a b
.outputs g h w e
.graph
preq g+/1 g+/2
pa g+/1
pb g+/2
a+ pa
b+ pb
g+/1 h+/1
g+/2 h+/2
h+/1 a-
h+/2 b-
a- g-/1
b- g-/2
g-/1 h-/1
g-/2 h-/2
h-/1 w+/1
h-/2 w+/2
w+/1 w-/1
w+/2 w-/2
w-/1 pj
w-/2 pj
pj e+
e+ e-
e- pin preq
pin a+ b+
.marking { pin preq }
.end
