.model sendr-done
.inputs req
.outputs sendr done
.graph
done+ req-
done- req+
req+ sendr+
req- done-
sendr+ sendr-
sendr- done+
.marking { <done-,req+> }
.end
