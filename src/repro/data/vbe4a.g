.model vbe4a
.inputs a b
.outputs c d e f
.graph
a+ c+ d+
a- c+/2 d+/3
b+ c-
b- f+
c+ b+
c+/2 c-/2
c+/3 c-/3
c- b-
c-/2 c+/3
c-/3 f-
d+ d-
d+/2 d-/2
d+/3 d-/3
d+/4 d-/4
d- d+/2
d-/2 f+
d-/3 d+/4
d-/4 f-
e+ e-
e- a+
f+ a-
f- e+
.marking { <e-,a+> }
.end
