.model sbuf-ram-write
.inputs r d1 d2 d3
.outputs a q1 q2 q3 w e
.graph
a+ r-
a- e+/2
d1+ w+
d1- w-
d2+ w+
d2- w-
d3+ w+
d3- w-
e+ e-
e+/2 e-/2
e- a+
e-/2 r+
q1+ d1+
q1- d1-
q2+ d2+
q2- d2-
q3+ d3+
q3- d3-
r+ q1+ q2+ q3+
r- q1- q2- q3-
w+ e+
w- a-
.marking { <e-/2,r+> }
.end
