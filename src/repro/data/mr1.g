.model mr1
.inputs r d1 d2
.outputs a q1 q2 x e
.graph
a+ r-
a- r+
d1+ q1+
d1+/2 q1+/2
d1- q1-
d1-/2 q1-/2
d2+ q2+
d2+/2 q2+/2
d2- q2-
d2-/2 q2-/2
e+ a+
e- a-
q1+ d1-
q1+/2 a+
q1- x+
q1-/2 x-
q2+ d2-
q2+/2 a+
q2- d2+/2
q2-/2 a-
r+ d1+ d2+ e+
r- d1-/2 d2-/2 e-
x+ d1+/2
x- a-
.marking { <a-,r+> }
.end
