.model atod
.inputs r d
.outputs a q x e
.graph
a+ r-
a- e+
d+ a+ x+
d- e+
e+ e-
e- r+
q+ d+
q- d-
r+ q+
r- a- q-
x+ x-
x- r-
.marking { <e-,r+> }
.end
