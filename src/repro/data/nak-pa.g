.model nak-pa
.inputs r d1 d2 d3
.outputs a q1 q2 q3 e
.graph
a+ r-
a- e+
d1+ a+
d1- a-
d2+ a+
d2- a-
d3+ a+
d3- a-
e+ e-
e- r+
q1+ d1+
q1- d1-
q2+ d2+
q2- d2-
q3+ d3+
q3- d3-
r+ q1+ q2+ q3+
r- q1- q2- q3-
.marking { <e-,r+> }
.end
