"""Packaged benchmark STGs (``*.g``).

Regenerate with ``python -m repro.bench.make_data``; definitions live in
:mod:`repro.bench.specs`.
"""
