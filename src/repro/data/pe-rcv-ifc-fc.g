.model pe-rcv-ifc-fc
.inputs r d1 x
.outputs a q1 y e w
.graph
a+ r-
a- e+
d1+ q1+
d1+/2 q1+/2
d1- q1-
e+ e-
e- r+
p2 w+
q1+ p2
q1+/2 p2
q1- w-
r+ p1
r- d1- x+/2
w+ a+
w- a-
x+ x-
x+/2 y+
x- d1+/2
x-/2 y-
y+ x-/2
y- w-
p1 d1+ x+
.marking { <e-,r+> }
.end
