.model alloc-outbound
.inputs r d
.outputs a q x e f
.graph
a+ r-
a- e+
d+ a+
d- x-
e+ f+
e- r+
f+ f-
f- e-
q+ d+
q- d-
r+ q+ x+
r- q-
x+ a+
x- a-
.marking { <e-,r+> }
.end
