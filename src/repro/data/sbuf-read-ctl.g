.model sbuf-read-ctl
.inputs r d
.outputs a q e f
.graph
a+ r-
a- e+
d+ a+
d- a-
e+ e-
e- r+
f+ f-
f- a-
q+ d+
q- d-
r+ q+
r- f+ q-
.marking { <e-,r+> }
.end
