.model pa
.inputs r
.outputs a b e
.graph
a+ a-
a+/2 a-/2
a- r-
a-/2 b-/2
b+ b-
b+/2 b-/2
b- r-
b-/2 e+
e+ e-
e- r+
r+ a+ b+
r- a+/2 b+/2
.marking { <e-,r+> }
.end
