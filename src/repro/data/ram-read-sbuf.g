.model ram-read-sbuf
.inputs r d1 d2
.outputs a q1 q2 w v u e
.graph
a+ r-
a- e+
d1+ w+
d1- v+
d2+ w+
d2- v+
e+ e-
e- r+
q1+ d1+
q1- d1-
q2+ d2+
q2- d2-
r+ q1+ q2+
r- q1- q2- u+
u+ u-
u- v+
v+ v-
v- w-
w+ a+
w- a-
.marking { <e-,r+> }
.end
