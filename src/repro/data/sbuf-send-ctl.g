.model sbuf-send-ctl
.inputs r d
.outputs a q e x
.graph
a+ e+
a- e+/2
d+ a+
d- a-
e+ e-
e+/2 e-/2
e- r-
e-/2 r+
q+ d+
q- d-
r+ q+
r- q- x+
x+ x-
x- a-
.marking { <e-/2,r+> }
.end
