.model wrdata
.inputs r
.outputs a b e
.graph
a+ e+
a- e+/2
b+ e+
b- e+/2
e+ e-
e+/2 e-/2
e- r-
e-/2 r+
r+ a+ b+
r- a- b-
.marking { <e-/2,r+> }
.end
