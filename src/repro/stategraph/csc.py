"""USC/CSC conflict detection and state-signal lower bounds.

Definitions (paper, Section 2):

* Two states are a **USC pair** when they carry the same binary code.
* A USC pair is a **CSC conflict** when the two states do not enable the
  same non-input signals -- equivalently (for equal codes) when some
  non-input signal has different *implied* values in the two states.

All functions here accept any :class:`~repro.stategraph.view.
StateGraphView` -- a plain :class:`~repro.stategraph.graph.StateGraph`, a
:class:`~repro.stategraph.quotient.QuotientGraph` (whose merged states may
carry *sets* of implied values), or any structural equivalent -- and an
optional ``extra_codes`` argument appending already-inserted state-signal
value bits to every state code.
"""

from __future__ import annotations

import math


def _full_code(graph, state, extra_codes):
    code = graph.code_of(state)
    if extra_codes is None:
        return code
    return code + tuple(extra_codes[state])


def _analysis_outputs(graph, outputs):
    if outputs is None:
        return sorted(graph.non_inputs)
    return sorted(outputs)


def code_classes(graph, extra_codes=None):
    """Group states by (extended) binary code.

    Returns
    -------
    dict
        code tuple -> sorted list of states carrying it.
    """
    classes = {}
    for state in graph.states():
        classes.setdefault(_full_code(graph, state, extra_codes), []).append(
            state
        )
    return classes


def usc_pairs(graph, extra_codes=None):
    """All unordered pairs of distinct states with equal codes."""
    pairs = []
    for states in code_classes(graph, extra_codes).values():
        for i, a in enumerate(states):
            for b in states[i + 1:]:
                pairs.append((a, b))
    return pairs


def _signature(graph, state, outs, extra_implied):
    """Per-state tuple of implied-value sets over outputs + extra signals."""
    parts = [graph.implied_values(state, o) for o in outs]
    if extra_implied is not None:
        for bit in extra_implied[state]:
            parts.append(bit if isinstance(bit, frozenset) else frozenset((bit,)))
    return tuple(parts)


def csc_conflicts(graph, outputs=None, extra_codes=None, extra_implied=None):
    """CSC conflict pairs with respect to ``outputs``.

    Parameters
    ----------
    graph:
        A :class:`StateGraph` or :class:`QuotientGraph`.
    outputs:
        The signals whose implied values must be determined by the code.
        Defaults to all non-input signals of the graph -- the paper's CSC
        definition.  The modular method passes a single output here.
    extra_codes:
        Optional per-state tuples of state-signal value bits, appended to
        the code before comparison.
    extra_implied:
        Optional per-state tuples of implied values of the state signals
        themselves (0/1 or frozensets).  Used by the final whole-graph
        verification, where inserted state signals are outputs too.

    Returns
    -------
    list
        Unordered conflict pairs ``(a, b)`` with ``a < b``, plus *intrinsic*
        conflicts ``(a, a)`` for merged states whose members disagree on
        some output's implied value (possible only for quotient graphs).
    """
    outs = _analysis_outputs(graph, outputs)
    conflicts = []
    for states in code_classes(graph, extra_codes).values():
        implied = {
            state: _signature(graph, state, outs, extra_implied)
            for state in states
        }
        for state in states:
            if any(len(v) > 1 for v in implied[state]):
                conflicts.append((state, state))
        for i, a in enumerate(states):
            for b in states[i + 1:]:
                if any(
                    len(va | vb) > 1
                    for va, vb in zip(implied[a], implied[b])
                ):
                    conflicts.append((a, b))
    return conflicts


def csc_conflicts_and_bound(graph, outputs=None, extra_codes=None,
                            extra_implied=None):
    """Conflict pairs and the refined lower bound, in one pass.

    Equivalent to ``(csc_conflicts(...), csc_lower_bound(...))`` but the
    per-state implied-value signatures -- the dominant cost -- are
    computed once and shared.  This is the form the greedy input-set
    derivation calls per candidate signal, where both numbers gate the
    same removal decision.
    """
    outs = _analysis_outputs(graph, outputs)
    conflicts = []
    bound = 0
    for states in code_classes(graph, extra_codes).values():
        implied = {
            state: _signature(graph, state, outs, extra_implied)
            for state in states
        }
        signatures = set()
        for state in states:
            signature = implied[state]
            if any(len(v) > 1 for v in signature):
                conflicts.append((state, state))
                bound = math.inf
            signatures.add(signature)
        if bound is not math.inf and len(signatures) > 1:
            bound = max(bound, math.ceil(math.log2(len(signatures))))
        for i, a in enumerate(states):
            for b in states[i + 1:]:
                if any(
                    len(va | vb) > 1
                    for va, vb in zip(implied[a], implied[b])
                ):
                    conflicts.append((a, b))
    return conflicts, bound


def persistence_violations(graph, signals=None):
    """Semi-modularity of non-input signals, checked on the graph itself.

    A non-input signal excited in a state must stay excited (or be the
    one that fired) in every successor; losing the excitation is a
    glitch in some delay assignment.  Input signals are exempt -- the
    environment may withdraw a choice.

    Returns ``(source, target, signal)`` triples; empty when persistent.
    """
    from repro.stategraph.graph import EPSILON as _EPS

    watched = graph.non_inputs if signals is None else frozenset(signals)
    problems = []
    for source, label, target in graph.edges:
        if label is _EPS:
            continue
        fired = label[0]
        after = graph.excitation(target)
        for signal, direction in graph.excitation(source).items():
            if signal == fired or signal not in watched:
                continue
            if after.get(signal) != direction:
                problems.append((source, target, signal))
    return problems


def max_csc(graph, extra_codes=None):
    """``Max_csc``: the largest number of states sharing one code."""
    classes = code_classes(graph, extra_codes)
    if not classes:
        return 0
    return max(len(states) for states in classes.values())


def paper_lower_bound(graph, extra_codes=None):
    """The paper's bound ``ceil(log2(Max_csc))`` on new state signals."""
    largest = max_csc(graph, extra_codes)
    if largest <= 1:
        return 0
    return math.ceil(math.log2(largest))


def csc_lower_bound(graph, outputs=None, extra_codes=None, extra_implied=None):
    """Refined lower bound on the number of new state signals.

    Within one code class, states only need to be told apart when their
    implied-output signatures differ; distinguishing ``k`` distinct
    signatures needs at least ``ceil(log2(k))`` bits.  A merged state with
    an ambiguous signature cannot be repaired by any coding, so the bound
    is infinite (``math.inf``) -- the greedy input-set derivation treats
    that as "removal not allowed".
    """
    outs = _analysis_outputs(graph, outputs)
    bound = 0
    for states in code_classes(graph, extra_codes).values():
        signatures = set()
        for state in states:
            signature = _signature(graph, state, outs, extra_implied)
            if any(len(v) > 1 for v in signature):
                return math.inf
            signatures.add(signature)
        if len(signatures) > 1:
            bound = max(bound, math.ceil(math.log2(len(signatures))))
    return bound
