"""The read-only analysis interface shared by state graphs and quotients.

The CSC analyses (:mod:`repro.stategraph.csc`), the SAT-CSC encoder
(:mod:`repro.csc.sat_csc`) and the input-set derivation all accept "a
state graph or a quotient graph" -- historically an informal contract:
:class:`~repro.stategraph.quotient.QuotientGraph` copies whichever
attributes of :class:`~repro.stategraph.graph.StateGraph` the analyses
happened to touch.  :class:`StateGraphView` makes that contract explicit.

Anything implementing this protocol -- a concrete graph, a quotient, or
a test double -- can be analysed for USC/CSC conflicts, lower bounds and
SAT encodings.  The one deliberate asymmetry of the shared interface is
:meth:`~StateGraphView.implied_values`: a plain graph always returns a
singleton set, while a quotient's merged state may return two values
(an intrinsic conflict).  Analyses must treat the set-valued form as
authoritative; ``implied_value`` (singular) is *not* part of the view.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class StateGraphView(Protocol):
    """What the conflict analyses and the SAT encoder actually require.

    Implemented by :class:`~repro.stategraph.graph.StateGraph` and
    :class:`~repro.stategraph.quotient.QuotientGraph`.  ``isinstance``
    checks work (the protocol is runtime checkable), but the contract is
    structural: any object with these members is analysable.
    """

    @property
    def signals(self):
        """Ordered tuple of code signal names."""
        ...

    @property
    def non_inputs(self):
        """Frozenset of non-input signals (subset of ``signals``)."""
        ...

    @property
    def num_states(self):
        """Number of states; state ids are ``range(num_states)``."""
        ...

    @property
    def edges(self):
        """List of ``(source, label, target)`` triples."""
        ...

    def states(self):
        """Iterable of all state ids."""
        ...

    def code_of(self, state):
        """Binary code tuple of ``state``, aligned with ``signals``."""
        ...

    def excitation(self, state):
        """Mapping ``signal -> direction`` of transitions enabled in ``state``."""
        ...

    def implied_values(self, state, signal):
        """Frozenset of possible next-state values of ``signal`` in ``state``.

        A singleton for plain graphs; a merged (quotient) state may carry
        both values when the merge lost the signal's logic function.
        """
        ...
