"""State graphs with consistent state assignment.

The state graph is the finite automaton of all reachable STG markings,
each carrying a binary code over the STG signals (paper, Section 2).  This
package builds state graphs from STGs (:mod:`repro.stategraph.build`),
detects USC/CSC conflicts and computes state-signal lower bounds
(:mod:`repro.stategraph.csc`), and implements the ε-merging quotient that
produces the paper's modular state graphs
(:mod:`repro.stategraph.quotient`).
"""

from repro.stategraph.graph import EPSILON, StateGraph
from repro.stategraph.build import (
    InconsistentStgError,
    build_state_graph,
    infer_signal_values,
)
from repro.stategraph.csc import (
    code_classes,
    csc_conflicts,
    csc_conflicts_and_bound,
    csc_lower_bound,
    max_csc,
    paper_lower_bound,
    usc_pairs,
)
from repro.stategraph.quotient import QuotientGraph, quotient, refine
from repro.stategraph.view import StateGraphView

__all__ = [
    "EPSILON",
    "InconsistentStgError",
    "QuotientGraph",
    "StateGraph",
    "StateGraphView",
    "build_state_graph",
    "code_classes",
    "csc_conflicts",
    "csc_conflicts_and_bound",
    "csc_lower_bound",
    "infer_signal_values",
    "max_csc",
    "paper_lower_bound",
    "quotient",
    "refine",
    "usc_pairs",
]
