"""ε-merging quotients of state graphs.

The paper's modular state graph Σ_oi is obtained from the complete state
graph Σ by labelling the transitions of unneeded signals as silent ε
transitions and merging the states they connect (Section 3.3) -- the
classical conversion of an automaton with ε transitions into one without.
This module implements that merge as a quotient: the result keeps a *cover
map* from every state of Σ to the macro state that covers it, which is
exactly the ``cover()`` relation used by the propagation step (Section
3.4).
"""

from __future__ import annotations

from repro import obs
from repro.stategraph.graph import EPSILON, StateGraph


class QuotientGraph:
    """A state graph quotient together with its cover map.

    Attributes
    ----------
    base:
        The original :class:`StateGraph` (typically the complete graph Σ).
    graph:
        The merged :class:`StateGraph` (the modular graph Σ_oi).
    cover:
        ``cover[base_state] -> macro_state`` (the paper's cover relation).
    blocks:
        ``blocks[macro_state]`` is the sorted tuple of base states merged
        into that macro state.
    hidden:
        The signals whose transitions were ε-labelled and merged away.
    """

    def __init__(self, base, graph, cover, blocks, hidden):
        self.base = base
        self.graph = graph
        self.cover = cover
        self.blocks = blocks
        self.hidden = frozenset(hidden)

    # Analysis interface shared with StateGraph ----------------------------

    @property
    def signals(self):
        return self.graph.signals

    @property
    def non_inputs(self):
        return self.graph.non_inputs

    @property
    def num_states(self):
        return self.graph.num_states

    @property
    def edges(self):
        return self.graph.edges

    def states(self):
        return self.graph.states()

    def excitation(self, macro_state):
        return self.graph.excitation(macro_state)

    def code_of(self, macro_state):
        return self.graph.code_of(macro_state)

    def implied_values(self, macro_state, signal):
        """Implied values of ``signal`` across the covered base states.

        A singleton means the merged state still determines the signal's
        logic function; two values mean the merge lost that information
        (an *intrinsic* conflict -- the situation the greedy input-set
        derivation must avoid creating).
        """
        return frozenset(
            self.base.implied_value(state, signal)
            for state in self.blocks[macro_state]
        )

    def is_ambiguous(self, macro_state, signal):
        return len(self.implied_values(macro_state, signal)) > 1

    def __repr__(self):
        return (
            f"QuotientGraph(base={self.base.num_states} states -> "
            f"{self.graph.num_states} macro states, hidden={sorted(self.hidden)})"
        )


def quotient(base, hidden_signals):
    """Merge away ε edges and all transitions of ``hidden_signals``.

    Parameters
    ----------
    base:
        The complete state graph Σ.
    hidden_signals:
        Signals whose transitions become ε and are merged.  May be empty,
        in which case only pre-existing ε edges are contracted.

    Returns
    -------
    QuotientGraph
    """
    hidden = frozenset(hidden_signals)
    unknown = hidden - set(base.signals)
    if unknown:
        raise ValueError(f"cannot hide unknown signals: {sorted(unknown)}")

    cover, blocks = _merge_blocks(base, hidden)

    kept = [s for s in base.signals if s not in hidden]
    kept_idx = [base.signal_index(s) for s in kept]
    codes = _projected_codes(base, blocks, kept_idx)

    macro_edges = set()
    for signal in kept:
        for source, label, target in base.edges_by_signal(signal):
            macro_edges.add((cover[source], label, cover[target]))

    graph = StateGraph(
        kept,
        codes,
        sorted(macro_edges, key=_edge_sort_key),
        non_inputs=base.non_inputs - hidden,
        initial=cover[base.initial],
        check=False,
    )
    # The quotient is called inside tight derivation loops; counters only,
    # no span of its own (the callers open "project"/"input_set" spans).
    if obs.enabled():
        obs.add("quotients")
        obs.add("eps_merges", base.num_states - len(blocks))
        obs.add("cover_map_size", len(cover))
    return QuotientGraph(base, graph, cover, blocks, hidden)


def refine(prior, extra_hidden):
    """Hide ``extra_hidden`` on top of an existing quotient, incrementally.

    Observably identical to ``quotient(prior.base, prior.hidden |
    extra_hidden)`` -- same macro state numbering, codes, cover map,
    blocks and edges -- but computed on the (much smaller) merged graph
    of ``prior`` and composed through its cover map, instead of
    re-merging the complete base graph.  This is what makes the greedy
    input-set loop incremental: every trial is a superset
    ``hidden ∪ {s}`` of the current hidden set, so each one is a single
    refinement step away from the projection already in hand.

    The equivalence rests on two invariants of :func:`quotient`: macro
    ids are numbered by smallest member (so composing two
    smallest-member orderings yields a smallest-member ordering), and
    macro edges are the label-preserving images of base edges (so images
    of images are images of the composition).

    Counted as ``quotient_refines`` in :mod:`repro.obs`, *not* as
    ``quotients``: the ``quotients`` counter measures from-scratch
    merges of a base graph, the expensive operation this function
    exists to avoid.

    Parameters
    ----------
    prior:
        A :class:`QuotientGraph` to refine.
    extra_hidden:
        Additional signals to hide; signals already hidden are ignored.

    Returns
    -------
    QuotientGraph
        Over ``prior.base`` (not over ``prior.graph``).
    """
    extra = frozenset(extra_hidden) - prior.hidden
    if not extra:
        return prior
    inner = prior.graph
    unknown = extra - set(inner.signals)
    if unknown:
        raise ValueError(f"cannot hide unknown signals: {sorted(unknown)}")
    hidden = prior.hidden | extra

    inner_cover, inner_blocks = _merge_blocks(inner, extra)

    # Compose covers and blocks back onto the base graph.  Macro ids of
    # ``prior`` increase with their smallest base member, so ordering the
    # composed blocks by smallest *inner* member (what _merge_blocks did)
    # equals ordering by smallest base member -- the numbering
    # :func:`quotient` would have produced from scratch.
    blocks = [
        tuple(sorted(
            state
            for inner_macro in members
            for state in prior.blocks[inner_macro]
        ))
        for members in inner_blocks
    ]
    cover = [inner_cover[prior.cover[s]] for s in range(len(prior.cover))]

    kept = [s for s in inner.signals if s not in extra]
    kept_idx = [inner.signal_index(s) for s in kept]
    codes = _projected_codes(inner, inner_blocks, kept_idx)

    macro_edges = set()
    for signal in kept:
        for source, label, target in inner.edges_by_signal(signal):
            macro_edges.add(
                (inner_cover[source], label, inner_cover[target])
            )

    graph = StateGraph(
        kept,
        codes,
        sorted(macro_edges, key=_edge_sort_key),
        non_inputs=inner.non_inputs - extra,
        initial=inner_cover[inner.initial],
        check=False,
    )
    if obs.enabled():
        obs.add("quotient_refines")
        obs.add("eps_merges", inner.num_states - len(inner_blocks))
        obs.add("cover_map_size", len(cover))
    return QuotientGraph(prior.base, graph, cover, blocks, hidden)


def _merge_blocks(graph, hidden):
    """Union-find partition of ``graph`` under ε and ``hidden`` edges.

    Returns ``(cover, blocks)`` with blocks numbered in order of their
    smallest member, so macro state ids are stable across runs (and
    across the from-scratch / incremental construction paths).
    """
    parent = list(range(graph.num_states))

    def find(x):
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for source, _label, target in graph.edges_by_signal(EPSILON):
        union(source, target)
    for signal in hidden:
        for source, _label, target in graph.edges_by_signal(signal):
            union(source, target)

    roots = {}
    for state in graph.states():
        roots.setdefault(find(state), []).append(state)
    blocks = [tuple(sorted(members)) for members in roots.values()]
    blocks.sort(key=lambda members: members[0])
    cover = [0] * graph.num_states
    for macro, members in enumerate(blocks):
        for state in members:
            cover[state] = macro
    return cover, blocks


def _projected_codes(graph, blocks, kept_idx):
    """Per-block codes projected onto the kept signal indices."""
    codes = []
    for members in blocks:
        projected = {
            tuple(graph.code_of(m)[i] for i in kept_idx) for m in members
        }
        if len(projected) != 1:
            raise AssertionError(
                "merged states disagree on kept signals; quotient invariant "
                "violated"
            )
        codes.append(projected.pop())
    return codes


def _edge_sort_key(edge):
    source, label, target = edge
    return (source, label if label is not EPSILON else ("", ""), target)
