"""Building state graphs from signal transition graphs.

The construction follows Section 2 of the paper: exhaustively generate the
reachable markings of the STG's Petri net, then assign every marking the
binary code of its signal values.  Initial signal values are not given by
the ``.g`` format; they are *inferred* by propagating the consistency
constraints (``s+`` fires only from value 0, ``s-`` only from value 1,
other transitions leave the value unchanged) over the whole reachability
graph.  An STG admitting no such assignment is inconsistent and cannot be
synthesised.
"""

from __future__ import annotations

from repro import obs
from repro.petrinet.reachability import reachability_graph
from repro.stg.errors import StgValidationError
from repro.stategraph.graph import EPSILON, StateGraph
from repro.stategraph.quotient import quotient


class InconsistentStgError(StgValidationError):
    """The STG's rises and falls admit no consistent state assignment."""


def infer_signal_values(stg, graph):
    """Infer every signal's binary value in every reachable marking.

    Parameters
    ----------
    stg:
        The signal transition graph.
    graph:
        Its :class:`~repro.petrinet.reachability.ReachabilityGraph`.

    Returns
    -------
    dict
        ``values[marking][signal] -> 0 or 1``.

    Raises
    ------
    InconsistentStgError
        If some signal is forced to both 0 and 1 in the same marking, or
        some signal's value is not determined anywhere (a signal with no
        fired transition).
    """
    values = {marking: {} for marking in graph.markings}

    for signal in stg.signals:
        # Seed values from the edges that move this signal.
        pending = []
        for source, transition, target in graph.edges:
            label = stg.label(transition)
            if label.signal != signal:
                continue
            before, after = (0, 1) if label.is_rise else (1, 0)
            for marking, value in ((source, before), (target, after)):
                known = values[marking].get(signal)
                if known is None:
                    values[marking][signal] = value
                    pending.append(marking)
                elif known != value:
                    raise InconsistentStgError(
                        f"signal {signal!r} forced to both values in "
                        f"{marking!r}; transitions do not alternate"
                    )
        if not pending:
            raise InconsistentStgError(
                f"signal {signal!r} never fires; its value is undetermined"
            )
        # Propagate across edges that do not move this signal.
        while pending:
            marking = pending.pop()
            value = values[marking][signal]
            neighbours = [
                (t, other) for t, other in graph.successors(marking)
            ] + [(t, other) for t, other in graph.predecessors(marking)]
            for transition, other in neighbours:
                if stg.label(transition).signal == signal:
                    continue
                known = values[other].get(signal)
                if known is None:
                    values[other][signal] = value
                    pending.append(other)
                elif known != value:
                    raise InconsistentStgError(
                        f"signal {signal!r} has contradictory values at "
                        f"{other!r}"
                    )

    for marking in graph.markings:
        missing = [s for s in stg.signals if s not in values[marking]]
        if missing:
            raise InconsistentStgError(
                f"could not determine values of {missing} at {marking!r}"
            )
    return values


def build_state_graph(stg, contract_dummies=True, budget=None,
                      **explore_kwargs):
    """Derive the complete state graph Σ from an STG.

    Parameters
    ----------
    stg:
        The signal transition graph.
    contract_dummies:
        When true (default), states connected by dummy (ε) transitions are
        merged away, as in the classical ε-free automaton conversion the
        paper cites; the returned graph then has no ε edges.
    budget:
        Optional :class:`~repro.runtime.budget.Budget`; bounds the
        marking exploration (deadline and state cap) and is checked
        between the construction phases.
    explore_kwargs:
        Passed to :func:`repro.petrinet.reachability.reachability_graph`
        (``marking_limit``, ``token_bound``).

    Returns
    -------
    StateGraph
    """
    with obs.span("build_state_graph"):
        with obs.span("reachability"):
            reach = reachability_graph(
                stg.net, budget=budget, **explore_kwargs
            )
        if budget is not None:
            budget.checkpoint("state-graph")
        for marking in reach.markings:
            if not marking.is_safe():
                raise StgValidationError(
                    f"STG is not 1-safe: reachable marking {marking!r}"
                )
        with obs.span("signal_values"):
            values = infer_signal_values(stg, reach)
        if budget is not None:
            budget.checkpoint("signal-values")

        signals = tuple(stg.signals)
        index = {marking: i for i, marking in enumerate(reach.markings)}
        codes = [
            tuple(values[marking][s] for s in signals)
            for marking in reach.markings
        ]
        edges = []
        for source, transition, target in reach.edges:
            label = stg.label(transition)
            if label.is_dummy:
                edge_label = EPSILON
            else:
                edge_label = (label.signal, label.direction)
            edges.append((index[source], edge_label, index[target]))

        graph = StateGraph(
            signals,
            codes,
            edges,
            non_inputs=stg.non_inputs,
            initial=index[reach.initial],
            markings=reach.markings,
        )
        if contract_dummies and any(
            label is EPSILON for _s, label, _t in edges
        ):
            graph = quotient(graph, hidden_signals=()).graph
        return graph
