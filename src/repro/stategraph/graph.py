"""The state graph data structure.

States are dense integer ids.  Every state carries a binary code over an
ordered tuple of *code signals*; edges are labelled either with a signal
transition ``(signal, "+"/"-")`` or with :data:`EPSILON` (silent).

The structure is deliberately independent of Petri nets: modular state
graphs produced by ε-merging are state graphs too, with no markings
behind them.
"""

from __future__ import annotations

from repro.stg.model import FALL, RISE

#: Label of silent (ε) edges.
EPSILON = None


class StateGraph:
    """An edge-labelled automaton with per-state binary codes.

    Parameters
    ----------
    signals:
        Ordered iterable of code signal names; the i-th bit of every state
        code is the value of ``signals[i]``.
    codes:
        ``codes[s]`` is the binary code tuple of state ``s``.  The number
        of states is ``len(codes)``.
    edges:
        Iterable of ``(source, label, target)`` with ``label`` either
        ``(signal, "+"/"-")`` or :data:`EPSILON`.
    non_inputs:
        The non-input signals ``S_NI`` (subset of ``signals``).
    initial:
        Initial state id.
    markings:
        Optional list mapping state ids to the Petri net markings they
        were generated from (informational only).
    check:
        Validate every edge against the consistent-state-assignment rules.
        Constructors that build edges from an already validated graph (the
        ε-merging quotient, its incremental refinement) pass ``False``:
        their edges are projections of checked ones, and re-validation is
        pure overhead in the projection hot loop.
    """

    def __init__(
        self, signals, codes, edges, non_inputs, initial=0, markings=None,
        check=True,
    ):
        self.signals = tuple(signals)
        self._index = {s: i for i, s in enumerate(self.signals)}
        if len(self._index) != len(self.signals):
            raise ValueError("duplicate code signals")
        self.codes = [tuple(code) for code in codes]
        for state, code in enumerate(self.codes):
            if len(code) != len(self.signals):
                raise ValueError(
                    f"state {state} code has {len(code)} bits, expected "
                    f"{len(self.signals)}"
                )
        self.non_inputs = frozenset(non_inputs)
        unknown = self.non_inputs - set(self.signals)
        if unknown:
            raise ValueError(f"non-input signals not in code: {sorted(unknown)}")
        if self.codes and not 0 <= initial < len(self.codes):
            raise ValueError(f"initial state {initial} out of range")
        self.initial = initial
        self.markings = list(markings) if markings is not None else None

        self.edges = []
        self._out = [[] for _ in self.codes]
        self._in = [[] for _ in self.codes]
        self._excitation_cache = [None] * len(self.codes)
        self._by_signal = None
        for source, label, target in edges:
            if check:
                self._check_edge(source, label, target)
            self.edges.append((source, label, target))
            self._out[source].append((label, target))
            self._in[target].append((label, source))

    def _check_edge(self, source, label, target):
        n = len(self.codes)
        if not (0 <= source < n and 0 <= target < n):
            raise ValueError(f"edge ({source},{label},{target}) out of range")
        if label is EPSILON:
            if self.codes[source] != self.codes[target]:
                raise ValueError(
                    f"ε edge {source}->{target} changes the state code"
                )
            return
        signal, direction = label
        if signal not in self._index:
            raise ValueError(f"edge uses unknown signal {signal!r}")
        bit = self._index[signal]
        before, after = (0, 1) if direction == RISE else (1, 0)
        if direction not in (RISE, FALL):
            raise ValueError(f"bad edge direction {direction!r}")
        if (
            self.codes[source][bit] != before
            or self.codes[target][bit] != after
        ):
            raise ValueError(
                f"edge {signal}{direction} from {source} to {target} violates "
                "consistent state assignment"
            )
        for i, (a, b) in enumerate(
            zip(self.codes[source], self.codes[target])
        ):
            if i != bit and a != b:
                raise ValueError(
                    f"edge {signal}{direction} from {source} to {target} "
                    f"changes unrelated signal {self.signals[i]!r}"
                )

    # -- basic views --------------------------------------------------------

    @property
    def num_states(self):
        return len(self.codes)

    @property
    def num_edges(self):
        return len(self.edges)

    def states(self):
        return range(len(self.codes))

    def code_of(self, state):
        return self.codes[state]

    def out_edges(self, state):
        """Outgoing ``(label, target)`` pairs."""
        return list(self._out[state])

    def in_edges(self, state):
        """Incoming ``(label, source)`` pairs."""
        return list(self._in[state])

    def edges_by_signal(self, signal):
        """Edges ``(source, label, target)`` labelled by ``signal``.

        Pass :data:`EPSILON` for the silent edges.  The index is built
        lazily on first use and shared by every later call, so union
        passes over a handful of hidden signals no longer scan the whole
        edge list.  Unknown signals return an empty tuple (a hidden-set
        union pass may name signals this graph never fires).
        """
        if self._by_signal is None:
            index = {}
            for edge in self.edges:
                label = edge[1]
                key = EPSILON if label is EPSILON else label[0]
                index.setdefault(key, []).append(edge)
            self._by_signal = {
                key: tuple(edges) for key, edges in index.items()
            }
        return self._by_signal.get(signal, ())

    def value(self, state, signal):
        """Binary value of a code signal in a state."""
        return self.codes[state][self._index[signal]]

    def signal_index(self, signal):
        return self._index[signal]

    # -- excitation and implied values ---------------------------------------

    def excitation(self, state):
        """Mapping signal -> direction for signals enabled in ``state``.

        Cached: graphs are immutable once built and excitation is queried
        heavily by the CSC analysis.
        """
        cached = self._excitation_cache[state]
        if cached is not None:
            return cached
        result = {}
        for label, _target in self._out[state]:
            if label is not EPSILON:
                signal, direction = label
                previous = result.get(signal)
                if previous is not None and previous != direction:
                    raise ValueError(
                        f"state {state} enables both {signal}+ and {signal}-"
                    )
                result[signal] = direction
        self._excitation_cache[state] = result
        return result

    def enabled_non_inputs(self, state):
        """Frozenset of ``(signal, direction)`` for excited non-inputs."""
        return frozenset(
            (signal, direction)
            for signal, direction in self.excitation(state).items()
            if signal in self.non_inputs
        )

    def implied_value(self, state, signal):
        """The next-state value of ``signal`` in ``state``.

        This is the value of the logic function implementing ``signal``:
        the target value while the signal is excited, the current code bit
        while it is stable (Chu's implied-value rule).
        """
        direction = self.excitation(state).get(signal)
        if direction == RISE:
            return 1
        if direction == FALL:
            return 0
        return self.codes[state][self._index[signal]]

    def implied_values(self, state, signal):
        """Implied value as a frozenset, for interface parity with quotients."""
        return frozenset((self.implied_value(state, signal),))

    # -- whole-graph checks -----------------------------------------------------

    def concurrent_transition_count(self):
        """Number of states enabling two or more transitions (``N_ct``)."""
        return sum(1 for s in self.states() if len(self._out[s]) >= 2)

    def check_deterministic(self):
        """Raise if some state has two same-labelled outgoing edges."""
        for state in self.states():
            seen = set()
            for label, _target in self._out[state]:
                if label is EPSILON:
                    continue
                if label in seen:
                    raise ValueError(
                        f"state {state} has two edges labelled {label}"
                    )
                seen.add(label)

    def to_networkx(self):
        """The state graph as a :class:`networkx.MultiDiGraph`.

        State nodes carry their ``code``; edges carry ``signal`` and
        ``direction`` (ε edges carry ``signal=None``).  A live, 1-safe
        specification's graph is strongly connected, which networkx can
        confirm directly.
        """
        import networkx as nx

        graph = nx.MultiDiGraph()
        for state in self.states():
            graph.add_node(state, code=self.codes[state])
        for source, label, target in self.edges:
            if label is EPSILON:
                graph.add_edge(source, target, signal=None, direction=None)
            else:
                graph.add_edge(
                    source, target, signal=label[0], direction=label[1]
                )
        return graph

    def __repr__(self):
        return (
            f"StateGraph(states={self.num_states}, edges={self.num_edges}, "
            f"signals={len(self.signals)})"
        )
