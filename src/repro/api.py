"""Versioned request/response API for synthesis front ends.

Three consumers used to invent three ad-hoc dict shapes for "one
synthesis run as data": the HTTP service's wire format, the CLI's
machine-readable output, and whole-run replay records in the result
cache.  This module is the one serialization they now share:
:class:`SynthesisRequest` and :class:`SynthesisResponse` are frozen
dataclasses with ``to_json``/``from_json`` round-trips under the
``repro-api/1`` schema tag, so a response cached by the service, a
response printed by ``python -m repro --json``, and a response parsed
by a client are the same document.

The schema is versioned the same way the bench artifacts are
(``repro-bench/1``, ``repro-service-bench/1``): every document carries
``"schema": "repro-api/1"`` and ``from_json`` refuses anything else, so
a future shape change bumps the tag instead of silently re-reading old
documents.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace

#: Schema tag carried by every serialized request/response document.
API_SCHEMA = "repro-api/1"

#: Synthesis methods a request may name.
METHODS = ("modular", "direct", "lavagno")

#: SAT engines a request may name.
ENGINES = ("hybrid", "dpll", "cdcl", "bdd")

#: Cache tiers a response may report.
CACHE_TIERS = ("off", "miss", "hit")

#: Verification levels a request may name (weakest to strongest).
VERIFY_LEVELS = ("csc", "conformance", "hazards")


class ApiError(ValueError):
    """A request/response document that violates ``repro-api/1``."""


@dataclass(frozen=True)
class SynthesisRequest:
    """One synthesis job as data: the ``.g`` source plus JSON-safe knobs.

    Only knobs with JSON-scalar values appear here -- the run-wide
    budget is the scalar ``timeout_seconds``, not a ``Budget`` object;
    scheduling-only knobs the caller does not own (``cache_dir``,
    ``jobs``) belong to the server, not the request, so two clients
    asking for the same circuit dedupe to the same fingerprint.
    """

    g_text: str
    method: str = "modular"
    engine: str = "hybrid"
    sat_mode: str = "incremental"
    minimize: bool = True
    polish: bool = True
    fallback: bool = True
    degrade: bool = True
    timeout_seconds: object = None
    verify_level: str = "hazards"

    def __post_init__(self):
        if not isinstance(self.g_text, str) or not self.g_text.strip():
            raise ApiError("g_text must be non-empty .g source text")
        if self.method not in METHODS:
            raise ApiError(
                f"method must be one of {METHODS}, not {self.method!r}"
            )
        if self.engine not in ENGINES:
            raise ApiError(
                f"engine must be one of {ENGINES}, not {self.engine!r}"
            )
        if self.sat_mode not in ("incremental", "oneshot"):
            raise ApiError(
                f"sat_mode must be 'incremental' or 'oneshot', "
                f"not {self.sat_mode!r}"
            )
        if self.timeout_seconds is not None:
            if not isinstance(self.timeout_seconds, (int, float)) \
                    or self.timeout_seconds <= 0:
                raise ApiError(
                    f"timeout_seconds must be a positive number or null, "
                    f"not {self.timeout_seconds!r}"
                )
        if self.verify_level not in VERIFY_LEVELS:
            raise ApiError(
                f"verify_level must be one of {VERIFY_LEVELS}, "
                f"not {self.verify_level!r}"
            )

    def to_options(self, **server_knobs):
        """The :class:`~repro.runtime.options.SynthesisOptions` this
        request asks for.

        ``server_knobs`` (``jobs``, ``cache_dir``, ...) are the
        deployment-owned fields merged in by the executing side; a
        ``timeout_seconds`` becomes a fresh :class:`Budget`.
        """
        from repro.runtime.budget import Budget
        from repro.runtime.options import SynthesisOptions

        budget = None
        if self.timeout_seconds is not None:
            budget = Budget(max_seconds=float(self.timeout_seconds))
        return SynthesisOptions(
            engine=self.engine, sat_mode=self.sat_mode,
            minimize=self.minimize, polish=self.polish,
            fallback=self.fallback, degrade=self.degrade,
            budget=budget, verify_level=self.verify_level,
            **server_knobs,
        )

    def fingerprint(self):
        """Content fingerprint for request dedup and response replay.

        Two requests whose ``.g`` documents canonicalise identically
        and whose synthesis-relevant knobs match share a fingerprint --
        the same normalisation the module/artifact cache keys use, so
        formatting differences in the upload never split the cache.
        """
        import hashlib

        from repro.stg.canonical import g_fingerprint
        from repro.stg.parse import parse_g

        # ``g_text`` is literal source by contract -- parse_g, never
        # load_stg, so a malicious one-line body cannot name a server
        # path.
        base = g_fingerprint(parse_g(self.g_text))
        knobs = json.dumps(
            {
                "method": self.method,
                "engine": self.engine,
                "sat_mode": self.sat_mode,
                "minimize": self.minimize,
                "polish": self.polish,
                "fallback": self.fallback,
                "degrade": self.degrade,
                "timeout_seconds": self.timeout_seconds,
                "verify_level": self.verify_level,
            },
            sort_keys=True,
        )
        digest = hashlib.sha256()
        digest.update(base.encode("ascii"))
        digest.update(b"\x00")
        digest.update(knobs.encode("utf-8"))
        return digest.hexdigest()


@dataclass(frozen=True)
class SynthesisResponse:
    """One synthesis outcome as data.

    Mirrors what the CLI prints: the state/signal counts of the paper's
    Table 1, the inserted state signals, the next-state equations, the
    run's counter bag, and the verdict.  ``cache`` is the tier this
    response was served from (``"off"``, ``"miss"``, ``"hit"``).
    """

    model: str
    method: str
    engine: str
    status: str
    exit_code: int
    initial_states: object = None
    final_states: object = None
    initial_signals: object = None
    final_signals: object = None
    state_signals: tuple = ()
    literals: object = None
    seconds: object = None
    equations: tuple = ()
    modules: tuple = ()
    counters: tuple = ()
    verified: object = None
    verify: object = None
    error: object = None
    cache: str = "off"

    def __post_init__(self):
        if self.cache not in CACHE_TIERS:
            raise ApiError(
                f"cache must be one of {CACHE_TIERS}, not {self.cache!r}"
            )
        object.__setattr__(self, "state_signals", tuple(self.state_signals))
        object.__setattr__(self, "equations", tuple(self.equations))
        object.__setattr__(
            self, "modules",
            tuple((str(o), str(s)) for o, s in self.modules),
        )
        object.__setattr__(
            self, "counters",
            tuple(sorted((str(k), v) for k, v in dict(self.counters).items())),
        )

    @property
    def ok(self):
        return self.status in ("ok", "degraded")

    def evolve(self, **changes):
        """A copy with the given fields replaced."""
        return replace(self, **changes)


def response_from_report(report, model=None, verified=None, cache="off"):
    """Build a :class:`SynthesisResponse` from a finished
    :class:`~repro.runtime.report.RunReport`.

    ``model`` overrides the model name (needed on timeout/error runs,
    which carry no result to read it from); ``verified`` records a
    conformance-check verdict the caller ran, if any -- when omitted
    it is derived from the run's own verification pass
    (``report.verify``), whose full verdict document lands in
    ``response.verify``.  The static ``csc`` level yields no
    closed-loop verdict, so it leaves ``verified`` at ``None`` unless
    it actually found a conflict.
    """
    result = report.result
    verify_doc = None
    run_verify = getattr(report, "verify", None)
    if run_verify is not None:
        verify_doc = run_verify.as_dict()
        if verified is None:
            verdict = run_verify.verdict
            if run_verify.level != "csc" or verdict is False:
                verified = verdict
    fields = {}
    equations_lines = ()
    if result is not None:
        fields = {
            "initial_states": result.initial_states,
            "final_states": result.final_states,
            "initial_signals": result.initial_signals,
            "final_signals": result.final_signals,
            "literals": result.literals,
            "seconds": round(result.seconds, 6),
        }
        names = getattr(getattr(result, "assignment", None), "names", None)
        if names is not None:
            fields["state_signals"] = tuple(names)
        if result.covers is not None:
            from repro.logic import equations

            equations_lines = tuple(
                equations(result.covers, result.expanded.signals)
            )
    error = None
    if report.error is not None:
        describe = getattr(report.error, "describe", None)
        error = describe() if describe else str(report.error)
    return SynthesisResponse(
        model=model or getattr(getattr(result, "graph", None), "name", "stg"),
        method=report.method,
        engine=report.engine,
        status=report.status,
        exit_code=report.exit_code,
        equations=equations_lines,
        modules=tuple((m.output, m.status) for m in report.modules),
        counters=tuple(sorted(report.metrics.as_dict().items())),
        verified=verified,
        verify=verify_doc,
        error=error,
        cache=cache,
        **fields,
    )


def to_json(value):
    """Serialize a request or response to a ``repro-api/1`` dict."""
    if not isinstance(value, (SynthesisRequest, SynthesisResponse)):
        raise ApiError(
            f"to_json() takes a SynthesisRequest or SynthesisResponse, "
            f"not {type(value).__name__}"
        )
    kind = "request" if isinstance(value, SynthesisRequest) else "response"
    document = {"schema": API_SCHEMA, "kind": kind}
    payload = asdict(value)
    if kind == "response":
        payload["state_signals"] = list(value.state_signals)
        payload["equations"] = list(value.equations)
        payload["modules"] = [list(pair) for pair in value.modules]
        payload["counters"] = {name: count for name, count in value.counters}
    document.update(payload)
    return document


def to_json_bytes(value):
    """Canonical UTF-8 encoding of :func:`to_json`.

    Sorted keys and fixed separators make the encoding a function of
    the content alone -- the property the service's replay cache and
    the load test's byte-identity check rely on.
    """
    return json.dumps(
        to_json(value), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def from_json(document):
    """Parse a ``repro-api/1`` dict (or JSON text/bytes) back to a value.

    Raises :class:`ApiError` on a wrong/missing schema tag, an unknown
    ``kind``, or field values that violate the dataclass contracts.
    """
    if isinstance(document, (bytes, bytearray)):
        document = document.decode("utf-8")
    if isinstance(document, str):
        try:
            document = json.loads(document)
        except json.JSONDecodeError as exc:
            raise ApiError(f"not a JSON document: {exc}") from exc
    if not isinstance(document, dict):
        raise ApiError(
            f"expected a JSON object, not {type(document).__name__}"
        )
    schema = document.get("schema")
    if schema != API_SCHEMA:
        raise ApiError(
            f"schema must be {API_SCHEMA!r}, not {schema!r}"
        )
    kind = document.get("kind")
    payload = {
        key: value for key, value in document.items()
        if key not in ("schema", "kind")
    }
    try:
        if kind == "request":
            return SynthesisRequest(**payload)
        if kind == "response":
            if isinstance(payload.get("counters"), dict):
                payload["counters"] = sorted(payload["counters"].items())
            if payload.get("modules") is not None:
                payload["modules"] = [
                    tuple(pair) for pair in payload["modules"]
                ]
            return SynthesisResponse(**payload)
    except TypeError as exc:
        raise ApiError(f"malformed {kind} document: {exc}") from exc
    raise ApiError(f"kind must be 'request' or 'response', not {kind!r}")
