"""``repro.perf`` -- the incremental projection engine.

The paper's speedup story rests on cheap per-output projections, but a
naive Figure-2 loop recomputes a from-scratch quotient of the complete
state graph Σ for every candidate signal of every output.  This package
makes those projections incremental and shared:

* :class:`~repro.perf.projection.ProjectionCache` memoizes
  ``quotient(Σ, hidden)`` by ``frozenset(hidden)``, bounded by an LRU
  policy, with hit/miss/eviction counters wired into :mod:`repro.obs`;
* on a miss, the cache *refines* the best already-cached subset
  projection through :func:`repro.stategraph.quotient.refine` -- a
  quotient of the current (much smaller) modular graph composed through
  the cover maps -- instead of re-merging all of Σ.

One cache instance is created per :func:`~repro.csc.synthesis.
modular_synthesis` run and shared by the output-ordering pre-scan, every
per-output module pass, and the partition fallback ladder, so no
projection is ever derived twice.  See ``docs/performance.md``.
"""

from repro.perf.projection import DEFAULT_CACHE_SIZE, ProjectionCache
from repro.perf.result_cache import (
    CACHE_SALT,
    ResultCache,
    graph_fingerprint,
    options_fingerprint,
)

__all__ = [
    "CACHE_SALT",
    "DEFAULT_CACHE_SIZE",
    "ProjectionCache",
    "ResultCache",
    "graph_fingerprint",
    "options_fingerprint",
]
