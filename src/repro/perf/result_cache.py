"""Persistent, content-addressed cache of synthesis results.

A :class:`ResultCache` is an on-disk store keyed by content, not by file
path or mtime: the key of every record is a SHA-256 over

* the **canonical** ``.g`` text of the input STG
  (:func:`repro.stg.canonical.g_fingerprint`), or a structural
  fingerprint of the state graph when synthesis was handed a prebuilt
  :class:`~repro.stategraph.graph.StateGraph`;
* an **options fingerprint** -- every
  :class:`~repro.runtime.options.SynthesisOptions` field that can change
  the result (``budget``, ``jobs``, ``cache_dir``, ``cache_max_bytes``,
  ``retries`` and ``retry_backoff`` are deliberately excluded: they
  change *how fast* a result is produced, never *what* is produced --
  that is the determinism contract of ``docs/parallelism.md``);
* a **code version salt** (:data:`CACHE_SALT`), bumped whenever solver
  or propagation logic changes meaning, so stale caches self-invalidate
  instead of replaying results of old code.

Two record kinds share one store:

``module``
    One output's :class:`~repro.csc.modular.PartitionResult`, solved
    against the *empty* assignment (the only assignment state that is a
    pure function of the input).  Keyed additionally by the output name.
``artifact``
    A whole :class:`~repro.csc.synthesis.ModularResult` (minus the
    state graphs, which are reattached on load), keyed by method name.
    A warm hit skips the entire run and reproduces byte-identical CLI
    output, including the recorded wall-clock time of the original run.

Concurrency contract
--------------------
The store is safe for **concurrent multi-process** use -- parallel
synthesis workers, bench shards and overlapping CLI runs may share one
cache directory (``docs/robustness.md``):

* Records live in a sharded two-level layout
  (``<root>/<kind>/ab/abcdef....rec``) so no single directory grows
  unboundedly and concurrent writers rarely touch the same directory
  entry.
* **Reads are lock-free.**  Records are pickled ``{"salt": ...,
  "payload": ...}`` envelopes written atomically (temp file +
  :func:`os.replace` under the write lock), so a reader sees either the
  old complete record or the new complete record, never a torn one.
* **Writes take an advisory lock** on ``<root>/.lock``
  (:func:`fcntl.flock`, with an ``msvcrt`` fallback and a no-op shim on
  platforms with neither) around the publish rename and around
  eviction, so two writers cannot interleave a rename with a removal.
* A record that fails to unpickle or carries a different salt is
  *stale*: it is deleted -- under the lock, and only after re-checking
  that the inode on disk is still the one that was read, so a record a
  concurrent writer just replaced with a good one is never deleted --
  and the lookup proceeds as a miss.  A concurrent deleter winning the
  race (the file is already gone) still counts as stale: the heal
  happened, just not by this process.
* The store is **size-bounded**: with ``max_bytes`` set, every put
  triggers :meth:`ResultCache.evict`, which removes
  least-recently-used records (by access time; hits touch their
  record) until the store fits.  Eviction is safe under concurrent
  readers -- a reader that already opened the record keeps its handle;
  a reader that lost the race takes a plain miss.
* A filesystem error on the read or write path (``EIO``, quota, a
  vanished directory) is a counted, non-fatal event: the lookup becomes
  a miss, the store is skipped.  Caching is an optimisation, never a
  correctness dependency.

Fault injection: ``cache-corrupt-record`` makes :meth:`ResultCache.get`
treat the record it just read as corrupt (driving the self-heal path on
a byte-good record); ``cache-io-error`` fails one ``get`` or ``put`` as
an :class:`OSError` would (see :mod:`repro.runtime.faults`).

Counters mirrored into :mod:`repro.obs`: ``result_cache_hits``,
``result_cache_misses``, ``result_cache_stale``,
``result_cache_stores``, ``result_cache_evictions``,
``result_cache_io_errors``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from contextlib import contextmanager

from repro import obs
from repro.runtime import faults

#: Version salt baked into every record.  Bump when a change to solver,
#: propagation, repair or minimisation logic makes previously cached
#: results meaningless.
CACHE_SALT = "repro-result-cache/2"

#: Record filename suffix.
RECORD_SUFFIX = ".rec"

#: SynthesisOptions fields that parameterise *what* is computed.  The
#: excluded fields (``budget``, ``jobs``, ``cache_dir``,
#: ``cache_max_bytes``, ``retries``, ``retry_backoff``) only change how
#: the computation is scheduled.
_FINGERPRINT_FIELDS = (
    "minimize", "max_signals", "output_order", "signal_prefix",
    "engine", "polish", "fallback", "degrade", "sat_mode",
)


def options_fingerprint(opts, method="modular"):
    """A deterministic text form of the result-relevant options.

    Limits are spelled out field by field (``Limits`` has no stable
    ``repr``); every other relevant field reprs deterministically.
    """
    parts = [f"method={method}"]
    limits = opts.limits
    if limits is None:
        parts.append("limits=None")
    else:
        parts.append(
            f"limits=({limits.max_backtracks!r},{limits.max_seconds!r})"
        )
    for name in _FINGERPRINT_FIELDS:
        parts.append(f"{name}={getattr(opts, name)!r}")
    return ";".join(parts)


def graph_fingerprint(graph):
    """Structural SHA-256 of a prebuilt state graph.

    Hashes behaviour, not representation: state ids are replaced by
    their codes, edges are sorted, so two constructions of the same
    graph fingerprint equal.
    """
    digest = hashlib.sha256()
    digest.update(repr(tuple(graph.signals)).encode())
    digest.update(repr(tuple(sorted(graph.non_inputs))).encode())
    digest.update(repr(tuple(sorted(graph.codes))).encode())
    digest.update(repr(graph.codes[graph.initial]).encode())
    digest.update(
        repr(
            tuple(
                sorted(
                    (graph.codes[s], label, graph.codes[t])
                    for s, label, t in graph.edges
                )
            )
        ).encode()
    )
    return digest.hexdigest()


# -- advisory file locking, per platform -----------------------------------

try:
    import fcntl as _fcntl

    def _lock_handle(handle):
        _fcntl.flock(handle.fileno(), _fcntl.LOCK_EX)

    def _unlock_handle(handle):
        _fcntl.flock(handle.fileno(), _fcntl.LOCK_UN)

except ImportError:  # pragma: no cover - Windows
    try:
        import msvcrt as _msvcrt

        def _lock_handle(handle):
            handle.seek(0)
            _msvcrt.locking(handle.fileno(), _msvcrt.LK_LOCK, 1)

        def _unlock_handle(handle):
            handle.seek(0)
            _msvcrt.locking(handle.fileno(), _msvcrt.LK_UNLCK, 1)

    except ImportError:  # pragma: no cover - no locking primitive at all

        def _lock_handle(handle):
            pass

        def _unlock_handle(handle):
            pass


class ResultCache:
    """On-disk content-addressed store of synthesis results.

    Parameters
    ----------
    root:
        Cache directory; created (with parents) when missing.
    salt:
        Code version salt; records carrying any other salt are stale.
    max_bytes:
        Size bound.  After every store, least-recently-used records are
        evicted until total record bytes fit.  ``None`` never evicts.
    """

    def __init__(self, root, salt=CACHE_SALT, max_bytes=None):
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(
                f"max_bytes must be >= 0 or None, not {max_bytes!r}"
            )
        self.root = os.fspath(root)
        self.salt = salt
        self.max_bytes = max_bytes
        os.makedirs(self.root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.stores = 0
        self.evictions = 0
        self.io_errors = 0

    @staticmethod
    def key(*parts):
        """SHA-256 over the joined key components."""
        joined = "\x1f".join(str(part) for part in parts)
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()

    def _path(self, kind, key):
        return os.path.join(self.root, kind, key[:2], key + RECORD_SUFFIX)

    @property
    def _lock_path(self):
        return os.path.join(self.root, ".lock")

    @contextmanager
    def _locked(self):
        """Hold the store's advisory write lock for the body.

        Readers never take it (reads are rename-atomic); writers and
        evictors serialise on it.  A filesystem that cannot even open
        the lock file degrades to best-effort unlocked operation --
        the rename is still atomic, only write/evict interleavings
        lose their ordering guarantee.
        """
        try:
            handle = open(self._lock_path, "ab")
        except OSError:
            yield
            return
        try:
            try:
                _lock_handle(handle)
            except OSError:
                yield
                return
            try:
                yield
            finally:
                try:
                    _unlock_handle(handle)
                except OSError:
                    pass
        finally:
            handle.close()

    # -- lookup ------------------------------------------------------------

    def get(self, kind, key):
        """The cached payload, or ``None`` on miss, stale or I/O error.

        Lock-free: the record file is either a complete envelope or
        absent (writers publish with an atomic rename).  A hit touches
        the record's timestamps so LRU eviction sees the use.  With a
        tracer installed, the lookup's latency lands in the
        ``cache_lookup_seconds`` histogram (hit, miss and stale alike).
        """
        if obs.enabled():
            from repro.obs import Stopwatch

            watch = Stopwatch()
            try:
                return self._get(kind, key)
            finally:
                obs.observe("cache_lookup_seconds", watch.elapsed())
        return self._get(kind, key)

    def _get(self, kind, key):
        path = self._path(kind, key)
        if faults.should_fire("cache-io-error", detail="get"):
            return self._io_miss("injected fault: cache read failed")
        inode = None
        try:
            with open(path, "rb") as handle:
                try:
                    inode = os.fstat(handle.fileno()).st_ino
                except OSError:
                    inode = None
                record = pickle.load(handle)
            if not isinstance(record, dict) or "payload" not in record:
                raise ValueError("malformed cache record")
            if record.get("salt") != self.salt:
                raise ValueError("cache salt mismatch")
            if faults.should_fire("cache-corrupt-record", detail=kind):
                raise ValueError("injected fault: corrupt cache record")
        except FileNotFoundError:
            self.misses += 1
            obs.add("result_cache_misses")
            return None
        except OSError:
            # The file exists but could not be read (EIO, permissions,
            # a directory vanishing mid-walk): transient, not stale --
            # deleting on it would turn a flaky disk into cache churn.
            return self._io_miss("cache read failed")
        except Exception:
            # Unreadable, truncated, unpicklable, or written by another
            # code version: self-heal by dropping the record.
            self.stale += 1
            obs.add("result_cache_stale")
            self.misses += 1
            obs.add("result_cache_misses")
            self._discard_stale(path, inode)
            return None
        self.hits += 1
        obs.add("result_cache_hits")
        try:
            os.utime(path)
        except OSError:
            pass  # the record may already be evicted; the hit stands
        return record["payload"]

    def _io_miss(self, _reason):
        """Count a filesystem failure and fall through as a miss."""
        self.io_errors += 1
        obs.add("result_cache_io_errors")
        self.misses += 1
        obs.add("result_cache_misses")
        return None

    def _discard_stale(self, path, inode):
        """Remove a record that read as stale, tolerating every race.

        Under the write lock, the record is re-checked by inode: if a
        concurrent writer already replaced it with a fresh record (new
        inode), the fresh record is left alone.  A concurrent deleter
        winning the race (``FileNotFoundError``) is equally fine -- the
        stale record is gone either way, which is all this method
        promises.
        """
        with self._locked():
            try:
                current = os.stat(path)
            except OSError:
                return  # already healed by someone else
            if inode is not None and current.st_ino != inode:
                return  # concurrently rewritten; presume the new one good
            try:
                os.remove(path)
            except FileNotFoundError:
                pass  # a concurrent deleter won; same outcome
            except OSError:
                pass

    # -- store -------------------------------------------------------------

    def put(self, kind, key, payload):
        """Store ``payload`` atomically under ``(kind, key)``.

        A failed pickle (payload holds an unpicklable object) or a
        filesystem failure is swallowed: caching is an optimisation,
        never a correctness dependency.  With ``max_bytes`` set, a
        successful store then evicts LRU records until the bound holds.
        """
        if faults.should_fire("cache-io-error", detail="put"):
            self.io_errors += 1
            obs.add("result_cache_io_errors")
            return False
        path = self._path(kind, key)
        record = {"salt": self.salt, "payload": payload}
        tmp = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(record, handle, protocol=pickle.HIGHEST_PROTOCOL)
            with self._locked():
                os.replace(tmp, path)
            tmp = None
        except OSError:
            self.io_errors += 1
            obs.add("result_cache_io_errors")
            self._remove_tmp(tmp)
            return False
        except Exception:
            self._remove_tmp(tmp)
            return False
        self.stores += 1
        obs.add("result_cache_stores")
        if self.max_bytes is not None:
            self.evict()
        return True

    @staticmethod
    def _remove_tmp(tmp):
        if tmp is not None:
            try:
                os.remove(tmp)
            except OSError:
                pass

    # -- size bound --------------------------------------------------------

    def evict(self, max_bytes=None):
        """Drop least-recently-used records until the store fits.

        ``max_bytes`` defaults to the constructor's bound; ``None`` with
        no bound set is a no-op.  Use recency is ``max(atime, mtime)``
        (hits touch their record; ``noatime`` mounts still advance
        mtime through the touch).  Safe under concurrent readers and
        writers: removal runs under the write lock, and a record that
        vanishes mid-scan -- a concurrent evictor or self-heal won the
        race -- is simply skipped.  Returns the number of records
        evicted.
        """
        bound = self.max_bytes if max_bytes is None else max_bytes
        if bound is None:
            return 0
        entries = []
        total = 0
        for path in self._records():
            try:
                info = os.stat(path)
            except OSError:
                continue  # vanished mid-scan
            entries.append(
                (max(info.st_atime, info.st_mtime), info.st_size, path)
            )
            total += info.st_size
        if total <= bound:
            return 0
        evicted = 0
        entries.sort()
        with self._locked():
            for _used, size, path in entries:
                if total <= bound:
                    break
                try:
                    os.remove(path)
                except OSError:
                    continue  # already gone; its bytes are reclaimed too
                total -= size
                evicted += 1
                self.evictions += 1
                obs.add("result_cache_evictions")
        return evicted

    def _records(self):
        """Every record path currently in the store (best-effort walk)."""
        try:
            kinds = sorted(os.listdir(self.root))
        except OSError:
            return
        for kind in kinds:
            kind_dir = os.path.join(self.root, kind)
            if not os.path.isdir(kind_dir):
                continue
            try:
                shards = sorted(os.listdir(kind_dir))
            except OSError:
                continue
            for shard in shards:
                shard_dir = os.path.join(kind_dir, shard)
                try:
                    names = sorted(os.listdir(shard_dir))
                except OSError:
                    continue
                for name in names:
                    if name.endswith(RECORD_SUFFIX):
                        yield os.path.join(shard_dir, name)

    # -- inspection --------------------------------------------------------

    def stats(self):
        """Counter snapshot with the derived hit rate.

        ``hit_rate`` is hits over lookups (hits + misses), ``None``
        before the first lookup.
        """
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "stores": self.stores,
            "evictions": self.evictions,
            "io_errors": self.io_errors,
            "hit_rate": (self.hits / lookups) if lookups else None,
        }

    def __repr__(self):
        return (
            f"ResultCache({self.root!r}, hits={self.hits}, "
            f"misses={self.misses}, stale={self.stale}, "
            f"evictions={self.evictions})"
        )
