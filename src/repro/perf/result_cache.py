"""Persistent, content-addressed cache of synthesis results.

A :class:`ResultCache` is an on-disk store keyed by content, not by file
path or mtime: the key of every record is a SHA-256 over

* the **canonical** ``.g`` text of the input STG
  (:func:`repro.stg.canonical.g_fingerprint`), or a structural
  fingerprint of the state graph when synthesis was handed a prebuilt
  :class:`~repro.stategraph.graph.StateGraph`;
* an **options fingerprint** -- every
  :class:`~repro.runtime.options.SynthesisOptions` field that can change
  the result (``budget``, ``jobs`` and ``cache_dir`` are deliberately
  excluded: they change *how fast* a result is produced, never *what*
  is produced -- that is the determinism contract of
  ``docs/parallelism.md``);
* a **code version salt** (:data:`CACHE_SALT`), bumped whenever solver
  or propagation logic changes meaning, so stale caches self-invalidate
  instead of replaying results of old code.

Two record kinds share one store:

``module``
    One output's :class:`~repro.csc.modular.PartitionResult`, solved
    against the *empty* assignment (the only assignment state that is a
    pure function of the input).  Keyed additionally by the output name.
``artifact``
    A whole :class:`~repro.csc.synthesis.ModularResult` (minus the
    state graphs, which are reattached on load), keyed by method name.
    A warm hit skips the entire run and reproduces byte-identical CLI
    output, including the recorded wall-clock time of the original run.

Records are pickled ``{"salt": ..., "payload": ...}`` envelopes written
atomically (temp file + :func:`os.replace`), so a crashed or concurrent
writer can never leave a half-written record that later reads as valid.
A record that fails to unpickle or carries a different salt is *stale*:
it is deleted and counted, and the lookup proceeds as a miss.

Counters mirrored into :mod:`repro.obs`: ``result_cache_hits``,
``result_cache_misses``, ``result_cache_stale``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile

from repro import obs

#: Version salt baked into every record.  Bump when a change to solver,
#: propagation, repair or minimisation logic makes previously cached
#: results meaningless.
CACHE_SALT = "repro-result-cache/2"

#: SynthesisOptions fields that parameterise *what* is computed.  The
#: excluded fields (``budget``, ``jobs``, ``cache_dir``) only change how
#: the computation is scheduled.
_FINGERPRINT_FIELDS = (
    "minimize", "max_signals", "output_order", "signal_prefix",
    "engine", "polish", "fallback", "degrade", "sat_mode",
)


def options_fingerprint(opts, method="modular"):
    """A deterministic text form of the result-relevant options.

    Limits are spelled out field by field (``Limits`` has no stable
    ``repr``); every other relevant field reprs deterministically.
    """
    parts = [f"method={method}"]
    limits = opts.limits
    if limits is None:
        parts.append("limits=None")
    else:
        parts.append(
            f"limits=({limits.max_backtracks!r},{limits.max_seconds!r})"
        )
    for name in _FINGERPRINT_FIELDS:
        parts.append(f"{name}={getattr(opts, name)!r}")
    return ";".join(parts)


def graph_fingerprint(graph):
    """Structural SHA-256 of a prebuilt state graph.

    Hashes behaviour, not representation: state ids are replaced by
    their codes, edges are sorted, so two constructions of the same
    graph fingerprint equal.
    """
    digest = hashlib.sha256()
    digest.update(repr(tuple(graph.signals)).encode())
    digest.update(repr(tuple(sorted(graph.non_inputs))).encode())
    digest.update(repr(tuple(sorted(graph.codes))).encode())
    digest.update(repr(graph.codes[graph.initial]).encode())
    digest.update(
        repr(
            tuple(
                sorted(
                    (graph.codes[s], label, graph.codes[t])
                    for s, label, t in graph.edges
                )
            )
        ).encode()
    )
    return digest.hexdigest()


class ResultCache:
    """On-disk content-addressed store of synthesis results.

    Parameters
    ----------
    root:
        Cache directory; created (with parents) when missing.
    salt:
        Code version salt; records carrying any other salt are stale.
    """

    def __init__(self, root, salt=CACHE_SALT):
        self.root = os.fspath(root)
        self.salt = salt
        os.makedirs(self.root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.stores = 0

    @staticmethod
    def key(*parts):
        """SHA-256 over the joined key components."""
        joined = "\x1f".join(str(part) for part in parts)
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()

    def _path(self, kind, key):
        return os.path.join(self.root, kind, key[:2], key + ".pkl")

    def get(self, kind, key):
        """The cached payload, or ``None`` on miss or stale record."""
        path = self._path(kind, key)
        try:
            with open(path, "rb") as handle:
                record = pickle.load(handle)
            if not isinstance(record, dict) or "payload" not in record:
                raise ValueError("malformed cache record")
            if record.get("salt") != self.salt:
                raise ValueError("cache salt mismatch")
        except FileNotFoundError:
            self.misses += 1
            obs.add("result_cache_misses")
            return None
        except Exception:
            # Unreadable, truncated, unpicklable, or written by another
            # code version: self-heal by dropping the record.
            self.stale += 1
            obs.add("result_cache_stale")
            self.misses += 1
            obs.add("result_cache_misses")
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.hits += 1
        obs.add("result_cache_hits")
        return record["payload"]

    def put(self, kind, key, payload):
        """Store ``payload`` atomically under ``(kind, key)``.

        A failed pickle (payload holds an unpicklable object) is
        swallowed: caching is an optimisation, never a correctness
        dependency.
        """
        path = self._path(kind, key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        record = {"salt": self.salt, "payload": payload}
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(record, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception:
            try:
                os.remove(tmp)
            except OSError:
                pass
            return False
        self.stores += 1
        obs.add("result_cache_stores")
        return True

    def __repr__(self):
        return (
            f"ResultCache({self.root!r}, hits={self.hits}, "
            f"misses={self.misses}, stale={self.stale})"
        )
