"""Memoized, incrementally refined state-graph projections.

A :class:`ProjectionCache` wraps one base graph Σ and serves
:class:`~repro.stategraph.quotient.QuotientGraph` objects for hidden
signal sets.  Three tiers, cheapest first:

1. **hit** -- the exact hidden set is cached; return it.
2. **refine** -- some cached projection hides a *subset* of the
   requested signals; hide the difference on its (small) merged graph
   and compose cover maps (:func:`repro.stategraph.quotient.refine`).
3. **miss** -- no usable ancestor; merge Σ from scratch
   (:func:`repro.stategraph.quotient.quotient`).

The greedy input-set loop only ever asks for supersets ``hidden ∪ {s}``
of its current hidden set, so in steady state every request lands in
tier 1 or 2 and Σ is merged exactly once per cache lifetime (the
ε-only projection).

Entries are LRU-bounded.  Results are immutable -- quotients of an
immutable graph -- so there is no invalidation: a cache is permanently
valid for the one base graph it was built for, and must simply be
dropped with that graph.  ``hits`` / ``misses`` / ``refines`` /
``evictions`` are kept as plain attributes and mirrored into
:mod:`repro.obs` as ``proj_cache_hits`` / ``proj_cache_misses`` /
``proj_cache_evictions`` (plus ``quotients`` / ``quotient_refines``
recorded by the construction functions themselves).
"""

from __future__ import annotations

from collections import OrderedDict

from repro import obs
from repro.stategraph.quotient import quotient, refine

#: Default LRU bound.  The working set of one modular run is the greedy
#: chain of one output (|signals| entries) plus the shared ε-only root;
#: 256 comfortably holds several outputs' chains so the ordering
#: pre-scan's projections are still warm when the solve loop replays
#: them.
DEFAULT_CACHE_SIZE = 256


class ProjectionCache:
    """LRU-bounded quotient memo for one base graph.

    Parameters
    ----------
    base:
        The :class:`~repro.stategraph.graph.StateGraph` all projections
        are taken of (typically the complete graph Σ).
    max_entries:
        LRU bound; least recently used projections are evicted first.
        ``None`` disables the bound.
    """

    def __init__(self, base, max_entries=DEFAULT_CACHE_SIZE):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.base = base
        self.max_entries = max_entries
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.refines = 0
        self.evictions = 0

    def __len__(self):
        return len(self._entries)

    def __contains__(self, hidden):
        return frozenset(hidden) in self._entries

    def project(self, hidden):
        """The quotient of the base graph with ``hidden`` merged away.

        Returns the cached :class:`~repro.stategraph.quotient.
        QuotientGraph` when the exact hidden set is known, refines the
        largest cached subset when one exists, and falls back to a
        from-scratch merge otherwise.  The result is cached either way.
        """
        key = frozenset(hidden)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            obs.add("proj_cache_hits")
            return entry

        self.misses += 1
        obs.add("proj_cache_misses")
        ancestor = self._best_ancestor(key)
        if ancestor is not None:
            self.refines += 1
            entry = refine(self._entries[ancestor], key - ancestor)
            self._entries.move_to_end(ancestor)
        else:
            entry = quotient(self.base, key)
        self._store(key, entry)
        return entry

    def seed(self, projection):
        """Adopt an externally computed projection of the same base."""
        if projection.base is not self.base:
            raise ValueError("projection belongs to a different base graph")
        self._store(projection.hidden, projection)

    def stats(self):
        """Snapshot ``{hits, misses, refines, evictions, entries}``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "refines": self.refines,
            "evictions": self.evictions,
            "entries": len(self._entries),
        }

    # -- internals ---------------------------------------------------------

    def _best_ancestor(self, key):
        """The largest cached proper subset of ``key``, or ``None``.

        A linear scan over the (LRU-bounded) entries: the refinement
        cost is driven by the ancestor's merged-graph size, and the
        largest hidden set has the smallest merged graph.  Ties go to
        the most recently used entry.
        """
        best = None
        for cached in reversed(self._entries):
            if len(cached) < len(key) and cached < key:
                if best is None or len(cached) > len(best):
                    best = cached
        return best

    def _store(self, key, entry):
        self._entries[key] = entry
        self._entries.move_to_end(key)
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                obs.add("proj_cache_evictions")

    def __repr__(self):
        return (
            f"ProjectionCache(entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"refines={self.refines}, evictions={self.evictions})"
        )
