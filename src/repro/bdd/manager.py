"""A reduced ordered BDD manager.

Nodes are integers: 0 and 1 are the terminals; every other node has a
variable index, a low child (variable false) and a high child (variable
true), stored uniquely so that structurally equal functions share one
node.  Variables are 1-based and ordered by their index.

The operations cover what the BDD-based CSC solver needs: conjunction /
disjunction / negation with memoisation, conditioning (restrict),
existential quantification, model counting, and minimum-weight model
extraction.
"""

from __future__ import annotations

from repro.errors import ReproError

FALSE = 0
TRUE = 1


class BddOverflowError(ReproError, RuntimeError):
    """The node table grew past the configured capacity."""

    kind = "bdd-overflow"


class BddManager:
    """Shared node store for one variable order.

    Parameters
    ----------
    num_vars:
        Highest variable index in use (variables are ``1..num_vars``).
    max_nodes:
        Capacity guard; building past it raises
        :class:`BddOverflowError` (callers fall back to plain SAT).
    """

    def __init__(self, num_vars, max_nodes=1_000_000):
        self.num_vars = num_vars
        self.max_nodes = max_nodes
        # node id -> (var, low, high); terminals get sentinel entries.
        self._nodes = [
            (num_vars + 1, FALSE, FALSE),
            (num_vars + 1, TRUE, TRUE),
        ]
        self._unique = {}
        self._apply_cache = {}
        self._not_cache = {}

    @property
    def num_nodes(self):
        return len(self._nodes)

    def var_of(self, node):
        return self._nodes[node][0]

    def children(self, node):
        _var, low, high = self._nodes[node]
        return low, high

    # -- construction ------------------------------------------------------

    def make(self, var, low, high):
        """The unique node for ``if var then high else low``."""
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            if len(self._nodes) >= self.max_nodes:
                raise BddOverflowError(
                    f"BDD exceeded {self.max_nodes} nodes"
                )
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def literal(self, literal):
        """The BDD of a single literal (negative = complemented)."""
        var = abs(literal)
        if not 1 <= var <= self.num_vars:
            raise ValueError(f"variable {var} out of range")
        if literal > 0:
            return self.make(var, FALSE, TRUE)
        return self.make(var, TRUE, FALSE)

    def clause(self, literals):
        """The BDD of a disjunction of literals."""
        result = FALSE
        for literal in sorted(literals, key=abs, reverse=True):
            result = self.apply_or(self.literal(literal), result)
        return result

    def from_cnf(self, cnf):
        """Conjoin every clause of a :class:`repro.sat.cnf.Cnf`."""
        result = TRUE
        clauses = sorted(
            cnf.clauses, key=lambda c: min((abs(l) for l in c), default=0)
        )
        for clause_literals in clauses:
            result = self.apply_and(result, self.clause(clause_literals))
            if result == FALSE:
                return FALSE
        return result

    # -- boolean operations ----------------------------------------------------

    def apply_and(self, f, g):
        return self._apply("and", f, g)

    def apply_or(self, f, g):
        return self._apply("or", f, g)

    def _apply(self, op, f, g):
        if op == "and":
            if f == FALSE or g == FALSE:
                return FALSE
            if f == TRUE:
                return g
            if g == TRUE:
                return f
        else:
            if f == TRUE or g == TRUE:
                return TRUE
            if f == FALSE:
                return g
            if g == FALSE:
                return f
        if f == g:
            return f
        if f > g:
            f, g = g, f
        key = (op, f, g)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        var_f, var_g = self.var_of(f), self.var_of(g)
        var = min(var_f, var_g)
        f_low, f_high = self.children(f) if var_f == var else (f, f)
        g_low, g_high = self.children(g) if var_g == var else (g, g)
        result = self.make(
            var,
            self._apply(op, f_low, g_low),
            self._apply(op, f_high, g_high),
        )
        self._apply_cache[key] = result
        return result

    def negate(self, f):
        if f == FALSE:
            return TRUE
        if f == TRUE:
            return FALSE
        cached = self._not_cache.get(f)
        if cached is not None:
            return cached
        var = self.var_of(f)
        low, high = self.children(f)
        result = self.make(var, self.negate(low), self.negate(high))
        self._not_cache[f] = result
        return result

    def restrict(self, f, var, value):
        """Condition ``f`` on ``var = value``."""
        cache = {}

        def walk(node):
            if node <= TRUE or self.var_of(node) > var:
                return node
            hit = cache.get(node)
            if hit is not None:
                return hit
            node_var = self.var_of(node)
            low, high = self.children(node)
            if node_var == var:
                result = high if value else low
            else:
                result = self.make(node_var, walk(low), walk(high))
            cache[node] = result
            return result

        return walk(f)

    def exists(self, f, var):
        """Existentially quantify ``var`` out of ``f``."""
        return self.apply_or(
            self.restrict(f, var, 0), self.restrict(f, var, 1)
        )

    # -- models ---------------------------------------------------------------

    def sat_count(self, f):
        """Number of satisfying assignments over all variables."""
        cache = {FALSE: 0, TRUE: 1}

        def walk(node):
            hit = cache.get(node)
            if hit is not None:
                return hit
            var = self.var_of(node)
            low, high = self.children(node)
            low_count = walk(low) * 2 ** (self.var_of(low) - var - 1)
            high_count = walk(high) * 2 ** (self.var_of(high) - var - 1)
            result = low_count + high_count
            cache[node] = result
            return result

        if f == FALSE:
            return 0
        return walk(f) * 2 ** (self.var_of(f) - 1)

    def any_model(self, f):
        """One satisfying assignment (dict var -> bool), or ``None``."""
        if f == FALSE:
            return None
        model = {}
        node = f
        while node != TRUE:
            var = self.var_of(node)
            low, high = self.children(node)
            if low != FALSE:
                model[var] = False
                node = low
            else:
                model[var] = True
                node = high
        for var in range(1, self.num_vars + 1):
            model.setdefault(var, False)
        return model

    def min_cost_model(self, f, costs):
        """The satisfying assignment minimising the summed cost.

        Parameters
        ----------
        f:
            A satisfiable BDD.
        costs:
            ``costs[var]`` is the price of assigning ``var = True``
            (``False`` is free; missing variables cost 0).

        Returns
        -------
        dict or None
            Minimum-cost model as ``var -> bool``; ``None`` if ``f`` is
            unsatisfiable.  Variables skipped on the chosen path are set
            False (cost 0).
        """
        if f == FALSE:
            return None
        best = {TRUE: (0, None, None), FALSE: (float("inf"), None, None)}

        def walk(node):
            hit = best.get(node)
            if hit is not None:
                return hit[0]
            var = self.var_of(node)
            low, high = self.children(node)
            low_cost = walk(low)
            high_cost = walk(high) + costs.get(var, 0)
            entry = (
                (low_cost, False, low)
                if low_cost <= high_cost
                else (high_cost, True, high)
            )
            best[node] = entry
            return entry[0]

        walk(f)
        model = {}
        node = f
        while node != TRUE:
            _cost, choice, successor = best[node]
            model[self.var_of(node)] = choice
            node = successor
        for var in range(1, self.num_vars + 1):
            model.setdefault(var, False)
        return model
