"""Reduced ordered binary decision diagrams (ROBDDs).

The paper closes its results section with: "The implementation area was
further reduced by developing a BDD based constraint satisfaction
approach [19]" (Puri & Gu, 7th IEEE/ACM High-Level Synthesis Symposium,
1994).  This package supplies that approach's substrate: a small ROBDD
manager (:mod:`repro.bdd.manager`) with apply/negate/quantify, model
counting, and -- the piece the area reduction hangs on -- *minimum-weight*
satisfying assignments, used by the ``"bdd"`` solve engine to pick the
CSC solution with the fewest excited state-variable bits.
"""

from repro.bdd.manager import BddManager, BddOverflowError

__all__ = ["BddManager", "BddOverflowError"]
