"""Definitions of the 23 Table-1 benchmark STGs.

Each entry either calls the phase-cycle generator
(:mod:`repro.bench.generators`) or supplies hand-written ``.g`` text (the
non-free-choice benchmark cannot be expressed by the free-choice
generator).  The shapes follow the behaviours the benchmark names refer
to in the asynchronous-synthesis literature -- master-read/MMU bus
controllers with parallel data-path handshakes, send/receive buffer
controllers, A/D converter control, FIFO cells -- with parameters tuned
so the state/signal counts land close to the paper's "Specifications"
columns (see DESIGN.md §4 for the substitution rationale).

The recurring *echo tail* (a ``done`` pulse after the return-to-zero
phase) is what gives these controllers their CSC conflicts: the state
before the pulse shares its code with the idle state.
"""

from __future__ import annotations

from repro.bench.generators import Choice, Par, build_g


def _handshake(index, rounds=1):
    """An input-led four-phase handshake branch: (d+ q+ d- q-) * rounds.

    The branch's local code returns to (0, 0) after every round, which
    creates USC pairs (equal codes) but *not* CSC conflicts: the states
    sharing the code excite only the input ``d`` (or nothing, at the
    join), and every output is stable low in all of them.  This mirrors
    the real master-read/MMU benchmarks, whose state graphs are dense in
    equal codes yet carry only a handful of genuine conflicts -- the
    source of the huge *direct* SAT formulas.
    """
    return [f"d{index}+", f"q{index}+", f"d{index}-", f"q{index}-"] * rounds


def _completion(index, pulses=1):
    """A completion-signal branch: w toggles, ending high.

    The pre-``w+`` state shares its code with the branch's start, and
    only one of them excites the output ``w`` -- a genuine CSC conflict
    that is *local to w's own module*: exactly the kind of conflict the
    modular method isolates into a tiny SAT instance.
    """
    events = []
    for _ in range(pulses - 1):
        events.append(f"w{index}+")
        events.append(f"w{index}-")
    events.append(f"w{index}+")
    return events


def _pulsed_branch(index, pulse, half_rounds=2):
    """A double-round handshake whose rounds a mid-branch pulse tells apart.

    ``(d+ q+ d- q-) pulse+ (d+ q+ ...)``: the second round's codes carry
    ``pulse = 1``, so -- unlike a bare repeated handshake -- the two
    rounds never force the join output to *count* rounds.  The only
    repeated code is the pulse's own trigger position (branch-local code
    back at the start), whose conflict lives in the pulse output's tiny
    module: exactly the locality the modular method exploits.
    """
    events = _handshake(index) + [f"{pulse}+"]
    events += [f"d{index}+", f"q{index}+"]
    if half_rounds >= 3:
        events += [f"d{index}-", f"q{index}-"]
    return events


def _mr0():
    return build_g(
        "mr0",
        inputs=["r", "d1", "d2", "d3"],
        outputs=["a", "q1", "q2", "q3", "x", "y", "e"],
        cycle=(
            ["r+",
             Par(
                 _pulsed_branch(1, "x"),
                 _pulsed_branch(2, "y"),
                 ["d3+", "q3+"],
             ),
             "a+", "r-",
             Par(
                 ["d1-", "q1-", "x-"],
                 ["d2-", "q2-", "y-"],
                 ["d3-", "q3-"],
             ),
             "a-", "e+", "e-"]
        ),
    )


def _mr1():
    return build_g(
        "mr1",
        inputs=["r", "d1", "d2"],
        outputs=["a", "q1", "q2", "x", "e"],
        cycle=(
            ["r+",
             Par(
                 _pulsed_branch(1, "x"),
                 ["d2+", "q2+", "d2-", "q2-", "d2+", "q2+"],
                 ["e+"],
             ),
             "a+", "r-",
             Par(["d1-", "q1-", "x-"], ["d2-", "q2-"], ["e-"]),
             "a-"]
        ),
    )


def _mmu0():
    return build_g(
        "mmu0",
        inputs=["r", "d1", "d2"],
        outputs=["a", "q1", "q2", "x", "e"],
        cycle=(
            ["r+",
             Par(
                 _pulsed_branch(1, "x"),
                 ["d2+", "q2+", "d2-", "q2-"],
                 ["e+", "e-", "e+"],
             ),
             "a+", "r-",
             Par(["d1-", "q1-", "x-"], ["d2+", "q2+", "d2-", "q2-"],
                 ["e-"]),
             "a-"]
        ),
    )


def _mmu1():
    return build_g(
        "mmu1",
        inputs=["r", "d1", "d2"],
        outputs=["a", "q1", "q2", "x", "e"],
        cycle=(
            ["r+",
             Par(_pulsed_branch(1, "x"), ["d2+", "q2+", "d2-", "q2-"]),
             "a+", "r-",
             Par(["d1-", "q1-", "x-"], ["e+"]),
             "a-", "e-"]
        ),
    )


def _sbuf_ram_write():
    return build_g(
        "sbuf-ram-write",
        inputs=["r", "d1", "d2", "d3"],
        outputs=["a", "q1", "q2", "q3", "w", "e"],
        cycle=(
            ["r+", Par(["q1+", "d1+"], ["q2+", "d2+"], ["q3+", "d3+"]),
             "w+", "e+", "e-", "a+", "r-",
             Par(["q1-", "d1-"], ["q2-", "d2-"], ["q3-", "d3-"]),
             "w-", "a-", "e+", "e-"]
        ),
    )


def _vbe4a():
    return build_g(
        "vbe4a",
        inputs=["a", "b"],
        outputs=["c", "d", "e", "f"],
        cycle=(
            ["a+",
             Par(["c+", "b+", "c-", "b-"], ["d+", "d-", "d+", "d-"]),
             "f+", "a-",
             Par(["c+", "c-", "c+", "c-"], ["d+", "d-", "d+", "d-"]),
             "f-", "e+", "e-"]
        ),
    )


def _nak_pa():
    return build_g(
        "nak-pa",
        inputs=["r", "d1", "d2", "d3"],
        outputs=["a", "q1", "q2", "q3", "e"],
        cycle=(
            ["r+", Par(["q1+", "d1+"], ["q2+", "d2+"], ["q3+", "d3+"]),
             "a+", "r-",
             Par(["q1-", "d1-"], ["q2-", "d2-"], ["q3-", "d3-"]),
             "a-", "e+", "e-"]
        ),
    )


def _pe_rcv_ifc_fc():
    # Two synthesizability constraints shape this spec: the free choice
    # must be resolved by the environment (both alternatives open with
    # *input* transitions -- a circuit cannot "choose"), and the falling
    # x pulse must be acknowledged by an output (y), otherwise its
    # completion leaves no trace in the state code and nothing
    # implementable can wait for it.
    return build_g(
        "pe-rcv-ifc-fc",
        inputs=["r", "d1", "x"],
        outputs=["a", "q1", "y", "e", "w"],
        cycle=(
            ["r+",
             Choice(["d1+", "q1+"], ["x+", "x-", "d1+", "q1+"]),
             "w+", "a+", "r-",
             Par(["d1-", "q1-"], ["x+", "y+", "x-", "y-"]),
             "w-", "a-", "e+", "e-"]
        ),
    )


def _ram_read_sbuf():
    return build_g(
        "ram-read-sbuf",
        inputs=["r", "d1", "d2"],
        outputs=["a", "q1", "q2", "w", "v", "u", "e"],
        cycle=(
            ["r+", Par(["q1+", "d1+"], ["q2+", "d2+"]), "w+", "a+", "r-",
             Par(["q1-", "d1-"], ["q2-", "d2-"], ["u+", "u-"]),
             "v+", "v-", "w-", "a-", "e+", "e-"]
        ),
    )


# alex-nonfc needs a non-free-choice net: the grant transitions g+/1 and
# g+/2 share the request place but each also needs its own side condition,
# so the choice is controlled, not free.
_ALEX_NONFC = """
.model alex-nonfc
.inputs a b
.outputs g h w e
.graph
preq g+/1 g+/2
pa g+/1
pb g+/2
a+ pa
b+ pb
g+/1 h+/1
g+/2 h+/2
h+/1 a-
h+/2 b-
a- g-/1
b- g-/2
g-/1 h-/1
g-/2 h-/2
h-/1 w+/1
h-/2 w+/2
w+/1 w-/1
w+/2 w-/2
w-/1 pj
w-/2 pj
pj e+
e+ e-
e- pin preq
pin a+ b+
.marking { pin preq }
.end
"""


def _sbuf_send_pkt2():
    return build_g(
        "sbuf-send-pkt2",
        inputs=["r", "d"],
        outputs=["a", "q", "x", "e"],
        cycle=(
            ["r+", Par(["q+", "d+"], ["x+"]), "a+", "r-",
             Par(["q-", "d-"], ["x-"]), "a-", "e+", "e-"]
        ),
    )


def _sbuf_send_ctl():
    return build_g(
        "sbuf-send-ctl",
        inputs=["r", "d"],
        outputs=["a", "q", "e", "x"],
        cycle=(
            ["r+", "q+", "d+", "a+", "e+", "e-", "r-",
             Par(["q-", "d-"], ["x+", "x-"]), "a-", "e+", "e-"]
        ),
    )


def _atod():
    return build_g(
        "atod",
        inputs=["r", "d"],
        outputs=["a", "q", "x", "e"],
        cycle=(
            ["r+", "q+", "d+", Par(["x+", "x-"], ["a+"]), "r-",
             Par(["q-", "d-"], ["a-"]), "e+", "e-"]
        ),
    )


def _pa():
    return build_g(
        "pa",
        inputs=["r"],
        outputs=["a", "b", "e"],
        cycle=(
            ["r+", Par(["a+", "a-"], ["b+", "b-"]), "r-",
             Par(["a+", "a-"], ["b+"]), "b-", "e+", "e-"]
        ),
    )


def _wrdata():
    return build_g(
        "wrdata",
        inputs=["r"],
        outputs=["a", "b", "e"],
        cycle=(
            ["r+", Par(["a+"], ["b+"]), "e+", "e-", "r-",
             Par(["a-"], ["b-"]), "e+", "e-"]
        ),
    )


def _fifo():
    return build_g(
        "fifo",
        inputs=["r"],
        outputs=["a", "b", "e"],
        cycle=(
            ["r+", Par(["a+"], ["b+"]), "r-", Par(["a-"], ["b-"]),
             "r+", "e+", "r-", "e-"]
        ),
    )


def _sbuf_read_ctl():
    return build_g(
        "sbuf-read-ctl",
        inputs=["r", "d"],
        outputs=["a", "q", "e", "f"],
        cycle=(
            ["r+", "q+", "d+", "a+", "r-", Par(["q-", "d-"], ["f+", "f-"]),
             "a-", "e+", "e-"]
        ),
    )


def _alloc_outbound():
    return build_g(
        "alloc-outbound",
        inputs=["r", "d"],
        outputs=["a", "q", "x", "e", "f"],
        cycle=(
            ["r+", Par(["q+", "d+"], ["x+"]), "a+", "r-", "q-", "d-",
             "x-", "a-", "e+", "f+", "f-", "e-"]
        ),
    )


def _nouse():
    return build_g(
        "nouse",
        inputs=["a"],
        outputs=["b", "c"],
        cycle=(
            ["a+", "b+", "a-", "b-", "a+", "c+", "a-", "c-"]
        ),
    )


def _vbe_ex2():
    return build_g(
        "vbe-ex2",
        inputs=["a"],
        outputs=["b"],
        cycle=(
            ["a+", "b+", "b-", "a-", "b+", "b-", "b+", "b-"]
        ),
    )


def _nousc_ser():
    return build_g(
        "nousc-ser",
        inputs=["a"],
        outputs=["b", "c"],
        cycle=(
            ["a+", "b+", "b-", "a-", "c+", "c-"]
        ),
    )


def _sendr_done():
    return build_g(
        "sendr-done",
        inputs=["req"],
        outputs=["sendr", "done"],
        cycle=(
            ["req+", "sendr+", "sendr-", "done+", "req-", "done-"]
        ),
    )


def _vbe_ex1():
    return build_g(
        "vbe-ex1",
        inputs=["a"],
        outputs=["b"],
        cycle=(
            ["a+", "b+", "b-", "a-", "b+", "b-"]
        ),
    )


#: name -> callable producing .g text
SPEC_BUILDERS = {
    "mr0": _mr0,
    "mr1": _mr1,
    "mmu0": _mmu0,
    "mmu1": _mmu1,
    "sbuf-ram-write": _sbuf_ram_write,
    "vbe4a": _vbe4a,
    "nak-pa": _nak_pa,
    "pe-rcv-ifc-fc": _pe_rcv_ifc_fc,
    "ram-read-sbuf": _ram_read_sbuf,
    "alex-nonfc": lambda: _ALEX_NONFC,
    "sbuf-send-pkt2": _sbuf_send_pkt2,
    "sbuf-send-ctl": _sbuf_send_ctl,
    "atod": _atod,
    "pa": _pa,
    "alloc-outbound": _alloc_outbound,
    "wrdata": _wrdata,
    "fifo": _fifo,
    "sbuf-read-ctl": _sbuf_read_ctl,
    "nouse": _nouse,
    "vbe-ex2": _vbe_ex2,
    "nousc-ser": _nousc_ser,
    "sendr-done": _sendr_done,
    "vbe-ex1": _vbe_ex1,
}


def generate(name):
    """The ``.g`` source text of one benchmark."""
    return SPEC_BUILDERS[name]()
