"""Regenerate the packaged benchmark ``.g`` files from their specs.

Usage::

    python -m repro.bench.make_data [name ...]

Writes into ``src/repro/data/`` next to this package (or the installed
package directory).  Every written STG is validated (1-safe, consistent,
live) before it lands on disk.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.bench.specs import SPEC_BUILDERS, generate
from repro.stg.load import load_stg
from repro.stg.validate import validate_stg


def data_dir():
    import repro.data

    return Path(repro.data.__file__).parent


def main(argv=None):
    names = (argv if argv is not None else sys.argv[1:]) or list(SPEC_BUILDERS)
    target = data_dir()
    for name in names:
        text = generate(name)
        stg = load_stg(text, name_hint=name)
        validate_stg(stg, require_live=True)
        path = target / f"{name}.g"
        path.write_text(text, encoding="utf-8")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
