"""Phase-cycle STG generator.

Benchmark controllers are built as a *cycle of phases*: plain events run
sequentially, :class:`Par` blocks fork concurrent branches that re-join at
the next plain event, and :class:`Choice` blocks select one of several
alternative sequences through an explicit free-choice place.  The builder
emits astg ``.g`` text directly, numbering repeated transitions with the
``/k`` instance syntax.

Two idioms give the benchmarks their character:

* **Concurrency** (``Par``) multiplies state counts the way the
  master-read/MMU benchmarks' parallel data-path handshakes do.
* **Echo tails** -- an output pulse ``e+ e-`` appended after a
  return-to-zero phase -- recreate the classic CSC conflict: the state
  before ``e+`` carries the same code as the state before the cycle
  restarts, but excites different non-input signals.
"""

from __future__ import annotations


class Par:
    """Concurrent branches between two plain events."""

    def __init__(self, *branches):
        self.branches = [list(b) for b in branches]
        if any(not branch for branch in self.branches):
            raise ValueError("Par branches must be non-empty")


class Choice:
    """Free choice between alternative event sequences."""

    def __init__(self, *alternatives):
        self.alternatives = [list(a) for a in alternatives]
        if len(self.alternatives) < 2:
            raise ValueError("Choice needs at least two alternatives")
        if any(not alt for alt in self.alternatives):
            raise ValueError("Choice alternatives must be non-empty")


def build_g(name, inputs, outputs, cycle, internal=()):
    """Build ``.g`` source for a cyclic phase specification.

    Parameters
    ----------
    name:
        Model name (the benchmark name).
    inputs / outputs / internal:
        Signal classification.
    cycle:
        List of phases: event strings (``"r+"``), :class:`Par` blocks, or
        :class:`Choice` blocks.  The first and last phase must be plain
        events; a ``Par``/``Choice`` must sit between plain events.

    Returns
    -------
    str
        astg ``.g`` source text.
    """
    if not cycle:
        raise ValueError("cycle must not be empty")
    if not isinstance(cycle[0], str) or not isinstance(cycle[-1], str):
        raise ValueError("cycle must start and end with plain events")

    instances = {}

    def fresh(label):
        instances[label] = instances.get(label, 0) + 1
        count = instances[label]
        return label if count == 1 else f"{label}/{count}"

    arcs = []  # (source token, target token) in .g token space
    place_lines = []
    place_count = 0

    def new_place():
        nonlocal place_count
        place_count += 1
        return f"p{place_count}"

    def emit_sequence(events):
        """Instantiate a plain event list; returns (first, last) tokens."""
        tokens = [fresh(e) for e in events]
        for a, b in zip(tokens, tokens[1:]):
            arcs.append((a, b))
        return tokens[0], tokens[-1]

    # First pass: instantiate every phase, remembering entry/exit tokens.
    entries = []  # (entry_tokens, exit_tokens) per phase
    for phase in cycle:
        if isinstance(phase, str):
            token = fresh(phase)
            entries.append(([token], [token]))
        elif isinstance(phase, Par):
            firsts, lasts = [], []
            for branch in phase.branches:
                first, last = emit_sequence(branch)
                firsts.append(first)
                lasts.append(last)
            entries.append((firsts, lasts))
        elif isinstance(phase, Choice):
            split = new_place()
            join = new_place()
            alt_firsts = []
            for alternative in phase.alternatives:
                first, last = emit_sequence(alternative)
                alt_firsts.append(first)
                arcs.append((last, join))
            place_lines.append((split, alt_firsts))
            entries.append(([split], [join]))
        else:
            raise TypeError(f"bad phase {phase!r}")

    # Second pass: connect consecutive phases, then close the cycle.
    for (_, exits), (nexts, _) in zip(entries, entries[1:]):
        for exit_token in exits:
            for next_token in nexts:
                arcs.append((exit_token, next_token))
    last_token = entries[-1][1][0]
    first_token = entries[0][0][0]
    arcs.append((last_token, first_token))

    # Assemble .g text: group arcs by source.
    by_source = {}
    for source, target in arcs:
        by_source.setdefault(source, []).append(target)
    lines = [f".model {name}"]
    if inputs:
        lines.append(".inputs " + " ".join(inputs))
    if outputs:
        lines.append(".outputs " + " ".join(outputs))
    if internal:
        lines.append(".internal " + " ".join(internal))
    lines.append(".graph")
    for source in sorted(by_source):
        lines.append(" ".join([source] + sorted(by_source[source])))
    for place, targets in place_lines:
        if place not in by_source:
            lines.append(" ".join([place] + sorted(targets)))
    lines.append(f".marking {{ <{last_token},{first_token}> }}")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _is_place(token):
    return token.startswith("p") and token[1:].isdigit()
