"""Benchmark registry: names, paper numbers, and ``.g`` loading.

``BENCHMARKS`` records Table 1 of the paper verbatim -- the
"Specifications" columns plus each method's reported results -- so the
benchmark harness can print paper-vs-measured side by side.  STG sources
are loaded from the packaged ``repro/data/*.g`` files (regenerate them
with ``python -m repro.bench.make_data``).
"""

from __future__ import annotations

from importlib import resources

from repro.stg.load import load_stg


class PaperMethod:
    """One method's Table-1 row entries (``None`` = not reported)."""

    def __init__(self, final_states=None, final_signals=None, area=None,
                 cpu=None, note=None):
        self.final_states = final_states
        self.final_signals = final_signals
        self.area = area
        self.cpu = cpu
        #: "backtrack-limit" / "internal-error" / "non-free-choice" markers.
        self.note = note

    @property
    def completed(self):
        return self.note is None


class BenchmarkInfo:
    """One Table-1 row."""

    def __init__(self, name, initial_states, initial_signals, ours,
                 vanbekbergen, lavagno):
        self.name = name
        self.initial_states = initial_states
        self.initial_signals = initial_signals
        self.ours = ours
        self.vanbekbergen = vanbekbergen
        self.lavagno = lavagno

    def __repr__(self):
        return (
            f"BenchmarkInfo({self.name!r}, states={self.initial_states}, "
            f"signals={self.initial_signals})"
        )


def _row(name, states, signals, ours, vanb, lav):
    return BenchmarkInfo(
        name, states, signals,
        PaperMethod(*ours), PaperMethod(*vanb), PaperMethod(*lav),
    )


_BT = "backtrack-limit"
_IE = "internal-error"
_NF = "non-free-choice"

#: Table 1 of the paper.  Per method: (final_states, final_signals, area
#: in literals, cpu seconds, note).  The Lavagno column reports no state
#: count in the paper, so final_states is None there.
BENCHMARKS = {
    info.name: info
    for info in [
        _row("mr0", 302, 11,
             (469, 14, 41, 2.80, None),
             (None, None, None, 3600.0, _BT),
             (None, 13, 86, 1084.5, None)),
        _row("mr1", 190, 8,
             (373, 12, 55, 1.73, None),
             (None, None, None, 872.9, _BT),
             (None, 10, 53, 237.5, None)),
        _row("mmu0", 174, 8,
             (441, 11, 49, 0.87, None),
             (None, None, None, 406.3, _BT),
             (None, None, None, None, _IE)),
        _row("mmu1", 82, 8,
             (131, 10, 50, 0.37, None),
             (None, None, None, 101.3, _BT),
             (None, 10, 37, 47.8, None)),
        _row("sbuf-ram-write", 58, 10,
             (93, 12, 59, 0.36, None),
             (90, 12, 74, 5.21, None),
             (None, 12, 35, 54.6, None)),
        _row("vbe4a", 58, 6,
             (106, 8, 37, 0.19, None),
             (116, 8, 40, 0.25, None),
             (None, 8, 41, 5.5, None)),
        _row("nak-pa", 56, 9,
             (59, 10, 25, 0.20, None),
             (58, 10, 32, 0.08, None),
             (None, 10, 41, 20.8, None)),
        _row("pe-rcv-ifc-fc", 46, 8,
             (50, 9, 48, 0.24, None),
             (53, 9, 50, 0.13, None),
             (None, 9, 62, 14.3, None)),
        _row("ram-read-sbuf", 36, 10,
             (44, 11, 28, 0.15, None),
             (53, 11, 44, 0.06, None),
             (None, 11, 23, 65.2, None)),
        _row("alex-nonfc", 24, 6,
             (31, 7, 26, 0.05, None),
             (28, 7, 22, 0.03, None),
             (None, None, None, None, _NF)),
        _row("sbuf-send-pkt2", 21, 6,
             (26, 7, 20, 0.04, None),
             (27, 7, 29, 0.04, None),
             (None, 7, 14, 8.6, None)),
        _row("sbuf-send-ctl", 20, 6,
             (32, 8, 33, 0.09, None),
             (28, 8, 35, 0.03, None),
             (None, 8, 43, 3.4, None)),
        _row("atod", 20, 6,
             (26, 7, 15, 0.02, None),
             (24, 7, 16, 0.01, None),
             (None, 7, 19, 2.9, None)),
        _row("pa", 18, 4,
             (34, 6, 18, 0.12, None),
             (31, 6, 22, 0.06, None),
             (None, None, None, None, _IE)),
        _row("alloc-outbound", 17, 7,
             (29, 9, 33, 0.09, None),
             (24, 9, 27, 0.04, None),
             (None, 9, 23, 2.5, None)),
        _row("wrdata", 16, 4,
             (20, 5, 17, 0.03, None),
             (19, 5, 18, 0.01, None),
             (None, 5, 21, 0.9, None)),
        _row("fifo", 16, 4,
             (23, 5, 15, 0.03, None),
             (20, 5, 17, 0.02, None),
             (None, 5, 15, 0.7, None)),
        _row("sbuf-read-ctl", 14, 6,
             (18, 7, 16, 0.06, None),
             (16, 7, 20, 0.01, None),
             (None, 7, 15, 1.5, None)),
        _row("nouse", 12, 3,
             (16, 4, 12, 0.01, None),
             (16, 4, 12, 0.01, None),
             (None, 4, 14, 0.5, None)),
        _row("vbe-ex2", 8, 2,
             (12, 4, 18, 0.08, None),
             (12, 4, 18, 0.03, None),
             (None, 4, 21, 0.5, None)),
        _row("nousc-ser", 8, 3,
             (10, 4, 9, 0.02, None),
             (10, 4, 9, 0.01, None),
             (None, 4, 11, 0.4, None)),
        _row("sendr-done", 7, 3,
             (10, 4, 8, 0.02, None),
             (10, 4, 8, 0.01, None),
             (None, 4, 6, 0.4, None)),
        _row("vbe-ex1", 5, 2,
             (8, 3, 7, 0.01, None),
             (8, 3, 7, 0.01, None),
             (None, 3, 7, 0.3, None)),
    ]
}


def benchmark_names():
    """All benchmark names in the paper's (size-descending) row order."""
    return list(BENCHMARKS)


def load_benchmark(name):
    """Parse the packaged ``.g`` file of a benchmark into an STG."""
    if name not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; see repro.bench.benchmark_names()"
        )
    try:
        text = (
            resources.files("repro.data")
            .joinpath(f"{name}.g")
            .read_text(encoding="utf-8")
        )
    except FileNotFoundError:
        # Data file not generated yet: fall back to the live spec.
        from repro.bench.specs import generate

        text = generate(name)
    return load_stg(text, name_hint=name)
