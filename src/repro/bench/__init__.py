"""The Table-1 benchmark suite and its runners.

The paper evaluates on the classic SIS/HP asynchronous STG benchmarks.
Those files are not redistributable, so this package re-creates the suite
(see DESIGN.md §4): hand-specified handshake controllers for the small
benchmarks and parametric master-read/MMU-style generators for the large
ones, all sized to the paper's "Specifications" columns.

* :mod:`repro.bench.generators` -- the phase-cycle STG builder.
* :mod:`repro.bench.specs` -- the 23 benchmark definitions.
* :mod:`repro.bench.suite` -- registry, paper numbers, ``.g`` loading.
* :mod:`repro.bench.runner` -- per-benchmark method runs and Table-1 rows.
* :mod:`repro.bench.table1` -- the command-line table printer.
"""

from repro.bench.suite import (
    BENCHMARKS,
    BenchmarkInfo,
    benchmark_names,
    load_benchmark,
)
from repro.bench.runner import (
    MethodRow,
    run_direct,
    run_lavagno,
    run_modular,
    table_rows,
)

__all__ = [
    "BENCHMARKS",
    "BenchmarkInfo",
    "MethodRow",
    "benchmark_names",
    "load_benchmark",
    "run_direct",
    "run_lavagno",
    "run_modular",
    "table_rows",
]
