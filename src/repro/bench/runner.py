"""Benchmark runners: one Table-1 row per method per benchmark.

Besides the in-memory :class:`MethodRow` objects, :func:`write_bench_json`
serialises a completed run -- rows plus the active tracer's span
summaries -- as ``BENCH_<tag>.json`` (schema ``repro-bench/1``), the
machine-readable artifact CI's bench-smoke job validates and archives.
"""

from __future__ import annotations

import json
import os

from repro import obs
from repro.bench.suite import BENCHMARKS, load_benchmark
from repro.csc.direct import direct_synthesis
from repro.csc.errors import BacktrackLimitError
from repro.csc.synthesis import modular_synthesis
from repro.obs import Counters, Stopwatch, merge_stats, with_derived
from repro.runtime.options import SynthesisOptions
from repro.sat.solver import Limits
from repro.stategraph.build import build_state_graph

#: Schema identifier written into every ``BENCH_<tag>.json``.
BENCH_SCHEMA = "repro-bench/1"

#: Default direct-method budget standing in for the paper's backtrack
#: limit / 3600 s abort.
DEFAULT_DIRECT_LIMITS = Limits(max_backtracks=200_000, max_seconds=120.0)


class MethodRow:
    """Measured results of one method on one benchmark.

    Mirrors a Table-1 cell group: final states/signals, two-level area,
    CPU time, or an abort note.  The robustness statistics
    (``backtracks``, ``escalations``, ``degraded``/``skipped`` module
    counts) live in a shared :class:`~repro.obs.metrics.Counters` bag --
    the same type solver results and run reports carry -- and are
    exposed as read-only properties for compatibility.
    """

    def __init__(self, benchmark, method, initial_states, initial_signals,
                 final_states=None, final_signals=None, area=None,
                 cpu=None, note=None, formula_sizes=(), backtracks=0,
                 escalations=0, degraded=0, skipped=0, metrics=None):
        self.benchmark = benchmark
        self.method = method
        self.initial_states = initial_states
        self.initial_signals = initial_signals
        self.final_states = final_states
        self.final_signals = final_signals
        self.area = area
        self.cpu = cpu
        self.note = note
        self.formula_sizes = list(formula_sizes)
        if metrics is None:
            metrics = Counters(
                backtracks=backtracks,
                escalations=escalations,
                modules_degraded=degraded,
                modules_skipped=skipped,
            )
        self.metrics = metrics

    @property
    def backtracks(self):
        """Total SAT backtracks consumed across every formula."""
        return self.metrics["backtracks"]

    @property
    def escalations(self):
        """Engine-ladder escalations recorded by the solves."""
        return self.metrics["escalations"]

    @property
    def degraded(self):
        """Modules that fell back to a per-output direct sub-solve."""
        return self.metrics["modules_degraded"]

    @property
    def skipped(self):
        """Modules left entirely to the verify-and-repair pass."""
        return self.metrics["modules_skipped"]

    @property
    def completed(self):
        return self.note is None

    def as_dict(self):
        """JSON-ready snapshot for ``BENCH_<tag>.json``."""
        return {
            "benchmark": self.benchmark,
            "method": self.method,
            "initial_states": self.initial_states,
            "initial_signals": self.initial_signals,
            "final_states": self.final_states,
            "final_signals": self.final_signals,
            "area": self.area,
            "cpu": None if self.cpu is None else round(self.cpu, 6),
            "note": self.note,
            "formula_sizes": [list(pair) for pair in self.formula_sizes],
            "counters": self.metrics.as_dict(),
        }

    def __repr__(self):
        if not self.completed:
            return (
                f"MethodRow({self.benchmark!r}, {self.method!r}, "
                f"note={self.note!r})"
            )
        return (
            f"MethodRow({self.benchmark!r}, {self.method!r}, "
            f"states={self.final_states}, signals={self.final_signals}, "
            f"area={self.area}, cpu={self.cpu:.2f}s)"
        )


def _base_counts(name, graph=None):
    stg = load_benchmark(name)
    if graph is None:
        graph = build_state_graph(stg)
    return stg, graph


def _attempt_stats(attempts):
    """Total (backtracks, escalations) across solver attempts."""
    backtracks = sum(attempt.backtracks for attempt in attempts)
    escalations = sum(1 for attempt in attempts if attempt.escalated)
    return backtracks, escalations


def run_modular(name, minimize=True, graph=None, engine="hybrid",
                budget=None, fallback=False, cache_dir=None, jobs=1,
                sat_mode="incremental"):
    """Run the paper's method on one benchmark.

    ``cache_dir`` wires the persistent
    :class:`~repro.perf.ResultCache` in, so repeated Table-1 runs are
    warm; ``jobs`` dispatches per-module solves to worker processes
    (both default off, matching the historical serial cold run).
    """
    stg, graph = _base_counts(name, graph)
    result = modular_synthesis(graph, options=SynthesisOptions(
        minimize=minimize, engine=engine, budget=budget,
        fallback=fallback, degrade=fallback,
        cache_dir=cache_dir, jobs=jobs, sat_mode=sat_mode,
    ))
    attempts = [
        attempt for module in result.modules for attempt in module.attempts
    ] + list(result.repair_attempts)
    backtracks, _ = _attempt_stats(attempts)
    _, repair_escalations = _attempt_stats(result.repair_attempts)
    return MethodRow(
        name, "modular",
        initial_states=graph.num_states,
        initial_signals=len(graph.signals),
        final_states=result.final_states,
        final_signals=result.final_signals,
        area=result.literals,
        cpu=result.seconds,
        formula_sizes=result.formula_sizes(),
        backtracks=backtracks,
        escalations=result.report.escalations + repair_escalations,
        degraded=len(result.report.degraded_modules),
        skipped=len(result.report.skipped_modules),
    )


def run_direct(name, limits=None, minimize=True, graph=None,
               engine="hybrid"):
    """Run the Vanbekbergen-style direct method on one benchmark.

    Hitting the backtrack/time budget produces a row with
    ``note="backtrack-limit"`` instead of raising, mirroring the paper's
    aborted entries.
    """
    stg, graph = _base_counts(name, graph)
    limits = DEFAULT_DIRECT_LIMITS if limits is None else limits
    watch = Stopwatch()
    try:
        result = direct_synthesis(graph, options=SynthesisOptions(
            limits=limits, minimize=minimize, engine=engine,
        ))
    except BacktrackLimitError:
        return MethodRow(
            name, "direct",
            initial_states=graph.num_states,
            initial_signals=len(graph.signals),
            cpu=watch.elapsed(),
            note="backtrack-limit",
        )
    sizes = [
        (attempt.num_clauses, attempt.num_vars)
        for attempt in result.attempts
    ]
    backtracks, escalations = _attempt_stats(result.attempts)
    return MethodRow(
        name, "direct",
        initial_states=graph.num_states,
        initial_signals=len(graph.signals),
        final_states=result.final_states,
        final_signals=result.final_signals,
        area=result.literals,
        cpu=result.seconds,
        formula_sizes=sizes,
        backtracks=backtracks,
        escalations=escalations,
    )


def run_lavagno(name, minimize=True, graph=None):
    """Run the Lavagno/Moon-style state-table baseline."""
    from repro.baselines.lavagno import lavagno_synthesis

    stg, graph = _base_counts(name, graph)
    result = lavagno_synthesis(
        graph, options=SynthesisOptions(minimize=minimize)
    )
    return MethodRow(
        name, "lavagno",
        initial_states=graph.num_states,
        initial_signals=len(graph.signals),
        final_states=result.final_states,
        final_signals=result.final_signals,
        area=result.literals,
        cpu=result.seconds,
    )


def _method_rows(name, graph, methods, minimize, direct_limits,
                 cache_dir=None):
    """All requested methods on one benchmark (shared state graph)."""
    runners = {
        "modular": lambda: run_modular(
            name, minimize=minimize, graph=graph, cache_dir=cache_dir
        ),
        "direct": lambda: run_direct(
            name, limits=direct_limits, minimize=minimize, graph=graph
        ),
        "lavagno": lambda: run_lavagno(
            name, minimize=minimize, graph=graph
        ),
    }
    return {method: runners[method]() for method in methods}


def table_rows(names=None, methods=("modular", "direct", "lavagno"),
               minimize=True, direct_limits=None, cache_dir=None):
    """Run the selected methods over the suite.

    Returns ``{name: {method: MethodRow}}`` in suite order.
    """
    names = list(BENCHMARKS) if names is None else list(names)
    rows = {}
    for name in names:
        stg = load_benchmark(name)
        graph = build_state_graph(stg)
        rows[name] = _method_rows(name, graph, methods, minimize,
                                  direct_limits, cache_dir=cache_dir)
    return rows


def _bench_task(task):
    """Pool worker: one benchmark, every requested method, own tracer.

    Runs in a separate process, so it installs a private tracer (with a
    private JSONL journal when the caller asked for one) and returns a
    picklable triple ``(name, {method: MethodRow}, stats_snapshot)``.
    """
    name, methods, minimize, direct_limits, journal, cache_dir = task
    tracer = obs.install(obs.Tracer(journal=journal))
    try:
        with obs.span("bench", benchmark=name):
            stg = load_benchmark(name)
            graph = build_state_graph(stg)
            per_method = _method_rows(name, graph, methods, minimize,
                                      direct_limits, cache_dir=cache_dir)
    finally:
        obs.uninstall()
        tracer.close()
    return name, per_method, tracer.stats_dict()


def table_rows_parallel(names=None,
                        methods=("modular", "direct", "lavagno"),
                        minimize=True, direct_limits=None, jobs=2,
                        journal_prefix=None, cache_dir=None):
    """Run the suite with a process pool, one task per benchmark.

    Each worker traces itself; the per-process profiles are merged with
    :func:`repro.obs.merge_stats` so counters and span totals come out
    identical to a serial traced run (wall-clock sums are CPU time
    across workers, not elapsed time).

    Parameters
    ----------
    jobs:
        Worker process count.
    journal_prefix:
        When set, each worker journals to
        ``<journal_prefix>.<benchmark>.jsonl``; the caller concatenates
        or inspects them (each file is a complete, self-contained
        journal).

    Returns
    -------
    (rows, stats, journals):
        ``rows`` as :func:`table_rows`; ``stats`` the merged
        ``{span_name: SpanStats}`` profile; ``journals`` the
        per-benchmark journal paths written (empty without a prefix).
    """
    import multiprocessing

    names = list(BENCHMARKS) if names is None else list(names)
    tasks = []
    journals = []
    for name in names:
        journal = None
        if journal_prefix:
            journal = f"{journal_prefix}.{name}.jsonl"
            journals.append(journal)
        tasks.append((name, tuple(methods), minimize, direct_limits,
                      journal, cache_dir))
    with multiprocessing.Pool(processes=jobs) as pool:
        results = pool.map(_bench_task, tasks)
    rows = {}
    snapshots = []
    for name, per_method, stats in results:
        rows[name] = per_method
        snapshots.append(stats)
    return rows, merge_stats(snapshots), journals


def write_bench_json(rows, tag, out_dir=".", tracer=None, extra=None,
                     spans=None, trace_counters=None):
    """Write ``BENCH_<tag>.json`` for a completed :func:`table_rows` run.

    The document (schema ``repro-bench/1``) carries the flattened rows,
    the counter totals summed over them, and -- when a tracer is active
    or passed explicitly -- its per-span-name profile plus the run-wide
    ``trace_counters`` totals (``quotients``, ``proj_cache_hits``, ...),
    so one artifact holds the Table-1 numbers, where the wall clock
    went, and how hard the projection layer worked.  A parallel run has
    no single tracer; it passes the merged profile as ``spans`` (a
    ``stats_as_dict`` mapping) and its summed totals as
    ``trace_counters``.  Returns the path written.
    """
    if tracer is None:
        tracer = obs.active()
    if spans is None and tracer is not None:
        spans = tracer.stats_dict()
    if trace_counters is None and tracer is not None:
        trace_counters = tracer.counter_totals().as_dict()
    totals = Counters()
    flat = []
    for per_method in rows.values():
        for row in per_method.values():
            flat.append(row.as_dict())
            totals.merge(row.metrics)
    document = {
        "schema": BENCH_SCHEMA,
        "tag": tag,
        "rows": flat,
        "counters": totals.as_dict(),
        "spans": spans,
    }
    if trace_counters is not None:
        if not isinstance(trace_counters, Counters):
            trace_counters = Counters().merge(dict(trace_counters))
        # Derived ratios (cache hit rates) are computed at reporting
        # time so segment merges never average averages.
        document["trace_counters"] = with_derived(trace_counters).as_dict()
    if extra:
        document.update(extra)
    path = os.path.join(out_dir, f"BENCH_{tag}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def aggregate_area(rows, baseline_method, reference_method="modular"):
    """Average relative area change of ``reference`` vs ``baseline``.

    Returns the mean of ``(baseline - reference) / baseline`` over the
    benchmarks where both completed: positive numbers mean the reference
    method (the paper's) produced smaller covers.
    """
    ratios = []
    for per_method in rows.values():
        reference = per_method.get(reference_method)
        baseline = per_method.get(baseline_method)
        if (
            reference is not None and baseline is not None
            and reference.completed and baseline.completed
            and baseline.area
        ):
            ratios.append((baseline.area - reference.area) / baseline.area)
    if not ratios:
        return None
    return sum(ratios) / len(ratios)
