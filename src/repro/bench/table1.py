"""Command-line reproduction of Table 1.

Usage::

    python -m repro.bench.table1 [--methods modular,direct,lavagno]
                                 [--names mr0,nak-pa,...] [--no-minimize]
                                 [--jobs N] [--trace FILE.jsonl]
                                 [--bench-json TAG] [--out-dir DIR]
                                 [--cache-dir DIR] [--no-cache]

Prints, for every benchmark in the paper's row order, the measured
results of each requested method next to the numbers the paper reports.
``--jobs N`` spreads the benchmarks over N worker processes (one task
per benchmark); the per-worker traces are merged, so ``--bench-json``
output is shape-identical to a serial run -- but the per-row ``cpu``
and span totals are then CPU time inside the workers, not wall clock
of the whole run.  ``--trace`` journals the run's spans to a JSONL
file (under ``--jobs`` the per-worker journals are concatenated into
it, each a self-contained segment with its own header); ``--bench-json``
additionally writes ``BENCH_<TAG>.json`` (rows + span summaries +
run-wide counter totals, schema ``repro-bench/1``) into ``--out-dir``
for CI to validate and archive.  ``--cache-dir`` points the modular
method at a persistent :class:`~repro.perf.ResultCache`, so a repeated
run (same checkout, same options) is warm; ``--no-cache`` ignores it.
"""

from __future__ import annotations

import argparse
import os

from repro import obs
from repro.bench.runner import (
    aggregate_area,
    table_rows,
    table_rows_parallel,
    write_bench_json,
)
from repro.bench.suite import BENCHMARKS
from repro.obs import counter_totals, journal_open, stats_as_dict

_PAPER_METHODS = {
    "modular": lambda info: info.ours,
    "direct": lambda info: info.vanbekbergen,
    "lavagno": lambda info: info.lavagno,
}


def _fmt(value, width, precision=None):
    if value is None:
        return "-".rjust(width)
    if precision is not None:
        return f"{value:.{precision}f}".rjust(width)
    return str(value).rjust(width)


def format_table(rows, methods):
    """Render measured-vs-paper rows as a fixed-width text table."""
    lines = []
    header = f"{'benchmark':16} {'st':>4} {'sig':>4}"
    for method in methods:
        header += f" | {method:^33}"
    lines.append(header)
    sub = f"{'':16} {'':>4} {'':>4}"
    for _ in methods:
        sub += f" | {'sig':>4} {'st':>5} {'area':>5} {'cpu':>7} {'paper':>7}"
    lines.append(sub)
    lines.append("-" * len(sub))
    for name, per_method in rows.items():
        info = BENCHMARKS[name]
        line = f"{name:16} {info.initial_states:>4} {info.initial_signals:>4}"
        for method in methods:
            row = per_method[method]
            paper = _PAPER_METHODS[method](info)
            if row.completed:
                line += (
                    f" | {_fmt(row.final_signals, 4)}"
                    f" {_fmt(row.final_states, 5)}"
                    f" {_fmt(row.area, 5)}"
                    f" {_fmt(row.cpu, 7, 2)}"
                )
            else:
                line += f" | {row.note:>23} {_fmt(row.cpu, 7, 2)}"
            if paper.completed:
                line += f" {_fmt(paper.area, 7)}"
            else:
                line += f" {paper.note[:7]:>7}"
        lines.append(line)
    return "\n".join(lines)


def _merge_journals(journals, target):
    """Concatenate per-worker journals into ``target``, then drop them.

    Each worker's journal is a complete JSONL trace (its own header
    event, its own span-id space); the merged file is a sequence of
    such self-contained segments, which is what the aggregation tools
    fold by span *name* anyway.  A ``.gz`` target (or part) is handled
    transparently via :func:`repro.obs.journal_open`.
    """
    with journal_open(target, "w") as out:
        for journal in journals:
            if not os.path.exists(journal):
                continue
            with journal_open(journal, "r") as part:
                out.write(part.read())
            os.remove(journal)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--methods", default="modular,direct",
        help="comma-separated subset of modular,direct,lavagno",
    )
    parser.add_argument(
        "--names", default=None,
        help="comma-separated benchmark subset (default: all 23)",
    )
    parser.add_argument(
        "--no-minimize", action="store_true",
        help="skip two-level minimisation (omits the area columns)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (one benchmark per task; default 1)",
    )
    parser.add_argument(
        "--trace", metavar="FILE.jsonl", default=None,
        help="write a JSONL span journal of the whole run",
    )
    parser.add_argument(
        "--bench-json", metavar="TAG", default=None,
        help="write BENCH_<TAG>.json (rows + span summaries)",
    )
    parser.add_argument(
        "--out-dir", metavar="DIR", default=".",
        help="directory for BENCH_<TAG>.json (default: cwd)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent result cache for the modular method",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache-dir for this run",
    )
    args = parser.parse_args(argv)

    methods = tuple(m.strip() for m in args.methods.split(",") if m.strip())
    unknown = set(methods) - set(_PAPER_METHODS)
    if unknown:
        parser.error(f"unknown methods: {sorted(unknown)}")
    names = None
    if args.names:
        names = [n.strip() for n in args.names.split(",") if n.strip()]
        missing = set(names) - set(BENCHMARKS)
        if missing:
            parser.error(f"unknown benchmarks: {sorted(missing)}")

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    cache_dir = None if args.no_cache else args.cache_dir
    spans = trace_counters = None
    if args.jobs > 1:
        rows, stats, journals = table_rows_parallel(
            names=names, methods=methods, minimize=not args.no_minimize,
            jobs=args.jobs, journal_prefix=args.trace,
            cache_dir=cache_dir,
        )
        if args.trace:
            _merge_journals(journals, args.trace)
        spans = stats_as_dict(stats)
        trace_counters = counter_totals(stats).as_dict()
        tracer = None
    else:
        observe = bool(args.trace or args.bench_json)
        tracer = (
            obs.install(obs.Tracer(journal=args.trace)) if observe else None
        )
        try:
            rows = table_rows(
                names=names, methods=methods, minimize=not args.no_minimize,
                cache_dir=cache_dir,
            )
        finally:
            if tracer is not None:
                obs.uninstall()
                tracer.close()
    print(format_table(rows, methods))

    if args.bench_json:
        path = write_bench_json(
            rows, args.bench_json, out_dir=args.out_dir, tracer=tracer,
            spans=spans, trace_counters=trace_counters,
        )
        print(f"wrote {path}")

    if not args.no_minimize and "modular" in methods:
        for baseline in ("direct", "lavagno"):
            if baseline in methods:
                delta = aggregate_area(rows, baseline_method=baseline)
                if delta is not None:
                    print(
                        f"\naverage area change of modular vs {baseline}: "
                        f"{delta * 100:+.1f}% "
                        f"(positive = modular smaller; paper reports "
                        f"{'+12%' if baseline == 'direct' else '+9%'})"
                    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
