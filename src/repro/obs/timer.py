"""The one wall-clock helper every timed code path shares.

Before this module, six files hand-rolled the same three lines of
``time.perf_counter()`` bookkeeping (record a start, subtract it for the
elapsed time, compare the difference against a deadline).
:class:`Stopwatch` is that pattern, once -- and the place where a future
clock change (monotonic source, virtualised test time) happens exactly
once.
"""

from __future__ import annotations

import time


class Stopwatch:
    """A started wall-clock timer.

    Parameters
    ----------
    clock:
        Injectable time source (tests pass a fake for deterministic
        deadlines), defaulting to :func:`time.perf_counter`.
    """

    __slots__ = ("_clock", "started")

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self.started = clock()

    def elapsed(self):
        """Seconds since construction (or the last :meth:`restart`)."""
        return self._clock() - self.started

    def exceeded(self, max_seconds):
        """True when a (possibly ``None`` = unlimited) budget has passed."""
        return max_seconds is not None and self.elapsed() > max_seconds

    def restart(self):
        """Reset the start time; returns the elapsed time it discarded."""
        now = self._clock()
        elapsed = now - self.started
        self.started = now
        return elapsed

    def __repr__(self):
        return f"Stopwatch(elapsed={self.elapsed():.6f}s)"
