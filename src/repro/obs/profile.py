"""Span aggregation and the text tables behind ``--metrics``/``--profile-top``.

A trace is a stream of span start/end events; a profile is the same data
folded by span *name*: how many times each phase ran, how much wall
clock it took in total, and the sum of every counter it recorded.  The
live :class:`~repro.obs.tracer.Tracer` maintains this fold incrementally
(so the CLI can print it without re-reading the journal), and
``tools/summarize_trace.py`` rebuilds the identical fold from a journal
file on disk.
"""

from __future__ import annotations

from repro.obs.metrics import Counters


class SpanStats:
    """Aggregated statistics of every completed span sharing one name."""

    __slots__ = ("name", "count", "total_seconds", "max_seconds", "counters")

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0
        self.counters = Counters()

    def record(self, duration, counters=None):
        """Fold one completed span in."""
        self.count += 1
        self.total_seconds += duration
        if duration > self.max_seconds:
            self.max_seconds = duration
        if counters:
            self.counters.merge(counters)

    def merge(self, other):
        """Fold another :class:`SpanStats` of the same name in."""
        self.count += other.count
        self.total_seconds += other.total_seconds
        if other.max_seconds > self.max_seconds:
            self.max_seconds = other.max_seconds
        self.counters.merge(other.counters)
        return self

    @classmethod
    def from_dict(cls, name, data):
        """Rebuild from an :meth:`as_dict` snapshot (journal/worker side)."""
        entry = cls(name)
        entry.count = int(data.get("count", 0))
        entry.total_seconds = float(data.get("total_seconds", 0.0))
        entry.max_seconds = float(data.get("max_seconds", 0.0))
        entry.counters.merge(data.get("counters") or {})
        return entry

    @property
    def mean_seconds(self):
        return self.total_seconds / self.count if self.count else 0.0

    def as_dict(self):
        return {
            "count": self.count,
            "total_seconds": round(self.total_seconds, 6),
            "max_seconds": round(self.max_seconds, 6),
            "counters": self.counters.as_dict(),
        }

    def __repr__(self):
        return (
            f"SpanStats({self.name!r}, count={self.count}, "
            f"total={self.total_seconds:.4f}s)"
        )


def aggregate_events(events):
    """Fold journal events into ``{span_name: SpanStats}``.

    Only ``end`` events contribute (they carry the duration and final
    counters); the fold therefore matches the live tracer's, which also
    records spans as they close.
    """
    stats = {}
    for event in events:
        if event.get("ev") != "end":
            continue
        name = event.get("name", "?")
        entry = stats.get(name)
        if entry is None:
            entry = stats[name] = SpanStats(name)
        entry.record(
            float(event.get("dur", 0.0)), event.get("counters") or {}
        )
    return stats


def merge_stats(snapshots):
    """Merge per-process profile snapshots into ``{name: SpanStats}``.

    Each snapshot is the JSON-ready mapping :func:`stats_as_dict` (or
    ``Tracer.stats_dict``) produces -- the form bench workers can ship
    across a process boundary.  Folding is name-wise: counts, totals and
    counters sum; ``max_seconds`` takes the maximum.
    """
    merged = {}
    for snapshot in snapshots:
        for name, data in (snapshot or {}).items():
            entry = SpanStats.from_dict(name, data)
            existing = merged.get(name)
            if existing is None:
                merged[name] = entry
            else:
                existing.merge(entry)
    return merged


def counter_totals(stats):
    """Sum every span's counters into one :class:`Counters` bag."""
    totals = Counters()
    for entry in stats.values():
        totals.merge(entry.counters)
    return totals


#: ``derived name -> (hits counter, misses counter)`` hit-rate ratios
#: appended by :func:`with_derived` (see
#: :data:`repro.obs.metrics.DERIVED_GLOSSARY`).
_HIT_RATES = {
    "result_cache_hit_rate": ("result_cache_hits", "result_cache_misses"),
    "proj_cache_hit_rate": ("proj_cache_hits", "proj_cache_misses"),
    "service_cache_hit_rate": ("service_cache_hits", "service_cache_misses"),
}


def with_derived(totals):
    """A copy of ``totals`` with the derived ratio metrics appended.

    Cache hit rates (``result_cache_hit_rate``,
    ``proj_cache_hit_rate``) are computed from the raw hit/miss
    counters whenever at least one lookup happened, so ``--metrics``
    output and ``BENCH_<tag>.json`` ``trace_counters`` surface cache
    effectiveness without a journal read.  Ratios are derived at
    reporting time only -- they are never merged (a merged ratio would
    be meaningless).
    """
    out = Counters()
    out.merge(totals)
    for name, (hits_key, misses_key) in _HIT_RATES.items():
        lookups = totals[hits_key] + totals[misses_key]
        if lookups:
            out.set(name, round(totals[hits_key] / lookups, 4))
    return out


def top_spans(stats, n=None):
    """Span stats ordered by total wall clock, heaviest first."""
    ordered = sorted(
        stats.values(), key=lambda s: (-s.total_seconds, s.name)
    )
    return ordered if n is None else ordered[:n]


def format_profile(stats, top=None):
    """Fixed-width per-phase table, heaviest spans first."""
    rows = top_spans(stats, top)
    if not rows:
        return "no spans recorded"
    width = max(len(entry.name) for entry in rows)
    width = max(width, len("span"))
    lines = [
        f"{'span':<{width}} {'count':>7} {'total':>10} "
        f"{'mean':>10} {'max':>10}"
    ]
    for entry in rows:
        lines.append(
            f"{entry.name:<{width}} {entry.count:>7} "
            f"{entry.total_seconds:>9.4f}s {entry.mean_seconds:>9.4f}s "
            f"{entry.max_seconds:>9.4f}s"
        )
    return "\n".join(lines)


def format_counters(totals):
    """Aligned ``counter  value`` listing of a :class:`Counters` bag."""
    items = totals.as_dict()
    if not items:
        return "no counters recorded"
    width = max(len(name) for name in items)
    lines = []
    for name, value in items.items():
        if isinstance(value, float):
            rendered = f"{value:.4f}"
        else:
            rendered = str(value)
        lines.append(f"{name:<{width}}  {rendered}")
    return "\n".join(lines)


def stats_as_dict(stats):
    """JSON-ready ``{name: stats}`` mapping (for ``BENCH_*.json``)."""
    return {name: stats[name].as_dict() for name in sorted(stats)}
