"""Exporters: folded stacks, Chrome trace events, Prometheus text.

One journal, three ecosystems:

* :func:`folded_stacks` -- Brendan Gregg's folded-stack format
  (``frame;frame;frame count``), the input of every flamegraph
  renderer (``flamegraph.pl``, speedscope, inferno).  The sample value
  is the span's *self* time in integer microseconds, so the widths of
  the flame rectangles are wall clock, not call counts.
* :func:`chrome_trace` -- the Chrome trace-event JSON object format
  (loadable in Perfetto / ``chrome://tracing``).  Journal segments map
  to threads of one process, so a ``--jobs N`` run renders as N worker
  lanes under the parent lane.
* :func:`prometheus_text` -- the Prometheus text exposition format
  (version 0.0.4) over the whole metric registry: counters (rendered
  with the conventional ``_total`` suffix), histograms (cumulative
  ``_bucket{le=...}`` series plus ``_sum``/``_count``) and gauges.
  This is the scrape substrate for the synthesis-as-a-service front
  end the ROADMAP plans.

Each exporter has a paired ``validate_*`` checker in the style of
``tools/check_bench_schema.py`` -- dependency-free structural
validation returning a list of problem strings -- so CI can gate on
artifact well-formedness without third-party parsers.
"""

from __future__ import annotations

import json
import re

from repro.obs.analyze import walk_forest
from repro.obs.metrics import (
    COUNTER_GLOSSARY,
    DERIVED_GLOSSARY,
    GAUGE_GLOSSARY,
    HISTOGRAM_GLOSSARY,
)

#: Prefix of every exported Prometheus metric family.
PROM_NAMESPACE = "repro"


# -- folded stacks ---------------------------------------------------------

def folded_stacks(roots, per_segment=False):
    """Fold a span forest into flamegraph input lines.

    Identical name-paths aggregate (their self-time microseconds sum),
    which is what folded format means; ``per_segment=True`` prefixes
    each stack with ``segmentN`` so worker lanes stay distinguishable.
    Spans whose self time rounds to zero microseconds are dropped --
    they would render as zero-width rectangles anyway.

    Returns the lines sorted lexicographically (the conventional
    ``sort | flamegraph.pl`` shape), without trailing newlines.
    """
    folded = {}

    def descend(node, prefix):
        frame = node.name.replace(";", "_").replace(" ", "_")
        stack = f"{prefix};{frame}" if prefix else frame
        micros = int(round(node.self_seconds * 1e6))
        if micros > 0:
            folded[stack] = folded.get(stack, 0) + micros
        for child in node.children:
            descend(child, stack)

    for root in roots:
        prefix = f"segment{root.segment}" if per_segment else ""
        descend(root, prefix)
    return [f"{stack} {value}" for stack, value in sorted(folded.items())]


def validate_folded(lines):
    """Problem strings for folded-stack lines (empty list = valid)."""
    problems = []
    for number, line in enumerate(lines, start=1):
        line = line.rstrip("\n")
        if not line:
            continue
        stack, _, value = line.rpartition(" ")
        if not stack or not value.isdigit():
            problems.append(
                f"line {number}: not 'frame;frame value': {line!r}"
            )
            continue
        if int(value) <= 0:
            problems.append(f"line {number}: non-positive sample {value}")
        if any(not frame for frame in stack.split(";")):
            problems.append(f"line {number}: empty frame in {stack!r}")
    return problems


# -- Chrome trace events ---------------------------------------------------

def chrome_trace(roots, events=()):
    """A Chrome trace-event JSON document from a span forest.

    Complete spans become ``ph="X"`` duration events; journal ``point``
    records (pass the raw events) become ``ph="i"`` instants.  Each
    journal segment renders as its own thread (``tid = segment + 1``)
    of one process, with ``M`` metadata events naming the lanes.
    Timestamps are the journal's segment-relative seconds in
    microseconds -- lanes align at zero, which is the useful alignment
    for comparing worker timelines.
    """
    trace_events = []
    segments = set()
    for node in walk_forest(roots):
        segments.add(node.segment)
        args = {}
        if node.attrs:
            args["attrs"] = dict(node.attrs)
        counters = node.counters.as_dict()
        if counters:
            args["counters"] = counters
        trace_events.append({
            "name": node.name,
            "cat": "repro",
            "ph": "X",
            "ts": round(node.start * 1e6, 3),
            "dur": round(node.duration * 1e6, 3),
            "pid": 1,
            "tid": node.segment + 1,
            "args": args,
        })
    segment = -1
    for event in events:
        if event.get("ev") == "trace":
            segment += 1
        elif event.get("ev") == "point":
            trace_events.append({
                "name": event.get("name", "?"),
                "cat": "repro",
                "ph": "i",
                "s": "t",
                "ts": round(float(event.get("t", 0.0)) * 1e6, 3),
                "pid": 1,
                "tid": max(segment, 0) + 1,
                "args": {"attrs": dict(event.get("attrs") or {})},
            })
            segments.add(max(segment, 0))
    for index in sorted(segments):
        lane = "main" if index == 0 else f"worker segment {index}"
        trace_events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": index + 1,
            "args": {"name": lane},
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def validate_chrome_trace(document):
    """Problem strings for a Chrome trace document (empty = valid)."""
    problems = []
    if not isinstance(document, dict):
        return ["top level is not an object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M", "B", "E"):
            problems.append(f"{where}: unsupported phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: name missing or not a string")
        if ph == "M":
            continue
        for field in ("ts", "pid", "tid"):
            if not isinstance(event.get(field), (int, float)):
                problems.append(f"{where}: {field} missing or not a number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"{where}: dur missing or negative for a complete event"
                )
    return problems


def write_chrome_trace(document, path):
    """Serialise a trace document to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))
        handle.write("\n")
    return path


# -- Prometheus text exposition --------------------------------------------

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _prom_name(name):
    """Sanitise a glossary name into a Prometheus metric name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", str(name))
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return f"{PROM_NAMESPACE}_{cleaned}"


def _prom_help(text):
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_label_value(value):
    return (
        str(value).replace("\\", "\\\\").replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_number(value):
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def prometheus_text(counters=None, histograms=None, gauges=None):
    """Render the metric registry in Prometheus text exposition format.

    ``counters`` is a :class:`~repro.obs.metrics.Counters` (or dict) of
    monotone totals -- rendered as ``counter`` families with the
    conventional ``_total`` suffix, except derived ratios
    (:data:`~repro.obs.metrics.DERIVED_GLOSSARY`), which are gauges by
    nature.  ``histograms`` is ``{name: Histogram}``; ``gauges`` is
    ``{key: Gauge}``.  ``HELP`` lines come from the glossaries when the
    metric is documented.  Returns the full page as one string ending
    in a newline (the exposition format requires it).
    """
    lines = []

    def header(prom, source_name, kind, glossary):
        help_text = glossary.get(source_name)
        if help_text:
            lines.append(f"# HELP {prom} {_prom_help(help_text)}")
        lines.append(f"# TYPE {prom} {kind}")

    items = counters.as_dict() if hasattr(counters, "as_dict") else \
        dict(counters or {})
    for name in sorted(items):
        value = items[name]
        if name in DERIVED_GLOSSARY:
            prom = _prom_name(name)
            header(prom, name, "gauge", DERIVED_GLOSSARY)
            lines.append(f"{prom} {_prom_number(value)}")
        else:
            prom = _prom_name(name) + "_total"
            header(prom, name, "counter", COUNTER_GLOSSARY)
            lines.append(f"{prom} {_prom_number(value)}")

    for name in sorted(histograms or {}):
        hist = histograms[name]
        prom = _prom_name(name)
        header(prom, name, "histogram", HISTOGRAM_GLOSSARY)
        for bound, cumulative in hist.cumulative():
            le = "+Inf" if bound == float("inf") else _prom_number(bound)
            lines.append(f'{prom}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f"{prom}_sum {_prom_number(hist.total)}")
        lines.append(f"{prom}_count {hist.count}")

    seen_gauge_families = set()
    for key in sorted(gauges or {}):
        entry = gauges[key]
        if entry.value is None:
            continue
        prom = _prom_name(entry.name)
        if prom not in seen_gauge_families:
            header(prom, entry.name, "gauge", GAUGE_GLOSSARY)
            seen_gauge_families.add(prom)
        if entry.labels:
            rendered = ",".join(
                f'{k}="{_prom_label_value(entry.labels[k])}"'
                for k in sorted(entry.labels)
            )
            lines.append(f"{prom}{{{rendered}}} {_prom_number(entry.value)}")
        else:
            lines.append(f"{prom} {_prom_number(entry.value)}")

    return "\n".join(lines) + "\n" if lines else ""


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def validate_prometheus_text(text):
    """Problem strings for a text-exposition page (empty = valid).

    Checks the subset of the 0.0.4 format this exporter emits: HELP and
    TYPE comments naming valid metric families, samples with a valid
    metric name, well-formed label sets and a parseable float value,
    TYPE appearing before the family's first sample, and a trailing
    newline.
    """
    problems = []
    if text and not text.endswith("\n"):
        problems.append("page does not end with a newline")
    typed = set()
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                problems.append(f"line {number}: malformed comment {line!r}")
                continue
            if not _NAME_OK.match(parts[2]):
                problems.append(
                    f"line {number}: invalid metric name {parts[2]!r}"
                )
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary",
                        "untyped"):
                    problems.append(
                        f"line {number}: invalid TYPE line {line!r}"
                    )
                elif parts[2] in typed:
                    problems.append(
                        f"line {number}: duplicate TYPE for {parts[2]}"
                    )
                else:
                    typed.add(parts[2])
            continue
        match = _SAMPLE.match(line)
        if not match:
            problems.append(f"line {number}: malformed sample {line!r}")
            continue
        labels = match.group("labels")
        if labels:
            inner = labels[1:-1]
            if inner:
                for pair in _split_labels(inner):
                    if not _LABEL.match(pair):
                        problems.append(
                            f"line {number}: malformed label {pair!r}"
                        )
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                problems.append(
                    f"line {number}: unparseable value {value!r}"
                )
    return problems


def _split_labels(inner):
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    pairs = []
    current = []
    quoted = False
    escaped = False
    for char in inner:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            quoted = not quoted
            current.append(char)
            continue
        if char == "," and not quoted:
            pairs.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        pairs.append("".join(current))
    return pairs
