"""Hierarchical spans with a JSONL journal and a near-no-op disabled path.

The tracer is a process-wide singleton like the fault registry
(:mod:`repro.runtime.faults`): instrumented sites call the module-level
:func:`span`/:func:`add`/:func:`event` helpers, which consult one global
slot.  With no tracer installed each helper is a global read plus an
early return -- :func:`span` hands back a shared no-op span object --
so the pipeline pays nothing measurable for being instrumented.

With a tracer installed, ``span()`` opens a :class:`Span` nested under
the current one (the tracer keeps the stack), counters recorded through
``Span.add``/:func:`add` accumulate on the innermost open span, and
every start/end is appended to the JSONL journal when one was requested.
Completed spans also fold into an in-memory per-name profile
(:class:`~repro.obs.profile.SpanStats`) so ``--metrics`` and
``--profile-top`` need no journal re-read.

The tracer is deliberately single-threaded, matching the pipeline; the
stack is a plain list, not a contextvar.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager

from repro.obs.metrics import Counters
from repro.obs.profile import (
    SpanStats,
    counter_totals,
    stats_as_dict,
    top_spans,
)

#: Journal format version written in the header event.
JOURNAL_VERSION = 1


class Span:
    """One timed phase of the pipeline.

    Use as a context manager; on exit the span is closed, its duration
    and counters are journalled, and -- when the body raised -- the
    exception class is recorded as the ``error`` attribute so a journal
    of a failed run still shows *where* it failed.
    """

    __slots__ = (
        "tracer", "name", "id", "parent_id", "attrs", "counters",
        "started", "duration",
    )

    def __init__(self, tracer, name, span_id, parent_id, attrs):
        self.tracer = tracer
        self.name = name
        self.id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.counters = Counters()
        self.started = None  # relative time, set by the tracer
        self.duration = None

    def add(self, counter, delta=1):
        """Accumulate a counter on this span."""
        self.counters.add(counter, delta)

    def merge(self, counters):
        """Fold a :class:`Counters` bag (e.g. a result's) into this span."""
        self.counters.merge(counters)

    def set(self, key, value):
        """Set an attribute (status, engine, ...) on this span."""
        self.attrs[key] = value

    @property
    def closed(self):
        return self.duration is not None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._end(self)
        return False

    def __repr__(self):
        state = f"{self.duration:.4f}s" if self.closed else "open"
        return f"Span({self.name!r}, id={self.id}, {state})"


class _NullSpan:
    """The shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()

    def add(self, counter, delta=1):
        pass

    def merge(self, counters):
        pass

    def set(self, key, value):
        pass

    @property
    def closed(self):
        return True

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def __repr__(self):
        return "NullSpan()"


#: Singleton handed out by :func:`span` when no tracer is installed.
NULL_SPAN = _NullSpan()


class Tracer:
    """Span stack, per-name profile, and optional JSONL journal.

    Parameters
    ----------
    journal:
        ``None`` (in-memory profiling only), a path to create, or an
        open text file-like object (not closed by :meth:`close`).
    clock:
        Injectable time source for deterministic tests.
    """

    def __init__(self, journal=None, clock=time.perf_counter):
        self._clock = clock
        self.started = clock()
        self._stack = []
        self._next_id = 1
        #: ``{span_name: SpanStats}`` folded as spans close.
        self.stats = {}
        #: Worker journal segments queued by :meth:`absorb`, appended to
        #: the sink after this tracer's own (self-contained) segment.
        self._segments = []
        self._sink = None
        self._owns_sink = False
        if journal is not None:
            if hasattr(journal, "write"):
                self._sink = journal
            else:
                self._sink = open(journal, "w", encoding="utf-8")
                self._owns_sink = True
            self._emit({
                "ev": "trace",
                "version": JOURNAL_VERSION,
                "clock": "perf_counter",
            })

    # -- span lifecycle ----------------------------------------------------

    def span(self, name, **attrs):
        """Open a span nested under the current one."""
        parent = self._stack[-1].id if self._stack else None
        entry = Span(self, name, self._next_id, parent, attrs)
        self._next_id += 1
        entry.started = self._now()
        self._stack.append(entry)
        record = {
            "ev": "start",
            "id": entry.id,
            "name": name,
            "t": entry.started,
        }
        if parent is not None:
            record["parent"] = parent
        if attrs:
            record["attrs"] = dict(attrs)
        self._emit(record)
        return entry

    def _end(self, entry):
        if entry.closed:
            return
        entry.duration = self._now() - entry.started
        # Pop up to and including this span; a well-nested program pops
        # exactly one, but a mismatch must not corrupt the stack.
        while self._stack:
            top = self._stack.pop()
            if top is entry:
                break
        stats = self.stats.get(entry.name)
        if stats is None:
            stats = self.stats[entry.name] = SpanStats(entry.name)
        stats.record(entry.duration, entry.counters)
        record = {
            "ev": "end",
            "id": entry.id,
            "name": entry.name,
            "t": self._now(),
            "dur": round(entry.duration, 6),
        }
        if entry.attrs:
            record["attrs"] = dict(entry.attrs)
        if entry.counters:
            record["counters"] = entry.counters.as_dict()
        self._emit(record)

    def current(self):
        """The innermost open span, or ``None`` at top level."""
        return self._stack[-1] if self._stack else None

    def add(self, counter, delta=1):
        """Accumulate a counter on the innermost open span (if any)."""
        if self._stack:
            self._stack[-1].counters.add(counter, delta)

    def event(self, name, **attrs):
        """Record an instant (duration-less) point event."""
        record = {"ev": "point", "name": name, "t": self._now()}
        if self._stack:
            record["parent"] = self._stack[-1].id
        if attrs:
            record["attrs"] = dict(attrs)
        self._emit(record)

    # -- reporting ---------------------------------------------------------

    def counter_totals(self):
        """Every counter summed across all completed spans."""
        return counter_totals(self.stats)

    def profile_top(self, n=None):
        """Completed-span stats, heaviest total wall clock first."""
        return top_spans(self.stats, n)

    def stats_dict(self):
        """JSON-ready profile snapshot (for ``BENCH_*.json``)."""
        return stats_as_dict(self.stats)

    def absorb(self, stats=None, journal=None):
        """Fold a worker process's trace into this tracer.

        ``stats`` is the worker's :meth:`stats_dict` snapshot, merged
        name-wise into this profile (the bench runner's
        :func:`~repro.obs.profile.merge_stats` semantics).  ``journal``
        is the worker's complete JSONL journal text; it is queued and
        appended to the sink by :meth:`close`, *after* this tracer's own
        events, so the file stays a valid concatenation of
        self-contained segments (see :mod:`repro.obs.journal`).
        """
        for name, data in (stats or {}).items():
            entry = SpanStats.from_dict(name, data)
            existing = self.stats.get(name)
            if existing is None:
                self.stats[name] = entry
            else:
                existing.merge(entry)
        if journal:
            self._segments.append(journal)

    def close(self):
        """Close any spans left open (crash path), then the journal."""
        while self._stack:
            self._end(self._stack[-1])
        if self._sink is not None:
            for segment in self._segments:
                self._sink.write(segment)
                if not segment.endswith("\n"):
                    self._sink.write("\n")
            self._segments = []
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
            self._sink = None

    # -- internals ---------------------------------------------------------

    def _now(self):
        return round(self._clock() - self.started, 6)

    def _emit(self, record):
        if self._sink is not None:
            self._sink.write(
                json.dumps(record, separators=(",", ":"), default=str)
            )
            self._sink.write("\n")

    def __repr__(self):
        return (
            f"Tracer(spans={sum(s.count for s in self.stats.values())}, "
            f"open={len(self._stack)})"
        )


# -- the global slot -------------------------------------------------------

_tracer = None


def install(tracer):
    """Make ``tracer`` the process-wide tracer; returns it."""
    global _tracer
    _tracer = tracer
    return tracer


def uninstall():
    """Disable tracing; returns the previously installed tracer."""
    global _tracer
    previous = _tracer
    _tracer = None
    return previous


def active():
    """The installed :class:`Tracer`, or ``None`` when disabled."""
    return _tracer


def span(name, **attrs):
    """Open a span on the installed tracer; a no-op span when disabled."""
    if _tracer is None:
        return NULL_SPAN
    return _tracer.span(name, **attrs)


def add(counter, delta=1):
    """Accumulate a counter on the current span; no-op when disabled."""
    if _tracer is not None:
        _tracer.add(counter, delta)


def event(name, **attrs):
    """Record a point event; no-op when disabled."""
    if _tracer is not None:
        _tracer.event(name, **attrs)


def enabled():
    """True when a tracer is installed (for guarding pricier call sites)."""
    return _tracer is not None


@contextmanager
def tracing(journal=None, clock=time.perf_counter):
    """Install a fresh tracer for the body; restore the previous after.

    The convenience entry point for tests and scripts::

        with obs.tracing(journal="run.jsonl") as tracer:
            modular_synthesis(stg)
        print(tracer.counter_totals())
    """
    global _tracer
    previous = _tracer
    tracer = Tracer(journal=journal, clock=clock)
    _tracer = tracer
    try:
        yield tracer
    finally:
        _tracer = previous
        tracer.close()
