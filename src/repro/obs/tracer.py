"""Hierarchical spans with a JSONL journal and a near-no-op disabled path.

The tracer is a process-wide singleton like the fault registry
(:mod:`repro.runtime.faults`): instrumented sites call the module-level
:func:`span`/:func:`add`/:func:`event` helpers, which consult one global
slot.  With no tracer installed each helper is a global read plus an
early return -- :func:`span` hands back a shared no-op span object --
so the pipeline pays nothing measurable for being instrumented.

With a tracer installed, ``span()`` opens a :class:`Span` nested under
the current one (the tracer keeps the stack), counters recorded through
``Span.add``/:func:`add` accumulate on the innermost open span, and
every start/end is appended to the JSONL journal when one was requested.
Completed spans also fold into an in-memory per-name profile
(:class:`~repro.obs.profile.SpanStats`) so ``--metrics`` and
``--profile-top`` need no journal re-read.

The tracer is deliberately single-threaded, matching the pipeline; the
stack is a plain list, not a contextvar.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager

from repro.obs.metrics import (
    AUTO_HISTOGRAMS,
    Counters,
    Gauge,
    Histogram,
    gauge_key,
)
from repro.obs.profile import (
    SpanStats,
    counter_totals,
    stats_as_dict,
    top_spans,
)

#: Journal format version written in the header event.
JOURNAL_VERSION = 1


class Span:
    """One timed phase of the pipeline.

    Use as a context manager; on exit the span is closed, its duration
    and counters are journalled, and -- when the body raised -- the
    exception class is recorded as the ``error`` attribute so a journal
    of a failed run still shows *where* it failed.
    """

    __slots__ = (
        "tracer", "name", "id", "parent_id", "attrs", "counters",
        "started", "duration",
    )

    def __init__(self, tracer, name, span_id, parent_id, attrs):
        self.tracer = tracer
        self.name = name
        self.id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.counters = Counters()
        self.started = None  # relative time, set by the tracer
        self.duration = None

    def add(self, counter, delta=1):
        """Accumulate a counter on this span."""
        self.counters.add(counter, delta)

    def merge(self, counters):
        """Fold a :class:`Counters` bag (e.g. a result's) into this span."""
        self.counters.merge(counters)

    def set(self, key, value):
        """Set an attribute (status, engine, ...) on this span."""
        self.attrs[key] = value

    @property
    def closed(self):
        return self.duration is not None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._end(self)
        return False

    def __repr__(self):
        state = f"{self.duration:.4f}s" if self.closed else "open"
        return f"Span({self.name!r}, id={self.id}, {state})"


class _NullSpan:
    """The shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()

    def add(self, counter, delta=1):
        pass

    def merge(self, counters):
        pass

    def set(self, key, value):
        pass

    @property
    def closed(self):
        return True

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def __repr__(self):
        return "NullSpan()"


#: Singleton handed out by :func:`span` when no tracer is installed.
NULL_SPAN = _NullSpan()


class Tracer:
    """Span stack, per-name profile, and optional JSONL journal.

    Parameters
    ----------
    journal:
        ``None`` (in-memory profiling only), a path to create (a
        ``.gz`` suffix selects transparent gzip compression), or an
        open text file-like object (not closed by :meth:`close`).
    clock:
        Injectable time source for deterministic tests.
    keep_events:
        Retain every emitted journal record in memory (``self.events``)
        so post-hoc analytics (:mod:`repro.obs.analyze`, the CLI's
        ``--metrics-tree``) can rebuild the span tree without a journal
        file.  Worker segments folded in by :meth:`absorb` are parsed
        and appended too.
    memory:
        Record ``tracemalloc`` peak-allocation gauges per *top-level*
        span (``peak_memory_bytes{span=...}``).  Starts tracemalloc if
        it is not already tracing (and stops it again on :meth:`close`
        only in that case).  Opt-in: allocation tracking costs real
        time, so it rides the CLI's ``--trace-memory`` flag.
    """

    def __init__(self, journal=None, clock=time.perf_counter,
                 keep_events=False, memory=False):
        self._clock = clock
        self.started = clock()
        self._stack = []
        self._next_id = 1
        #: ``{span_name: SpanStats}`` folded as spans close.
        self.stats = {}
        #: ``{name: Histogram}`` filled by :meth:`observe` and the
        #: automatic span-close observations (:data:`AUTO_HISTOGRAMS`).
        self.histograms = {}
        #: ``{gauge_key: Gauge}`` filled by :meth:`gauge`.
        self.gauges = {}
        # Retained journal records (only when ``keep_events``); absorbed
        # worker events are buffered apart so the :attr:`events` view
        # always reads as own-segment-first, like the journal file.
        self._events = [] if keep_events else None
        self._absorbed_events = []
        self.memory = bool(memory)
        self._mem_started_here = False
        if self.memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._mem_started_here = True
        #: Worker journal segments queued by :meth:`absorb`, appended to
        #: the sink after this tracer's own (self-contained) segment.
        self._segments = []
        self._sink = None
        self._owns_sink = False
        if journal is not None:
            if hasattr(journal, "write"):
                self._sink = journal
            else:
                from repro.obs.journal import journal_open

                self._sink = journal_open(journal, "w")
                self._owns_sink = True
        if self._sink is not None or self._events is not None:
            self._emit({
                "ev": "trace",
                "version": JOURNAL_VERSION,
                "clock": "perf_counter",
            })

    # -- span lifecycle ----------------------------------------------------

    def span(self, name, **attrs):
        """Open a span nested under the current one."""
        parent = self._stack[-1].id if self._stack else None
        if self.memory and parent is None:
            import tracemalloc

            tracemalloc.reset_peak()
        entry = Span(self, name, self._next_id, parent, attrs)
        self._next_id += 1
        entry.started = self._now()
        self._stack.append(entry)
        record = {
            "ev": "start",
            "id": entry.id,
            "name": name,
            "t": entry.started,
        }
        if parent is not None:
            record["parent"] = parent
        if attrs:
            record["attrs"] = dict(attrs)
        self._emit(record)
        return entry

    def _end(self, entry):
        if entry.closed:
            return
        entry.duration = self._now() - entry.started
        # Pop up to and including this span; a well-nested program pops
        # exactly one, but a mismatch must not corrupt the stack.
        while self._stack:
            top = self._stack.pop()
            if top is entry:
                break
        stats = self.stats.get(entry.name)
        if stats is None:
            stats = self.stats[entry.name] = SpanStats(entry.name)
        stats.record(entry.duration, entry.counters)
        for hist_name, source in AUTO_HISTOGRAMS.get(entry.name, ()):
            if source == "duration":
                self.observe(hist_name, entry.duration)
            elif source in entry.counters:
                self.observe(hist_name, entry.counters[source])
        if self.memory and entry.parent_id is None:
            import tracemalloc

            _current, peak = tracemalloc.get_traced_memory()
            self.gauge("peak_memory_bytes", peak, span=entry.name)
        record = {
            "ev": "end",
            "id": entry.id,
            "name": entry.name,
            "t": self._now(),
            "dur": round(entry.duration, 6),
        }
        if entry.attrs:
            record["attrs"] = dict(entry.attrs)
        if entry.counters:
            record["counters"] = entry.counters.as_dict()
        self._emit(record)

    def current(self):
        """The innermost open span, or ``None`` at top level."""
        return self._stack[-1] if self._stack else None

    def add(self, counter, delta=1):
        """Accumulate a counter on the innermost open span (if any)."""
        if self._stack:
            self._stack[-1].counters.add(counter, delta)

    def event(self, name, **attrs):
        """Record an instant (duration-less) point event."""
        record = {"ev": "point", "name": name, "t": self._now()}
        if self._stack:
            record["parent"] = self._stack[-1].id
        if attrs:
            record["attrs"] = dict(attrs)
        self._emit(record)

    def observe(self, name, value):
        """Record one observation into the named histogram.

        Buckets come from
        :data:`~repro.obs.metrics.HISTOGRAM_BUCKETS` (or the default
        set), so worker and parent histograms always merge.
        """
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(name)
        hist.observe(value)
        return hist

    def gauge(self, name, value, mode="max", **labels):
        """Set the named (and optionally labelled) gauge.

        The default ``max`` mode keeps the high-water mark across sets
        and merges; ``mode="last"`` is last-write-wins.
        """
        key = gauge_key(name, labels)
        entry = self.gauges.get(key)
        if entry is None:
            entry = self.gauges[key] = Gauge(name, labels, mode=mode)
        entry.set(value)
        return entry

    # -- reporting ---------------------------------------------------------

    def counter_totals(self):
        """Every counter summed across all completed spans."""
        return counter_totals(self.stats)

    def profile_top(self, n=None):
        """Completed-span stats, heaviest total wall clock first."""
        return top_spans(self.stats, n)

    def stats_dict(self):
        """JSON-ready profile snapshot (for ``BENCH_*.json``)."""
        return stats_as_dict(self.stats)

    def metrics_dict(self):
        """JSON/pickle-ready histogram + gauge snapshot.

        The shape workers ship across the process boundary for
        :meth:`absorb`; empty registries collapse to an empty dict so
        payloads stay small.
        """
        snapshot = {}
        if self.histograms:
            snapshot["histograms"] = {
                name: self.histograms[name].as_dict()
                for name in sorted(self.histograms)
            }
        if self.gauges:
            snapshot["gauges"] = {
                key: {"name": self.gauges[key].name,
                      **self.gauges[key].as_dict()}
                for key in sorted(self.gauges)
            }
        return snapshot

    def absorb(self, stats=None, journal=None, metrics=None):
        """Fold a worker process's trace into this tracer.

        ``stats`` is the worker's :meth:`stats_dict` snapshot, merged
        name-wise into this profile (the bench runner's
        :func:`~repro.obs.profile.merge_stats` semantics).  ``journal``
        is the worker's complete JSONL journal text; it is queued and
        appended to the sink by :meth:`close`, *after* this tracer's own
        events, so the file stays a valid concatenation of
        self-contained segments (see :mod:`repro.obs.journal`).
        ``metrics`` is the worker's :meth:`metrics_dict` snapshot:
        histograms merge bucket-for-bucket, gauges by their declared
        mode (peaks take the max).
        """
        for name, data in (stats or {}).items():
            entry = SpanStats.from_dict(name, data)
            existing = self.stats.get(name)
            if existing is None:
                self.stats[name] = entry
            else:
                existing.merge(entry)
        if metrics:
            for name, data in (metrics.get("histograms") or {}).items():
                incoming = Histogram.from_dict(name, data)
                existing = self.histograms.get(name)
                if existing is None:
                    self.histograms[name] = incoming
                else:
                    existing.merge(incoming)
            for key, data in (metrics.get("gauges") or {}).items():
                incoming = Gauge.from_dict(data.get("name", key), data)
                existing = self.gauges.get(key)
                if existing is None:
                    self.gauges[key] = incoming
                else:
                    existing.merge(incoming)
        if journal:
            self._segments.append(journal)
            if self._events is not None:
                import json as _json

                for line in journal.splitlines():
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        self._absorbed_events.append(_json.loads(line))
                    except ValueError:
                        pass  # analytics tolerate a torn worker line

    @property
    def events(self):
        """Retained records, own segment first then absorbed worker
        segments -- the same ordering :meth:`close` writes to the sink,
        so :func:`~repro.obs.analyze.build_forest` sees identical
        segment boundaries live and post-hoc.  ``None`` unless the
        tracer was built with ``keep_events``."""
        if self._events is None:
            return None
        return self._events + self._absorbed_events

    def close(self):
        """Close any spans left open (crash path), then the journal."""
        while self._stack:
            self._end(self._stack[-1])
        if self._mem_started_here:
            import tracemalloc

            tracemalloc.stop()
            self._mem_started_here = False
        if self._sink is not None:
            for segment in self._segments:
                self._sink.write(segment)
                if not segment.endswith("\n"):
                    self._sink.write("\n")
            self._segments = []
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
            self._sink = None

    # -- internals ---------------------------------------------------------

    def _now(self):
        return round(self._clock() - self.started, 6)

    def _emit(self, record):
        if self._events is not None:
            self._events.append(record)
        if self._sink is not None:
            self._sink.write(
                json.dumps(record, separators=(",", ":"), default=str)
            )
            self._sink.write("\n")

    def __repr__(self):
        return (
            f"Tracer(spans={sum(s.count for s in self.stats.values())}, "
            f"open={len(self._stack)})"
        )


# -- the global slot -------------------------------------------------------

_tracer = None


def install(tracer):
    """Make ``tracer`` the process-wide tracer; returns it."""
    global _tracer
    _tracer = tracer
    return tracer


def uninstall():
    """Disable tracing; returns the previously installed tracer."""
    global _tracer
    previous = _tracer
    _tracer = None
    return previous


def active():
    """The installed :class:`Tracer`, or ``None`` when disabled."""
    return _tracer


def span(name, **attrs):
    """Open a span on the installed tracer; a no-op span when disabled."""
    if _tracer is None:
        return NULL_SPAN
    return _tracer.span(name, **attrs)


def add(counter, delta=1):
    """Accumulate a counter on the current span; no-op when disabled."""
    if _tracer is not None:
        _tracer.add(counter, delta)


def event(name, **attrs):
    """Record a point event; no-op when disabled."""
    if _tracer is not None:
        _tracer.event(name, **attrs)


def observe(name, value):
    """Record a histogram observation; no-op when disabled."""
    if _tracer is not None:
        _tracer.observe(name, value)


def gauge(name, value, mode="max", **labels):
    """Set a gauge on the installed tracer; no-op when disabled."""
    if _tracer is not None:
        _tracer.gauge(name, value, mode=mode, **labels)


def enabled():
    """True when a tracer is installed (for guarding pricier call sites)."""
    return _tracer is not None


@contextmanager
def tracing(journal=None, clock=time.perf_counter):
    """Install a fresh tracer for the body; restore the previous after.

    The convenience entry point for tests and scripts::

        with obs.tracing(journal="run.jsonl") as tracer:
            modular_synthesis(stg)
        print(tracer.counter_totals())
    """
    global _tracer
    previous = _tracer
    tracer = Tracer(journal=journal, clock=clock)
    _tracer = tracer
    try:
        yield tracer
    finally:
        _tracer = previous
        tracer.close()
