"""Post-hoc trace analytics: span trees, self time, attribution, critical path.

The journal (and the live tracer's retained event list) is a flat
stream of span ``start``/``end`` records.  This module folds that
stream into a **forest of span trees** -- one tree list per journal
*segment* (a serial run has one segment; ``--jobs N`` runs concatenate
one per worker) -- and answers the questions raw profiles cannot:

* **Self time vs child time.**  A span's profile total includes its
  children; a ``module`` span's 0.4 s may be 0.39 s of ``sat_attempt``.
  :attr:`SpanNode.self_seconds` is the span's own wall clock with all
  child durations subtracted, the quantity flamegraphs plot.
* **Per-module attribution.**  ``module`` spans carry their output
  signal as an attribute; :func:`module_attribution` groups the wall
  clock and counters by output, so "where did mmu0's 1.3 s go?" is one
  table, not a journal read.
* **Critical path.**  :func:`critical_path` walks the heaviest chain
  root -> leaf; :func:`dispatch_summary` sizes the parallel dispatch
  (the parent's ``module_parallel``/merge wall clock against the
  longest worker segment's busy time), which is the lower bound on what
  ``jobs=N`` can achieve.

Everything here consumes plain event dicts, so it works identically on
a journal file (``tools/analyze_trace.py``), on a gzipped journal, and
on a live ``Tracer(keep_events=True)`` (the CLI's ``--metrics-tree``).
"""

from __future__ import annotations

from repro.obs.metrics import Counters
from repro.obs.journal import split_segments

#: Span names that mark a parallel dispatch region (parent side).
PARALLEL_SPANS = ("module_parallel",)


class SpanNode:
    """One completed span with its children resolved.

    ``start``/``end`` are segment-relative seconds; ``duration`` is the
    recorded ``dur`` (authoritative -- ``end - start`` includes journal
    write jitter).  ``segment`` is the 0-based index of the journal
    segment the span came from.
    """

    __slots__ = ("name", "id", "parent_id", "segment", "start", "end",
                 "duration", "attrs", "counters", "children")

    def __init__(self, name, span_id, parent_id, segment, start, end,
                 duration, attrs, counters):
        self.name = name
        self.id = span_id
        self.parent_id = parent_id
        self.segment = segment
        self.start = start
        self.end = end
        self.duration = duration
        self.attrs = attrs
        self.counters = counters
        self.children = []

    @property
    def child_seconds(self):
        """Total wall clock of the direct children."""
        return sum(child.duration for child in self.children)

    @property
    def self_seconds(self):
        """Wall clock spent in this span outside any child.

        Clamped at zero: float rounding in journalled durations can
        push the child sum a few microseconds past the parent.
        """
        return max(0.0, self.duration - self.child_seconds)

    def walk(self):
        """This node then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self):
        return (
            f"SpanNode({self.name!r}, id={self.id}, "
            f"dur={self.duration:.6f}s, children={len(self.children)})"
        )


def build_forest(events):
    """Fold journal events into ``[roots...]`` across all segments.

    Returns the list of root :class:`SpanNode` objects in end order,
    segments concatenated (each node knows its segment index).  Only
    spans with an ``end`` record appear -- a crash journal's unended
    spans have no duration to attribute.  Parent links resolve within a
    segment only (span ids are unique per segment).
    """
    roots = []
    for index, (_position, segment) in enumerate(split_segments(events)):
        starts = {}
        for event in segment:
            if event.get("ev") == "start":
                starts[event["id"]] = event
        nodes = {}
        ends = [e for e in segment if e.get("ev") == "end"]
        for event in ends:
            span_id = event["id"]
            start_event = starts.get(span_id, {})
            counters = Counters()
            counters.merge(event.get("counters") or {})
            node = SpanNode(
                name=event.get("name", "?"),
                span_id=span_id,
                parent_id=start_event.get("parent"),
                segment=index,
                start=float(start_event.get("t", 0.0)),
                end=float(event.get("t", 0.0)),
                duration=float(event.get("dur", 0.0)),
                attrs=dict(event.get("attrs") or {}),
                counters=counters,
            )
            nodes[span_id] = node
        for node in nodes.values():
            parent = nodes.get(node.parent_id)
            if parent is not None:
                parent.children.append(node)
        for event in ends:  # preserve end order for roots
            node = nodes[event["id"]]
            if node.parent_id is None or node.parent_id not in nodes:
                roots.append(node)
    return roots


def walk_forest(roots):
    """Every node of every tree, depth-first in root order."""
    for root in roots:
        yield from root.walk()


def verify_forest(roots, tolerance=1e-6):
    """Check the self-time arithmetic over a forest.

    For every span, ``self + sum(children) == duration`` within
    ``tolerance`` (absolute seconds, scaled by child count for float
    accumulation).  Returns a list of problem strings -- empty means
    every parent's child time is exactly accounted for by its
    children's durations, the invariant ``tools/analyze_trace.py
    --verify`` gates on.
    """
    problems = []
    for node in walk_forest(roots):
        budgeted = node.self_seconds + node.child_seconds
        bound = tolerance * (1 + len(node.children))
        if node.child_seconds - node.duration > bound:
            problems.append(
                f"span {node.name!r} (segment {node.segment}, id "
                f"{node.id}): children sum to {node.child_seconds:.6f}s "
                f"> own duration {node.duration:.6f}s"
            )
        elif abs(budgeted - node.duration) > bound:
            problems.append(
                f"span {node.name!r} (segment {node.segment}, id "
                f"{node.id}): self {node.self_seconds:.6f}s + children "
                f"{node.child_seconds:.6f}s != duration "
                f"{node.duration:.6f}s"
            )
    return problems


class Attribution:
    """Aggregated wall clock / self time / counters for one grouping key."""

    __slots__ = ("key", "count", "seconds", "self_seconds", "counters")

    def __init__(self, key):
        self.key = key
        self.count = 0
        self.seconds = 0.0
        self.self_seconds = 0.0
        self.counters = Counters()

    def record(self, node):
        self.count += 1
        self.seconds += node.duration
        self.self_seconds += node.self_seconds
        self.counters.merge(node.counters)

    def record_subtree(self, node):
        """Fold a whole subtree in: root duration, every node's counters."""
        self.count += 1
        self.seconds += node.duration
        for span in node.walk():
            self.self_seconds += span.self_seconds
            self.counters.merge(span.counters)

    def as_dict(self):
        return {
            "count": self.count,
            "seconds": round(self.seconds, 6),
            "self_seconds": round(self.self_seconds, 6),
            "counters": self.counters.as_dict(),
        }

    def __repr__(self):
        return (
            f"Attribution({self.key!r}, count={self.count}, "
            f"seconds={self.seconds:.4f})"
        )


def module_attribution(roots, span_name="module", attr="output"):
    """Per-output wall/counter attribution from ``module`` spans.

    Returns ``{output: Attribution}`` in first-seen order.  Each
    ``module`` span's *whole subtree* is attributed to its output
    (project + encode + sat attempts + propagate), so the per-output
    seconds sum to the total time spent inside module processing -- the
    machine-checkable "where did the analysis effort go as the circuit
    composed" evidence the modular partitioning loop claims.
    """
    out = {}
    for node in walk_forest(roots):
        if node.name != span_name:
            continue
        key = node.attrs.get(attr, "?")
        entry = out.get(key)
        if entry is None:
            entry = out[key] = Attribution(key)
        entry.record_subtree(node)
    return out


def name_attribution(roots):
    """Per-span-name totals with self time (the flamegraph fold, flat).

    Like the live profile's :class:`~repro.obs.profile.SpanStats` but
    with the child time subtracted out, so the heaviest *self* time --
    not the heaviest subtree -- tops the table.
    """
    out = {}
    for node in walk_forest(roots):
        entry = out.get(node.name)
        if entry is None:
            entry = out[node.name] = Attribution(node.name)
        entry.record(node)
    return out


def critical_path(roots):
    """The heaviest root-to-leaf chain across the forest.

    Starts at the longest root span and at every level descends into
    the child with the largest duration.  Returns the list of
    :class:`SpanNode` hops; the run cannot be faster than the sum of
    the self times along this chain without restructuring it.
    """
    if not roots:
        return []
    node = max(roots, key=lambda n: n.duration)
    path = [node]
    while node.children:
        node = max(node.children, key=lambda n: n.duration)
        path.append(node)
    return path


def dispatch_summary(roots):
    """Size the parallel dispatch: parent wall vs longest worker chain.

    Returns a dict:

    ``parallel_seconds``
        Total wall clock of the parent's ``module_parallel`` span(s)
        (``None`` when the trace has no parallel dispatch).
    ``worker_segments``
        Number of journal segments beyond the first (the workers').
    ``worker_busy_seconds``
        Per worker segment, the sum of its root span durations (the
        worker's busy time).
    ``longest_worker_seconds``
        The critical worker: ``max(worker_busy_seconds)`` (0.0 when
        serial).
    ``merge_seconds``
        Parent dispatch time not covered by the critical worker --
        result pickling, merging, supervision.  ``None`` without a
        ``module_parallel`` span.

    The dispatch cannot beat ``longest_worker_seconds``; when
    ``merge_seconds`` rivals it, the overhead -- not the solves -- is
    the bottleneck (exactly the 1-core regression
    ``BENCH_parallel_modular.json`` records).
    """
    parallel = [
        node for node in walk_forest(roots) if node.name in PARALLEL_SPANS
    ]
    segments = {}
    for root in roots:
        segments.setdefault(root.segment, []).append(root)
    worker_busy = [
        sum(node.duration for node in segment_roots)
        for index, segment_roots in sorted(segments.items())
        if index > 0
    ]
    longest = max(worker_busy, default=0.0)
    parallel_seconds = (
        sum(node.duration for node in parallel) if parallel else None
    )
    merge = None
    if parallel_seconds is not None:
        merge = max(0.0, parallel_seconds - longest)
    return {
        "parallel_seconds": parallel_seconds,
        "worker_segments": len(worker_busy),
        "worker_busy_seconds": [round(s, 6) for s in worker_busy],
        "longest_worker_seconds": round(longest, 6),
        "merge_seconds": None if merge is None else round(merge, 6),
    }


# -- rendering -------------------------------------------------------------

def _tree_rows(nodes, depth, rows):
    """Group sibling spans by name; one row per (depth, name) group."""
    groups = {}
    for node in nodes:
        entry = groups.get(node.name)
        if entry is None:
            entry = groups[node.name] = Attribution(node.name)
            groups[node.name + "\0children"] = []
        entry.record(node)
        groups[node.name + "\0children"].extend(node.children)
    for name, entry in groups.items():
        if name.endswith("\0children"):
            continue
        rows.append((depth, entry))
        _tree_rows(groups[name + "\0children"], depth + 1, rows)


def format_tree(roots, min_seconds=0.0):
    """Fixed-width span tree, siblings collapsed by name.

    Each row shows the span name (indented by depth), how many spans
    collapsed into it, total wall clock, and self time.  ``min_seconds``
    prunes rows whose total falls below it (the counters still show in
    their ancestors' totals).
    """
    rows = []
    _tree_rows(roots, 0, rows)
    rows = [(d, e) for d, e in rows if e.seconds >= min_seconds]
    if not rows:
        return "no spans recorded"
    width = max(len("  " * d + e.key) for d, e in rows)
    width = max(width, len("span"))
    lines = [
        f"{'span':<{width}} {'count':>7} {'total':>10} {'self':>10}"
    ]
    for depth, entry in rows:
        label = "  " * depth + entry.key
        lines.append(
            f"{label:<{width}} {entry.count:>7} "
            f"{entry.seconds:>9.4f}s {entry.self_seconds:>9.4f}s"
        )
    return "\n".join(lines)


def format_attribution(attribution, title="output"):
    """Fixed-width per-key attribution table, heaviest first."""
    entries = sorted(
        attribution.values(), key=lambda e: (-e.seconds, str(e.key))
    )
    if not entries:
        return "no attributable spans recorded"
    width = max(len(str(e.key)) for e in entries)
    width = max(width, len(title))
    lines = [
        f"{title:<{width}} {'count':>6} {'total':>10} {'self':>10} "
        f"{'sat':>5} {'backtracks':>10}"
    ]
    for entry in entries:
        lines.append(
            f"{str(entry.key):<{width}} {entry.count:>6} "
            f"{entry.seconds:>9.4f}s {entry.self_seconds:>9.4f}s "
            f"{entry.counters['sat_attempts']:>5} "
            f"{entry.counters['backtracks']:>10}"
        )
    return "\n".join(lines)


def format_critical_path(path):
    """One line per hop of the critical path, with self time."""
    if not path:
        return "no spans recorded"
    lines = []
    for index, node in enumerate(path):
        label = node.attrs.get("output") or node.attrs.get("benchmark")
        suffix = f" [{label}]" if label else ""
        lines.append(
            f"{'  ' * index}{node.name}{suffix}  "
            f"total {node.duration:.4f}s  self {node.self_seconds:.4f}s"
        )
    return "\n".join(lines)
