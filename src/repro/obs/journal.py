"""Reading and validating JSONL trace journals.

The journal a :class:`~repro.obs.tracer.Tracer` writes is a plain JSONL
stream: a ``trace`` header, then ``start``/``end`` records per span and
``point`` records for instant events.  This module is the read side --
used by ``tools/summarize_trace.py``, the CI schema check, and the tests
that assert a journal is well-formed even when the traced run failed.

Well-formedness rules (checked by :func:`validate_events`):

* every line parses as a JSON object with a known ``ev`` type;
* the first event is the ``trace`` header, exactly once;
* span ids are unique, and every ``end`` closes the innermost open
  ``start`` with the same id and name (strict LIFO nesting);
* every ``parent`` reference names a span that is open at that moment;
* timestamps never run backwards;
* no span is left open at the end of the stream.
"""

from __future__ import annotations

import json

from repro.obs.tracer import JOURNAL_VERSION

#: Record types a journal may contain.
EVENT_TYPES = ("trace", "start", "end", "point")


class JournalError(ValueError):
    """A journal failed to parse or violated the nesting rules."""

    def __init__(self, problems):
        self.problems = list(problems)
        preview = "; ".join(self.problems[:3])
        more = len(self.problems) - 3
        if more > 0:
            preview += f"; ... {more} more"
        super().__init__(f"malformed trace journal: {preview}")


def read_events(source):
    """Parse a journal into a list of event dicts.

    ``source`` is a path, an open text file, or an iterable of lines.
    Raises :class:`JournalError` on the first unparseable line.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    elif hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        lines = list(source)
    events = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise JournalError([f"line {number}: invalid JSON ({exc.msg})"])
        if not isinstance(event, dict):
            raise JournalError([f"line {number}: not a JSON object"])
        events.append(event)
    return events


def validate_events(events):
    """Check the journal rules; returns a list of problem strings."""
    problems = []
    open_spans = []  # (id, name) innermost last
    open_ids = set()
    seen_ids = set()
    last_t = None
    for position, event in enumerate(events, start=1):
        kind = event.get("ev")
        if kind not in EVENT_TYPES:
            problems.append(f"event {position}: unknown type {kind!r}")
            continue
        if position == 1:
            if kind != "trace":
                problems.append("event 1: journal must start with a "
                                "'trace' header")
            elif event.get("version") != JOURNAL_VERSION:
                problems.append(
                    f"event 1: unsupported journal version "
                    f"{event.get('version')!r}"
                )
            continue
        if kind == "trace":
            problems.append(f"event {position}: duplicate 'trace' header")
            continue
        t = event.get("t")
        if not isinstance(t, (int, float)):
            problems.append(f"event {position}: missing timestamp 't'")
        else:
            if last_t is not None and t < last_t:
                problems.append(
                    f"event {position}: timestamp {t} runs backwards"
                )
            last_t = t
        parent = event.get("parent")
        if parent is not None and parent not in open_ids:
            problems.append(
                f"event {position}: parent {parent} is not an open span"
            )
        if kind == "start":
            span_id = event.get("id")
            name = event.get("name")
            if span_id is None or name is None:
                problems.append(f"event {position}: start lacks id/name")
                continue
            if span_id in seen_ids:
                problems.append(
                    f"event {position}: duplicate span id {span_id}"
                )
            seen_ids.add(span_id)
            open_spans.append((span_id, name))
            open_ids.add(span_id)
        elif kind == "end":
            span_id = event.get("id")
            name = event.get("name")
            if not open_spans:
                problems.append(
                    f"event {position}: end of {name!r} with no open span"
                )
                continue
            top_id, top_name = open_spans[-1]
            if span_id != top_id:
                problems.append(
                    f"event {position}: end of span {span_id} ({name!r}) "
                    f"but innermost open span is {top_id} ({top_name!r})"
                )
                # Recover so one mismatch does not cascade.
                open_spans = [
                    entry for entry in open_spans if entry[0] != span_id
                ]
                open_ids.discard(span_id)
                continue
            if name != top_name:
                problems.append(
                    f"event {position}: span {span_id} started as "
                    f"{top_name!r} but ended as {name!r}"
                )
            if not isinstance(event.get("dur"), (int, float)):
                problems.append(
                    f"event {position}: end of {name!r} lacks a duration"
                )
            open_spans.pop()
            open_ids.discard(span_id)
    for span_id, name in open_spans:
        problems.append(f"span {span_id} ({name!r}) never ended")
    if not events:
        problems.append("journal is empty")
    return problems


def load_journal(source):
    """Read and validate; returns the events or raises JournalError."""
    events = read_events(source)
    problems = validate_events(events)
    if problems:
        raise JournalError(problems)
    return events


def span_tree(events):
    """Nest end records as ``(record, [children...])`` trees.

    Returns the list of root spans in end order.  Useful for tests that
    assert the recorded hierarchy (run -> module -> sat_attempt).
    """
    parents = {}
    for event in events:
        if event.get("ev") == "start":
            parents[event["id"]] = event.get("parent")
    nodes = {}
    roots = []
    ends = [e for e in events if e.get("ev") == "end"]
    for event in ends:
        nodes[event["id"]] = (event, [])
    for event in ends:
        parent = parents.get(event["id"])
        if parent is not None and parent in nodes:
            nodes[parent][1].append(nodes[event["id"]])
        else:
            roots.append(nodes[event["id"]])
    return roots
